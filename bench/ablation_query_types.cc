// Ablation: how much of the RD-based method's gain comes from the query
// type decision tree of Section 4.1?
//
// Retrains the metasearcher with four classifier configurations —
// one pooled ED per database, split by term count only, split by estimate
// threshold only, and the paper's full 2x2 tree — and scores RD-based
// selection (no probing) against the golden standard.
//
// Expected: the estimate-threshold split carries most of the benefit
// (it separates covered from uncovered topics, whose errors differ in
// sign); the term-count split adds a smaller refinement; the full tree
// is best, matching the paper's design.

#include <iostream>

#include "eval/experiment.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

int Run() {
  eval::BenchScale scale = eval::ReadBenchScale();
  eval::TestbedOptions testbed_options = eval::ToTestbedOptions(scale);

  struct Variant {
    const char* label;
    bool by_terms;
    bool by_estimate;
  };
  const Variant kVariants[] = {
      {"single pooled ED", false, false},
      {"split by term count only", true, false},
      {"split by estimate only", false, true},
      {"full 2x2 tree (paper)", true, true},
  };

  std::cout << "\n=== Ablation: query-type decision tree ===\n\n";
  eval::TablePrinter table({"classifier", "#types", "k=1 Avg(Cor_a)",
                            "k=3 Avg(Cor_a)", "k=3 Avg(Cor_p)"});
  for (const Variant& variant : kVariants) {
    core::MetasearcherOptions options;
    options.query_class.split_by_term_count = variant.by_terms;
    options.query_class.split_by_estimate = variant.by_estimate;
    auto world = eval::BuildTrainedHealthWorld(testbed_options, options);
    world.status().CheckOK();
    eval::CorrectnessScores k1 =
        eval::EvaluateRdBased(*world, 1, core::CorrectnessMetric::kAbsolute);
    eval::CorrectnessScores k3a =
        eval::EvaluateRdBased(*world, 3, core::CorrectnessMetric::kAbsolute);
    eval::CorrectnessScores k3p =
        eval::EvaluateRdBased(*world, 3, core::CorrectnessMetric::kPartial);
    table.AddRow({variant.label,
                  eval::Cell(static_cast<std::size_t>(
                      world->metasearcher->classifier().num_types())),
                  eval::Cell(k1.avg_absolute), eval::Cell(k3a.avg_absolute),
                  eval::Cell(k3p.avg_partial)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
