// Ablation: how much does the paper's greedy usefulness policy (Section
// 5.4) actually buy over cheaper probe-selection policies?
//
// Compares greedy vs random, round-robin and max-variance on two axes:
//   * probes needed to reach a required certainty t = 0.9 (k = 1), and
//   * correctness of the reported answer after a fixed budget of 2 probes.
//
// Expected: greedy needs the fewest probes; max-variance is the closest
// contender (it chases uncertainty but ignores whether the uncertainty
// affects the answer set); round-robin and random trail.

#include <iostream>
#include <memory>

#include "core/probing.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

int Run() {
  eval::BenchScale scale = eval::ReadBenchScale();
  auto world = eval::BuildTrainedHealthWorld(eval::ToTestbedOptions(scale));
  world.status().CheckOK();

  std::vector<std::unique_ptr<core::ProbingPolicy>> policies;
  policies.push_back(std::make_unique<core::MembershipEntropyPolicy>());
  policies.push_back(std::make_unique<core::StoppingProbabilityPolicy>());
  policies.push_back(std::make_unique<core::GreedyUsefulnessPolicy>());
  policies.push_back(std::make_unique<core::MaxVarianceProbingPolicy>());
  policies.push_back(std::make_unique<core::RoundRobinProbingPolicy>());
  policies.push_back(std::make_unique<core::RandomProbingPolicy>(scale.seed));
  // Depth-limited approximation of the optimal policy (expensive per step;
  // depth 1 keeps the sweep affordable at this scale).
  policies.push_back(std::make_unique<core::ExpectimaxProbingPolicy>(1));

  std::cout << "\n=== Ablation: probing policy (k=1, absolute metric) ===\n"
            << "(first "
            << std::min<std::size_t>(scale.query_limit,
                                     world->num_test_queries())
            << " test queries)\n\n";
  eval::TablePrinter table({"policy", "avg probes to reach t=0.9",
                            "correctness @0 probes", "correctness @2 probes"});
  for (const auto& policy : policies) {
    auto sweep = eval::EvaluateThresholdSweep(
        *world, 1, core::CorrectnessMetric::kAbsolute, policy.get(), {0.9},
        scale.query_limit);
    auto trace = eval::EvaluateProbingTrace(
        *world, 1, core::CorrectnessMetric::kAbsolute, policy.get(), 2,
        scale.query_limit);
    table.AddRow({policy->name(), eval::Cell(sweep[0].avg_probes, 2),
                  eval::Cell(trace[0].avg_absolute),
                  eval::Cell(trace[2].avg_absolute)});
  }
  table.Print(std::cout);
  std::cout << "\nReproduction finding: the paper's expected-usefulness "
               "greedy is a martingale (it only sees probes that might FLIP "
               "the answer set), so answer-aware refinements -- stopping "
               "probability, membership entropy -- and even plain "
               "max-variance reach the threshold with fewer probes here. "
               "See EXPERIMENTS.md for the discussion.\n";
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
