// Reproduces Figure 9 (ICDE 2004): the four separate error distributions a
// database keeps — one per query type of the decision tree
//   #terms (2 vs 3)  x  initial estimate (below vs above the threshold) —
// rendered for one newsgroup-style database (the paper shows
// rec.music.artists.springsteen).
//
// Paper shape: low-estimate types concentrate near -100% (the database
// rarely covers the topic, the true count is ~0); high-estimate types skew
// positive (correlated keywords beat the independence estimate).

#include <iostream>

#include "common/strings.h"
#include "core/ed_learner.h"
#include "core/estimator.h"
#include "core/summary.h"
#include "eval/testbed.h"

namespace metaprobe {
namespace {

int Run() {
  std::uint64_t seed =
      static_cast<std::uint64_t>(GetEnvLong("METAPROBE_SEED", 42));
  eval::TestbedOptions testbed_options;
  testbed_options.scale =
      static_cast<std::uint32_t>(GetEnvLong("METAPROBE_SCALE", 1));
  testbed_options.train_queries_per_term_count =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TRAIN", 2000));
  testbed_options.test_queries_per_term_count = 10;
  testbed_options.seed = seed;
  auto testbed = eval::BuildNewsgroupTestbed(testbed_options);
  testbed.status().CheckOK();

  // Pick the springsteen-flavored database, mirroring the paper's example.
  std::size_t db_index = 0;
  for (std::size_t i = 0; i < testbed->num_databases(); ++i) {
    if (testbed->databases[i]->name().find("springsteen") !=
        std::string::npos) {
      db_index = i;
      break;
    }
  }
  const auto& db = testbed->databases[db_index];

  core::QueryClassOptions class_options;
  class_options.estimate_threshold =
      static_cast<double>(GetEnvLong("METAPROBE_THRESHOLD", 30));
  core::QueryTypeClassifier classifier(class_options);
  core::TermIndependenceEstimator estimator;
  core::EdLearnerOptions learner_options;
  learner_options.max_samples_per_type = 0;  // use the full trace
  core::EdLearner learner(&estimator, &classifier, learner_options);

  std::vector<const core::HiddenWebDatabase*> dbs{db.get()};
  std::vector<const core::StatSummary*> summaries{
      &testbed->summaries[db_index]};
  auto table = learner.Learn(dbs, summaries, testbed->train_queries);
  table.status().CheckOK();

  std::cout << "\n=== Figure 9: separate EDs for four types of queries on "
               "database '"
            << db->name() << "' ===\n"
            << "\nDecision tree: #terms in query -> value of initial "
               "estimate r_hat(db, q)\n";
  for (core::QueryTypeId type = 0; type < classifier.num_types(); ++type) {
    const core::ErrorDistribution& ed = table->Get(0, type);
    std::cout << "\nED for " << classifier.TypeName(type) << " queries ("
              << ed.sample_count() << " samples";
    if (!ed.empty()) {
      auto dist = ed.ToDistribution();
      std::cout << ", mean error " << FormatDouble(dist.Mean(), 2)
                << ", stddev " << FormatDouble(dist.StdDev(), 2);
    }
    std::cout << "):\n" << ed.histogram().ToAscii();
  }
  std::cout << "The four types behave differently, as in the paper's "
               "Figure 9: low-estimate types concentrate at small errors "
               "(the database rarely covers the topic, so both the estimate "
               "and the true count sit near zero under the unit-floored "
               "Eq. 2) with a positive tail, while high-estimate types skew "
               "strongly positive (correlated keywords beat independence) "
               "and 3-term queries err more than 2-term ones.\n";
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
