// Ablation: sensitivity of RD-based selection to the ED histogram
// resolution. The paper fixes 10 cells (its chi-square setup uses dof 9);
// this sweep retrains with coarser and finer binnings.
//
// Expected: very coarse bins lose the systematic error signal; beyond ~10
// cells the gains flatten (each extra cell splits limited training mass).

#include <iostream>
#include <vector>

#include "eval/experiment.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

std::vector<double> EdgesForCells(int cells) {
  // Geometric-ish ladders spanning [-1, +inf) at several resolutions.
  switch (cells) {
    case 4:
      return {-0.5, 0.5, 2.5};
    case 6:
      return {-0.6, -0.05, 0.5, 2.5, 6.0};
    case 10:
      return core::DefaultErrorBinEdges();
    case 14:
      return {-0.95, -0.75, -0.5, -0.3, -0.15, -0.05, 0.05, 0.25, 0.5,
              1.0,   1.75,  3.0,  6.0};
    case 20:
      return {-0.97, -0.9, -0.75, -0.6, -0.45, -0.3, -0.15, -0.05, 0.05,
              0.2,   0.4,  0.65,  1.0,  1.5,   2.2,  3.2,   4.7,   7.0,
              10.0};
    default:
      return core::DefaultErrorBinEdges();
  }
}

int Run() {
  eval::BenchScale scale = eval::ReadBenchScale();
  eval::TestbedOptions testbed_options = eval::ToTestbedOptions(scale);

  std::cout << "\n=== Ablation: ED histogram resolution ===\n\n";
  eval::TablePrinter table({"ED cells", "k=1 Avg(Cor_a)", "k=3 Avg(Cor_a)",
                            "k=3 Avg(Cor_p)"});
  for (int cells : {4, 6, 10, 14, 20}) {
    core::MetasearcherOptions options;
    options.ed_learner.bin_edges = EdgesForCells(cells);
    auto world = eval::BuildTrainedHealthWorld(testbed_options, options);
    world.status().CheckOK();
    eval::CorrectnessScores k1 =
        eval::EvaluateRdBased(*world, 1, core::CorrectnessMetric::kAbsolute);
    eval::CorrectnessScores k3a =
        eval::EvaluateRdBased(*world, 3, core::CorrectnessMetric::kAbsolute);
    eval::CorrectnessScores k3p =
        eval::EvaluateRdBased(*world, 3, core::CorrectnessMetric::kPartial);
    table.AddRow({eval::Cell(cells), eval::Cell(k1.avg_absolute),
                  eval::Cell(k3a.avg_absolute), eval::Cell(k3p.avg_partial)});
  }
  table.Print(std::cout);
  std::cout << "\n(10 cells is the paper's operating point.)\n";
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
