// Extension experiment: Section 2.1 lists TWO relevancy definitions and
// claims the probabilistic techniques apply to both. The paper evaluates
// only the document-frequency definition; this bench runs the same
// baseline-vs-RD-based comparison under the *document-similarity*
// definition (relevancy = tf-idf cosine of the best document, probed by
// downloading the top result).
//
// Expected: the coverage estimator's raw ranking is weaker than the
// RD-based selection built around it — the framework is
// definition-agnostic, as claimed.

#include <iostream>

#include "core/correctness.h"
#include "core/selection.h"
#include "eval/experiment.h"
#include "eval/golden.h"
#include "eval/table.h"
#include "eval/testbed.h"

namespace metaprobe {
namespace {

int Run() {
  eval::BenchScale scale = eval::ReadBenchScale();
  eval::TestbedOptions testbed_options = eval::ToTestbedOptions(scale);
  auto testbed = eval::BuildHealthTestbed(testbed_options);
  testbed.status().CheckOK();

  core::MetasearcherOptions options;
  options.relevancy_definition =
      core::RelevancyDefinition::kDocumentSimilarity;
  // Similarity estimates live in [0, 1]; every query is "low estimate"
  // under a count-scale threshold, so split near the top of the range.
  options.query_class.estimate_threshold = 0.8;
  auto searcher = eval::BuildTrainedMetasearcher(*testbed, options);
  searcher.status().CheckOK();

  auto golden = eval::GoldenStandard::Build(
      testbed->database_ptrs(), testbed->test_queries,
      core::RelevancyDefinition::kDocumentSimilarity);
  golden.status().CheckOK();

  auto evaluate = [&](int k, core::CorrectnessMetric metric) {
    double baseline_total = 0.0, rd_total = 0.0;
    for (std::size_t q = 0; q < testbed->test_queries.size(); ++q) {
      const core::Query& query = testbed->test_queries[q];
      std::vector<std::size_t> actual = golden->TopK(q, k);
      auto base = core::SelectByEstimate((*searcher)->EstimateAll(query), k);
      auto model = (*searcher)->BuildModel(query).ValueOrDie();
      auto rd = core::SelectByRd(model, k, metric);
      if (metric == core::CorrectnessMetric::kAbsolute) {
        baseline_total += core::AbsoluteCorrectness(base.databases, actual);
        rd_total += core::AbsoluteCorrectness(rd.databases, actual);
      } else {
        baseline_total += core::PartialCorrectness(base.databases, actual);
        rd_total += core::PartialCorrectness(rd.databases, actual);
      }
    }
    double n = static_cast<double>(testbed->test_queries.size());
    return std::make_pair(baseline_total / n, rd_total / n);
  };

  std::cout << "\n=== Extension: document-similarity relevancy definition "
               "===\n(best-document cosine relevancy; "
            << testbed->test_queries.size() << " test queries; estimator: "
            << (*searcher)->estimator().name() << ")\n\n";
  eval::TablePrinter table({"method", "k=1 Avg(Cor_a)", "k=3 Avg(Cor_a)",
                            "k=3 Avg(Cor_p)"});
  auto [b1, r1] = evaluate(1, core::CorrectnessMetric::kAbsolute);
  auto [b3a, r3a] = evaluate(3, core::CorrectnessMetric::kAbsolute);
  auto [b3p, r3p] = evaluate(3, core::CorrectnessMetric::kPartial);
  table.AddRow({"coverage estimator (baseline)", eval::Cell(b1),
                eval::Cell(b3a), eval::Cell(b3p)});
  table.AddRow({"RD-based, no probing", eval::Cell(r1), eval::Cell(r3a),
                eval::Cell(r3p)});
  table.Print(std::cout);
  std::cout << "\nThe probabilistic machinery is relevancy-definition "
               "agnostic (Section 2.1's claim): the same EDs/RDs/expected-"
               "correctness pipeline improves selection under the "
               "similarity definition too. Absolute numbers are low for "
               "BOTH methods because best-document cosine produces near-"
               "ties across topically equivalent databases in this corpus "
               "-- picking the exact winner from summaries alone is close "
               "to chance, and the partial metric shows the real signal.\n";
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
