// Reproduces Figure 15 (ICDE 2004): average absolute and partial
// correctness of the term-independence estimator baseline vs the RD-based
// database selection method (no probing), for k = 1 and k = 3, on the
// 20-database health testbed with disjoint train/test query traces.
//
// Paper reference values: baseline Avg(Cor_a) = 0.547 (k=1) and
// 0.31 / 0.699 (k=3 absolute/partial); RD-based 0.755 (k=1, a 38.2%
// improvement) with similar gains at k=3. Expect the same ordering and a
// comparable improvement factor here; absolute values differ because the
// corpora are synthetic (see EXPERIMENTS.md).

#include <iostream>

#include "eval/experiment.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

int Run() {
  eval::BenchScale scale = eval::ReadBenchScale();
  auto world = eval::BuildTrainedHealthWorld(eval::ToTestbedOptions(scale));
  world.status().CheckOK();

  eval::CorrectnessScores base1 = eval::EvaluateBaseline(*world, 1);
  eval::CorrectnessScores base3 = eval::EvaluateBaseline(*world, 3);
  eval::CorrectnessScores rd1 =
      eval::EvaluateRdBased(*world, 1, core::CorrectnessMetric::kAbsolute);
  eval::CorrectnessScores rd3a =
      eval::EvaluateRdBased(*world, 3, core::CorrectnessMetric::kAbsolute);
  eval::CorrectnessScores rd3p =
      eval::EvaluateRdBased(*world, 3, core::CorrectnessMetric::kPartial);

  std::cout << "\n=== Figure 15: RD-based selection vs term-independence "
               "estimator ===\n"
            << "(" << world->num_test_queries()
            << " test queries; RD-based optimizes the metric of each "
               "column)\n\n";
  eval::TablePrinter table({"method", "k=1 Avg(Cor_a)=Avg(Cor_p)",
                            "k=3 Avg(Cor_a)", "k=3 Avg(Cor_p)"});
  table.AddRow({"term-independence estimator (baseline)",
                eval::Cell(base1.avg_absolute), eval::Cell(base3.avg_absolute),
                eval::Cell(base3.avg_partial)});
  table.AddRow({"RD-based, no probing", eval::Cell(rd1.avg_absolute),
                eval::Cell(rd3a.avg_absolute), eval::Cell(rd3p.avg_partial)});
  table.Print(std::cout);

  double improvement =
      base1.avg_absolute > 0.0
          ? (rd1.avg_absolute - base1.avg_absolute) / base1.avg_absolute * 100
          : 0.0;
  std::cout << "\nRD-based improvement over baseline at k=1: "
            << eval::Cell(improvement, 1)
            << "% (paper reports +38.2% on real hidden-web databases)\n";
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
