// Microbenchmarks for the search-engine substrate: posting-list iteration
// and skipping, conjunctive intersection, tf-idf scoring, index build.

#include <benchmark/benchmark.h>

#include "corpus/domain.h"
#include "corpus/synthetic_corpus.h"
#include "index/inverted_index.h"
#include "stats/random.h"
#include "text/analyzer.h"

namespace metaprobe {
namespace {

const index::InvertedIndex& SharedIndex() {
  static const index::InvertedIndex* kIndex = [] {
    text::Analyzer* analyzer = new text::Analyzer();
    corpus::CorpusGenerator* generator = new corpus::CorpusGenerator(
        corpus::HealthTopics(), {}, analyzer);
    corpus::DatabaseSpec spec;
    spec.name = "bench";
    spec.num_docs = 20000;
    spec.mixture = {{"clinical", 1.0}, {"oncology", 1.0}, {"cardiology", 1.0}};
    spec.seed = 99;
    return new index::InvertedIndex(
        std::move(generator->Generate(spec)->index));
  }();
  return *kIndex;
}

void BM_PostingListAppend(benchmark::State& state) {
  for (auto _ : state) {
    index::PostingList list;
    for (index::DocId d = 0; d < 10000; ++d) {
      benchmark::DoNotOptimize(list.Append(d * 3, (d % 7) + 1).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_PostingListAppend);

void BM_PostingListScan(benchmark::State& state) {
  index::PostingList list;
  for (index::DocId d = 0; d < 10000; ++d) {
    list.Append(d * 3, (d % 7) + 1).CheckOK();
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (auto it = list.begin(); it.Valid(); it.Next()) sum += it.doc();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_PostingListScan);

void BM_PostingListSkipTo(benchmark::State& state) {
  index::PostingList list;
  for (index::DocId d = 0; d < 100000; ++d) list.Append(d * 2, 1).CheckOK();
  stats::Rng rng(5);
  for (auto _ : state) {
    auto it = list.begin();
    index::DocId target = 0;
    for (int hop = 0; hop < 100; ++hop) {
      target += static_cast<index::DocId>(rng.UniformInt(std::uint64_t{4000}));
      it.SkipTo(target);
      if (!it.Valid()) break;
      benchmark::DoNotOptimize(it.doc());
    }
  }
}
BENCHMARK(BM_PostingListSkipTo);

void BM_CountConjunctive2(benchmark::State& state) {
  const index::InvertedIndex& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.CountConjunctive({"breast", "cancer"}));
  }
}
BENCHMARK(BM_CountConjunctive2);

void BM_CountConjunctive3(benchmark::State& state) {
  const index::InvertedIndex& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.CountConjunctive({"patient", "heart", "cancer"}));
  }
}
BENCHMARK(BM_CountConjunctive3);

void BM_TopKCosine(benchmark::State& state) {
  const index::InvertedIndex& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.TopKCosine({"breast", "cancer"},
                         static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_TopKCosine)->Arg(10)->Arg(100);

void BM_IndexBuild(benchmark::State& state) {
  text::Analyzer analyzer;
  corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
  corpus::DatabaseSpec spec;
  spec.name = "build-bench";
  spec.num_docs = static_cast<std::uint32_t>(state.range(0));
  spec.mixture = {{"oncology", 1.0}};
  spec.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(spec)->index.num_docs());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace metaprobe

BENCHMARK_MAIN();
