// Microbenchmarks for the search-engine substrate: posting-list iteration
// and skipping, conjunctive intersection, batched probing, tf-idf scoring,
// index build — plus the legacy v1 varint decoder as a reference point for
// the block-format numbers. `--json[=path]` writes google-benchmark JSON
// (default BENCH_index.json) for tools/validate_bench.py.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "core/hidden_web_database.h"
#include "core/query.h"
#include "core/relevancy_definition.h"
#include "corpus/domain.h"
#include "corpus/synthetic_corpus.h"
#include "index/inverted_index.h"
#include "index/simd_intersect.h"
#include "index/varint_codec.h"
#include "stats/random.h"
#include "text/analyzer.h"

namespace metaprobe {
namespace {

const index::InvertedIndex& SharedIndex() {
  static const index::InvertedIndex* kIndex = [] {
    text::Analyzer* analyzer = new text::Analyzer();
    corpus::CorpusGenerator* generator = new corpus::CorpusGenerator(
        corpus::HealthTopics(), {}, analyzer);
    corpus::DatabaseSpec spec;
    spec.name = "bench";
    spec.num_docs = 20000;
    spec.mixture = {{"clinical", 1.0}, {"oncology", 1.0}, {"cardiology", 1.0}};
    spec.seed = 99;
    return new index::InvertedIndex(
        std::move(generator->Generate(spec)->index));
  }();
  return *kIndex;
}

void BM_PostingListAppend(benchmark::State& state) {
  for (auto _ : state) {
    index::PostingList list;
    for (index::DocId d = 0; d < 10000; ++d) {
      benchmark::DoNotOptimize(list.Append(d * 3, (d % 7) + 1).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_PostingListAppend);

void BM_PostingListScan(benchmark::State& state) {
  index::PostingList list;
  for (index::DocId d = 0; d < 10000; ++d) {
    list.Append(d * 3, (d % 7) + 1).CheckOK();
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (auto it = list.begin(); it.Valid(); it.Next()) sum += it.doc();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_PostingListScan);

void BM_PostingListSkipTo(benchmark::State& state) {
  index::PostingList list;
  for (index::DocId d = 0; d < 100000; ++d) list.Append(d * 2, 1).CheckOK();
  stats::Rng rng(5);
  for (auto _ : state) {
    auto it = list.begin();
    index::DocId target = 0;
    for (int hop = 0; hop < 100; ++hop) {
      target += static_cast<index::DocId>(rng.UniformInt(std::uint64_t{4000}));
      it.SkipTo(target);
      if (!it.Valid()) break;
      benchmark::DoNotOptimize(it.doc());
    }
  }
}
BENCHMARK(BM_PostingListSkipTo);

void BM_PostingListScanV1(benchmark::State& state) {
  // The pre-block decoder: a varint-delta walk over the legacy payload,
  // exactly as the old Iterator executed it. Kept as the baseline the
  // BM_PostingListScan block numbers are compared against.
  std::vector<index::Posting> postings;
  postings.reserve(10000);
  for (index::DocId d = 0; d < 10000; ++d) {
    postings.push_back({d * 3, (d % 7) + 1});
  }
  const std::vector<std::uint8_t> bytes = index::v1::EncodePostings(postings);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    std::size_t offset = 0;
    index::DocId doc = 0;
    auto varint = [&]() {
      std::uint64_t value = 0;
      int shift = 0;
      for (;;) {
        std::uint8_t byte = bytes[offset++];
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) return value;
        shift += 7;
      }
    };
    for (std::size_t i = 0; i < postings.size(); ++i) {
      std::uint64_t delta = varint();
      benchmark::DoNotOptimize(varint());  // tf
      doc = (i % index::v1::kV1SkipInterval == 0)
                ? static_cast<index::DocId>(delta)
                : doc + static_cast<index::DocId>(delta);
      sum += doc;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_PostingListScanV1);

void BM_CountConjunctive2(benchmark::State& state) {
  const index::InvertedIndex& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.CountConjunctive({"breast", "cancer"}));
  }
}
BENCHMARK(BM_CountConjunctive2);

void BM_CountConjunctive3(benchmark::State& state) {
  const index::InvertedIndex& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.CountConjunctive({"patient", "heart", "cancer"}));
  }
}
BENCHMARK(BM_CountConjunctive3);

std::vector<std::vector<std::string>> BenchQueryTerms(std::size_t n) {
  const std::vector<std::vector<std::string>> seeds = {
      {"breast", "cancer"},          {"patient", "heart", "cancer"},
      {"heart", "patient"},          {"cancer", "patient"},
      {"breast", "patient"},         {"heart", "cancer"},
      {"breast", "cancer", "heart"}, {"cancer", "breast", "patient"},
  };
  std::vector<std::vector<std::string>> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queries.push_back(seeds[i % seeds.size()]);
  return queries;
}

void BM_CountConjunctiveBatch(benchmark::State& state) {
  const index::InvertedIndex& index = SharedIndex();
  const std::vector<std::vector<std::string>> queries =
      BenchQueryTerms(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.CountConjunctiveBatch(queries));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CountConjunctiveBatch)->Arg(16)->Arg(128);

void BM_CountConjunctiveBatchDupTerms(benchmark::State& state) {
  // Regression guard for per-call canonicalization: every query repeats
  // its terms, so the memo pass must fold the duplicates once instead of
  // each intersection re-sorting and re-deduping.
  const index::InvertedIndex& index = SharedIndex();
  std::vector<std::vector<std::string>> queries;
  for (std::vector<std::string>& terms :
       BenchQueryTerms(static_cast<std::size_t>(state.range(0)))) {
    std::vector<std::string> doubled = terms;
    doubled.insert(doubled.end(), terms.begin(), terms.end());
    queries.push_back(std::move(doubled));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.CountConjunctiveBatch(queries));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CountConjunctiveBatchDupTerms)->Arg(128);

void BM_CountConjunctiveBatchPooled(benchmark::State& state) {
  const index::InvertedIndex& index = SharedIndex();
  const std::vector<std::vector<std::string>> queries =
      BenchQueryTerms(static_cast<std::size_t>(state.range(0)));
  ThreadPool pool(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.CountConjunctiveBatch(queries, &pool));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CountConjunctiveBatchPooled)->Arg(128);

// Dense two-list intersection (multi-block lists on both sides) through
// the runtime-dispatched kernel, with a scalar-forced twin as the live
// baseline the SIMD speedup is measured against.
void RunConjunctiveDense(benchmark::State& state,
                         index::IntersectKernel kernel) {
  const index::InvertedIndex& index = SharedIndex();
  index::ForceIntersectKernelForTest(kernel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.CountConjunctive({"patient", "cancer"}));
  }
  index::ForceIntersectKernelForTest(index::IntersectKernel::kAvx2);
  state.SetLabel(index::IntersectKernelName(kernel));
}

void BM_ConjunctiveDense(benchmark::State& state) {
  RunConjunctiveDense(state, index::ActiveIntersectKernel());
}
BENCHMARK(BM_ConjunctiveDense);

void BM_ConjunctiveDenseScalar(benchmark::State& state) {
  RunConjunctiveDense(state, index::IntersectKernel::kScalar);
}
BENCHMARK(BM_ConjunctiveDenseScalar);

void BM_ProbeBatch(benchmark::State& state) {
  static const core::LocalDatabase* kDb = [] {
    text::Analyzer analyzer;
    corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
    corpus::DatabaseSpec spec;
    spec.name = "bench-db";
    spec.num_docs = 20000;
    spec.mixture = {{"clinical", 1.0}, {"oncology", 1.0}, {"cardiology", 1.0}};
    spec.seed = 99;
    return new core::LocalDatabase(
        spec.name, std::move(generator.Generate(spec)->index));
  }();
  std::vector<core::Query> queries;
  for (std::vector<std::string>& terms :
       BenchQueryTerms(static_cast<std::size_t>(state.range(0)))) {
    core::Query query;
    query.terms = std::move(terms);
    queries.push_back(std::move(query));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kDb->ProbeBatch(queries, core::RelevancyDefinition::kDocumentFrequency)
            .ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProbeBatch)->Arg(16)->Arg(128);

void BM_TopKCosine(benchmark::State& state) {
  const index::InvertedIndex& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.TopKCosine({"breast", "cancer"},
                         static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_TopKCosine)->Arg(10)->Arg(100);

// A high-df disjunctive query wide enough (7 terms) for threshold pruning
// to matter, against the exhaustive scorer on the same query — the live
// measure of what block-max WAND buys.
const std::vector<std::string>& ManyTermsQuery() {
  static const std::vector<std::string> kQuery = {
      "breast", "cancer", "patient", "heart", "tumor", "biopsi", "screen"};
  return kQuery;
}

void BM_TopKCosineManyTerms(benchmark::State& state) {
  const index::InvertedIndex& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TopKCosine(
        ManyTermsQuery(), static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_TopKCosineManyTerms)->Arg(10)->Arg(100);

void BM_TopKCosineExhaustive(benchmark::State& state) {
  const index::InvertedIndex& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TopKCosineExhaustive(
        ManyTermsQuery(), static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_TopKCosineExhaustive)->Arg(10)->Arg(100);

// Serialized index file of `num_docs` documents, generated and written
// once per size and reused across iterations — the open benchmarks time
// the read path, not the corpus build.
const std::string& BenchIndexFile(std::uint32_t num_docs) {
  static std::map<std::uint32_t, std::string>* kFiles =
      new std::map<std::uint32_t, std::string>();
  auto it = kFiles->find(num_docs);
  if (it != kFiles->end()) return it->second;
  text::Analyzer analyzer;
  corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
  corpus::DatabaseSpec spec;
  spec.name = "open-bench";
  spec.num_docs = num_docs;
  spec.mixture = {{"clinical", 1.0}, {"oncology", 1.0}, {"cardiology", 1.0}};
  spec.seed = 99;
  const index::InvertedIndex index =
      std::move(generator.Generate(spec)->index);
  std::string path =
      (std::filesystem::temp_directory_path() /
       ("metaprobe_bench_index_" + std::to_string(num_docs) + ".mpix"))
          .string();
  std::ofstream os(path, std::ios::binary);
  index.SaveTo(os).CheckOK();
  return kFiles->emplace(num_docs, std::move(path)).first->second;
}

void BM_IndexOpenEager(benchmark::State& state) {
  // The heap loader: every block of every posting list is decoded and the
  // scoring structures finalized before the first query can run.
  const std::string& path =
      BenchIndexFile(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    std::ifstream is(path, std::ios::binary);
    auto loaded = index::InvertedIndex::LoadFrom(is);
    benchmark::DoNotOptimize(loaded->num_docs());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexOpenEager)->Arg(2000)->Arg(20000);

void BM_IndexOpenMapped(benchmark::State& state) {
  // Cold open of the zero-copy reader: the file is mapped and every
  // envelope and directory entry validated, but block decode and scoring
  // wait for first touch — cost scales with the vocabulary, not the
  // postings, which is what the validate_bench.py ratio gate asserts
  // against BM_IndexOpenEager at the same corpus size.
  const std::string& path =
      BenchIndexFile(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto opened = index::InvertedIndex::OpenMapped(path);
    benchmark::DoNotOptimize(opened->num_docs());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexOpenMapped)->Arg(2000)->Arg(20000);

void BM_IndexBuild(benchmark::State& state) {
  text::Analyzer analyzer;
  corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
  corpus::DatabaseSpec spec;
  spec.name = "build-bench";
  spec.num_docs = static_cast<std::uint32_t>(state.range(0));
  spec.mixture = {{"oncology", 1.0}};
  spec.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(spec)->index.num_docs());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace metaprobe

int main(int argc, char** argv) {
  // Translate `--json[=path]` into google-benchmark's JSON output flags,
  // forwarding everything else untouched. `--assert-simd` logs the
  // intersection kernel the dispatcher resolved and fails when a build
  // with vector kernels compiled in silently fell back to scalar (the
  // CI perf-smoke guard against sanitizer flags eating the SIMD paths).
  std::string out_path = "BENCH_index.json";
  bool json = false;
  bool assert_simd = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0 &&
        (argv[i][6] == '\0' || argv[i][6] == '=')) {
      json = true;
      if (argv[i][6] == '=') out_path = argv[i] + 7;
      continue;
    }
    if (std::strcmp(argv[i], "--assert-simd") == 0) {
      assert_simd = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const metaprobe::index::IntersectKernel kernel =
      metaprobe::index::ActiveIntersectKernel();
  std::fprintf(stderr, "intersect kernel: %s\n",
               metaprobe::index::IntersectKernelName(kernel));
  if (assert_simd) {
#if defined(METAPROBE_INTERSECT_SSE2)
    if (kernel == metaprobe::index::IntersectKernel::kScalar) {
      std::fprintf(stderr,
                   "--assert-simd: SSE2 kernel compiled in but dispatch "
                   "resolved to scalar\n");
      return 1;
    }
#else
    std::fprintf(stderr, "--assert-simd: no vector kernel in this build\n");
#endif
  }
  std::string out_flag = "--benchmark_out=" + out_path;
  std::string format_flag = "--benchmark_out_format=json";
  if (json) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
