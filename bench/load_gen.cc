// Load generator for the always-on serving loop (MetasearchServer):
// replays the health testbed's Zipf query trace (corpus::QueryLogGenerator
// via eval::BuildHealthTestbed) against a running server and reports
// latency percentiles and saturation throughput from the server's own
// metric registry. Three scenarios, mirroring the serving acceptance
// criteria:
//
//   1. scaling    -- closed-loop clients against 1/2/4/8 workers,
//                    admission off. Hidden-web probes are remote
//                    round-trips, so each database is wrapped in a delay
//                    shim sleeping METAPROBE_LATENCY_US per probe
//                    (default 10000, a 10 ms round-trip); serving is
//                    latency-bound and qps
//                    tracks worker count even on one core. The RCU
//                    trained-state snapshot plus the sharded RD cache is
//                    what keeps the 8-worker row near-linear.
//   2. saturation -- open-loop arrivals at 2x the measured saturation qps.
//                    With admission on, the per-tenant token bucket sheds
//                    the excess (throttled, retry-after) and p99 plus the
//                    queue stay bounded; with admission off the queue
//                    grows without bound for the length of the run and
//                    tail latency follows it.
//   3. deadline   -- every request carries a budget smaller than one
//                    probe round-trip. Expiring deadlines cut probing and
//                    return the estimate-only answer with degraded=true;
//                    the run asserts zero errors.
//
// Percentiles are interpolated from the server registry's
// metaprobe_server_latency_seconds histogram (the same series a scrape
// would see), not from a client-side sample array.
//
// `--json[=path]` (default path BENCH_serving.json) additionally writes
// the per-scenario results for the perf trajectory; see EXPERIMENTS.md.
// Environment: METAPROBE_SCALE/TRAIN/TEST/SEED (testbed),
// METAPROBE_LATENCY_US, METAPROBE_REQUESTS, METAPROBE_CLIENTS,
// METAPROBE_SAT_WORKERS, METAPROBE_DEADLINE_US.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "core/metasearcher.h"
#include "eval/table.h"
#include "eval/testbed.h"
#include "obs/metric_registry.h"
#include "obs/percentile.h"
#include "serving/metasearch_server.h"

namespace metaprobe {
namespace {

/// Delay shim: forwards every call to the wrapped database, sleeping
/// `latency` per probe primitive to model the network round-trip a real
/// hidden-web database would cost.
class DelayedDatabase : public core::HiddenWebDatabase {
 public:
  explicit DelayedDatabase(std::shared_ptr<core::HiddenWebDatabase> inner)
      : inner_(std::move(inner)) {}

  void set_latency(std::chrono::microseconds latency) {
    latency_us_.store(latency.count(), std::memory_order_relaxed);
  }

  const std::string& name() const override { return inner_->name(); }
  std::uint32_t size() const override { return inner_->size(); }

  Result<std::uint64_t> CountMatches(const core::Query& query) const override {
    Sleep();
    return inner_->CountMatches(query);
  }

  Result<std::vector<core::SearchHit>> Search(
      const core::Query& query, std::size_t k) const override {
    Sleep();
    return inner_->Search(query, k);
  }

  std::uint64_t queries_served() const override {
    return inner_->queries_served();
  }

 private:
  void Sleep() const {
    auto us = latency_us_.load(std::memory_order_relaxed);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

  std::shared_ptr<core::HiddenWebDatabase> inner_;
  std::atomic<std::chrono::microseconds::rep> latency_us_{0};
};

struct LoopResult {
  double seconds = 0.0;
  double qps = 0.0;  ///< completed / seconds
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t degraded = 0;
  std::uint64_t errors = 0;
  std::size_t max_queue_depth = 0;
  serving::ServerStats stats;
};

// Percentiles come from the shared obs::Percentile interpolation (also
// behind the SLO monitor and /statusz), so load_gen's numbers line up with
// what a live scrape of the same server would report.
void FillPercentiles(const serving::MetasearchServer& server,
                     LoopResult* result) {
  const obs::Histogram* latency =
      server.metrics().GetHistogram("metaprobe_server_latency_seconds");
  result->p50_ms = obs::Percentile(*latency, 0.50) * 1e3;
  result->p95_ms = obs::Percentile(*latency, 0.95) * 1e3;
  result->p99_ms = obs::Percentile(*latency, 0.99) * 1e3;
}

/// Closed loop: `num_clients` synchronous clients, each submitting the
/// next trace query and blocking on its future before issuing another.
/// Measures the server's saturation throughput at the configured worker
/// count (in-flight load is capped by the client count, so the queue
/// never rejects).
LoopResult RunClosedLoop(const core::Metasearcher& searcher,
                         serving::MetasearchServerOptions options,
                         const std::vector<core::Query>& trace,
                         std::size_t num_requests, unsigned num_clients) {
  serving::MetasearchServer server(&searcher, options);
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> errors{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (unsigned c = 0; c < num_clients; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= num_requests) return;
        serving::ServeRequest request;
        request.query = trace[i % trace.size()];
        serving::Ticket ticket;
        for (;;) {
          ticket = server.Submit(request);
          if (ticket.accepted()) break;
          // A closed loop only trips backpressure transiently; retry.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        const serving::ServeResponse response = ticket.response.get();
        if (!response.status.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        } else if (response.degraded) {
          degraded.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  LoopResult result;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(num_requests) / result.seconds
                   : 0.0;
  result.degraded = degraded.load();
  result.errors = errors.load();
  FillPercentiles(server, &result);
  server.Shutdown();
  result.stats = server.stats();
  return result;
}

/// Open loop: one dispatcher submitting at a fixed arrival rate
/// regardless of completions (the "users do not wait" regime where an
/// unprotected server's queue grows without bound past saturation).
/// Queue depth is sampled after every submit; accepted requests are
/// drained to completion before the clock stops.
LoopResult RunOpenLoop(const core::Metasearcher& searcher,
                       serving::MetasearchServerOptions options,
                       const std::vector<core::Query>& trace,
                       std::size_t num_requests, double arrival_qps) {
  serving::MetasearchServer server(&searcher, options);
  std::vector<std::future<serving::ServeResponse>> futures;
  futures.reserve(num_requests);
  LoopResult result;
  const std::chrono::nanoseconds interarrival(
      static_cast<std::int64_t>(1e9 / arrival_qps));
  const auto start = std::chrono::steady_clock::now();
  auto next_arrival = start;
  for (std::size_t i = 0; i < num_requests; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += interarrival;
    serving::ServeRequest request;
    request.query = trace[i % trace.size()];
    serving::Ticket ticket = server.Submit(request);
    if (ticket.accepted()) futures.push_back(std::move(ticket.response));
    result.max_queue_depth =
        std::max(result.max_queue_depth, server.queue_depth());
  }
  for (auto& future : futures) {
    const serving::ServeResponse response = future.get();
    if (!response.status.ok()) {
      ++result.errors;
    } else if (response.degraded) {
      ++result.degraded;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(futures.size()) / result.seconds
                   : 0.0;
  FillPercentiles(server, &result);
  server.Shutdown();
  result.stats = server.stats();
  return result;
}

int Run(const char* json_path) {
  eval::TestbedOptions testbed_options;
  testbed_options.scale =
      static_cast<std::uint32_t>(GetEnvLong("METAPROBE_SCALE", 1));
  testbed_options.train_queries_per_term_count =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TRAIN", 150));
  testbed_options.test_queries_per_term_count =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TEST", 60));
  testbed_options.seed =
      static_cast<std::uint64_t>(GetEnvLong("METAPROBE_SEED", 42));
  const std::chrono::microseconds latency(
      GetEnvLong("METAPROBE_LATENCY_US", 10000));
  const auto num_requests =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_REQUESTS", 240));
  const auto num_clients =
      static_cast<unsigned>(GetEnvLong("METAPROBE_CLIENTS", 16));
  const auto sat_workers =
      static_cast<int>(GetEnvLong("METAPROBE_SAT_WORKERS", 4));
  const std::chrono::microseconds deadline(
      GetEnvLong("METAPROBE_DEADLINE_US", 3000));

  std::cout << "building health testbed..." << std::endl;
  auto testbed = eval::BuildHealthTestbed(testbed_options);
  testbed.status().CheckOK();
  const std::vector<core::Query>& trace = testbed->test_queries;

  std::vector<std::shared_ptr<DelayedDatabase>> delayed;
  for (const auto& db : testbed->databases) {
    delayed.push_back(std::make_shared<DelayedDatabase>(db));
  }
  core::Metasearcher searcher;
  for (std::size_t i = 0; i < delayed.size(); ++i) {
    searcher.AddDatabase(delayed[i], testbed->summaries[i]).CheckOK();
  }
  // Offline training is local; only live serving pays the network.
  std::cout << "training..." << std::endl;
  searcher.Train(testbed->train_queries).CheckOK();
  for (auto& db : delayed) db->set_latency(latency);

  std::cout << "replaying " << trace.size() << " trace queries, "
            << num_requests << " requests per run, probe latency "
            << latency.count() << " us\n\n";

  std::ostringstream json;
  json << "{\n  \"context\": {\"scale\": " << testbed_options.scale
       << ", \"train\": " << testbed_options.train_queries_per_term_count
       << ", \"test\": " << testbed_options.test_queries_per_term_count
       << ", \"latency_us\": " << latency.count()
       << ", \"requests\": " << num_requests
       << ", \"clients\": " << num_clients
       << ", \"sat_workers\": " << sat_workers
       << ", \"deadline_us\": " << deadline.count() << "},\n  \"benchmarks\": [";
  bool first_json_row = true;

  // --- Scenario 1: closed-loop worker scaling -----------------------------
  serving::MetasearchServerOptions base_options;
  base_options.admission_enabled = false;
  base_options.max_queue_depth = num_clients * 2;
  base_options.default_threshold = 0.99;

  eval::TablePrinter scaling_table(
      {"workers", "seconds", "qps", "speedup", "p50ms", "p95ms", "p99ms"});
  double base_qps = 0.0;
  double saturation_qps = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    serving::MetasearchServerOptions options = base_options;
    options.num_workers = workers;
    LoopResult run =
        RunClosedLoop(searcher, options, trace, num_requests, num_clients);
    if (workers == 1) base_qps = run.qps;
    if (workers == sat_workers) saturation_qps = run.qps;
    const double speedup = base_qps > 0.0 ? run.qps / base_qps : 0.0;
    scaling_table.AddRow({eval::Cell(static_cast<std::size_t>(workers)),
                          eval::Cell(run.seconds, 3), eval::Cell(run.qps, 1),
                          eval::Cell(speedup, 2), eval::Cell(run.p50_ms, 2),
                          eval::Cell(run.p95_ms, 2),
                          eval::Cell(run.p99_ms, 2)});
    json << (first_json_row ? "" : ",")
         << "\n    {\"name\": \"serving/scaling/workers:" << workers
         << "\", \"seconds\": " << run.seconds << ", \"qps\": " << run.qps
         << ", \"speedup\": " << speedup << ", \"p50_ms\": " << run.p50_ms
         << ", \"p95_ms\": " << run.p95_ms << ", \"p99_ms\": " << run.p99_ms
         << ", \"errors\": " << run.errors << "}";
    first_json_row = false;
  }
  std::cout << "=== closed-loop worker scaling (admission off) ===\n";
  scaling_table.Print(std::cout);
  std::cout << "\n";

  // --- Scenario 2: open-loop at 2x saturation, admission on vs off --------
  const double arrival_qps = std::max(1.0, 2.0 * saturation_qps);
  eval::TablePrinter sat_table({"admission", "accepted", "throttled", "p50ms",
                                "p99ms", "max-queue", "errors"});
  for (int admission = 1; admission >= 0; --admission) {
    serving::MetasearchServerOptions options;
    options.num_workers = sat_workers;
    options.default_threshold = 0.99;
    options.admission_enabled = admission == 1;
    if (admission == 1) {
      // Budget the tenant at the measured capacity; the bucket sheds the
      // structural 2x excess while the bounded queue absorbs bursts.
      options.tenant_rate.refill_per_second = saturation_qps;
      options.tenant_rate.burst = 16.0;
      options.max_queue_depth = 64;
    } else {
      // The control arm: no admission, queue effectively unbounded, so
      // the backlog (and with it tail latency) grows for the whole run.
      options.max_queue_depth = num_requests + num_clients;
    }
    LoopResult run =
        RunOpenLoop(searcher, options, trace, num_requests, arrival_qps);
    sat_table.AddRow(
        {admission ? "on" : "off",
         eval::Cell(static_cast<std::size_t>(run.stats.accepted)),
         eval::Cell(static_cast<std::size_t>(run.stats.throttled)),
         eval::Cell(run.p50_ms, 2), eval::Cell(run.p99_ms, 2),
         eval::Cell(run.max_queue_depth),
         eval::Cell(static_cast<std::size_t>(run.errors))});
    json << ",\n    {\"name\": \"serving/saturation/admission:"
         << (admission ? "on" : "off") << "\", \"seconds\": " << run.seconds
         << ", \"qps\": " << run.qps << ", \"arrival_qps\": " << arrival_qps
         << ", \"accepted\": " << run.stats.accepted
         << ", \"throttled\": " << run.stats.throttled
         << ", \"p50_ms\": " << run.p50_ms << ", \"p99_ms\": " << run.p99_ms
         << ", \"max_queue_depth\": " << run.max_queue_depth
         << ", \"errors\": " << run.errors << "}";
  }
  std::cout << "=== open-loop at 2x saturation (" << sat_workers
            << " workers, arrival " << arrival_qps << " qps) ===\n";
  sat_table.Print(std::cout);
  std::cout << "\n";

  // --- Scenario 3: deadline-cut serving, degraded never errors ------------
  {
    serving::MetasearchServerOptions options;
    options.num_workers = sat_workers;
    options.admission_enabled = false;
    options.max_queue_depth = num_clients * 2;
    // Threshold high enough that every query wants to probe; the budget is
    // on the order of one probe round-trip, so most runs are cut.
    options.default_threshold = 0.9999;
    options.default_deadline_ns =
        static_cast<std::uint64_t>(deadline.count()) * 1000;
    LoopResult run =
        RunClosedLoop(searcher, options, trace, num_requests, num_clients);
    const std::uint64_t ok = run.stats.completed_ok;
    eval::TablePrinter deadline_table(
        {"requests", "ok", "degraded", "errors", "p50ms", "p99ms"});
    deadline_table.AddRow({eval::Cell(num_requests),
                           eval::Cell(static_cast<std::size_t>(ok)),
                           eval::Cell(static_cast<std::size_t>(run.degraded)),
                           eval::Cell(static_cast<std::size_t>(run.errors)),
                           eval::Cell(run.p50_ms, 2),
                           eval::Cell(run.p99_ms, 2)});
    json << ",\n    {\"name\": \"serving/deadline\", \"seconds\": "
         << run.seconds << ", \"qps\": " << run.qps
         << ", \"completed_ok\": " << ok << ", \"degraded\": " << run.degraded
         << ", \"errors\": " << run.errors << ", \"p50_ms\": " << run.p50_ms
         << ", \"p99_ms\": " << run.p99_ms << "}";
    std::cout << "=== deadline " << deadline.count()
              << " us (probe latency " << latency.count() << " us) ===\n";
    deadline_table.Print(std::cout);
    if (run.errors != 0) {
      std::cerr << "FAIL: deadline-expired requests must degrade, not "
                   "error (got "
                << run.errors << " errors)\n";
      return 1;
    }
  }

  std::cout << "\n(speedup = qps relative to 1 worker; latency-bound probes\n"
               " make this track worker count even on a single core)\n";
  if (json_path != nullptr) {
    json << "\n  ]\n}\n";
    std::ofstream out(json_path);
    out << json.str();
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0) {
      json_path = argv[i][6] == '=' ? argv[i] + 7 : "BENCH_serving.json";
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return 1;
    }
  }
  return metaprobe::Run(json_path);
}
