// Ablation (extension of the paper): summary fidelity. The paper assumes
// summaries collected by query-based sampling (its reference [8]); this
// sweep degrades the summaries — term statistics from ever-smaller document
// samples — and measures how the baseline and the RD-based method cope.
//
// Expected: the baseline decays as summaries get noisier; the RD-based
// method absorbs part of the damage because the extra noise is *learned
// into* the error distributions during training.

#include <iostream>

#include "eval/experiment.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

int Run() {
  eval::BenchScale scale = eval::ReadBenchScale();

  std::cout << "\n=== Ablation: summary fidelity (document sample rate) "
               "===\n\n";
  eval::TablePrinter table({"summary sample rate", "baseline k=1 Avg(Cor_a)",
                            "RD-based k=1 Avg(Cor_a)",
                            "RD-based k=3 Avg(Cor_p)"});
  for (double rate : {1.0, 0.5, 0.2, 0.05}) {
    eval::TestbedOptions options = eval::ToTestbedOptions(scale);
    options.summary_sample_rate = rate;
    auto world = eval::BuildTrainedHealthWorld(options);
    world.status().CheckOK();
    eval::CorrectnessScores base = eval::EvaluateBaseline(*world, 1);
    eval::CorrectnessScores rd1 =
        eval::EvaluateRdBased(*world, 1, core::CorrectnessMetric::kAbsolute);
    eval::CorrectnessScores rd3 =
        eval::EvaluateRdBased(*world, 3, core::CorrectnessMetric::kPartial);
    table.AddRow({eval::Cell(rate, 2), eval::Cell(base.avg_absolute),
                  eval::Cell(rd1.avg_absolute), eval::Cell(rd3.avg_partial)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
