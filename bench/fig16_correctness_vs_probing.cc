// Reproduces Figure 16 (ICDE 2004): average correctness of the answer APro
// reports after 0, 1, 2, ... probes with the greedy usefulness policy,
// against the flat term-independence baseline, for
//   (a) k = 1 (absolute = partial),
//   (b) k = 3 under absolute correctness,
//   (c) k = 3 under partial correctness.
//
// Paper shape: the zero-probe point equals the RD-based method; the curve
// climbs past 0.8 within about two probes while the baseline stays flat.

#include <iostream>

#include "core/probing.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

void PrintPanel(const char* title, double baseline,
                const std::vector<eval::CorrectnessScores>& trace,
                bool absolute) {
  std::cout << "\n--- " << title << " ---\n";
  eval::TablePrinter table({"# of probings", "APro",
                            "term-independence baseline"});
  for (std::size_t p = 0; p < trace.size(); ++p) {
    double value = absolute ? trace[p].avg_absolute : trace[p].avg_partial;
    table.AddRow({eval::Cell(p), eval::Cell(value), eval::Cell(baseline)});
  }
  table.Print(std::cout);
}

int Run() {
  eval::BenchScale scale = eval::ReadBenchScale();
  auto world = eval::BuildTrainedHealthWorld(eval::ToTestbedOptions(scale));
  world.status().CheckOK();
  const int kMaxProbes = 5;

  core::StoppingProbabilityPolicy policy;
  eval::CorrectnessScores base1 = eval::EvaluateBaseline(*world, 1);
  eval::CorrectnessScores base3 = eval::EvaluateBaseline(*world, 3);

  std::cout << "\n=== Figure 16: correctness improvement by adaptive "
               "probing ===\n"
            << "(stopping-probability policy, a refinement of the paper's greedy, first "
            << std::min<std::size_t>(scale.query_limit,
                                     world->num_test_queries())
            << " test queries)\n";

  auto trace1 = eval::EvaluateProbingTrace(
      *world, 1, core::CorrectnessMetric::kAbsolute, &policy, kMaxProbes,
      scale.query_limit);
  PrintPanel("(a) k=1, average correctness", base1.avg_absolute, trace1,
             /*absolute=*/true);

  auto trace3a = eval::EvaluateProbingTrace(
      *world, 3, core::CorrectnessMetric::kAbsolute, &policy, kMaxProbes,
      scale.query_limit);
  PrintPanel("(b) k=3, average absolute correctness", base3.avg_absolute,
             trace3a, /*absolute=*/true);

  auto trace3p = eval::EvaluateProbingTrace(
      *world, 3, core::CorrectnessMetric::kPartial, &policy, kMaxProbes,
      scale.query_limit);
  PrintPanel("(c) k=3, average partial correctness", base3.avg_partial,
             trace3p, /*absolute=*/false);
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
