// Extension experiment: how does the paper's probabilistic approach stack
// up against the classic summary-based selectors of its era?
//
//   * GlOSS / term-independence (Gravano et al.) — the paper's baseline;
//   * CORI (Callan et al., SIGIR'95) — the strongest classic comparator;
//   * RD-based (paper, no probing);
//   * RD-based + adaptive probing with a budget of 2.
//
// Expected: CORI beats raw term independence (its df-normalized beliefs are
// insensitive to the mis-advertised sizes) but cannot exploit learned error
// behaviour; the probabilistic methods win, and probing extends the lead.

#include <iostream>

#include "core/correctness.h"
#include "core/probing.h"
#include "core/related_selectors.h"
#include "core/selection.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

int Run() {
  eval::BenchScale scale = eval::ReadBenchScale();
  auto world = eval::BuildTrainedHealthWorld(eval::ToTestbedOptions(scale));
  world.status().CheckOK();
  const std::size_t n = world->num_test_queries();

  std::vector<const core::StatSummary*> summaries;
  for (std::size_t i = 0; i < world->testbed.num_databases(); ++i) {
    summaries.push_back(&world->testbed.summaries[i]);
  }
  core::CoriSelector cori(summaries);
  core::StoppingProbabilityPolicy policy;

  double gloss1 = 0.0, cori1 = 0.0, rd1 = 0.0, probed1 = 0.0;
  double gloss3 = 0.0, cori3 = 0.0, rd3 = 0.0, probed3 = 0.0;
  for (std::size_t q = 0; q < n; ++q) {
    const core::Query& query = world->testbed.test_queries[q];
    std::vector<std::size_t> top1 = world->golden->TopK(q, 1);
    std::vector<std::size_t> top3 = world->golden->TopK(q, 3);

    std::vector<double> estimates = world->metasearcher->EstimateAll(query);
    gloss1 += core::AbsoluteCorrectness(
        core::SelectByEstimate(estimates, 1).databases, top1);
    gloss3 += core::PartialCorrectness(
        core::SelectByEstimate(estimates, 3).databases, top3);

    std::vector<double> cori_scores = cori.Score(query);
    cori1 += core::AbsoluteCorrectness(
        core::SelectByEstimate(cori_scores, 1).databases, top1);
    cori3 += core::PartialCorrectness(
        core::SelectByEstimate(cori_scores, 3).databases, top3);

    core::TopKModel model =
        world->metasearcher->BuildModel(query).ValueOrDie();
    rd1 += core::AbsoluteCorrectness(
        core::SelectByRd(model, 1, core::CorrectnessMetric::kAbsolute)
            .databases,
        top1);
    rd3 += core::PartialCorrectness(
        core::SelectByRd(model, 3, core::CorrectnessMetric::kPartial)
            .databases,
        top3);

    core::ProbeFn probe = [&](std::size_t db) -> Result<double> {
      return world->golden->Relevancy(q, db);
    };
    for (int k : {1, 3}) {
      core::TopKModel budget_model =
          world->metasearcher->BuildModel(query).ValueOrDie();
      core::AProOptions options;
      options.k = k;
      options.threshold = 1.0;
      options.max_probes = 2;
      options.metric = k == 1 ? core::CorrectnessMetric::kAbsolute
                              : core::CorrectnessMetric::kPartial;
      core::AdaptiveProber prober(&policy, options);
      core::AProResult result =
          prober.Run(&budget_model, probe).ValueOrDie();
      if (k == 1) {
        probed1 += core::AbsoluteCorrectness(result.selected, top1);
      } else {
        probed3 += core::PartialCorrectness(result.selected, top3);
      }
    }
  }

  std::cout << "\n=== Extension: classic selectors vs the probabilistic "
               "approach ===\n(" << n << " test queries)\n\n";
  eval::TablePrinter table(
      {"method", "k=1 Avg(Cor_a)", "k=3 Avg(Cor_p)"});
  double dn = static_cast<double>(n);
  table.AddRow({"GlOSS / term-independence (paper baseline)",
                eval::Cell(gloss1 / dn), eval::Cell(gloss3 / dn)});
  table.AddRow({"CORI (Callan et al.)", eval::Cell(cori1 / dn),
                eval::Cell(cori3 / dn)});
  table.AddRow({"RD-based, no probing (paper)", eval::Cell(rd1 / dn),
                eval::Cell(rd3 / dn)});
  table.AddRow({"RD-based + 2 probes (paper)", eval::Cell(probed1 / dn),
                eval::Cell(probed3 / dn)});
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
