// Ablation: the best-DB^k search under the absolute metric enumerates
// k-subsets of the top (k + width) databases by membership probability
// instead of all C(n, k) subsets. How often does the restriction miss the
// true optimum, and what does the full search cost?
//
// Expected: width 4 (the default) matches the exhaustive optimum on
// essentially every query while evaluating ~35 instead of 1140 subsets at
// k = 3.

#include <chrono>
#include <iostream>

#include "eval/experiment.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

int Run() {
  eval::BenchScale scale = eval::ReadBenchScale();
  auto world = eval::BuildTrainedHealthWorld(eval::ToTestbedOptions(scale));
  world.status().CheckOK();
  const int k = 3;
  const std::size_t limit =
      std::min<std::size_t>(scale.query_limit, world->num_test_queries());

  // Exhaustive reference per query.
  std::vector<core::TopKModel> models;
  std::vector<double> exhaustive_value;
  for (std::size_t q = 0; q < limit; ++q) {
    models.push_back(world->metasearcher
                         ->BuildModel(world->testbed.test_queries[q])
                         .ValueOrDie());
    exhaustive_value.push_back(
        models.back()
            .FindBestSet(k, core::CorrectnessMetric::kAbsolute, 100)
            .expected_correctness);
  }

  std::cout << "\n=== Ablation: best-set search width (k=3, absolute) ===\n"
            << "(" << limit << " test queries; exhaustive = all C(20,3) = "
            << 1140 << " subsets)\n\n";
  eval::TablePrinter table({"search width", "queries matching exhaustive",
                            "max E[Cor] gap", "time per query (us)"});
  for (int width : {0, 1, 2, 4, 8, 17}) {
    std::size_t matches = 0;
    double max_gap = 0.0;
    auto start = std::chrono::steady_clock::now();
    for (std::size_t q = 0; q < limit; ++q) {
      core::TopKModel::BestSet best = models[q].FindBestSet(
          k, core::CorrectnessMetric::kAbsolute, width);
      double gap = exhaustive_value[q] - best.expected_correctness;
      if (gap < 1e-9) ++matches;
      max_gap = std::max(max_gap, gap);
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    std::string label = width >= 17 ? "exhaustive" : std::to_string(width);
    table.AddRow({label,
                  eval::Cell(matches) + "/" + eval::Cell(limit),
                  eval::Cell(max_gap, 6),
                  eval::Cell(static_cast<double>(elapsed) /
                                 static_cast<double>(limit),
                             1)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
