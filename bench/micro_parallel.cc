// Throughput of the concurrent serving engine: queries/second of
// Metasearcher::SelectBatch over a worker pool of 1/2/4/8 threads, against
// the Section 6 health testbed with simulated per-probe network latency.
//
// Hidden-web probes are remote round-trips, so serving is latency-bound,
// not compute-bound: each mediated database is wrapped in a delay shim that
// sleeps METAPROBE_LATENCY_US microseconds per probe (default 20000, a
// 20 ms WAN round-trip; set 0 to measure pure-compute scaling, which needs
// as many physical cores as workers to show speedup). Training runs with
// the shims dialled to zero so only serving pays the simulated network.
//
// Expected shape: near-linear qps scaling while workers <= concurrent
// queries, 2x or better at 4 workers vs 1. A second table reports the same
// run with the RD cache enabled, plus its hit rate.

// `--json[=path]` additionally writes the per-configuration results as JSON
// (default path BENCH_parallel.json) for the machine-readable perf
// trajectory; see EXPERIMENTS.md.

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/metasearcher.h"
#include "eval/table.h"
#include "eval/testbed.h"

namespace metaprobe {
namespace {

/// Delay shim: forwards every call to the wrapped database, sleeping
/// `latency` per probe primitive to model the network round-trip a real
/// hidden-web database would cost.
class DelayedDatabase : public core::HiddenWebDatabase {
 public:
  explicit DelayedDatabase(std::shared_ptr<core::HiddenWebDatabase> inner)
      : inner_(std::move(inner)) {}

  void set_latency(std::chrono::microseconds latency) {
    latency_us_.store(latency.count(), std::memory_order_relaxed);
  }

  const std::string& name() const override { return inner_->name(); }
  std::uint32_t size() const override { return inner_->size(); }

  Result<std::uint64_t> CountMatches(const core::Query& query) const override {
    Sleep();
    return inner_->CountMatches(query);
  }

  Result<std::vector<core::SearchHit>> Search(
      const core::Query& query, std::size_t k) const override {
    Sleep();
    return inner_->Search(query, k);
  }

  std::uint64_t queries_served() const override {
    return inner_->queries_served();
  }

 private:
  void Sleep() const {
    auto us = latency_us_.load(std::memory_order_relaxed);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

  std::shared_ptr<core::HiddenWebDatabase> inner_;
  std::atomic<std::chrono::microseconds::rep> latency_us_{0};
};

struct RunStats {
  double seconds = 0.0;
  double qps = 0.0;
  core::ServingStats serving;
};

RunStats TimeBatch(const core::Metasearcher& searcher,
                   const std::vector<core::Query>& queries,
                   unsigned num_threads, int k, double threshold) {
  ThreadPool pool(num_threads);
  auto start = std::chrono::steady_clock::now();
  auto reports = searcher.SelectBatch(queries, k, threshold, &pool);
  auto elapsed = std::chrono::steady_clock::now() - start;
  reports.status().CheckOK();
  RunStats stats;
  stats.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  stats.qps = stats.seconds > 0.0
                  ? static_cast<double>(queries.size()) / stats.seconds
                  : 0.0;
  stats.serving = searcher.stats();
  return stats;
}

int Run(const char* json_path) {
  eval::TestbedOptions testbed_options;
  testbed_options.scale =
      static_cast<std::uint32_t>(GetEnvLong("METAPROBE_SCALE", 1));
  testbed_options.train_queries_per_term_count =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TRAIN", 150));
  testbed_options.test_queries_per_term_count =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TEST", 60));
  testbed_options.seed =
      static_cast<std::uint64_t>(GetEnvLong("METAPROBE_SEED", 42));
  const std::chrono::microseconds latency(
      GetEnvLong("METAPROBE_LATENCY_US", 20000));
  const int k = static_cast<int>(GetEnvLong("METAPROBE_K", 3));
  // High threshold so every query actually probes; otherwise the run
  // measures model evaluation, not dispatch.
  const double threshold = 0.99;

  std::cout << "building health testbed..." << std::endl;
  auto testbed = eval::BuildHealthTestbed(testbed_options);
  testbed.status().CheckOK();
  const std::vector<core::Query>& queries = testbed->test_queries;

  std::vector<std::shared_ptr<DelayedDatabase>> delayed;
  for (const auto& db : testbed->databases) {
    delayed.push_back(std::make_shared<DelayedDatabase>(db));
  }

  std::cout << "serving " << queries.size() << " queries, probe latency "
            << latency.count() << " us, threshold " << threshold << "\n\n";

  std::ostringstream json;
  json << "{\n  \"context\": {\"scale\": " << testbed_options.scale
       << ", \"train\": " << testbed_options.train_queries_per_term_count
       << ", \"test\": " << testbed_options.test_queries_per_term_count
       << ", \"latency_us\": " << latency.count() << ", \"k\": " << k
       << ", \"threshold\": " << threshold << "},\n  \"benchmarks\": [";
  bool first_json_row = true;

  const std::vector<unsigned> worker_counts{1, 2, 4, 8};
  for (int cached = 0; cached < 2; ++cached) {
    // Same serving setup twice, differing only in the RD cache; training
    // probes pay the shim latency too, so parallelize the learner.
    core::MetasearcherOptions options;
    options.enable_rd_cache = cached == 1;
    auto server = std::make_unique<core::Metasearcher>(options);
    for (std::size_t i = 0; i < delayed.size(); ++i) {
      server->AddDatabase(delayed[i], testbed->summaries[i]).CheckOK();
    }
    // Offline training is local; only live serving pays the network.
    for (auto& db : delayed) db->set_latency(std::chrono::microseconds(0));
    std::cout << "training (RD cache " << (cached ? "on" : "off") << ")..."
              << std::endl;
    server->Train(testbed->train_queries).CheckOK();
    for (auto& db : delayed) db->set_latency(latency);

    eval::TablePrinter table(
        {"workers", "seconds", "qps", "speedup", "probes", "cache-hit%"});
    double base_qps = 0.0;
    for (unsigned workers : worker_counts) {
      server->ResetStats();
      RunStats run = TimeBatch(*server, queries, workers, k, threshold);
      if (workers == 1) base_qps = run.qps;
      table.AddRow({eval::Cell(static_cast<std::size_t>(workers)),
                    eval::Cell(run.seconds, 3), eval::Cell(run.qps, 1),
                    eval::Cell(base_qps > 0.0 ? run.qps / base_qps : 0.0, 2),
                    eval::Cell(static_cast<std::size_t>(
                        run.serving.probes_issued)),
                    eval::Cell(100.0 * run.serving.rd_cache_hit_rate(), 1)});
      json << (first_json_row ? "" : ",") << "\n    {\"name\": "
           << "\"SelectBatch/cache_" << (cached ? "on" : "off")
           << "/workers:" << workers << "\", \"seconds\": " << run.seconds
           << ", \"qps\": " << run.qps
           << ", \"speedup\": " << (base_qps > 0.0 ? run.qps / base_qps : 0.0)
           << ", \"probes\": " << run.serving.probes_issued
           << ", \"rd_cache_hit_pct\": "
           << 100.0 * run.serving.rd_cache_hit_rate() << "}";
      first_json_row = false;
    }
    std::cout << "\n=== SelectBatch throughput (RD cache "
              << (cached ? "on" : "off") << ") ===\n";
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(speedup = qps relative to 1 worker; with latency-bound\n"
               " probes this tracks worker count even on a single core)\n";
  if (json_path != nullptr) {
    json << "\n  ]\n}\n";
    std::ofstream out(json_path);
    out << json.str();
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0) {
      json_path = argv[i][6] == '=' ? argv[i] + 7 : "BENCH_parallel.json";
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return 1;
    }
  }
  return metaprobe::Run(json_path);
}
