// Throughput of the concurrent serving engine: queries/second of
// Metasearcher::SelectBatch over a worker pool of 1/2/4/8 threads, against
// the Section 6 health testbed with simulated per-probe network latency.
//
// Hidden-web probes are remote round-trips, so serving is latency-bound,
// not compute-bound: each mediated database is wrapped in a delay shim that
// sleeps METAPROBE_LATENCY_US microseconds per probe (default 20000, a
// 20 ms WAN round-trip; set 0 to measure pure-compute scaling, which needs
// as many physical cores as workers to show speedup). Training runs with
// the shims dialled to zero so only serving pays the simulated network.
//
// Expected shape: near-linear qps scaling while workers <= concurrent
// queries, 2x or better at 4 workers vs 1. A second table reports the same
// run with the RD cache enabled, plus its hit rate.

// `--json[=path]` additionally writes the per-configuration results as JSON
// (default path BENCH_parallel.json) for the machine-readable perf
// trajectory; see EXPERIMENTS.md.
//
// `--obs-json[=path]` (default path BENCH_obs.json) runs the observability
// overhead comparison instead: the same serving batch with (a) the metric
// registry's histogram path disabled, (b) metrics on, (c) metrics + query
// tracer, at zero shim latency so the run is compute-bound and the
// instrumentation cost is not hidden behind simulated network sleeps. Also
// times the individual metric hooks in a tight loop (ns/op).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/metasearcher.h"
#include "eval/table.h"
#include "eval/testbed.h"
#include "obs/health.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace metaprobe {
namespace {

/// Delay shim: forwards every call to the wrapped database, sleeping
/// `latency` per probe primitive to model the network round-trip a real
/// hidden-web database would cost.
class DelayedDatabase : public core::HiddenWebDatabase {
 public:
  explicit DelayedDatabase(std::shared_ptr<core::HiddenWebDatabase> inner)
      : inner_(std::move(inner)) {}

  void set_latency(std::chrono::microseconds latency) {
    latency_us_.store(latency.count(), std::memory_order_relaxed);
  }

  const std::string& name() const override { return inner_->name(); }
  std::uint32_t size() const override { return inner_->size(); }

  Result<std::uint64_t> CountMatches(const core::Query& query) const override {
    Sleep();
    return inner_->CountMatches(query);
  }

  Result<std::vector<core::SearchHit>> Search(
      const core::Query& query, std::size_t k) const override {
    Sleep();
    return inner_->Search(query, k);
  }

  std::uint64_t queries_served() const override {
    return inner_->queries_served();
  }

 private:
  void Sleep() const {
    auto us = latency_us_.load(std::memory_order_relaxed);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

  std::shared_ptr<core::HiddenWebDatabase> inner_;
  std::atomic<std::chrono::microseconds::rep> latency_us_{0};
};

struct RunStats {
  double seconds = 0.0;
  double qps = 0.0;
  core::ServingStats serving;
};

RunStats TimeBatch(const core::Metasearcher& searcher,
                   const std::vector<core::Query>& queries,
                   unsigned num_threads, int k, double threshold) {
  ThreadPool pool(num_threads);
  auto start = std::chrono::steady_clock::now();
  auto reports = searcher.SelectBatch(queries, k, threshold, &pool);
  auto elapsed = std::chrono::steady_clock::now() - start;
  reports.status().CheckOK();
  RunStats stats;
  stats.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  stats.qps = stats.seconds > 0.0
                  ? static_cast<double>(queries.size()) / stats.seconds
                  : 0.0;
  stats.serving = searcher.stats();
  return stats;
}

// Seconds of wall time for `iterations` calls of `op` (tight loop).
template <typename Op>
double TimeTightLoop(std::size_t iterations, Op&& op) {
  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) op(i);
  auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
      .count();
}

// Observability overhead: identical compute-bound serving runs, differing
// only in how much instrumentation is live. Overhead is reported relative
// to the disabled path (histograms gated off, no tracer) — the
// configuration a latency-sensitive deployment would run.
int RunObsOverhead(const char* json_path) {
  eval::TestbedOptions testbed_options;
  testbed_options.scale =
      static_cast<std::uint32_t>(GetEnvLong("METAPROBE_SCALE", 1));
  testbed_options.train_queries_per_term_count =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TRAIN", 150));
  testbed_options.test_queries_per_term_count =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TEST", 60));
  testbed_options.seed =
      static_cast<std::uint64_t>(GetEnvLong("METAPROBE_SEED", 42));
  const int k = static_cast<int>(GetEnvLong("METAPROBE_K", 3));
  const int repeats = static_cast<int>(GetEnvLong("METAPROBE_REPEATS", 3));
  const double threshold = 0.99;

  std::cout << "building health testbed..." << std::endl;
  auto testbed = eval::BuildHealthTestbed(testbed_options);
  testbed.status().CheckOK();
  const std::vector<core::Query>& queries = testbed->test_queries;

  core::Metasearcher server;
  for (std::size_t i = 0; i < testbed->databases.size(); ++i) {
    server.AddDatabase(testbed->databases[i], testbed->summaries[i])
        .CheckOK();
  }
  std::cout << "training..." << std::endl;
  server.Train(testbed->train_queries).CheckOK();

  obs::QueryTracer tracer;
  std::vector<std::string> db_names;
  for (const auto& db : testbed->databases) db_names.push_back(db->name());
  obs::DbHealthTracker health_tracker(db_names);
  struct Config {
    const char* name;
    bool metrics;
    bool health;
    bool tracing;
  };
  // "health" isolates the tracker's probe-path cost on top of metrics; its
  // overhead_vs_metrics_pct is the CI-gated <1% budget.
  const std::vector<Config> configs{{"disabled", false, false, false},
                                    {"metrics", true, false, false},
                                    {"health", true, true, false},
                                    {"tracing", true, false, true}};

  std::ostringstream json;
  json << "{\n  \"context\": {\"scale\": " << testbed_options.scale
       << ", \"test\": " << testbed_options.test_queries_per_term_count
       << ", \"k\": " << k << ", \"threshold\": " << threshold
       << ", \"repeats\": " << repeats << "},\n  \"benchmarks\": [";
  bool first_json_row = true;

  eval::TablePrinter table({"config", "seconds", "qps", "overhead%"});
  double base_qps = 0.0;
  double metrics_qps = 0.0;
  for (const Config& config : configs) {
    server.metrics().set_enabled(config.metrics);
    server.SetTracer(config.tracing ? &tracer : nullptr);
    server.SetHealthTracker(config.health ? &health_tracker : nullptr);
    server.ResetStats();
    // Zero-latency serving, inline (no pool): on this box the run is
    // compute-bound, the worst case for instrumentation overhead. Take the
    // fastest pass — the minimum-of-N estimator discards scheduler noise,
    // which on a shared box dwarfs the effect being measured.
    double seconds = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
      auto start = std::chrono::steady_clock::now();
      server.SelectBatch(queries, k, threshold, nullptr).status().CheckOK();
      auto elapsed = std::chrono::steady_clock::now() - start;
      seconds = std::min(
          seconds,
          std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
              .count());
    }
    double qps = seconds > 0.0
                     ? static_cast<double>(queries.size()) / seconds
                     : 0.0;
    if (base_qps == 0.0) base_qps = qps;
    if (std::string(config.name) == "metrics") metrics_qps = qps;
    double overhead_pct =
        base_qps > 0.0 ? 100.0 * (base_qps - qps) / base_qps : 0.0;
    table.AddRow({config.name, eval::Cell(seconds, 3), eval::Cell(qps, 1),
                  eval::Cell(overhead_pct, 2)});
    json << (first_json_row ? "" : ",") << "\n    {\"name\": \"obs/"
         << config.name << "\", \"seconds\": " << seconds
         << ", \"qps\": " << qps << ", \"overhead_pct\": " << overhead_pct;
    if (std::string(config.name) == "health" && metrics_qps > 0.0) {
      json << ", \"overhead_vs_metrics_pct\": "
           << 100.0 * (metrics_qps - qps) / metrics_qps;
    }
    json << "}";
    first_json_row = false;
  }
  server.SetTracer(nullptr);
  server.SetHealthTracker(nullptr);
  server.metrics().set_enabled(true);
  std::cout << "\n=== observability overhead (compute-bound serving) ===\n";
  table.Print(std::cout);

  // The raw hooks, tight-looped. The disabled histogram path is the cost
  // every probe pays when a deployment turns the registry off.
  const std::size_t iters = 1u << 20;
  obs::MetricRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_total");
  obs::Histogram* histogram = registry.GetHistogram("bench_seconds");
  double counter_s = TimeTightLoop(iters, [&](std::size_t) {
    counter->Increment();
  });
  double observe_s = TimeTightLoop(iters, [&](std::size_t i) {
    histogram->Observe(static_cast<double>(i & 1023) * 1e-5);
  });
  registry.set_enabled(false);
  double disabled_s = TimeTightLoop(iters, [&](std::size_t i) {
    histogram->Observe(static_cast<double>(i & 1023) * 1e-5);
  });
  // The health tracker's record hook, enabled and runtime-gated off — the
  // two costs a deployment chooses between per probe.
  obs::DbHealthTracker hook_tracker({"bench-db"});
  double health_s = TimeTightLoop(iters, [&](std::size_t i) {
    hook_tracker.RecordProbe(0, static_cast<double>(i & 1023) * 1e-5,
                             obs::ProbeHealthOutcome::kOk);
  });
  hook_tracker.set_enabled(false);
  double health_disabled_s = TimeTightLoop(iters, [&](std::size_t i) {
    hook_tracker.RecordProbe(0, static_cast<double>(i & 1023) * 1e-5,
                             obs::ProbeHealthOutcome::kOk);
  });
  eval::TablePrinter hooks({"hook", "ns/op"});
  const double to_ns = 1e9 / static_cast<double>(iters);
  hooks.AddRow({"counter_add", eval::Cell(counter_s * to_ns, 2)});
  hooks.AddRow({"histogram_observe", eval::Cell(observe_s * to_ns, 2)});
  hooks.AddRow({"histogram_disabled", eval::Cell(disabled_s * to_ns, 2)});
  hooks.AddRow({"health_record", eval::Cell(health_s * to_ns, 2)});
  hooks.AddRow({"health_record_disabled",
                eval::Cell(health_disabled_s * to_ns, 2)});
  std::cout << "\n=== metric hook cost ===\n";
  hooks.Print(std::cout);
  json << ",\n    {\"name\": \"obs/counter_add\", \"ns_per_op\": "
       << counter_s * to_ns << "}";
  json << ",\n    {\"name\": \"obs/histogram_observe\", \"ns_per_op\": "
       << observe_s * to_ns << "}";
  json << ",\n    {\"name\": \"obs/histogram_disabled\", \"ns_per_op\": "
       << disabled_s * to_ns << "}";
  json << ",\n    {\"name\": \"obs/health_record\", \"ns_per_op\": "
       << health_s * to_ns << "}";
  json << ",\n    {\"name\": \"obs/health_record_disabled\", \"ns_per_op\": "
       << health_disabled_s * to_ns << "}";

  if (json_path != nullptr) {
    json << "\n  ]\n}\n";
    std::ofstream out(json_path);
    out << json.str();
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

int Run(const char* json_path) {
  eval::TestbedOptions testbed_options;
  testbed_options.scale =
      static_cast<std::uint32_t>(GetEnvLong("METAPROBE_SCALE", 1));
  testbed_options.train_queries_per_term_count =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TRAIN", 150));
  testbed_options.test_queries_per_term_count =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TEST", 60));
  testbed_options.seed =
      static_cast<std::uint64_t>(GetEnvLong("METAPROBE_SEED", 42));
  const std::chrono::microseconds latency(
      GetEnvLong("METAPROBE_LATENCY_US", 20000));
  const int k = static_cast<int>(GetEnvLong("METAPROBE_K", 3));
  // High threshold so every query actually probes; otherwise the run
  // measures model evaluation, not dispatch.
  const double threshold = 0.99;

  std::cout << "building health testbed..." << std::endl;
  auto testbed = eval::BuildHealthTestbed(testbed_options);
  testbed.status().CheckOK();
  const std::vector<core::Query>& queries = testbed->test_queries;

  std::vector<std::shared_ptr<DelayedDatabase>> delayed;
  for (const auto& db : testbed->databases) {
    delayed.push_back(std::make_shared<DelayedDatabase>(db));
  }

  std::cout << "serving " << queries.size() << " queries, probe latency "
            << latency.count() << " us, threshold " << threshold << "\n\n";

  std::ostringstream json;
  json << "{\n  \"context\": {\"scale\": " << testbed_options.scale
       << ", \"train\": " << testbed_options.train_queries_per_term_count
       << ", \"test\": " << testbed_options.test_queries_per_term_count
       << ", \"latency_us\": " << latency.count() << ", \"k\": " << k
       << ", \"threshold\": " << threshold << "},\n  \"benchmarks\": [";
  bool first_json_row = true;

  const std::vector<unsigned> worker_counts{1, 2, 4, 8};
  for (int cached = 0; cached < 2; ++cached) {
    // Same serving setup twice, differing only in the RD cache; training
    // probes pay the shim latency too, so parallelize the learner.
    core::MetasearcherOptions options;
    options.enable_rd_cache = cached == 1;
    auto server = std::make_unique<core::Metasearcher>(options);
    for (std::size_t i = 0; i < delayed.size(); ++i) {
      server->AddDatabase(delayed[i], testbed->summaries[i]).CheckOK();
    }
    // Offline training is local; only live serving pays the network.
    for (auto& db : delayed) db->set_latency(std::chrono::microseconds(0));
    std::cout << "training (RD cache " << (cached ? "on" : "off") << ")..."
              << std::endl;
    server->Train(testbed->train_queries).CheckOK();
    for (auto& db : delayed) db->set_latency(latency);

    eval::TablePrinter table(
        {"workers", "seconds", "qps", "speedup", "probes", "cache-hit%"});
    double base_qps = 0.0;
    for (unsigned workers : worker_counts) {
      server->ResetStats();
      RunStats run = TimeBatch(*server, queries, workers, k, threshold);
      if (workers == 1) base_qps = run.qps;
      table.AddRow({eval::Cell(static_cast<std::size_t>(workers)),
                    eval::Cell(run.seconds, 3), eval::Cell(run.qps, 1),
                    eval::Cell(base_qps > 0.0 ? run.qps / base_qps : 0.0, 2),
                    eval::Cell(static_cast<std::size_t>(
                        run.serving.probes_issued)),
                    eval::Cell(100.0 * run.serving.rd_cache_hit_rate(), 1)});
      json << (first_json_row ? "" : ",") << "\n    {\"name\": "
           << "\"SelectBatch/cache_" << (cached ? "on" : "off")
           << "/workers:" << workers << "\", \"seconds\": " << run.seconds
           << ", \"qps\": " << run.qps
           << ", \"speedup\": " << (base_qps > 0.0 ? run.qps / base_qps : 0.0)
           << ", \"probes\": " << run.serving.probes_issued
           << ", \"rd_cache_hit_pct\": "
           << 100.0 * run.serving.rd_cache_hit_rate() << "}";
      first_json_row = false;
    }
    std::cout << "\n=== SelectBatch throughput (RD cache "
              << (cached ? "on" : "off") << ") ===\n";
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(speedup = qps relative to 1 worker; with latency-bound\n"
               " probes this tracks worker count even on a single core)\n";
  if (json_path != nullptr) {
    json << "\n  ]\n}\n";
    std::ofstream out(json_path);
    out << json.str();
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* obs_json_path = nullptr;
  bool obs_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--obs-json", 10) == 0) {
      obs_mode = true;
      obs_json_path = argv[i][10] == '=' ? argv[i] + 11 : "BENCH_obs.json";
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      obs_mode = true;
    } else if (std::strncmp(argv[i], "--json", 6) == 0) {
      json_path = argv[i][6] == '=' ? argv[i] + 7 : "BENCH_parallel.json";
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return 1;
    }
  }
  if (obs_mode) return metaprobe::RunObsOverhead(obs_json_path);
  return metaprobe::Run(json_path);
}
