// Reproduces Figure 7 (ICDE 2004): the chi-square goodness (p-value) of an
// error distribution learned from S sample queries against the ideal ED
// learned from every available query, for S in {100..2000}, shown for a few
// newsgroup-style databases.
//
// Paper shape: all sizes sit far above the 0.05 acceptance line, and
// goodness creeps up slightly with larger samples — even 100-200 sample
// queries produce a usable ED.

#include <iostream>

#include "common/strings.h"
#include "eval/sampling_study.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

int Run() {
  std::uint64_t seed =
      static_cast<std::uint64_t>(GetEnvLong("METAPROBE_SEED", 42));
  eval::TestbedOptions testbed_options;
  testbed_options.scale =
      static_cast<std::uint32_t>(GetEnvLong("METAPROBE_SCALE", 1));
  // The train split doubles as the comprehensive query trace Q_total.
  testbed_options.train_queries_per_term_count =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TRAIN", 12000));
  testbed_options.test_queries_per_term_count = 10;
  testbed_options.seed = seed;
  auto testbed = eval::BuildNewsgroupTestbed(testbed_options);
  testbed.status().CheckOK();

  eval::SamplingStudyOptions study;
  study.repetitions =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_REPS", 30));
  study.query_class.estimate_threshold =
      static_cast<double>(GetEnvLong("METAPROBE_THRESHOLD", 30));
  study.seed = seed * 11 + 1;
  auto results = eval::RunSamplingStudy(*testbed, study);
  results.status().CheckOK();

  std::cout << "\n=== Figure 7: average goodness of various sampling sizes "
               "on a few databases ===\n"
            << "(2-term queries with r_hat >= "
            << study.query_class.estimate_threshold << ", "
            << study.repetitions
            << " repetitions; p-values above the 0.05 line accept the "
               "sample ED)\n\n";

  std::vector<std::string> header{"database", "|Q_type|"};
  for (std::size_t s : study.sample_sizes) {
    header.push_back("S=" + std::to_string(s));
  }
  eval::TablePrinter table(header);
  int shown = 0;
  for (const eval::DbGoodness& g : *results) {
    if (g.type_query_count < 200) continue;  // too few to be illustrative
    if (++shown > 4) break;
    std::vector<std::string> row{g.database, eval::Cell(g.type_query_count)};
    for (double p : g.avg_goodness) row.push_back(eval::Cell(p));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nbottom line for the statistical test: 0.05\n";
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
