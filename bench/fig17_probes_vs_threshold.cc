// Reproduces Figure 17 (ICDE 2004): the number of probes APro spends to
// return a DB^k whose expected correctness reaches the user-required
// certainty level t, for t in {0.70, 0.75, 0.80, 0.85, 0.90, 0.95},
// averaged over the test queries.
//
// Paper shape: the probe count rises monotonically (and super-linearly)
// with t; the realized correctness of the returned answers tracks t.

#include <iostream>

#include "core/probing.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

void PrintSweep(const char* title,
                const std::vector<eval::ThresholdPoint>& points) {
  std::cout << "\n--- " << title << " ---\n";
  eval::TablePrinter table({"threshold t", "avg # of probings",
                            "realized correctness", "reached t"});
  for (const eval::ThresholdPoint& point : points) {
    table.AddRow({eval::Cell(point.threshold, 2),
                  eval::Cell(point.avg_probes, 2),
                  eval::Cell(point.avg_correctness),
                  eval::Cell(point.reached_fraction, 2)});
  }
  table.Print(std::cout);
}

int Run() {
  eval::BenchScale scale = eval::ReadBenchScale();
  auto world = eval::BuildTrainedHealthWorld(eval::ToTestbedOptions(scale));
  world.status().CheckOK();
  const std::vector<double> kThresholds{0.70, 0.75, 0.80, 0.85, 0.90, 0.95};

  core::StoppingProbabilityPolicy policy;
  std::cout << "\n=== Figure 17: adaptive probing under different "
               "user-required thresholds t ===\n"
            << "(stopping-probability policy, a refinement of the paper's greedy, first "
            << std::min<std::size_t>(scale.query_limit,
                                     world->num_test_queries())
            << " test queries)\n";

  PrintSweep("k=1, absolute correctness",
             eval::EvaluateThresholdSweep(*world, 1,
                                          core::CorrectnessMetric::kAbsolute,
                                          &policy, kThresholds,
                                          scale.query_limit));
  PrintSweep("k=3, partial correctness",
             eval::EvaluateThresholdSweep(*world, 3,
                                          core::CorrectnessMetric::kPartial,
                                          &policy, kThresholds,
                                          scale.query_limit));
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
