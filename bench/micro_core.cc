// Microbenchmarks for the probabilistic core: RD derivation, expected
// correctness evaluation, best-set search and the greedy probing step.
//
// `--json[=path]` additionally writes the results as google-benchmark JSON
// (default path BENCH_core.json), the machine-readable perf trajectory the
// CI perf-smoke step uploads; see EXPERIMENTS.md.

#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/correctness.h"
#include "core/error_distribution.h"
#include "core/probing.h"
#include "core/relevancy_distribution.h"
#include "stats/chi_square.h"
#include "stats/random.h"

namespace metaprobe {
namespace {

// A 20-database model with 10-atom RDs, the shape of one live query on the
// paper's testbed.
core::TopKModel MakeModel(std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<core::RelevancyDistribution> rds;
  for (int db = 0; db < 20; ++db) {
    core::ErrorDistribution ed;
    for (int s = 0; s < 200; ++s) {
      ed.AddObservation(rng.Uniform(-1.0, 4.0));
    }
    rds.push_back(core::RelevancyDistribution::FromEstimate(
        rng.Uniform(0.0, 500.0), ed));
  }
  return core::TopKModel(std::move(rds));
}

void BM_RdDerivation(benchmark::State& state) {
  core::ErrorDistribution ed;
  stats::Rng rng(3);
  for (int s = 0; s < 500; ++s) ed.AddObservation(rng.Uniform(-1.0, 4.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::RelevancyDistribution::FromEstimate(120.0, ed).dist.Mean());
  }
}
BENCHMARK(BM_RdDerivation);

void BM_MembershipProbabilities(benchmark::State& state) {
  core::TopKModel model = MakeModel(11);
  const int k = static_cast<int>(state.range(0));
  // Alternate k between iterations: the model memoizes the marginals per
  // k, and the bench should time the leave-one-out sweep, not the memo hit.
  const int ks[2] = {k, k == 1 ? 2 : k - 1};
  int which = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.MembershipProbabilities(ks[which]));
    which ^= 1;
  }
}
BENCHMARK(BM_MembershipProbabilities)->Arg(1)->Arg(3);

void BM_PrExactTopSet(benchmark::State& state) {
  core::TopKModel model = MakeModel(13);
  std::vector<std::size_t> set{2, 7, 11};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PrExactTopSet(set));
  }
}
BENCHMARK(BM_PrExactTopSet);

void BM_FindBestSet(benchmark::State& state) {
  core::TopKModel model = MakeModel(17);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.FindBestSet(k, core::CorrectnessMetric::kAbsolute));
  }
}
BENCHMARK(BM_FindBestSet)->Arg(1)->Arg(3);

void BM_GreedySelectDb(benchmark::State& state) {
  core::TopKModel model = MakeModel(19);
  core::GreedyUsefulnessPolicy policy;
  std::vector<bool> probed(20, false);
  core::ProbingContext context;
  context.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.SelectDb(&model, probed, context));
  }
}
BENCHMARK(BM_GreedySelectDb)->Arg(1)->Arg(3);

void BM_MembershipEntropySelectDb(benchmark::State& state) {
  core::TopKModel model = MakeModel(19);
  core::MembershipEntropyPolicy policy;
  std::vector<bool> probed(20, false);
  core::ProbingContext context;
  context.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.SelectDb(&model, probed, context));
  }
}
BENCHMARK(BM_MembershipEntropySelectDb)->Arg(1)->Arg(3);

void BM_MonteCarloCorrectness(benchmark::State& state) {
  core::TopKModel model = MakeModel(23);
  std::vector<std::size_t> set{2, 7, 11};
  stats::Rng rng(29);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MonteCarloExpectedCorrectness(
        model, set, core::CorrectnessMetric::kAbsolute, 1000, &rng));
  }
}
BENCHMARK(BM_MonteCarloCorrectness);

void BM_PearsonChiSquare(benchmark::State& state) {
  std::vector<double> observed{40, 55, 62, 78, 90, 70, 45, 30, 20, 10};
  std::vector<double> expected{0.08, 0.11, 0.12, 0.16, 0.18,
                               0.14, 0.09, 0.06, 0.04, 0.02};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::PearsonChiSquareTest(observed, expected)->p_value);
  }
}
BENCHMARK(BM_PearsonChiSquare);

}  // namespace
}  // namespace metaprobe

int main(int argc, char** argv) {
  // Translate `--json[=path]` into google-benchmark's JSON output flags,
  // forwarding everything else untouched.
  std::string out_path = "BENCH_core.json";
  bool json = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0 &&
        (argv[i][6] == '\0' || argv[i][6] == '=')) {
      json = true;
      if (argv[i][6] == '=') out_path = argv[i] + 7;
      continue;
    }
    args.push_back(argv[i]);
  }
  std::string out_flag = "--benchmark_out=" + out_path;
  std::string format_flag = "--benchmark_out_format=json";
  if (json) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
