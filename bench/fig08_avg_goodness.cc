// Reproduces Figure 8 (ICDE 2004): the average chi-square goodness of each
// sampling size, averaged over the 20 newsgroup-style databases.
//
// Paper values: 0.68 / 0.72 / 0.78 / 0.83 / 0.86 for S = 100..2000 — all
// comfortably above the 0.05 acceptance line, rising gently with S. Expect
// the same shape here: high everywhere, slightly better with more samples.

#include <iostream>

#include "common/strings.h"
#include "eval/sampling_study.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

int Run() {
  std::uint64_t seed =
      static_cast<std::uint64_t>(GetEnvLong("METAPROBE_SEED", 42));
  eval::TestbedOptions testbed_options;
  testbed_options.scale =
      static_cast<std::uint32_t>(GetEnvLong("METAPROBE_SCALE", 1));
  testbed_options.train_queries_per_term_count =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TRAIN", 12000));
  testbed_options.test_queries_per_term_count = 10;
  testbed_options.seed = seed;
  auto testbed = eval::BuildNewsgroupTestbed(testbed_options);
  testbed.status().CheckOK();

  eval::SamplingStudyOptions study;
  study.repetitions =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_REPS", 30));
  study.query_class.estimate_threshold =
      static_cast<double>(GetEnvLong("METAPROBE_THRESHOLD", 30));
  study.seed = seed * 13 + 5;
  auto results = eval::RunSamplingStudy(*testbed, study);
  results.status().CheckOK();

  // Average per sampling size over databases with a meaningful query pool.
  std::vector<double> totals(study.sample_sizes.size(), 0.0);
  int counted = 0;
  for (const eval::DbGoodness& g : *results) {
    if (g.type_query_count < 100) continue;
    ++counted;
    for (std::size_t s = 0; s < totals.size(); ++s) {
      totals[s] += g.avg_goodness[s];
    }
  }
  std::cout << "\n=== Figure 8: average goodness of different sampling "
               "sizes ===\n"
            << "(averaged over " << counted
            << " databases with enough type members; paper reports "
               "0.68-0.86 rising with S)\n\n";
  eval::TablePrinter table({"sampling size S", "avg goodness of S"});
  for (std::size_t s = 0; s < study.sample_sizes.size(); ++s) {
    table.AddRow({eval::Cell(study.sample_sizes[s]),
                  eval::Cell(counted > 0 ? totals[s] / counted : 0.0)});
  }
  table.Print(std::cout);
  std::cout << "\nAll sizes sit far above the 0.05 acceptance line: 100-200 "
               "sample queries already yield a usable ED, matching the "
               "paper's conclusion (it conservatively uses 500).\n";
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
