// Extension experiment: result fusion (the paper's task 2, Figure 1 arrows
// labelled 2). Database selection is only useful if the merged result list
// actually surfaces documents from the right sources.
//
// Metric: provenance precision — the fraction of the top-10 fused results
// that come from the query's golden top-3 databases. Compared across
//   * fusion strategies (score-normalized vs round-robin interleave,
//     with and without relevancy weighting), and
//   * selection quality (RD-based selection vs always querying the three
//     *least* relevant databases, as a sanity floor).

#include <iostream>

#include "core/fusion.h"
#include "core/metasearcher.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace metaprobe {
namespace {

struct StrategyResult {
  double precision = 0.0;
  std::size_t queries = 0;
};

int Run() {
  eval::BenchScale scale = eval::ReadBenchScale();
  eval::TestbedOptions testbed_options = eval::ToTestbedOptions(scale);
  testbed_options.store_documents = true;
  auto world = eval::BuildTrainedHealthWorld(testbed_options);
  world.status().CheckOK();
  const std::size_t limit =
      std::min<std::size_t>(scale.query_limit, world->num_test_queries());

  auto run_strategy = [&](core::FusionStrategy strategy, bool weighted,
                          bool invert_selection) {
    StrategyResult out;
    for (std::size_t q = 0; q < limit; ++q) {
      const core::Query& query = world->testbed.test_queries[q];
      std::vector<std::size_t> golden_top3 = world->golden->TopK(q, 3);
      // Selected databases: the metasearcher's pick, or deliberately the
      // three worst (sanity floor).
      std::vector<std::size_t> selected;
      if (invert_selection) {
        std::vector<double> relevancies = world->golden->Relevancies(q);
        for (double& r : relevancies) r = -r;
        selected = core::TopKIndices(relevancies, 3);
      } else {
        auto report = world->metasearcher->Select(query, 3, 0.85);
        report.status().CheckOK();
        selected = report->databases;
      }
      std::vector<std::vector<core::SearchHit>> lists;
      std::vector<std::string> names;
      core::FusionOptions options;
      options.strategy = strategy;
      for (std::size_t id : selected) {
        auto hits = world->testbed.databases[id]->Search(query, 5);
        hits.status().CheckOK();
        lists.push_back(std::move(*hits));
        names.push_back(world->testbed.databases[id]->name());
        if (weighted) {
          options.database_weights.push_back(
              world->metasearcher->EstimateAll(query)[id]);
        }
      }
      std::vector<core::FusedHit> fused =
          core::FuseResults(lists, names, 10, options);
      if (fused.empty()) continue;
      std::size_t from_golden = 0;
      for (const core::FusedHit& hit : fused) {
        std::size_t source = selected[hit.database];
        for (std::size_t g : golden_top3) {
          if (source == g) {
            ++from_golden;
            break;
          }
        }
      }
      out.precision +=
          static_cast<double>(from_golden) / static_cast<double>(fused.size());
      ++out.queries;
    }
    if (out.queries > 0) out.precision /= static_cast<double>(out.queries);
    return out;
  };

  std::cout << "\n=== Extension: result fusion quality (paper task 2) ===\n"
            << "(provenance precision of the fused top-10 against the golden "
               "top-3 databases; "
            << limit << " test queries)\n\n";
  eval::TablePrinter table({"selection", "fusion strategy",
                            "provenance precision@10"});
  table.AddRow({"RD-based + probing", "normalized score, weighted",
                eval::Cell(run_strategy(core::FusionStrategy::kNormalizedScore,
                                        true, false)
                               .precision)});
  table.AddRow({"RD-based + probing", "normalized score, unweighted",
                eval::Cell(run_strategy(core::FusionStrategy::kNormalizedScore,
                                        false, false)
                               .precision)});
  table.AddRow({"RD-based + probing", "round-robin interleave",
                eval::Cell(run_strategy(core::FusionStrategy::kRoundRobin,
                                        false, false)
                               .precision)});
  table.AddRow({"worst-3 databases (floor)", "normalized score, weighted",
                eval::Cell(run_strategy(core::FusionStrategy::kNormalizedScore,
                                        true, true)
                               .precision)});
  table.Print(std::cout);
  std::cout << "\nGood selection dominates: whatever the merge strategy, "
               "fusing from the right databases is what surfaces the right "
               "documents — the reason database selection accuracy is the "
               "paper's core metric.\n";
  return 0;
}

}  // namespace
}  // namespace metaprobe

int main() { return metaprobe::Run(); }
