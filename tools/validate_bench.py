#!/usr/bin/env python3
"""Validates committed BENCH_*.json files against the repo's bench schema.

Two layouts are accepted, both of which the perf-trajectory tooling knows
how to read:

  * Google Benchmark output (BENCH_core.json, BENCH_index.json): top-level
    "context" object and "benchmarks" list whose entries carry "name" plus
    timing fields (real_time/cpu_time). BENCH_index.json additionally
    carries frozen pre-block-format entries under "<name>/v1baseline" so
    the block-format speedup stays visible in the committed artifact.
  * The custom layout written by bench/micro_parallel.cc and
    bench/load_gen.cc (BENCH_parallel, BENCH_obs, BENCH_serving):
    top-level "context" object and "benchmarks" list whose entries carry
    "name" plus at least one numeric result field. BENCH_serving entries
    are additionally required to be namespaced "serving/..." and, when
    they carry an "errors" field, to report zero errors (deadline-expired
    requests must degrade, never fail).

Usage: tools/validate_bench.py FILE...
Exits nonzero with a per-file diagnostic on the first violation.
"""

import json
import math
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return 1


def is_finite_number(value):
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def validate(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level must be a JSON object")
    if not isinstance(doc.get("context"), dict):
        return fail(path, 'missing "context" object')
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return fail(path, '"benchmarks" must be a non-empty list')

    serving = "serving" in path.rsplit("/", 1)[-1]
    names = set()
    for i, bench in enumerate(benchmarks):
        where = f"benchmarks[{i}]"
        if not isinstance(bench, dict):
            return fail(path, f"{where} must be an object")
        name = bench.get("name")
        if not isinstance(name, str) or not name:
            return fail(path, f'{where} needs a non-empty string "name"')
        if name in names:
            return fail(path, f"{where}: duplicate benchmark name {name!r}")
        names.add(name)
        numeric = {
            k: v for k, v in bench.items() if is_finite_number(v)
        }
        if not numeric:
            return fail(
                path, f"{where} ({name}): no finite numeric result field"
            )
        for key, value in numeric.items():
            if key in ("seconds", "qps", "real_time", "cpu_time",
                       "ns_per_op") and value < 0:
                return fail(
                    path, f"{where} ({name}): {key} must be >= 0, got {value}"
                )
        if serving:
            if not name.startswith("serving/"):
                return fail(
                    path,
                    f'{where}: serving entries must be named "serving/...", '
                    f"got {name!r}",
                )
            errors = bench.get("errors")
            if errors not in (None, 0):
                return fail(
                    path,
                    f"{where} ({name}): serving runs must report zero "
                    f"errors, got {errors}",
                )

    print(f"{path}: ok ({len(benchmarks)} benchmarks)")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        status |= validate(path)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
