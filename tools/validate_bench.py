#!/usr/bin/env python3
"""Validates committed BENCH_*.json files against the repo's bench schema.

Two layouts are accepted, both of which the perf-trajectory tooling knows
how to read:

  * Google Benchmark output (BENCH_core.json, BENCH_index.json): top-level
    "context" object and "benchmarks" list whose entries carry "name" plus
    timing fields (real_time/cpu_time). BENCH_index.json additionally
    carries frozen entries under "<name>/v1baseline" (pre-block-format)
    and "<name>/v2baseline" (pre-WAND/SIMD) so those speedups stay visible
    in the committed artifact; baseline entries are optional (fresh CI
    regenerations lack them) but when present must shadow a live
    benchmark of the same stem. Index files must cover the benchmark
    families the perf-trajectory tooling tracks, including the WAND
    scorer, the dense SIMD intersection pair, and the eager-vs-mapped
    cold-open pair, whose ratio at the largest common corpus size is
    gated: the mmap'd open must stay at least 10x faster than the eager
    load.
  * The custom layout written by bench/micro_parallel.cc and
    bench/load_gen.cc (BENCH_parallel, BENCH_obs, BENCH_serving):
    top-level "context" object and "benchmarks" list whose entries carry
    "name" plus at least one numeric result field. BENCH_serving entries
    are additionally required to be namespaced "serving/..." and, when
    they carry an "errors" field, to report zero errors (deadline-expired
    requests must degrade, never fail). BENCH_obs entries must be
    namespaced "obs/...", cover every configuration and hook the overhead
    harness emits (including the health tracker's record hook, enabled
    and runtime-gated off), and the "obs/health" row's
    overhead_vs_metrics_pct — the probe-path cost of the health tracker
    on top of base metrics — must stay under 1%.

Usage: tools/validate_bench.py FILE...
Exits nonzero with a per-file diagnostic on the first violation.
"""

import json
import math
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return 1


# Benchmark families every BENCH_index.json must cover (a name matches a
# family when it equals the family or extends it with an "/arg" suffix).
INDEX_REQUIRED_FAMILIES = (
    "BM_PostingListScan",
    "BM_CountConjunctiveBatch",
    "BM_CountConjunctiveBatchDupTerms",
    "BM_CountConjunctiveBatchPooled",
    "BM_ConjunctiveDense",
    "BM_ConjunctiveDenseScalar",
    "BM_TopKCosine",
    "BM_TopKCosineManyTerms",
    "BM_TopKCosineExhaustive",
    "BM_IndexOpenEager",
    "BM_IndexOpenMapped",
)

# CI gate: at the largest corpus size both open benchmarks cover, the
# mapped cold open must beat the eager load by at least this factor —
# the zero-copy reader defers block decode, so its open cost must not
# degenerate back toward a full-file decode.
INDEX_MAPPED_OPEN_SPEEDUP_MIN = 10.0

# Entries every BENCH_obs.json must carry: the serving configurations of
# the overhead harness plus the tight-looped metric/health hooks.
OBS_REQUIRED_NAMES = (
    "obs/disabled",
    "obs/metrics",
    "obs/health",
    "obs/tracing",
    "obs/counter_add",
    "obs/histogram_observe",
    "obs/histogram_disabled",
    "obs/health_record",
    "obs/health_record_disabled",
)

# CI gate: the health tracker may cost at most this much on the probe hot
# path, measured against the metrics-only configuration.
OBS_HEALTH_OVERHEAD_LIMIT_PCT = 1.0


def is_finite_number(value):
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def validate(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level must be a JSON object")
    if not isinstance(doc.get("context"), dict):
        return fail(path, 'missing "context" object')
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return fail(path, '"benchmarks" must be a non-empty list')

    basename = path.rsplit("/", 1)[-1]
    serving = "serving" in basename
    index = "index" in basename
    obs = "obs" in basename
    names = set()
    for i, bench in enumerate(benchmarks):
        where = f"benchmarks[{i}]"
        if not isinstance(bench, dict):
            return fail(path, f"{where} must be an object")
        name = bench.get("name")
        if not isinstance(name, str) or not name:
            return fail(path, f'{where} needs a non-empty string "name"')
        if name in names:
            return fail(path, f"{where}: duplicate benchmark name {name!r}")
        names.add(name)
        numeric = {
            k: v for k, v in bench.items() if is_finite_number(v)
        }
        if not numeric:
            return fail(
                path, f"{where} ({name}): no finite numeric result field"
            )
        for key, value in numeric.items():
            if key in ("seconds", "qps", "real_time", "cpu_time",
                       "ns_per_op") and value < 0:
                return fail(
                    path, f"{where} ({name}): {key} must be >= 0, got {value}"
                )
        if obs:
            if not name.startswith("obs/"):
                return fail(
                    path,
                    f'{where}: obs entries must be named "obs/...", '
                    f"got {name!r}",
                )
            if name == "obs/health":
                overhead = bench.get("overhead_vs_metrics_pct")
                if not is_finite_number(overhead):
                    return fail(
                        path,
                        f"{where} ({name}): needs a finite "
                        f"overhead_vs_metrics_pct field",
                    )
                if overhead >= OBS_HEALTH_OVERHEAD_LIMIT_PCT:
                    return fail(
                        path,
                        f"{where} ({name}): health-tracker probe-path "
                        f"overhead {overhead:.3f}% breaches the "
                        f"{OBS_HEALTH_OVERHEAD_LIMIT_PCT}% budget",
                    )
        if serving:
            if not name.startswith("serving/"):
                return fail(
                    path,
                    f'{where}: serving entries must be named "serving/...", '
                    f"got {name!r}",
                )
            errors = bench.get("errors")
            if errors not in (None, 0):
                return fail(
                    path,
                    f"{where} ({name}): serving runs must report zero "
                    f"errors, got {errors}",
                )

    if obs:
        for required in OBS_REQUIRED_NAMES:
            if required not in names:
                return fail(path, f"missing obs entry {required!r}")

    if index:
        live = {n for n in names if "baseline" not in n}
        for family in INDEX_REQUIRED_FAMILIES:
            if not any(
                n == family or n.startswith(family + "/") for n in live
            ):
                return fail(path, f"missing benchmark family {family!r}")
        for name in names - live:
            stem = name.rsplit("/", 1)[0]
            if not any(n == stem or n.startswith(stem + "/") for n in live):
                return fail(
                    path,
                    f"baseline entry {name!r} shadows no live benchmark",
                )

        def open_times(family):
            times = {}
            for bench in benchmarks:
                name = bench.get("name", "")
                if name in live and name.startswith(family + "/"):
                    arg = name.rsplit("/", 1)[1]
                    if arg.isdigit() and is_finite_number(
                        bench.get("real_time")
                    ):
                        times[int(arg)] = bench["real_time"]
            return times

        eager = open_times("BM_IndexOpenEager")
        mapped = open_times("BM_IndexOpenMapped")
        common = sorted(set(eager) & set(mapped))
        if not common:
            return fail(
                path,
                "BM_IndexOpenEager and BM_IndexOpenMapped share no corpus "
                "size to compare",
            )
        size = common[-1]
        if mapped[size] <= 0:
            return fail(
                path, f"BM_IndexOpenMapped/{size} has non-positive real_time"
            )
        speedup = eager[size] / mapped[size]
        if speedup < INDEX_MAPPED_OPEN_SPEEDUP_MIN:
            return fail(
                path,
                f"mapped cold open at {size} docs is only {speedup:.1f}x "
                f"faster than the eager load (gate: "
                f">= {INDEX_MAPPED_OPEN_SPEEDUP_MIN:.0f}x)",
            )

    print(f"{path}: ok ({len(benchmarks)} benchmarks)")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        status |= validate(path)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
