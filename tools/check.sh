#!/usr/bin/env bash
# Full pre-merge check: build and test the tree in three configurations.
#
#   1. Release      -- optimized build, full ctest suite.
#   2. ThreadSanitizer -- RelWithDebInfo + -fsanitize=thread, running the
#      concurrency-sensitive suites (thread pool, batch serving,
#      determinism, speculative probing, parallel greedy scoring). Any
#      reported race fails the run.
#   3. UndefinedBehaviorSanitizer -- Debug + -fsanitize=undefined over the
#      probabilistic-kernel suites (correctness, kernel equivalence,
#      probing, discrete distributions). Any UB report fails the run.
#
# Usage: tools/check.sh [jobs]
#   jobs                parallel build/test jobs (default: nproc)
# Environment:
#   METAPROBE_TSAN_FULL=1   run the entire test suite under TSAN (slow)
#   METAPROBE_SKIP_RELEASE=1 / METAPROBE_SKIP_TSAN=1 / METAPROBE_SKIP_UBSAN=1
#                           skip a configuration
#
# Build trees land in build-release/, build-tsan/ and build-ubsan/,
# separate from the default build/ so a developer's incremental tree is
# never clobbered.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# Test-name filter for the TSAN pass: every suite that exercises threads.
TSAN_FILTER='ThreadPool|Concurrency|Determinism|SpeculativeBatch|ParallelGreedy'

# Test-name filter for the UBSAN pass: the numeric kernels where UB (signed
# overflow, bad indexing, misaligned loads) would silently corrupt results.
UBSAN_FILTER='Correctness|Kernel|Probing|DiscreteDistribution|TopKModel'

run_release() {
  echo "=== [1/3] Release build + full test suite ==="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build-release -j "$JOBS"
  ctest --test-dir build-release --output-on-failure -j "$JOBS"
}

run_tsan() {
  echo "=== [2/3] ThreadSanitizer build + concurrency suites ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" > /dev/null
  cmake --build build-tsan -j "$JOBS"
  local filter=(-R "$TSAN_FILTER")
  if [[ "${METAPROBE_TSAN_FULL:-0}" == "1" ]]; then
    filter=()
  fi
  # halt_on_error: the first race aborts the offending test immediately,
  # and TSAN's nonzero exit code fails ctest.
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" "${filter[@]}"
}

run_ubsan() {
  echo "=== [3/3] UndefinedBehaviorSanitizer build + kernel suites ==="
  cmake -B build-ubsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined" > /dev/null
  cmake --build build-ubsan -j "$JOBS"
  UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" \
      -R "$UBSAN_FILTER"
}

if [[ "${METAPROBE_SKIP_RELEASE:-0}" != "1" ]]; then
  run_release
fi
if [[ "${METAPROBE_SKIP_TSAN:-0}" != "1" ]]; then
  run_tsan
fi
if [[ "${METAPROBE_SKIP_UBSAN:-0}" != "1" ]]; then
  run_ubsan
fi
echo "=== all checks passed ==="
