#!/usr/bin/env bash
# Full pre-merge check: build and test the tree in four configurations,
# run the static-analysis pass, then smoke-test the observability surface.
#
#   1. Release      -- optimized build, full ctest suite.
#   2. ThreadSanitizer -- RelWithDebInfo + -fsanitize=thread, running the
#      concurrency-sensitive suites (thread pool, batch serving,
#      determinism, speculative probing, parallel greedy scoring). Any
#      reported race fails the run.
#   3. UndefinedBehaviorSanitizer -- Debug + -fsanitize=undefined over the
#      probabilistic-kernel suites (correctness, kernel equivalence,
#      probing, discrete distributions). Any UB report fails the run.
#   4. AddressSanitizer -- RelWithDebInfo + -fsanitize=address with leak
#      detection, over the suites that churn owned buffers: index
#      round-trip / codec IO, the HTTP introspection server, and the
#      serving + admission stack. Any heap error or leak fails the run.
#   5. Static analysis -- tools/lint/run.sh: the project-invariant lint
#      (clock/randomness injection seams, metric-name inventory,
#      index-internal include boundary) always; clang -Wthread-safety and
#      the clang-tidy baseline when clang/clang-tidy are installed (CI's
#      lint job always has them).
#   6. Metrics smoke -- run the observability example from the Release
#      tree, assert the Prometheus exposition parses and the key serving
#      series are present, validate the trace dump is well-formed JSON
#      lines, schema-check the committed BENCH_*.json files, and run the
#      serving load generator (bench/load_gen) at smoke scale, which
#      asserts deadline-expired requests degrade instead of erroring.
#
# Usage: tools/check.sh [jobs]
#   jobs                parallel build/test jobs (default: nproc)
# Environment:
#   METAPROBE_TSAN_FULL=1   run the entire test suite under TSAN (slow)
#   METAPROBE_SKIP_RELEASE=1 / METAPROBE_SKIP_TSAN=1 / METAPROBE_SKIP_UBSAN=1
#   / METAPROBE_SKIP_ASAN=1 / METAPROBE_SKIP_LINT=1 / METAPROBE_SKIP_SMOKE=1
#                           skip a configuration
#
# Build trees land in build-release/, build-tsan/, build-ubsan/ and
# build-asan/, separate from the default build/ so a developer's
# incremental tree is never clobbered.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# Test-name filter for the TSAN pass: every suite that exercises threads.
TSAN_FILTER='ThreadPool|Concurrency|Determinism|SpeculativeBatch|ParallelGreedy|Serving|TokenBucket|Admission|Deadline|ProbeBatchDeadline'

# Test-name filter for the UBSAN pass: the numeric kernels where UB (signed
# overflow, bad indexing, misaligned loads) would silently corrupt results,
# plus the index IO suites whose corrupt-byte sweeps feed adversarial data
# to the lazy mapped-block decoder.
UBSAN_FILTER='Correctness|Kernel|Probing|DiscreteDistribution|TopKModel|IndexIo|MappedIndex'

# Test-name filter for the ASAN pass: the suites that own raw buffers or
# sockets — index codecs and round-trip IO (including the mmap'd zero-copy
# path), the document store, the HTTP introspection server, and the
# serving + admission stack.
ASAN_FILTER='IndexIo|InvertedIndex|PostingList|DocumentStore|HttpServer|Serving|Admission|TokenBucket|Introspection|MappedIndex'

run_release() {
  echo "=== [1/6] Release build + full test suite ==="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build-release -j "$JOBS"
  ctest --test-dir build-release --output-on-failure -j "$JOBS"
}

run_tsan() {
  echo "=== [2/6] ThreadSanitizer build + concurrency suites ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" > /dev/null
  cmake --build build-tsan -j "$JOBS"
  local filter=(-R "$TSAN_FILTER")
  if [[ "${METAPROBE_TSAN_FULL:-0}" == "1" ]]; then
    filter=()
  fi
  # halt_on_error: the first race aborts the offending test immediately,
  # and TSAN's nonzero exit code fails ctest.
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" "${filter[@]}"
  # Perf smoke: the WAND and dense-intersection benches must run under the
  # sanitizer with the dispatched SIMD kernel still active — the bench
  # logs the kernel and --assert-simd fails if a build with vector
  # kernels compiled in silently fell back to scalar.
  cmake --build build-tsan -j "$JOBS" --target micro_index
  TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/bench/micro_index --assert-simd \
      --benchmark_filter='BM_TopKCosineManyTerms|BM_ConjunctiveDense' \
      --benchmark_min_time=0.05 > /dev/null
}

run_ubsan() {
  echo "=== [3/6] UndefinedBehaviorSanitizer build + kernel suites ==="
  cmake -B build-ubsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined" > /dev/null
  cmake --build build-ubsan -j "$JOBS"
  UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" \
      -R "$UBSAN_FILTER"
  # Same perf smoke as the TSAN stage: WAND/dense benches with the SIMD
  # dispatch asserted, so UB in the vector kernels cannot hide behind a
  # silent scalar fallback.
  cmake --build build-ubsan -j "$JOBS" --target micro_index
  UBSAN_OPTIONS="print_stacktrace=1" \
    ./build-ubsan/bench/micro_index --assert-simd \
      --benchmark_filter='BM_TopKCosineManyTerms|BM_ConjunctiveDense' \
      --benchmark_min_time=0.05 > /dev/null
}

run_asan() {
  echo "=== [4/6] AddressSanitizer build + memory-churn suites ==="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address" > /dev/null
  cmake --build build-asan -j "$JOBS"
  # detect_leaks: LeakSanitizer rides along, so an index round-trip or a
  # server shutdown that strands an allocation fails the stage, not just
  # wild reads/writes.
  ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
      -R "$ASAN_FILTER"
}

run_lint() {
  echo "=== [5/6] Static analysis: invariants + thread safety + tidy ==="
  tools/lint/run.sh build-release
}

run_smoke() {
  echo "=== [6/6] Metrics smoke: exposition + trace dump + bench schema ==="
  # The Release tree has the example binary; build it if stage 1 was
  # skipped.
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build-release -j "$JOBS" --target observability
  local out
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' RETURN
  ./build-release/examples/observability > "$out/smoke.txt"
  # Split the example's output into exposition and trace sections.
  awk '/^==== metrics exposition/{s=1;next} /^==== trace/{s=2;next}
       s==1{print > "'"$out"'/metrics.txt"} s==2{print > "'"$out"'/trace.jsonl"}' \
    "$out/smoke.txt"
  # Key serving series must be present with traffic on them.
  local series
  for series in \
    'metaprobe_queries_served_total 3' \
    'metaprobe_probes_total{result="ok"}' \
    'metaprobe_select_latency_seconds_bucket{le="' \
    'metaprobe_select_latency_seconds_count 3' \
    'metaprobe_kernel_cache_events_total{event="full_rebuild"}' \
    'metaprobe_rd_cache_requests_total{result="hit"}' \
    'metaprobe_rd_cache_entries' \
    'metaprobe_index_blocks_decoded_total' \
    'metaprobe_index_blocks_skipped_total' \
    'metaprobe_index_blocks_wand_skipped_total' \
    'metaprobe_index_simd_intersections_total' \
    'metaprobe_index_mapped_bytes' \
    'metaprobe_index_resident_lists' \
    'metaprobe_probe_batch_size'; do
    grep -qF "$series" "$out/metrics.txt" \
      || { echo "missing series: $series"; return 1; }
  done
  # The exposition parses: every non-comment line is "name[{labels}] value"
  # and every histogram ends with matching _sum/_count lines.
  python3 - "$out/metrics.txt" "$out/trace.jsonl" <<'PY'
import json, re, sys
sample = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9][0-9.eE+-]*$')
families = set()
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# TYPE "):
        families.add(line.split()[2])
        continue
    if not sample.match(line):
        sys.exit(f"unparseable exposition line: {line!r}")
if not families:
    sys.exit("no # TYPE lines in exposition")
spans = 0
for line in open(sys.argv[2]):
    if not line.strip():
        continue
    obj = json.loads(line)
    for key in ("trace_id", "query", "span", "start_ns", "end_ns"):
        if key not in obj:
            sys.exit(f"trace line missing {key!r}: {line!r}")
    spans += 1
if spans == 0:
    sys.exit("trace dump is empty")
print(f"exposition ok ({len(families)} families), trace ok ({spans} spans)")
PY
  # Live introspection scrape: run the serving example with its HTTP
  # endpoints held open, then GET all four endpoints and assert the
  # health/SLO series and the /statusz health table cover every backend.
  cmake --build build-release -j "$JOBS" --target serving_loop
  local port_file="$out/port"
  METAPROBE_SERVE_SECONDS=4 METAPROBE_PORT_FILE="$port_file" \
    ./build-release/examples/serving_loop > "$out/serving.txt" &
  local serve_pid=$!
  local port=""
  for _ in $(seq 1 100); do
    if [[ -s "$port_file" ]]; then port="$(cat "$port_file")"; break; fi
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "serving_loop never published its introspection port"
    kill "$serve_pid" 2>/dev/null || true
    return 1
  fi
  sleep 1  # let a little scrape-demo traffic land in the windows
  python3 - "$port" <<'PY'
import json, sys, urllib.request

port = sys.argv[1]
def get(path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as r:
        return r.status, r.read().decode()

status, body = get("/healthz")
assert status == 200 and body == "ok\n", f"/healthz: {status} {body!r}"

status, metrics = get("/metrics")
assert status == 200, f"/metrics: {status}"
for series in (
    'metaprobe_db_health_score{db="pubmed"}',
    'metaprobe_db_health_score{db="medlineplus"}',
    'metaprobe_db_health_score{db="sports-daily"}',
    'metaprobe_db_probe_error_rate{db="pubmed"}',
    "metaprobe_db_unhealthy_total",
    'metaprobe_slo_latency_p99_seconds{slo="server_latency"}',
    'metaprobe_slo_burn_rate{slo="server_latency"}',
    "metaprobe_server_requests_total",
    "metaprobe_server_queue_depth",
    "metaprobe_index_mapped_bytes",
    "metaprobe_index_resident_lists",
):
    assert series in metrics, f"/metrics missing series: {series}"
# The serving example maps one index, so the gauge must read nonzero.
for line in metrics.splitlines():
    if line.startswith("metaprobe_index_mapped_bytes "):
        assert float(line.split()[1]) > 0, \
            "metaprobe_index_mapped_bytes is zero with a mapped index live"
        break
else:
    raise AssertionError("no metaprobe_index_mapped_bytes sample line")

status, body = get("/statusz")
statusz = json.loads(body)
assert status == 200, f"/statusz: {status}"
assert "build" in statusz and "uptime_seconds" in statusz
assert statusz["server"]["accepted"] >= 1
rows = {db["name"]: db for db in statusz["databases"]}
for name in ("pubmed", "medlineplus", "sports-daily"):
    assert name in rows, f"/statusz missing health row for {name}"
    for field in ("probes", "error_rate", "health_score", "healthy"):
        assert field in rows[name], f"health row {name} missing {field}"
assert any(row["probes"] > 0 for row in rows.values()), \
    "no backend recorded any probes — health windows are empty"
assert statusz["slos"][0]["name"] == "server_latency"
# Per-database storage rows: every index serves frozen, and the mapped
# one reports its bytes under mapped_bytes, not heap_bytes.
storage = {row["name"]: row for row in statusz["storage"]}
for name in ("pubmed", "medlineplus", "sports-daily"):
    assert name in storage, f"/statusz missing storage row for {name}"
    for field in ("heap_bytes", "mapped_bytes", "frozen", "mapped"):
        assert field in storage[name], f"storage row {name} missing {field}"
    assert storage[name]["frozen"], f"{name} index is not frozen"
assert storage["pubmed"]["mapped"] and storage["pubmed"]["mapped_bytes"] > 0, \
    "pubmed should serve from a mapped index"
assert not storage["medlineplus"]["mapped"], \
    "medlineplus should be heap-backed"

status, body = get("/tracez")
tracez = json.loads(body)
assert status == 200, f"/tracez: {status}"
assert "slow_threshold_seconds" in tracez
assert tracez["recent"], "/tracez has no recent traces"

print(f"introspection scrape ok: {len(statusz['databases'])} health rows, "
      f"{len(tracez['recent'])} recent traces")
PY
  wait "$serve_pid"
  # Committed benchmark artifacts match the schema.
  python3 tools/validate_bench.py BENCH_*.json
  # Serving load generator at smoke scale: the run itself asserts that
  # deadline-expired requests degrade instead of erroring, and the JSON it
  # writes must satisfy the serving schema.
  cmake --build build-release -j "$JOBS" --target load_gen
  METAPROBE_TRAIN=60 METAPROBE_TEST=24 METAPROBE_REQUESTS=48 \
    METAPROBE_LATENCY_US=1000 METAPROBE_DEADLINE_US=1500 \
    ./build-release/bench/load_gen --json="$out/BENCH_serving.json"
  python3 tools/validate_bench.py "$out/BENCH_serving.json"
}

if [[ "${METAPROBE_SKIP_RELEASE:-0}" != "1" ]]; then
  run_release
fi
if [[ "${METAPROBE_SKIP_TSAN:-0}" != "1" ]]; then
  run_tsan
fi
if [[ "${METAPROBE_SKIP_UBSAN:-0}" != "1" ]]; then
  run_ubsan
fi
if [[ "${METAPROBE_SKIP_ASAN:-0}" != "1" ]]; then
  run_asan
fi
if [[ "${METAPROBE_SKIP_LINT:-0}" != "1" ]]; then
  run_lint
fi
if [[ "${METAPROBE_SKIP_SMOKE:-0}" != "1" ]]; then
  run_smoke
fi
echo "=== all checks passed ==="
