#!/usr/bin/env python3
# Copyright 2026 The metaprobe Authors
"""Project-invariant lint for the metaprobe source tree.

Enforces three invariants the compiler cannot, over the first-party
sources listed in a CMake compile_commands.json (plus their headers):

  wall-clock   Direct time/randomness outside the injection seams.
               `std::chrono::*_clock::now()`, `rand()` / `std::rand()`,
               and `std::random_device` are banned in src/ except inside
               src/common/ and the obs/clock timebase: everything else
               must take a MonotonicClock* (or a seeded stats::Rng) so
               tests can inject FakeClock and fixed seeds. Tests, benches
               and examples are exempt — wall time is legitimate there.

  metric-names Every `metaprobe_*` metric family name used in src/ must
               be listed in tools/lint/metric_names.txt and vice versa
               (bidirectional): no undocumented series, no stale entries.

  index-internal  src/index/'s codec internals (bitpack.h,
               varint_codec.h, simd_intersect.h) are implementation
               details of the index layer; only files under src/index/
               may include them. Everyone else goes through the public
               posting_list / inverted_index interfaces.

Exit status: 0 clean, 1 violations (one per line on stdout), 2 usage or
environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

# Files the wall-clock check skips, relative to the source root (src/).
# common/ holds the annotation/mutex substrate; obs/clock.{h,cc} IS the
# injection seam that wraps the real clock.
WALL_CLOCK_EXEMPT_PREFIXES = ("common/",)
WALL_CLOCK_EXEMPT_FILES = ("obs/clock.h", "obs/clock.cc")

# index/ headers that are internal to the index layer.
INTERNAL_INDEX_HEADERS = ("bitpack.h", "varint_codec.h", "simd_intersect.h")

WALL_CLOCK_PATTERNS = (
    (re.compile(r"std::chrono::(?:steady|system|high_resolution)_clock::now"),
     "direct std::chrono::*_clock::now() — inject obs::MonotonicClock"),
    (re.compile(r"(?<![A-Za-z0-9_:.])(?:std::)?s?rand\s*\("),
     "rand()/srand() — use a seeded stats::Rng"),
    (re.compile(r"std::random_device"),
     "std::random_device — use a seeded stats::Rng"),
)

METRIC_LITERAL = re.compile(r'"(metaprobe_[a-z0-9_]+)"')

INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]+"index/([A-Za-z0-9_./]+)"',
                        re.MULTILINE)


@dataclass
class Violation:
    path: str       # relative to the repo root
    line: int       # 1-based; 0 = file-level
    check: str
    message: str

    def __str__(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.check}] {self.message}"


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments, preserving newlines (and hence
    line numbers) and string literals."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # string or char
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif (state == "string" and c == '"') or \
                 (state == "char" and c == "'"):
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def check_wall_clock(rel: str, code: str) -> list[Violation]:
    if rel.startswith(WALL_CLOCK_EXEMPT_PREFIXES) or \
            rel in WALL_CLOCK_EXEMPT_FILES:
        return []
    found = []
    for pattern, why in WALL_CLOCK_PATTERNS:
        for m in pattern.finditer(code):
            found.append(Violation(f"src/{rel}", line_of(code, m.start()),
                                   "wall-clock", why))
    return found


def check_internal_includes(rel: str, code: str) -> list[Violation]:
    if rel.startswith("index/"):
        return []
    found = []
    for m in INCLUDE_RE.finditer(code):
        header = m.group(1)
        if header in INTERNAL_INDEX_HEADERS:
            found.append(Violation(
                f"src/{rel}", line_of(code, m.start()), "index-internal",
                f'#include "index/{header}" outside src/index/ — use the '
                "posting_list / inverted_index interfaces"))
    return found


def collect_metric_names(code: str) -> set[str]:
    return set(METRIC_LITERAL.findall(code))


def load_metric_names(path: str) -> set[str]:
    names = set()
    with open(path, encoding="utf-8") as f:
        for raw in f:
            entry = raw.split("#", 1)[0].strip()
            if entry:
                names.add(entry)
    return names


def check_metric_names(used: dict[str, list[str]], declared: set[str],
                       names_path: str) -> list[Violation]:
    found = []
    for name in sorted(set(used) - declared):
        files = ", ".join(sorted(used[name])[:3])
        found.append(Violation(
            names_path, 0, "metric-names",
            f"metric '{name}' (used in {files}) is not listed — add it"))
    for name in sorted(declared - set(used)):
        found.append(Violation(
            names_path, 0, "metric-names",
            f"listed metric '{name}' no longer appears in src/ — stale "
            "entry, remove it"))
    return found


def source_files(repo_root: str, compile_commands: str | None) -> list[str]:
    """First-party sources: TUs under src/ from compile_commands.json plus
    every header under src/ (headers never appear as TUs but carry
    includes, inline code, and metric literals)."""
    src_root = os.path.join(repo_root, "src")
    files = set()
    if compile_commands:
        with open(compile_commands, encoding="utf-8") as f:
            for entry in json.load(f):
                path = entry["file"]
                if not os.path.isabs(path):
                    path = os.path.join(entry.get("directory", ""), path)
                path = os.path.realpath(path)
                if path.startswith(os.path.realpath(src_root) + os.sep):
                    files.add(path)
    else:
        for dirpath, _, names in os.walk(src_root):
            for name in names:
                if name.endswith((".cc", ".cpp")):
                    files.add(os.path.join(dirpath, name))
    for dirpath, _, names in os.walk(src_root):
        for name in names:
            if name.endswith(".h"):
                files.add(os.path.join(dirpath, name))
    return sorted(files)


def run_lint(repo_root: str, names_path: str,
             compile_commands: str | None = None) -> list[Violation]:
    src_root = os.path.realpath(os.path.join(repo_root, "src"))
    violations = []
    used_metrics: dict[str, list[str]] = {}
    for path in source_files(repo_root, compile_commands):
        rel = os.path.relpath(os.path.realpath(path), src_root)
        with open(path, encoding="utf-8", errors="replace") as f:
            code = strip_comments(f.read())
        violations += check_wall_clock(rel, code)
        violations += check_internal_includes(rel, code)
        for name in collect_metric_names(code):
            used_metrics.setdefault(name, []).append(f"src/{rel}")
    declared = load_metric_names(names_path)
    rel_names = os.path.relpath(names_path, repo_root)
    violations += check_metric_names(used_metrics, declared, rel_names)
    violations.sort(key=lambda v: (v.path, v.line, v.check))
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json to take the TU list "
                        "from (default: <root>/build/compile_commands.json "
                        "when present, else walk src/)")
    parser.add_argument("--metric-names", default=None,
                        help="metric inventory file (default: "
                        "tools/lint/metric_names.txt)")
    args = parser.parse_args(argv)

    root = args.root or os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"error: no src/ under {root}", file=sys.stderr)
        return 2
    names = args.metric_names or os.path.join(root, "tools", "lint",
                                              "metric_names.txt")
    compile_commands = args.compile_commands
    if compile_commands is None:
        default_cc = os.path.join(root, "build", "compile_commands.json")
        if os.path.exists(default_cc):
            compile_commands = default_cc

    violations = run_lint(root, names, compile_commands)
    for violation in violations:
        print(violation)
    if violations:
        print(f"metaprobe_lint: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
