#!/usr/bin/env bash
# Copyright 2026 The metaprobe Authors
#
# One-command static-analysis pass:
#
#   tools/lint/run.sh [build-dir]
#
#  1. metaprobe_lint.py        project invariants (always; needs python3)
#  2. clang -Wthread-safety    thread-safety analysis over every src/ TU
#                              (skipped when clang++ is not installed)
#  3. clang-tidy               .clang-tidy baseline over src/ TUs
#                              (skipped when clang-tidy is not installed)
#
# Steps 2 and 3 consume <build-dir>/compile_commands.json, which the
# top-level CMakeLists exports unconditionally; the script configures the
# build directory if the file is missing. Exit status is non-zero when any
# executed step finds a problem. CI installs clang so all three steps run
# there; locally a gcc-only box still gets step 1.

set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build}"
FAILED=0

say() { printf '\n=== %s ===\n' "$*"; }

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  say "configuring ${BUILD_DIR} to export compile_commands.json"
  cmake -B "${BUILD_DIR}" -S "${ROOT}" >/dev/null || exit 2
fi
CDB="${BUILD_DIR}/compile_commands.json"

say "metaprobe_lint (project invariants)"
if command -v python3 >/dev/null 2>&1; then
  python3 "${ROOT}/tools/lint/metaprobe_lint.py" \
    --root "${ROOT}" --compile-commands "${CDB}" || FAILED=1
else
  echo "python3 not found; cannot run the invariant lint" >&2
  FAILED=1
fi

# src/ TUs from the compilation database (python is already a dependency).
mapfile -t SRC_FILES < <(python3 - "$CDB" "$ROOT" <<'EOF'
import json, os, sys
cdb, root = sys.argv[1], os.path.realpath(sys.argv[2])
src = os.path.join(root, "src") + os.sep
for entry in json.load(open(cdb)):
    path = entry["file"]
    if not os.path.isabs(path):
        path = os.path.join(entry.get("directory", ""), path)
    path = os.path.realpath(path)
    if path.startswith(src):
        print(path)
EOF
)

say "clang thread-safety analysis"
if command -v clang++ >/dev/null 2>&1; then
  TS_FAILED=0
  for f in "${SRC_FILES[@]}"; do
    clang++ -std=c++20 -I"${ROOT}/src" -fsyntax-only \
      -Wthread-safety -Werror=thread-safety "$f" || TS_FAILED=1
  done
  if [[ ${TS_FAILED} -ne 0 ]]; then
    FAILED=1
  else
    echo "clean (${#SRC_FILES[@]} TUs)"
  fi
else
  echo "clang++ not found; skipping (CI runs this step)"
fi

say "clang-tidy baseline"
if command -v clang-tidy >/dev/null 2>&1; then
  TIDY_FAILED=0
  for f in "${SRC_FILES[@]}"; do
    clang-tidy --quiet --warnings-as-errors='*' -p "${BUILD_DIR}" "$f" \
      || TIDY_FAILED=1
  done
  if [[ ${TIDY_FAILED} -ne 0 ]]; then
    FAILED=1
  else
    echo "clean (${#SRC_FILES[@]} TUs)"
  fi
else
  echo "clang-tidy not found; skipping (CI runs this step)"
fi

exit "${FAILED}"
