#!/usr/bin/env python3
# Copyright 2026 The metaprobe Authors
"""Self-test for metaprobe_lint.py against the testdata/ fixture tree.

pytest collects the test_* functions when available; `python3
metaprobe_lint_test.py` runs them with the stdlib only (the container
has no pytest), so the suite can register as a plain ctest entry.
"""

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import metaprobe_lint  # noqa: E402

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "testdata")
NAMES = os.path.join(TESTDATA, "metric_names.txt")


def fixture_violations(compile_commands=None):
    found = metaprobe_lint.run_lint(TESTDATA, NAMES, compile_commands)
    return [str(v) for v in found]


def matching(lines, check, needle):
    return [l for l in lines if f"[{check}]" in l and needle in l]


def test_wall_clock_violation_flagged():
    lines = fixture_violations()
    assert matching(lines, "wall-clock", "wallclock_violation.cc:5"), lines


def test_rand_and_random_device_flagged():
    lines = fixture_violations()
    assert matching(lines, "wall-clock", "rand_violation.cc:6"), lines
    assert matching(lines, "wall-clock", "rand_violation.cc:7"), lines


def test_exempt_clock_seam_not_flagged():
    lines = fixture_violations()
    assert not [l for l in lines if "obs/clock.h" in l], lines


def test_comments_do_not_trip_checks():
    lines = fixture_violations()
    assert not [l for l in lines if "clean.cc" in l], lines


def test_internal_include_flagged_outside_index():
    lines = fixture_violations()
    assert matching(lines, "index-internal",
                    "internal_include_violation.cc:2"), lines


def test_internal_include_allowed_inside_index():
    lines = fixture_violations()
    assert not [l for l in lines if "uses_internal.cc" in l], lines


def test_public_index_headers_allowed_everywhere():
    lines = fixture_violations()
    # clean.cc includes index/posting_list.h; internal_include_violation.cc
    # also includes the public inverted_index.h — only bitpack.h may flag.
    assert not [l for l in lines if "posting_list.h" in l], lines
    assert not [l for l in lines if "inverted_index.h" in l], lines


def test_undeclared_metric_flagged():
    lines = fixture_violations()
    assert matching(lines, "metric-names", "metaprobe_bogus_total"), lines


def test_stale_metric_entry_flagged():
    lines = fixture_violations()
    assert matching(lines, "metric-names", "metaprobe_stale_total"), lines


def test_declared_and_used_metric_clean():
    lines = fixture_violations()
    assert not [l for l in lines if "metaprobe_fixture_total" in l], lines


def test_compile_commands_scopes_the_tu_list():
    # A database listing only clean.cc: the .cc-level violations vanish
    # (headers are still walked; the fixture headers are clean).
    with tempfile.TemporaryDirectory() as tmp:
        cdb = os.path.join(tmp, "compile_commands.json")
        clean = os.path.join(TESTDATA, "src", "core", "clean.cc")
        with open(cdb, "w", encoding="utf-8") as f:
            json.dump([{"directory": tmp, "file": clean,
                        "command": "c++ -c " + clean}], f)
        lines = fixture_violations(cdb)
        assert not [l for l in lines if "wallclock_violation" in l], lines
        assert not [l for l in lines if "internal_include" in l], lines
        # Bidirectionality still holds for the shrunken TU set.
        assert matching(lines, "metric-names", "metaprobe_stale_total"), lines


def test_violation_count_is_exact():
    # One wall-clock (steady_clock) + two (rand, random_device) + one
    # index-internal + one undeclared metric + one stale entry = 6.
    lines = fixture_violations()
    assert len(lines) == 6, lines


def test_real_tree_is_clean():
    # The shipping source tree must hold its own invariants.
    root = os.path.realpath(os.path.join(TESTDATA, "..", "..", ".."))
    names = os.path.join(root, "tools", "lint", "metric_names.txt")
    found = metaprobe_lint.run_lint(root, names)
    assert not found, [str(v) for v in found]


def test_strip_comments_preserves_lines_and_strings():
    text = 'a(); // rand()\n/* std::random_device\n spans */ b("s");\n'
    stripped = metaprobe_lint.strip_comments(text)
    assert stripped.count("\n") == text.count("\n")
    assert "rand" not in stripped
    assert "random_device" not in stripped
    assert '"s"' in stripped


def main():
    failures = 0
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as exc:
            failures += 1
            print(f"FAIL {name}: {exc}")
    print(f"{len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
