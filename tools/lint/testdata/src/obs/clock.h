// Fixture: the exempt injection seam — the one place a real clock read
// is allowed.
#ifndef FIXTURE_OBS_CLOCK_H_
#define FIXTURE_OBS_CLOCK_H_
#include <chrono>

inline long RealNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

#endif
