// Fixture: reaches into the index layer's codec internals.
#include "index/bitpack.h"
#include "index/inverted_index.h"
