// Fixture: src/index/ may include its own internals — no violation.
#include "index/bitpack.h"
#include "index/varint_codec.h"
