// Fixture: violates nothing. The comment below must not trip the
// wall-clock check: std::chrono::steady_clock::now() and rand() in
// comments are fine, only code counts.
/* Block comments too: std::random_device is mentioned here. */
#include "index/posting_list.h"

const char* kCounterName = "metaprobe_fixture_total";
