// Fixture: direct wall-clock read outside the injection seam.
#include <chrono>

long Now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
