// Fixture: unseeded randomness outside src/common/.
#include <cstdlib>
#include <random>

int Roll() {
  std::random_device device;
  return rand() + static_cast<int>(device());
}
