// Fixture: exports a metric family that metric_names.txt does not list.
const char* kBogus = "metaprobe_bogus_total";
