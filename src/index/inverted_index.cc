#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <new>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "index/index_metrics.h"
#include "index/simd_intersect.h"

namespace metaprobe {
namespace index {

InvertedIndex::~InvertedIndex() {
  if (mapping_ == nullptr) return;
  // Settle the resident-lists gauge for every mapped list a cursor
  // touched. No cursor can be live here (destruction implies exclusive
  // ownership), so the plain read of the flags is race-free.
  std::uint64_t resident = 0;
  for (const PostingList& list : postings_) {
    if (list.is_mapped() && list.resident_counted_) ++resident;
  }
  if (resident > 0) IndexCounters::SubResidentLists(resident);
}

InvertedIndex& InvertedIndex::operator=(InvertedIndex&& other) noexcept {
  if (this != &other) {
    // Destroy-and-move so the overwritten index settles its gauges.
    this->~InvertedIndex();
    new (this) InvertedIndex(std::move(other));
  }
  return *this;
}

void InvertedIndex::Freeze() {
  for (PostingList& list : postings_) list.Freeze();
  frozen_ = true;
}

Status InvertedIndex::EnsureScoringReady() const {
  if (lazy_ == nullptr) return Status::OK();
  LazyScoring* lazy = lazy_.get();
  std::call_once(lazy->once, [this, lazy] {
    // FinalizeScoring writes the scoring members exactly once; call_once
    // publishes them to every waiter, so readers past this point see a
    // fully built (or failed, via the Status) scoring state.
    lazy->status =
        const_cast<InvertedIndex*>(this)->FinalizeScoring(num_docs_);
  });
  return lazy->status;
}

DocId InvertedIndex::Builder::AddDocument(
    const std::vector<std::string>& terms) {
  DocId doc = static_cast<DocId>(doc_token_counts_.size());
  scratch_counts_.clear();
  for (const std::string& term : terms) {
    text::TermId id = vocab_.Intern(term);
    if (id >= postings_.size()) postings_.resize(id + 1);
    scratch_counts_.push_back({id, 1});
  }
  // Fold duplicates: sort by TermId and merge runs. Cheaper than a hash map
  // for typical document sizes.
  std::sort(scratch_counts_.begin(), scratch_counts_.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < scratch_counts_.size();) {
    std::size_t j = i;
    std::uint32_t tf = 0;
    while (j < scratch_counts_.size() &&
           scratch_counts_[j].first == scratch_counts_[i].first) {
      ++tf;
      ++j;
    }
    scratch_counts_[out++] = {scratch_counts_[i].first, tf};
    i = j;
  }
  scratch_counts_.resize(out);
  for (const auto& [id, tf] : scratch_counts_) {
    // Appends are in increasing DocId order by construction, so this cannot
    // fail; surface an invariant violation loudly if it ever does.
    Status st = postings_[id].Append(doc, tf);
    METAPROBE_DCHECK(st.ok(), st.ToString().c_str());
  }
  doc_token_counts_.push_back(static_cast<std::uint32_t>(terms.size()));
  total_tokens_ += terms.size();
  return doc;
}

Result<InvertedIndex> InvertedIndex::Builder::Build() && {
  if (doc_token_counts_.empty()) {
    return Status::FailedPrecondition("cannot build an index with no documents");
  }
  InvertedIndex built;
  built.vocab_ = std::move(vocab_);
  built.postings_ = std::move(postings_);
  built.total_tokens_ = total_tokens_;
  for (PostingList& list : built.postings_) list.ShrinkToFit();
  RETURN_NOT_OK(built.FinalizeScoring(
      static_cast<std::uint32_t>(doc_token_counts_.size())));
  return built;
}

Status InvertedIndex::FinalizeScoring(std::uint32_t num_docs) {
  num_docs_ = num_docs;
  const double n = static_cast<double>(num_docs);
  idf_.assign(postings_.size(), 0.0);
  std::vector<double> norms_sq(num_docs, 0.0);
  for (std::size_t t = 0; t < postings_.size(); ++t) {
    const PostingList& list = postings_[t];
    if (list.empty()) continue;
    // Smoothed idf keeps terms present in every document from zeroing out.
    double idf = std::log((n + 1.0) / (static_cast<double>(list.size()) + 0.5));
    idf_[t] = idf;
    // This pass touches every tf anyway, so it doubles as the deep
    // validation of the v3 directory maxima: a block whose postings do not
    // reach (or exceed) its claimed max_tf would hand WAND an unsound
    // bound, so it is rejected here at load/build time.
    std::size_t span = 0;
    std::uint32_t span_max_seen = 0;
    std::uint64_t iterated = 0;
    for (auto it = list.begin(); it.Valid(); it.Next()) {
      ++iterated;
      if (it.doc() >= num_docs) {
        return Status::InvalidArgument("posting references DocId ", it.doc(),
                                       " but the index has ", num_docs,
                                       " documents");
      }
      if (it.span_index() != span) {
        if (span_max_seen != list.span_max_tf(span)) {
          return Status::InvalidArgument(
              "block ", span, " claims max tf ", list.span_max_tf(span),
              " but its postings reach ", span_max_seen);
        }
        span = it.span_index();
        span_max_seen = 0;
      }
      span_max_seen = std::max(span_max_seen, it.tf());
      double w = (1.0 + std::log(static_cast<double>(it.tf()))) * idf;
      norms_sq[it.doc()] += w * w;
    }
    if (span_max_seen != list.span_max_tf(span)) {
      return Status::InvalidArgument(
          "block ", span, " claims max tf ", list.span_max_tf(span),
          " but its postings reach ", span_max_seen);
    }
    if (iterated != list.size()) {
      // A lazily decoded mapped block that contradicted its directory
      // exhausts its cursor early (posting_list.cc LoadSpan); this is
      // where that sticky failure surfaces as an error.
      return Status::InvalidArgument("posting list iterates ", iterated,
                                     " postings but claims ", list.size(),
                                     " (corrupt mapped block?)");
    }
  }
  doc_norms_.resize(norms_sq.size());
  for (std::size_t d = 0; d < norms_sq.size(); ++d) {
    doc_norms_[d] = norms_sq[d] > 0.0 ? std::sqrt(norms_sq[d]) : 1.0;
  }

  // Second pass: per-span WAND score bounds. Only the gap sections are
  // decoded — the tf side of each bound comes from the directory max_tf
  // validated above. The slack factor keeps the stored bound a few ulps
  // above the true maximum so no floating-point rounding of the
  // bound-product can ever prune a document the exhaustive scorer keeps.
  constexpr double kBoundSlack = 1.0 + 1e-12;
  span_bounds_.assign(postings_.size(), {});
  max_impact_.assign(postings_.size(), 0.0);
  for (std::size_t t = 0; t < postings_.size(); ++t) {
    const PostingList& list = postings_[t];
    if (list.empty()) continue;
    std::vector<double>& bounds = span_bounds_[t];
    bounds.assign(list.num_spans(), 0.0);
    std::size_t span = 0;
    double inv_norm_max = 0.0;
    auto flush = [&](std::size_t s) {
      const double tf_side =
          1.0 + std::log(static_cast<double>(list.span_max_tf(s)));
      bounds[s] = tf_side * idf_[t] * inv_norm_max * kBoundSlack;
    };
    for (auto it = list.begin(); it.Valid(); it.Next()) {
      if (it.span_index() != span) {
        flush(span);
        span = it.span_index();
        inv_norm_max = 0.0;
      }
      inv_norm_max = std::max(inv_norm_max, 1.0 / doc_norms_[it.doc()]);
    }
    flush(span);
    max_impact_[t] = *std::max_element(bounds.begin(), bounds.end());
  }
  return Status::OK();
}

std::uint32_t InvertedIndex::DocumentFrequency(std::string_view term) const {
  const PostingList* list = Postings(term);
  return list == nullptr ? 0 : list->size();
}

const PostingList* InvertedIndex::Postings(std::string_view term) const {
  text::TermId id = vocab_.Lookup(term);
  if (id == text::kInvalidTermId || id >= postings_.size()) return nullptr;
  const PostingList& list = postings_[id];
  return list.empty() ? nullptr : &list;
}

template <typename Fn>
void InvertedIndex::DenseIntersectPair(const PostingList& a,
                                       const PostingList& b, Fn fn) const {
  PostingList::Iterator ia = a.begin();
  PostingList::Iterator ib = b.begin();
  DocId matches[PostingList::kBlockSize];
  while (ia.Valid() && ib.Valid()) {
    // Align the decoded spans: a span wholly before the other cursor's
    // document is jumped via the directory, not scanned.
    if (ia.span_last() < ib.doc()) {
      ia.SkipTo(ib.doc());
      continue;
    }
    if (ib.span_last() < ia.doc()) {
      ib.SkipTo(ia.doc());
      continue;
    }
    // Overlapping spans: hand both contiguous remainders to the SIMD
    // kernel. Everything up to the earlier span end is fully resolved by
    // this one call.
    const std::size_t n =
        IntersectSorted(ia.span_remaining(), ia.span_remaining_len(),
                        ib.span_remaining(), ib.span_remaining_len(), matches);
    IndexCounters::CountSimdIntersections(1);
    for (std::size_t m = 0; m < n; ++m) {
      if (!fn(matches[m])) return;
    }
    const DocId boundary = std::min(ia.span_last(), ib.span_last());
    if (boundary == std::numeric_limits<DocId>::max()) return;
    ia.SkipTo(boundary + 1);
    ib.SkipTo(boundary + 1);
  }
}

template <typename Fn>
void InvertedIndex::IntersectPostings(std::vector<const PostingList*> lists,
                                      Fn fn) const {
  // Rarest list drives the intersection.
  std::sort(lists.begin(), lists.end(),
            [](const PostingList* a, const PostingList* b) {
              return a->size() < b->size();
            });
  // Dense pairs — both lists at least a block, sizes within 8x — are
  // better served by the vector merge over whole decoded spans than by the
  // gallop, which advances a couple of postings per branchy probe.
  if (lists.size() == 2 && lists[0]->size() >= PostingList::kBlockSize &&
      lists[1]->size() <= static_cast<std::uint64_t>(lists[0]->size()) * 8) {
    DenseIntersectPair(*lists[0], *lists[1], std::move(fn));
    return;
  }
  std::vector<PostingList::Iterator> its;
  its.reserve(lists.size());
  for (const PostingList* list : lists) its.push_back(list->begin());

  while (its[0].Valid()) {
    DocId candidate = its[0].doc();
    bool all_match = true;
    for (std::size_t i = 1; i < its.size(); ++i) {
      its[i].SkipTo(candidate);
      if (!its[i].Valid()) return;
      if (its[i].doc() != candidate) {
        all_match = false;
        // Restart the scan from the larger DocId.
        its[0].SkipTo(its[i].doc());
        break;
      }
    }
    if (all_match) {
      if (!fn(candidate)) return;
      its[0].Next();
    }
  }
}

namespace {

// Deduplicates query terms, preserving first-seen order.
std::vector<std::string_view> UniqueTerms(
    const std::vector<std::string>& terms) {
  std::vector<std::string_view> unique;
  unique.reserve(terms.size());
  for (const std::string& t : terms) {
    if (std::find(unique.begin(), unique.end(), t) == unique.end()) {
      unique.push_back(t);
    }
  }
  return unique;
}

}  // namespace

std::uint64_t InvertedIndex::CountConjunctive(
    const std::vector<std::string>& terms) const {
  std::vector<std::string_view> unique = UniqueTerms(terms);
  if (unique.empty()) return 0;
  std::vector<const PostingList*> lists;
  lists.reserve(unique.size());
  for (std::string_view term : unique) {
    const PostingList* list = Postings(term);
    if (list == nullptr) return 0;
    lists.push_back(list);
  }
  if (lists.size() == 1) return lists[0]->size();
  std::uint64_t count = 0;
  IntersectPostings(std::move(lists), [&count](DocId) {
    ++count;
    return true;
  });
  return count;
}

std::vector<std::uint64_t> InvertedIndex::CountConjunctiveBatch(
    const std::vector<const std::vector<std::string>*>& queries,
    ThreadPool* pool) const {
  std::vector<std::uint64_t> counts(queries.size(), 0);

  // Phase 1 (sequential): memoized term -> posting-list resolution plus
  // per-query canonicalization. Each distinct term costs one hash across
  // the whole batch, and each query's lists are deduplicated and ordered
  // rarest-first exactly once here — the intersections below never touch
  // strings again. The views key into the callers' term strings, which
  // outlive this call.
  std::unordered_map<std::string_view, const PostingList*> resolved;
  std::vector<std::vector<const PostingList*>> canonical(queries.size());
  std::vector<const PostingList*> scratch;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::vector<std::string>& terms = *queries[q];
    if (terms.empty()) continue;
    scratch.clear();
    bool missing_term = false;
    for (const std::string& term : terms) {
      auto [it, inserted] = resolved.try_emplace(term, nullptr);
      if (inserted) it->second = Postings(term);
      if (it->second == nullptr) {
        missing_term = true;
        break;
      }
      scratch.push_back(it->second);
    }
    if (missing_term) continue;
    // Distinct terms own distinct lists, so pointer identity is term
    // identity: one (size, pointer) sort both orders the intersection
    // rarest-first and makes duplicate terms adjacent for removal.
    std::sort(scratch.begin(), scratch.end(),
              [](const PostingList* a, const PostingList* b) {
                if (a->size() != b->size()) return a->size() < b->size();
                return a < b;
              });
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    if (scratch.size() == 1) {
      counts[q] = scratch[0]->size();
      continue;
    }
    canonical[q] = scratch;
  }

  // Phase 2: the intersections, embarrassingly parallel — every chunk
  // reads shared immutable state and writes only its own count slots, so
  // pooled and sequential execution produce identical results.
  ParallelForRanges(pool, queries.size(), [this, &canonical, &counts](
                                              std::size_t begin,
                                              std::size_t end) {
    for (std::size_t q = begin; q < end; ++q) {
      if (canonical[q].empty()) continue;
      std::uint64_t count = 0;
      IntersectPostings(canonical[q], [&count](DocId) {
        ++count;
        return true;
      });
      counts[q] = count;
    }
  });
  return counts;
}

std::vector<std::uint64_t> InvertedIndex::CountConjunctiveBatch(
    const std::vector<std::vector<std::string>>& queries,
    ThreadPool* pool) const {
  std::vector<const std::vector<std::string>*> ptrs;
  ptrs.reserve(queries.size());
  for (const std::vector<std::string>& q : queries) ptrs.push_back(&q);
  return CountConjunctiveBatch(ptrs, pool);
}

std::vector<DocId> InvertedIndex::FindConjunctive(
    const std::vector<std::string>& terms, std::size_t limit) const {
  std::vector<DocId> docs;
  std::vector<std::string_view> unique = UniqueTerms(terms);
  if (unique.empty() || limit == 0) return docs;
  std::vector<const PostingList*> lists;
  for (std::string_view term : unique) {
    const PostingList* list = Postings(term);
    if (list == nullptr) return docs;
    lists.push_back(list);
  }
  IntersectPostings(std::move(lists), [&docs, limit](DocId doc) {
    docs.push_back(doc);
    return docs.size() < limit;
  });
  std::sort(docs.begin(), docs.end());
  return docs;
}

std::vector<std::pair<text::TermId, std::uint32_t>>
InvertedIndex::QueryTermFreqs(const std::vector<std::string>& terms) const {
  std::vector<std::pair<text::TermId, std::uint32_t>> out;
  out.reserve(terms.size());
  for (const std::string& term : terms) {
    text::TermId id = vocab_.Lookup(term);
    if (id != text::kInvalidTermId && id < postings_.size() &&
        !postings_[id].empty()) {
      out.push_back({id, 1});
    }
  }
  std::sort(out.begin(), out.end());
  std::size_t w = 0;
  for (std::size_t i = 0; i < out.size();) {
    std::size_t j = i;
    std::uint32_t qtf = 0;
    while (j < out.size() && out[j].first == out[i].first) {
      ++qtf;
      ++j;
    }
    out[w++] = {out[i].first, qtf};
    i = j;
  }
  out.resize(w);
  return out;
}

std::vector<ScoredDoc> InvertedIndex::TopKCosineExhaustive(
    const std::vector<std::string>& terms, std::size_t k) const {
  std::vector<ScoredDoc> result;
  if (k == 0 || terms.empty()) return result;
  const Status scoring = EnsureScoringReady();
  METAPROBE_DCHECK(scoring.ok(), scoring.ToString().c_str());
  const auto query = QueryTermFreqs(terms);
  if (query.empty()) return result;

  // Accumulation runs in ascending TermId order — the order the WAND
  // driver replays per document, which is what makes the two scorers
  // bit-identical.
  double query_norm_sq = 0.0;
  std::unordered_map<DocId, double> accumulator;
  for (const auto& [id, qtf] : query) {
    double qw = (1.0 + std::log(static_cast<double>(qtf))) * idf_[id];
    query_norm_sq += qw * qw;
    for (auto it = postings_[id].begin(); it.Valid(); it.Next()) {
      double dw = (1.0 + std::log(static_cast<double>(it.tf()))) * idf_[id];
      accumulator[it.doc()] += qw * dw / doc_norms_[it.doc()];
    }
  }
  double query_norm = query_norm_sq > 0.0 ? std::sqrt(query_norm_sq) : 1.0;

  result.reserve(accumulator.size());
  for (const auto& [doc, score] : accumulator) {
    result.push_back({doc, score / query_norm});
  }
  std::size_t keep = std::min(k, result.size());
  std::partial_sort(result.begin(), result.begin() + keep, result.end(),
                    [](const ScoredDoc& a, const ScoredDoc& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.doc < b.doc;
                    });
  result.resize(keep);
  return result;
}

std::vector<ScoredDoc> InvertedIndex::TopKCosine(
    const std::vector<std::string>& terms, std::size_t k) const {
  std::vector<ScoredDoc> result;
  if (k == 0 || terms.empty()) return result;
  const Status scoring = EnsureScoringReady();
  METAPROBE_DCHECK(scoring.ok(), scoring.ToString().c_str());
  const auto query = QueryTermFreqs(terms);
  if (query.empty()) return result;

  struct Cursor {
    PostingList::Iterator it;
    const PostingList* list;
    const double* bounds;  // per-span score bounds of this term's list
    double qw;
    double idf;
    double list_ub;  // qw * max bound across spans
    text::TermId id;
  };
  double query_norm_sq = 0.0;
  std::vector<Cursor> storage;
  storage.reserve(query.size());
  for (const auto& [id, qtf] : query) {
    const double qw = (1.0 + std::log(static_cast<double>(qtf))) * idf_[id];
    query_norm_sq += qw * qw;
    storage.push_back({postings_[id].begin(), &postings_[id],
                       span_bounds_[id].data(), qw, idf_[id],
                       qw * max_impact_[id], id});
  }
  const double query_norm =
      query_norm_sq > 0.0 ? std::sqrt(query_norm_sq) : 1.0;

  // Worst-at-front heap of final scores under the exhaustive ordering
  // (score desc, DocId asc), so threshold pruning — strict `< theta` only —
  // and tie handling agree with TopKCosineExhaustive exactly. Candidates
  // arrive in strictly increasing DocId order, so an incumbent tied on
  // score always has the smaller DocId and correctly survives.
  auto better = [](const ScoredDoc& x, const ScoredDoc& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.doc < y.doc;
  };
  std::vector<ScoredDoc> heap;
  heap.reserve(k);
  double theta = -1.0;  // below any real score until the heap fills

  auto doc_order = [](const Cursor* x, const Cursor* y) {
    if (x->it.doc() != y->it.doc()) return x->it.doc() < y->it.doc();
    return x->id < y->id;
  };
  std::vector<Cursor*> cursors;
  cursors.reserve(storage.size());
  for (Cursor& c : storage) cursors.push_back(&c);
  std::sort(cursors.begin(), cursors.end(), doc_order);

  constexpr DocId kMaxDoc = std::numeric_limits<DocId>::max();
  std::uint64_t wand_skipped_blocks = 0;
  std::vector<std::size_t> pivot_spans;  // refinement scratch

  while (!cursors.empty()) {
    // Pivot: shortest cursor prefix whose summed list-level bounds could
    // reach the threshold, extended over cursors sharing the pivot's
    // document. Bounds divide by query_norm before comparing so they live
    // in the same final-score space as theta (division is monotone, so an
    // upper bound stays an upper bound).
    double acc = 0.0;
    std::size_t pivot = cursors.size();
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      acc += cursors[i]->list_ub;
      if (acc / query_norm >= theta) {
        pivot = i;
        break;
      }
    }
    if (pivot == cursors.size()) break;  // nothing left can enter the top k
    const DocId pivot_doc = cursors[pivot]->it.doc();
    while (pivot + 1 < cursors.size() &&
           cursors[pivot + 1]->it.doc() == pivot_doc) {
      ++pivot;
    }

    // Refine with the per-block bounds at pivot_doc (directory lookups
    // only — nothing is decoded). A cursor whose list ends before
    // pivot_doc contributes nothing and imposes no span boundary.
    double block_acc = 0.0;
    DocId min_span_last = kMaxDoc;
    pivot_spans.assign(pivot + 1, 0);
    for (std::size_t i = 0; i <= pivot; ++i) {
      const Cursor* c = cursors[i];
      const std::size_t s =
          c->list->FindSpanContaining(pivot_doc, c->it.span_index());
      pivot_spans[i] = s;
      if (s < c->list->num_spans()) {
        block_acc += c->qw * c->bounds[s];
        min_span_last = std::min(min_span_last, c->list->span_last_doc(s));
      }
    }

    if (block_acc / query_norm >= theta) {
      if (cursors[0]->it.doc() == pivot_doc) {
        // Every cursor up to the pivot sits on pivot_doc: evaluate it.
        // The prefix is ordered by TermId (doc_order tie rule), giving the
        // exhaustive scorer's exact accumulation sequence.
        double sum = 0.0;
        for (std::size_t i = 0; i < cursors.size() &&
                                cursors[i]->it.doc() == pivot_doc;
             ++i) {
          Cursor* c = cursors[i];
          const double dw =
              (1.0 + std::log(static_cast<double>(c->it.tf()))) * c->idf;
          sum += c->qw * dw / doc_norms_[pivot_doc];
          c->it.Next();
        }
        const ScoredDoc candidate{pivot_doc, sum / query_norm};
        if (heap.size() < k) {
          heap.push_back(candidate);
          std::push_heap(heap.begin(), heap.end(), better);
          if (heap.size() == k) theta = heap.front().score;
        } else if (better(candidate, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), better);
          heap.back() = candidate;
          std::push_heap(heap.begin(), heap.end(), better);
          theta = heap.front().score;
        }
      } else {
        // A cursor below the pivot trails it: advance the trailing cursor
        // with the largest bound up to the pivot document.
        std::size_t which = cursors.size();
        for (std::size_t i = 0; i < pivot; ++i) {
          if (cursors[i]->it.doc() < pivot_doc &&
              (which == cursors.size() ||
               cursors[i]->list_ub > cursors[which]->list_ub)) {
            which = i;
          }
        }
        cursors[which]->it.SkipTo(pivot_doc);
      }
    } else {
      // Block-max pruning: the blocks holding pivot_doc cannot reach the
      // threshold, so every cursor in the prefix jumps past the earliest
      // of those blocks (or to the next cursor's document, whichever is
      // nearer) without decoding anything in between.
      const std::uint64_t next_doc =
          pivot + 1 < cursors.size()
              ? cursors[pivot + 1]->it.doc()
              : static_cast<std::uint64_t>(kMaxDoc) + 1;
      const std::uint64_t target = std::min(
          static_cast<std::uint64_t>(min_span_last) + 1, next_doc);
      if (target > kMaxDoc) break;  // current spans reach the DocId horizon
      const DocId skip_to = static_cast<DocId>(target);
      for (std::size_t i = 0; i <= pivot; ++i) {
        Cursor* c = cursors[i];
        const std::size_t s = pivot_spans[i];
        // The span holding pivot_doc was certified un-competitive; if the
        // skip clears it, that block was pruned — its postings past the
        // cursor are never evaluated and its tf section never decoded.
        if (s < c->list->num_spans() && skip_to > c->list->span_last_doc(s)) {
          ++wand_skipped_blocks;
        }
        c->it.SkipTo(skip_to);
      }
    }

    std::erase_if(cursors, [](const Cursor* c) { return !c->it.Valid(); });
    std::sort(cursors.begin(), cursors.end(), doc_order);
  }

  IndexCounters::CountWandBlocksSkipped(wand_skipped_blocks);
  std::sort_heap(heap.begin(), heap.end(), better);
  return heap;
}

double InvertedIndex::BestCosineScore(
    const std::vector<std::string>& terms) const {
  std::vector<ScoredDoc> top = TopKCosine(terms, 1);
  return top.empty() ? 0.0 : top.front().score;
}

IndexStats InvertedIndex::GetStats() const {
  IndexStats stats;
  stats.num_docs = num_docs();
  stats.total_tokens = total_tokens_;
  for (const PostingList& list : postings_) {
    if (list.empty()) continue;
    ++stats.num_terms;
    stats.num_postings += list.size();
    stats.posting_bytes += list.ByteSize();
    stats.heap_bytes += list.HeapByteSize();
    stats.mapped_bytes += list.MappedByteSize();
  }
  return stats;
}

}  // namespace index
}  // namespace metaprobe
