#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"

namespace metaprobe {
namespace index {

DocId InvertedIndex::Builder::AddDocument(
    const std::vector<std::string>& terms) {
  DocId doc = static_cast<DocId>(doc_token_counts_.size());
  scratch_counts_.clear();
  for (const std::string& term : terms) {
    text::TermId id = vocab_.Intern(term);
    if (id >= postings_.size()) postings_.resize(id + 1);
    scratch_counts_.push_back({id, 1});
  }
  // Fold duplicates: sort by TermId and merge runs. Cheaper than a hash map
  // for typical document sizes.
  std::sort(scratch_counts_.begin(), scratch_counts_.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < scratch_counts_.size();) {
    std::size_t j = i;
    std::uint32_t tf = 0;
    while (j < scratch_counts_.size() &&
           scratch_counts_[j].first == scratch_counts_[i].first) {
      ++tf;
      ++j;
    }
    scratch_counts_[out++] = {scratch_counts_[i].first, tf};
    i = j;
  }
  scratch_counts_.resize(out);
  for (const auto& [id, tf] : scratch_counts_) {
    // Appends are in increasing DocId order by construction, so this cannot
    // fail; surface an invariant violation loudly if it ever does.
    Status st = postings_[id].Append(doc, tf);
    METAPROBE_DCHECK(st.ok(), st.ToString().c_str());
  }
  doc_token_counts_.push_back(static_cast<std::uint32_t>(terms.size()));
  total_tokens_ += terms.size();
  return doc;
}

Result<InvertedIndex> InvertedIndex::Builder::Build() && {
  if (doc_token_counts_.empty()) {
    return Status::FailedPrecondition("cannot build an index with no documents");
  }
  InvertedIndex built;
  built.vocab_ = std::move(vocab_);
  built.postings_ = std::move(postings_);
  built.total_tokens_ = total_tokens_;
  for (PostingList& list : built.postings_) list.ShrinkToFit();
  RETURN_NOT_OK(built.FinalizeScoring(
      static_cast<std::uint32_t>(doc_token_counts_.size())));
  return built;
}

Status InvertedIndex::FinalizeScoring(std::uint32_t num_docs) {
  const double n = static_cast<double>(num_docs);
  idf_.assign(postings_.size(), 0.0);
  std::vector<double> norms_sq(num_docs, 0.0);
  for (std::size_t t = 0; t < postings_.size(); ++t) {
    const PostingList& list = postings_[t];
    if (list.empty()) continue;
    // Smoothed idf keeps terms present in every document from zeroing out.
    double idf = std::log((n + 1.0) / (static_cast<double>(list.size()) + 0.5));
    idf_[t] = idf;
    for (auto it = list.begin(); it.Valid(); it.Next()) {
      if (it.doc() >= num_docs) {
        return Status::InvalidArgument("posting references DocId ", it.doc(),
                                       " but the index has ", num_docs,
                                       " documents");
      }
      double w = (1.0 + std::log(static_cast<double>(it.tf()))) * idf;
      norms_sq[it.doc()] += w * w;
    }
  }
  doc_norms_.resize(norms_sq.size());
  for (std::size_t d = 0; d < norms_sq.size(); ++d) {
    doc_norms_[d] = norms_sq[d] > 0.0 ? std::sqrt(norms_sq[d]) : 1.0;
  }
  return Status::OK();
}

std::uint32_t InvertedIndex::DocumentFrequency(std::string_view term) const {
  const PostingList* list = Postings(term);
  return list == nullptr ? 0 : list->size();
}

const PostingList* InvertedIndex::Postings(std::string_view term) const {
  text::TermId id = vocab_.Lookup(term);
  if (id == text::kInvalidTermId || id >= postings_.size()) return nullptr;
  const PostingList& list = postings_[id];
  return list.empty() ? nullptr : &list;
}

template <typename Fn>
void InvertedIndex::IntersectPostings(std::vector<const PostingList*> lists,
                                      Fn fn) const {
  // Rarest list drives the intersection.
  std::sort(lists.begin(), lists.end(),
            [](const PostingList* a, const PostingList* b) {
              return a->size() < b->size();
            });
  std::vector<PostingList::Iterator> its;
  its.reserve(lists.size());
  for (const PostingList* list : lists) its.push_back(list->begin());

  while (its[0].Valid()) {
    DocId candidate = its[0].doc();
    bool all_match = true;
    for (std::size_t i = 1; i < its.size(); ++i) {
      its[i].SkipTo(candidate);
      if (!its[i].Valid()) return;
      if (its[i].doc() != candidate) {
        all_match = false;
        // Restart the scan from the larger DocId.
        its[0].SkipTo(its[i].doc());
        break;
      }
    }
    if (all_match) {
      if (!fn(candidate)) return;
      its[0].Next();
    }
  }
}

namespace {

// Deduplicates query terms, preserving first-seen order.
std::vector<std::string_view> UniqueTerms(
    const std::vector<std::string>& terms) {
  std::vector<std::string_view> unique;
  unique.reserve(terms.size());
  for (const std::string& t : terms) {
    if (std::find(unique.begin(), unique.end(), t) == unique.end()) {
      unique.push_back(t);
    }
  }
  return unique;
}

}  // namespace

std::uint64_t InvertedIndex::CountConjunctive(
    const std::vector<std::string>& terms) const {
  std::vector<std::string_view> unique = UniqueTerms(terms);
  if (unique.empty()) return 0;
  std::vector<const PostingList*> lists;
  lists.reserve(unique.size());
  for (std::string_view term : unique) {
    const PostingList* list = Postings(term);
    if (list == nullptr) return 0;
    lists.push_back(list);
  }
  if (lists.size() == 1) return lists[0]->size();
  std::uint64_t count = 0;
  IntersectPostings(std::move(lists), [&count](DocId) {
    ++count;
    return true;
  });
  return count;
}

std::vector<std::uint64_t> InvertedIndex::CountConjunctiveBatch(
    const std::vector<const std::vector<std::string>*>& queries) const {
  std::vector<std::uint64_t> counts(queries.size(), 0);
  // Memoized term -> posting-list resolution. The views key into the
  // callers' term strings, which outlive this call.
  std::unordered_map<std::string_view, const PostingList*> resolved;
  std::vector<const PostingList*> lists;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::vector<std::string_view> unique = UniqueTerms(*queries[q]);
    if (unique.empty()) continue;
    lists.clear();
    bool missing_term = false;
    for (std::string_view term : unique) {
      auto [it, inserted] = resolved.try_emplace(term, nullptr);
      if (inserted) it->second = Postings(term);
      if (it->second == nullptr) {
        missing_term = true;
        break;
      }
      lists.push_back(it->second);
    }
    if (missing_term) continue;
    if (lists.size() == 1) {
      counts[q] = lists[0]->size();
      continue;
    }
    std::uint64_t count = 0;
    IntersectPostings(lists, [&count](DocId) {
      ++count;
      return true;
    });
    counts[q] = count;
  }
  return counts;
}

std::vector<std::uint64_t> InvertedIndex::CountConjunctiveBatch(
    const std::vector<std::vector<std::string>>& queries) const {
  std::vector<const std::vector<std::string>*> ptrs;
  ptrs.reserve(queries.size());
  for (const std::vector<std::string>& q : queries) ptrs.push_back(&q);
  return CountConjunctiveBatch(ptrs);
}

std::vector<DocId> InvertedIndex::FindConjunctive(
    const std::vector<std::string>& terms, std::size_t limit) const {
  std::vector<DocId> docs;
  std::vector<std::string_view> unique = UniqueTerms(terms);
  if (unique.empty() || limit == 0) return docs;
  std::vector<const PostingList*> lists;
  for (std::string_view term : unique) {
    const PostingList* list = Postings(term);
    if (list == nullptr) return docs;
    lists.push_back(list);
  }
  IntersectPostings(std::move(lists), [&docs, limit](DocId doc) {
    docs.push_back(doc);
    return docs.size() < limit;
  });
  std::sort(docs.begin(), docs.end());
  return docs;
}

std::vector<ScoredDoc> InvertedIndex::TopKCosine(
    const std::vector<std::string>& terms, std::size_t k) const {
  std::vector<ScoredDoc> result;
  if (k == 0 || terms.empty()) return result;

  // Query-side ltc weights over deduplicated terms.
  std::unordered_map<text::TermId, std::uint32_t> query_tf;
  for (const std::string& term : terms) {
    text::TermId id = vocab_.Lookup(term);
    if (id != text::kInvalidTermId && id < postings_.size() &&
        !postings_[id].empty()) {
      ++query_tf[id];
    }
  }
  if (query_tf.empty()) return result;

  double query_norm_sq = 0.0;
  std::unordered_map<DocId, double> accumulator;
  for (const auto& [id, qtf] : query_tf) {
    double qw = (1.0 + std::log(static_cast<double>(qtf))) * idf_[id];
    query_norm_sq += qw * qw;
    for (auto it = postings_[id].begin(); it.Valid(); it.Next()) {
      double dw = (1.0 + std::log(static_cast<double>(it.tf()))) * idf_[id];
      accumulator[it.doc()] += qw * dw / doc_norms_[it.doc()];
    }
  }
  double query_norm = query_norm_sq > 0.0 ? std::sqrt(query_norm_sq) : 1.0;

  result.reserve(accumulator.size());
  for (const auto& [doc, score] : accumulator) {
    result.push_back({doc, score / query_norm});
  }
  std::size_t keep = std::min(k, result.size());
  std::partial_sort(result.begin(), result.begin() + keep, result.end(),
                    [](const ScoredDoc& a, const ScoredDoc& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.doc < b.doc;
                    });
  result.resize(keep);
  return result;
}

double InvertedIndex::BestCosineScore(
    const std::vector<std::string>& terms) const {
  std::vector<ScoredDoc> top = TopKCosine(terms, 1);
  return top.empty() ? 0.0 : top.front().score;
}

IndexStats InvertedIndex::GetStats() const {
  IndexStats stats;
  stats.num_docs = num_docs();
  stats.total_tokens = total_tokens_;
  for (const PostingList& list : postings_) {
    if (list.empty()) continue;
    ++stats.num_terms;
    stats.num_postings += list.size();
    stats.posting_bytes += list.ByteSize();
  }
  return stats;
}

}  // namespace index
}  // namespace metaprobe
