// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_INDEX_SIMD_INTERSECT_H_
#define METAPROBE_INDEX_SIMD_INTERSECT_H_

#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#define METAPROBE_INTERSECT_SSE2 1
#endif
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
// The AVX2 kernel is compiled with a function-level target attribute, so it
// exists in every x86 build regardless of -m flags; whether it runs is a
// CPUID decision made once at dispatch time.
#define METAPROBE_INTERSECT_AVX2_COMPILED 1
#endif

namespace metaprobe {
namespace index {

/// \brief Intersection kernels for sorted, duplicate-free u32 runs (the
/// decoded 128-slot posting spans). The scalar merge is the oracle the
/// vector kernels are property-tested against; SSE2 compares each 4-wide
/// window of one run against all four rotations of the other's, AVX2 does
/// the same 8-wide via cross-lane permutes. Dispatch is resolved once per
/// process from CPUID (overridable via METAPROBE_SIMD_INTERSECT=
/// scalar|sse2|avx2 for A/B runs and sanitizer smoke checks).
enum class IntersectKernel { kScalar, kSse2, kAvx2 };

/// \brief Stable lower-case kernel name ("scalar", "sse2", "avx2").
const char* IntersectKernelName(IntersectKernel kernel);

/// \brief Scalar merge intersection: writes the common elements of the two
/// strictly-increasing runs to `out` (caller provides min(na, nb) slots)
/// and returns how many were written.
std::size_t IntersectSortedScalar(const std::uint32_t* a, std::size_t na,
                                  const std::uint32_t* b, std::size_t nb,
                                  std::uint32_t* out);

#if defined(METAPROBE_INTERSECT_SSE2)
std::size_t IntersectSortedSse2(const std::uint32_t* a, std::size_t na,
                                const std::uint32_t* b, std::size_t nb,
                                std::uint32_t* out);
#endif

#if defined(METAPROBE_INTERSECT_AVX2_COMPILED)
/// \brief AVX2 kernel; only call when `Avx2IntersectAvailable()`.
std::size_t IntersectSortedAvx2(const std::uint32_t* a, std::size_t na,
                                const std::uint32_t* b, std::size_t nb,
                                std::uint32_t* out);
bool Avx2IntersectAvailable();
#endif

/// \brief The kernel the dispatching `IntersectSorted` currently routes to.
IntersectKernel ActiveIntersectKernel();

/// \brief Test/bench hook: pins dispatch to `kernel` (falls back to the
/// best available one when the requested kernel is not usable on this
/// host). Not synchronized against concurrent queries — call it before
/// spawning readers, as the benches and the scalar-oracle tests do.
void ForceIntersectKernelForTest(IntersectKernel kernel);

/// \brief Runtime-dispatched intersection of two sorted runs.
std::size_t IntersectSorted(const std::uint32_t* a, std::size_t na,
                            const std::uint32_t* b, std::size_t nb,
                            std::uint32_t* out);

}  // namespace index
}  // namespace metaprobe

#endif  // METAPROBE_INDEX_SIMD_INTERSECT_H_
