// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_INDEX_VARINT_CODEC_H_
#define METAPROBE_INDEX_VARINT_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "index/posting_list.h"

namespace metaprobe {
namespace index {
namespace v1 {

/// The legacy (index format v1) posting-list payload: (delta, tf) pairs in
/// LEB128 varints, with the absolute DocId restated at every
/// `kV1SkipInterval`-th posting so skip entries could resume delta
/// decoding. Kept alive for three consumers: the v2 reader's
/// back-compatibility path, test fixtures that fabricate v1 files, and the
/// micro_index benchmarks that measure the old decoder against the block
/// format.

inline constexpr std::uint32_t kV1SkipInterval = 64;

/// \brief Encodes `postings` (strictly increasing DocIds, positive tfs) in
/// the v1 payload layout.
std::vector<std::uint8_t> EncodePostings(const std::vector<Posting>& postings);

/// \brief Decodes and validates a v1 payload claiming `count` postings:
/// varint framing, DocId monotonicity, positive tfs, no trailing bytes.
Result<std::vector<Posting>> DecodePostings(
    std::uint32_t count, const std::vector<std::uint8_t>& bytes);

}  // namespace v1
}  // namespace index
}  // namespace metaprobe

#endif  // METAPROBE_INDEX_VARINT_CODEC_H_
