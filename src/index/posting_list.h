// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_INDEX_POSTING_LIST_H_
#define METAPROBE_INDEX_POSTING_LIST_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace metaprobe {
namespace index {

/// \brief Dense integer id of a document within one database.
using DocId = std::uint32_t;

/// \brief One posting: a document and the term's frequency in it.
struct Posting {
  DocId doc = 0;
  std::uint32_t tf = 0;

  bool operator==(const Posting&) const = default;
};

/// \brief Compressed posting list for a single term.
///
/// Postings are stored as (delta-encoded DocId, tf) pairs in LEB128 varints,
/// with a skip entry every `kSkipInterval` postings recording the absolute
/// DocId and byte offset so that `Iterator::SkipTo` can jump over blocks
/// during conjunctive intersection.
///
/// Append order must be strictly increasing by DocId; the builder in
/// inverted_index.cc guarantees this by construction.
class PostingList {
 public:
  static constexpr std::uint32_t kSkipInterval = 64;

  PostingList() = default;

  /// \brief Appends a posting; `doc` must exceed the last appended DocId.
  Status Append(DocId doc, std::uint32_t tf);

  /// \brief Number of postings (the term's document frequency).
  std::uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// \brief Compressed payload size in bytes (diagnostics).
  std::size_t ByteSize() const {
    return bytes_.capacity() + skips_.capacity() * sizeof(SkipEntry);
  }

  /// \brief Releases excess capacity after building.
  void ShrinkToFit();

  /// \brief Forward decoder over the postings.
  class Iterator {
   public:
    explicit Iterator(const PostingList* list);

    /// \brief True while positioned on a posting.
    bool Valid() const { return remaining_ > 0 || valid_current_; }

    DocId doc() const { return current_.doc; }
    std::uint32_t tf() const { return current_.tf; }
    Posting posting() const { return current_; }

    /// \brief Advances to the next posting.
    void Next();

    /// \brief Advances to the first posting with doc >= target, using the
    /// skip table to bypass blocks. No-op if already there.
    void SkipTo(DocId target);

   private:
    void DecodeNext();

    const PostingList* list_;
    std::size_t offset_ = 0;       // byte position in list_->bytes_
    std::uint32_t remaining_ = 0;  // postings not yet decoded
    DocId prev_doc_ = 0;           // base for delta decoding
    Posting current_{};
    bool valid_current_ = false;
  };

  Iterator begin() const { return Iterator(this); }

  /// \brief Decodes the full list (tests and small-scale tooling).
  std::vector<Posting> Decode() const;

  /// \brief Raw compressed payload (persistence).
  const std::vector<std::uint8_t>& encoded_bytes() const { return bytes_; }

  /// \brief Rebuilds a list from a serialized payload, validating varint
  /// framing, DocId monotonicity and positive term frequencies; the skip
  /// table is reconstructed during the validation pass.
  static Result<PostingList> FromEncoded(std::uint32_t count,
                                         std::vector<std::uint8_t> bytes);

 private:
  friend class Iterator;

  struct SkipEntry {
    DocId doc;            // DocId of the first posting in the block
    std::uint32_t index;  // posting index of the block start
    std::size_t offset;   // byte offset of the block start
  };

  void PutVarint(std::uint64_t value);

  std::vector<std::uint8_t> bytes_;
  std::vector<SkipEntry> skips_;
  std::uint32_t count_ = 0;
  DocId last_doc_ = 0;
  bool has_last_ = false;
};

}  // namespace index
}  // namespace metaprobe

#endif  // METAPROBE_INDEX_POSTING_LIST_H_
