// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_INDEX_POSTING_LIST_H_
#define METAPROBE_INDEX_POSTING_LIST_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/result.h"

namespace metaprobe {
namespace index {

/// \brief Dense integer id of a document within one database.
using DocId = std::uint32_t;

/// \brief One posting: a document and the term's frequency in it.
struct Posting {
  DocId doc = 0;
  std::uint32_t tf = 0;

  bool operator==(const Posting&) const = default;
};

/// \brief Block-compressed posting list for a single term (format v3).
///
/// Postings are grouped into fixed blocks of `kBlockSize`. Each full block
/// stores frame-of-reference bit-packed values: the 127 doc-id gaps (gap-1,
/// since DocIds are strictly increasing) at the block's minimal bit width,
/// followed by the 128 tf values (tf-1) at theirs. A per-block directory
/// entry records the first and last DocId, the block's maximum tf, and both
/// bit widths, so
/// * `Iterator::SkipTo` gallops over whole blocks via the `last_doc`
///   maxima without decoding them,
/// * the decoder unpacks an entire block into an aligned scratch buffer
///   with tight auto-vectorizable loops (SIMD prefix sum where available)
///   instead of one varint branch per posting, and
/// * block-max WAND scoring (inverted_index.cc) derives a per-block score
///   upper bound from `max_tf` without touching the packed tf sections.
/// The sub-block tail (< kBlockSize newest postings) stays uncompressed in
/// memory and is bit-packed only on serialization, so `Append` never
/// repacks and a freshly built list is immediately readable.
///
/// "Span" below means one decodable unit: each full block is a span, and
/// the uncompressed tail (when non-empty) is the final span. `Freeze()`
/// packs the tail as a final partial block, after which every span is a
/// packed block and the list is immutable. Frozen lists come in two
/// storage flavors with identical read behavior: heap-backed (`bytes_`
/// owns the packed sections) and mapped (`FromMappedPayload` — the packed
/// sections stay in a caller-owned byte range, typically an mmap'd index
/// file, and only the directory lives on the heap).
///
/// Append order must be strictly increasing by DocId; the builder in
/// inverted_index.cc guarantees this by construction.
class PostingList {
 public:
  static constexpr std::uint32_t kBlockSize = 128;

  PostingList() = default;

  /// \brief Appends a posting; `doc` must exceed the last appended DocId.
  /// Fails with FailedPrecondition on a frozen list.
  Status Append(DocId doc, std::uint32_t tf);

  /// \brief Packs the uncompressed append tail into a final (possibly
  /// partial) block and marks the list immutable. Idempotent. Closes the
  /// ~2.6 B/posting in-memory vs ~1.21 serialized gap for read-only
  /// serving; iteration, `SkipTo` and `EncodePayload` results are
  /// bit-identical to the unfrozen list. Lists produced by `FromEncoded`
  /// and `FromMappedPayload` are born frozen.
  void Freeze();

  /// \brief True once `Freeze()` has run (or the list was loaded frozen).
  bool frozen() const { return frozen_; }

  /// \brief True when the packed sections live in caller-owned mapped
  /// memory rather than this list's own buffers.
  bool is_mapped() const { return mapped_payload_ != nullptr; }

  /// \brief Number of postings (the term's document frequency).
  std::uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// \brief Heap bytes owned by this list (packed sections + directory +
  /// uncompressed tail), independent of vector over-allocation. For mapped
  /// lists this is just the parsed directory.
  std::size_t HeapByteSize() const;

  /// \brief Bytes of this list's payload held in caller-owned mapped
  /// memory (directory + packed sections); zero for heap-backed lists.
  std::size_t MappedByteSize() const { return mapped_payload_size_; }

  /// \brief Total footprint: `HeapByteSize() + MappedByteSize()`.
  std::size_t ByteSize() const { return HeapByteSize() + MappedByteSize(); }

  /// \brief Releases excess capacity after building.
  void ShrinkToFit();

  /// \brief Number of spans: full blocks plus the tail span when non-empty.
  std::size_t num_spans() const {
    return blocks_.size() + (tail_docs_.empty() ? 0 : 1);
  }

  /// \brief Largest DocId in span `s` (directory lookup, no decode).
  DocId span_last_doc(std::size_t s) const {
    return s < blocks_.size() ? blocks_[s].last_doc : tail_docs_.back();
  }

  /// \brief Largest tf in span `s` (directory lookup for full blocks, a
  /// linear scan of the small in-memory tail otherwise).
  std::uint32_t span_max_tf(std::size_t s) const;

  /// \brief First span at or after `from` whose last DocId is >= `target`
  /// — i.e. the span that would contain `target` — or `num_spans()` when
  /// every remaining posting is smaller. Pure directory search, no decode;
  /// this is the WAND driver's block-bound lookup.
  std::size_t FindSpanContaining(DocId target, std::size_t from) const;

  /// \brief Forward decoder over the postings.
  ///
  /// Decodes one block at a time into an internal scratch buffer; tf values
  /// are unpacked lazily, so intersection-only consumers never touch the tf
  /// sections. Iterators are value types (the scratch rides along) —
  /// cheap to create, ~1.2 KiB to copy.
  class Iterator {
   public:
    explicit Iterator(const PostingList* list);

    /// \brief True while positioned on a posting.
    bool Valid() const { return pos_ < list_->count_; }

    DocId doc() const { return docs_[idx_]; }
    std::uint32_t tf() const {
      if (!tfs_loaded_) DecodeTfs();
      return tfs_[idx_];
    }
    Posting posting() const { return {doc(), tf()}; }

    /// \brief Index of the span the iterator is positioned in.
    std::size_t span_index() const { return block_; }

    /// \brief Largest DocId of the current (decoded) span.
    DocId span_last() const { return docs_[span_len_ - 1]; }

    /// \brief Pointer to the not-yet-consumed suffix of the decoded span
    /// (starting at the current posting) and its length. The dense
    /// intersection kernel feeds these contiguous runs to SIMD directly.
    const DocId* span_remaining() const { return docs_ + idx_; }
    std::uint32_t span_remaining_len() const { return span_len_ - idx_; }

    /// \brief Advances to the next posting. Inlined fast path: only a
    /// block boundary leaves the decoded span.
    METAPROBE_ALWAYS_INLINE void Next() {
      if (pos_ >= list_->count_) return;
      ++pos_;
      if (++idx_ < span_len_ || pos_ >= list_->count_) return;
      if (LoadSpan(block_ + 1)) idx_ = 0;
    }

    /// \brief Advances to the first posting with doc >= target, skipping
    /// whole blocks via the max-doc directory. No-op if already there.
    ///
    /// The in-span search gallops from the current position instead of
    /// binary-searching the remaining span: conjunctive intersections
    /// advance a handful of postings at a time through dense lists, so the
    /// answer is almost always within the first few slots and a full
    /// lower_bound wastes ~7 branchy probes. Leaving the span goes through
    /// the out-of-line directory search. Forced inline: the fast paths
    /// must fold into the intersection loops even when the surrounding
    /// translation unit exhausts the compiler's inline growth budget.
    METAPROBE_ALWAYS_INLINE void SkipTo(DocId target) {
      if (pos_ >= list_->count_ || docs_[idx_] >= target) return;
      if (target > docs_[span_len_ - 1]) {
        SkipToNewSpan(target);
        if (pos_ >= list_->count_) return;
      }
      const DocId* const base = docs_;
      const std::uint32_t len = span_len_;
      std::uint32_t lo = idx_;
      std::uint32_t step = 1;
      while (lo + step < len && base[lo + step] < target) {
        lo += step;
        step <<= 1;
      }
      const std::uint32_t hi = std::min(len, lo + step);
      const DocId* found = std::lower_bound(base + lo, base + hi, target);
      pos_ += static_cast<std::uint32_t>(found - base) - idx_;
      idx_ = static_cast<std::uint32_t>(found - base);
    }

   private:
    // Decodes block `b`'s doc ids into the scratch (b == blocks_.size()
    // selects the uncompressed tail). Returns false — with the iterator
    // exhausted, permanently — when the decoded block contradicts its
    // directory entry (possible only for corrupt mapped bytes: heap-backed
    // payloads were deep-validated at load).
    bool LoadSpan(std::size_t b);
    // Exhausts the iterator if target exceeds the list's last DocId, else
    // lands on the first block whose last_doc >= target (skipping the
    // blocks in between undecoded).
    void SkipToNewSpan(DocId target);
    void DecodeTfs() const;

    const PostingList* list_;
    std::size_t block_ = 0;        // current span; blocks_.size() = tail
    std::uint32_t pos_ = 0;        // global index of the current posting
    std::uint32_t idx_ = 0;        // index within the decoded span
    std::uint32_t span_len_ = 0;
    mutable bool tfs_loaded_ = false;
    alignas(64) DocId docs_[kBlockSize];
    mutable std::uint32_t tfs_[kBlockSize];
  };

  Iterator begin() const { return Iterator(this); }

  /// \brief Decodes the full list (tests and small-scale tooling).
  std::vector<Posting> Decode() const;

  /// \brief Serializes the list into a self-contained v3 payload: a
  /// directory of (first_doc, last_doc, max_tf, doc_bits, tf_bits) entries
  /// — one per block, the final one possibly partial — followed by the
  /// packed gap/tf sections. Section lengths are derived from the
  /// directory, so the layout carries no redundant length fields.
  std::vector<std::uint8_t> EncodePayload() const;

  /// \brief Rebuilds a list from a v3 payload, validating directory
  /// monotonicity, bit widths (tf_bits must be exactly the width of
  /// max_tf - 1), exact payload length and that every block's decoded gaps
  /// reproduce its directory `last_doc`. Full-block `max_tf` entries are
  /// width-checked here and cross-checked against the decoded tf values by
  /// InvertedIndex::FinalizeScoring on index load.
  static Result<PostingList> FromEncoded(std::uint32_t count,
                                         std::vector<std::uint8_t> bytes);

  /// \brief Rebuilds a list from a v2 payload (10-byte directory entries
  /// without max_tf), same validation; the per-block maxima are recovered
  /// by decoding the tf sections once on load.
  static Result<PostingList> FromV2Encoded(std::uint32_t count,
                                           std::vector<std::uint8_t> bytes);

  /// \brief Builds a zero-copy frozen list over a caller-owned payload
  /// view (an mmap'd index file region). Only the directory is parsed —
  /// and validated as in `FromEncoded` — at call time; the packed gap/tf
  /// sections are decoded lazily on first cursor touch, so a cold list
  /// costs its directory plus untouched page-cache pages. Blocks whose
  /// width/range admit 32-bit gap-sum wraparound are deep-validated here
  /// (uint64 arithmetic) so the lazy decoder's cheap last-doc
  /// cross-check is sound for everything else; a lazily detected
  /// mismatch exhausts the cursor (never UB) and is surfaced as a Status
  /// by `InvertedIndex::FinalizeScoring`'s posting-count check.
  ///
  /// `payload` must outlive the list and every iterator over it; see
  /// DESIGN.md §16 for the ownership contract (`index_io::OpenMapped`
  /// keeps the backing mapping alive via a shared handle on the index).
  static Result<PostingList> FromMappedPayload(
      std::uint32_t count, std::span<const std::uint8_t> payload,
      bool with_max_tf);

  /// \brief Rebuilds a list from a legacy v1 varint payload (see
  /// varint_codec.h), fully validated; the result is re-encoded into the
  /// block format.
  static Result<PostingList> FromV1Encoded(
      std::uint32_t count, const std::vector<std::uint8_t>& bytes);

 private:
  friend class Iterator;

  struct BlockMeta {
    DocId first_doc = 0;
    DocId last_doc = 0;
    std::uint64_t offset = 0;    // byte offset of the gap section in bytes_
    std::uint32_t max_tf = 0;    // largest tf in the block (>= 1)
    std::uint8_t doc_bits = 0;   // width of each gap-1 value
    std::uint8_t tf_bits = 0;    // width of each tf-1 value
  };

  // Shared decoder behind FromEncoded/FromV2Encoded; `with_max_tf` selects
  // the directory-entry layout.
  static Result<PostingList> FromEncodedImpl(std::uint32_t count,
                                             std::vector<std::uint8_t> bytes,
                                             bool with_max_tf);

  // Packs the accumulated tail (any size in [1, kBlockSize]) into a new
  // block appended to blocks_/bytes_ and clears the tail vectors.
  void PackTailBlock();

  // Number of postings in span `s` — uniform across storage flavors:
  // every span covers postings [s*kBlockSize, min((s+1)*kBlockSize,
  // count_)), whether it is a full block, a frozen partial final block,
  // or the uncompressed tail.
  std::uint32_t SpanLength(std::size_t s) const {
    return std::min(kBlockSize,
                    count_ - static_cast<std::uint32_t>(s) * kBlockSize);
  }

  // The packed gap/tf sections that BlockMeta::offset indexes into:
  // either this list's own bytes_ or the caller-owned mapped region.
  const std::uint8_t* section_data() const {
    return mapped_payload_ != nullptr
               ? mapped_payload_ + mapped_sections_offset_
               : bytes_.data();
  }
  std::size_t section_size() const {
    return mapped_payload_ != nullptr
               ? mapped_payload_size_ - mapped_sections_offset_
               : bytes_.size();
  }

  std::vector<BlockMeta> blocks_;      // directory of packed blocks
  std::vector<std::uint8_t> bytes_;    // owned packed sections (unmapped)
  std::vector<DocId> tail_docs_;       // < kBlockSize pending postings
  std::vector<std::uint32_t> tail_tfs_;
  // Mapped storage: the full payload view (directory + sections) handed
  // to FromMappedPayload, and the offset where the sections start. Null /
  // zero for heap-backed lists.
  const std::uint8_t* mapped_payload_ = nullptr;
  std::size_t mapped_payload_size_ = 0;
  std::size_t mapped_sections_offset_ = 0;
  std::uint32_t count_ = 0;
  DocId last_doc_ = 0;
  bool has_last_ = false;
  bool frozen_ = false;
  // Set (via std::atomic_ref, racing cursors are fine) on the first block
  // decode of a mapped list; drives the metaprobe_index_resident_lists
  // gauge. The owning InvertedIndex decrements on destruction.
  mutable bool resident_counted_ = false;

  friend class InvertedIndex;  // resident-gauge settlement in ~InvertedIndex
};

}  // namespace index
}  // namespace metaprobe

#endif  // METAPROBE_INDEX_POSTING_LIST_H_
