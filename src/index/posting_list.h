// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_INDEX_POSTING_LIST_H_
#define METAPROBE_INDEX_POSTING_LIST_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace metaprobe {
namespace index {

/// \brief Dense integer id of a document within one database.
using DocId = std::uint32_t;

/// \brief One posting: a document and the term's frequency in it.
struct Posting {
  DocId doc = 0;
  std::uint32_t tf = 0;

  bool operator==(const Posting&) const = default;
};

/// \brief Block-compressed posting list for a single term (format v2).
///
/// Postings are grouped into fixed blocks of `kBlockSize`. Each full block
/// stores frame-of-reference bit-packed values: the 127 doc-id gaps (gap-1,
/// since DocIds are strictly increasing) at the block's minimal bit width,
/// followed by the 128 tf values (tf-1) at theirs. A per-block directory
/// entry records the first and last DocId plus both bit widths, so
/// * `Iterator::SkipTo` gallops over whole blocks via the `last_doc`
///   maxima without decoding them, and
/// * the decoder unpacks an entire block into an aligned scratch buffer
///   with tight auto-vectorizable loops (SIMD prefix sum where available)
///   instead of one varint branch per posting.
/// The sub-block tail (< kBlockSize newest postings) stays uncompressed in
/// memory and is bit-packed only on serialization, so `Append` never
/// repacks and a freshly built list is immediately readable.
///
/// Append order must be strictly increasing by DocId; the builder in
/// inverted_index.cc guarantees this by construction.
class PostingList {
 public:
  static constexpr std::uint32_t kBlockSize = 128;

  PostingList() = default;

  /// \brief Appends a posting; `doc` must exceed the last appended DocId.
  Status Append(DocId doc, std::uint32_t tf);

  /// \brief Number of postings (the term's document frequency).
  std::uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// \brief Actual in-memory payload size in bytes (packed blocks +
  /// directory + uncompressed tail), independent of vector over-allocation.
  std::size_t ByteSize() const;

  /// \brief Releases excess capacity after building.
  void ShrinkToFit();

  /// \brief Forward decoder over the postings.
  ///
  /// Decodes one block at a time into an internal scratch buffer; tf values
  /// are unpacked lazily, so intersection-only consumers never touch the tf
  /// sections. Iterators are value types (the scratch rides along) —
  /// cheap to create, ~1.2 KiB to copy.
  class Iterator {
   public:
    explicit Iterator(const PostingList* list);

    /// \brief True while positioned on a posting.
    bool Valid() const { return pos_ < list_->count_; }

    DocId doc() const { return docs_[idx_]; }
    std::uint32_t tf() const {
      if (!tfs_loaded_) DecodeTfs();
      return tfs_[idx_];
    }
    Posting posting() const { return {doc(), tf()}; }

    /// \brief Advances to the next posting. Inlined fast path: only a
    /// block boundary leaves the decoded span.
    void Next() {
      if (pos_ >= list_->count_) return;
      ++pos_;
      if (++idx_ < span_len_ || pos_ >= list_->count_) return;
      LoadSpan(block_ + 1);
      idx_ = 0;
    }

    /// \brief Advances to the first posting with doc >= target, skipping
    /// whole blocks via the max-doc directory. No-op if already there.
    ///
    /// The in-span search gallops from the current position instead of
    /// binary-searching the remaining span: conjunctive intersections
    /// advance a handful of postings at a time through dense lists, so the
    /// answer is almost always within the first few slots and a full
    /// lower_bound wastes ~7 branchy probes. Leaving the span goes through
    /// the out-of-line directory search.
    void SkipTo(DocId target) {
      if (pos_ >= list_->count_ || docs_[idx_] >= target) return;
      if (target > docs_[span_len_ - 1]) {
        SkipToNewSpan(target);
        if (pos_ >= list_->count_) return;
      }
      const DocId* const base = docs_;
      const std::uint32_t len = span_len_;
      std::uint32_t lo = idx_;
      std::uint32_t step = 1;
      while (lo + step < len && base[lo + step] < target) {
        lo += step;
        step <<= 1;
      }
      const std::uint32_t hi = std::min(len, lo + step);
      const DocId* found = std::lower_bound(base + lo, base + hi, target);
      pos_ += static_cast<std::uint32_t>(found - base) - idx_;
      idx_ = static_cast<std::uint32_t>(found - base);
    }

   private:
    // Decodes block `b`'s doc ids into the scratch (b == blocks_.size()
    // selects the uncompressed tail).
    void LoadSpan(std::size_t b);
    // Exhausts the iterator if target exceeds the list's last DocId, else
    // lands on the first block whose last_doc >= target (skipping the
    // blocks in between undecoded).
    void SkipToNewSpan(DocId target);
    void DecodeTfs() const;

    const PostingList* list_;
    std::size_t block_ = 0;        // current span; blocks_.size() = tail
    std::uint32_t pos_ = 0;        // global index of the current posting
    std::uint32_t idx_ = 0;        // index within the decoded span
    std::uint32_t span_len_ = 0;
    mutable bool tfs_loaded_ = false;
    alignas(64) DocId docs_[kBlockSize];
    mutable std::uint32_t tfs_[kBlockSize];
  };

  Iterator begin() const { return Iterator(this); }

  /// \brief Decodes the full list (tests and small-scale tooling).
  std::vector<Posting> Decode() const;

  /// \brief Serializes the list into a self-contained v2 payload:
  /// a directory of (first_doc, last_doc, doc_bits, tf_bits) entries — one
  /// per block, the final one possibly partial — followed by the packed
  /// gap/tf sections. Section lengths are derived from the directory, so
  /// the layout carries no redundant length fields.
  std::vector<std::uint8_t> EncodePayload() const;

  /// \brief Rebuilds a list from a v2 payload, validating directory
  /// monotonicity, bit widths, exact payload length and that every block's
  /// decoded gaps reproduce its directory `last_doc`.
  static Result<PostingList> FromEncoded(std::uint32_t count,
                                         std::vector<std::uint8_t> bytes);

  /// \brief Rebuilds a list from a legacy v1 varint payload (see
  /// varint_codec.h), fully validated; the result is re-encoded into the
  /// block format.
  static Result<PostingList> FromV1Encoded(
      std::uint32_t count, const std::vector<std::uint8_t>& bytes);

 private:
  friend class Iterator;

  struct BlockMeta {
    DocId first_doc = 0;
    DocId last_doc = 0;
    std::uint64_t offset = 0;   // byte offset of the gap section in bytes_
    std::uint8_t doc_bits = 0;  // width of each gap-1 value
    std::uint8_t tf_bits = 0;   // width of each tf-1 value
  };

  // Packs the accumulated tail into a new full block (requires exactly
  // kBlockSize pending postings).
  void FlushTailBlock();

  std::vector<BlockMeta> blocks_;      // directory of full blocks
  std::vector<std::uint8_t> bytes_;    // packed payload of full blocks
  std::vector<DocId> tail_docs_;       // < kBlockSize pending postings
  std::vector<std::uint32_t> tail_tfs_;
  std::uint32_t count_ = 0;
  DocId last_doc_ = 0;
  bool has_last_ = false;
};

}  // namespace index
}  // namespace metaprobe

#endif  // METAPROBE_INDEX_POSTING_LIST_H_
