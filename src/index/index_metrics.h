// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_INDEX_INDEX_METRICS_H_
#define METAPROBE_INDEX_INDEX_METRICS_H_

#include <atomic>
#include <cstdint>

namespace metaprobe {
namespace index {

/// \brief Process-wide counters for the index substrate's hot paths.
///
/// Posting lists and probe batches sit below any MetricRegistry (an index
/// belongs to a database, not a metasearcher), so the decode/skip/batch
/// telemetry accumulates into these relaxed globals; registry owners
/// (Metasearcher) surface them as callback gauges in their exposition.
/// Compiled out together with the rest of the observability hooks under
/// METAPROBE_OBS_DISABLED.
struct IndexCounters {
  /// Blocks unpacked into a decoder's scratch buffer.
  static std::atomic<std::uint64_t> blocks_decoded;
  /// Blocks bypassed via the max-doc directory without decoding.
  static std::atomic<std::uint64_t> blocks_skipped;
  /// Blocks the WAND scorer certified un-competitive via their block-max
  /// bound and then cleared without evaluating: their remaining postings
  /// are never scored and their tf sections never decoded.
  static std::atomic<std::uint64_t> wand_blocks_skipped;
  /// SIMD span-pair intersection kernel invocations (dense conjunctive
  /// path); counts calls whichever kernel dispatch selected.
  static std::atomic<std::uint64_t> simd_intersections;
  /// Queries routed through a batched probe call.
  static std::atomic<std::uint64_t> batch_probe_queries;
  /// Batched probe calls.
  static std::atomic<std::uint64_t> batch_probe_calls;
  /// Size of the most recent probe batch.
  static std::atomic<std::uint64_t> last_probe_batch_size;
  /// Bytes of index payload currently backed by live file mappings
  /// (decremented when a mapped index is destroyed).
  static std::atomic<std::uint64_t> mapped_bytes;
  /// Mapped posting lists that have had at least one block decoded — the
  /// set of lists whose pages are actually resident because a query
  /// touched them (decremented when the owning index is destroyed).
  static std::atomic<std::uint64_t> resident_lists;

  static void CountBlocksDecoded(std::uint64_t n) {
#ifndef METAPROBE_OBS_DISABLED
    blocks_decoded.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  static void CountBlocksSkipped(std::uint64_t n) {
#ifndef METAPROBE_OBS_DISABLED
    if (n > 0) blocks_skipped.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  static void CountWandBlocksSkipped(std::uint64_t n) {
#ifndef METAPROBE_OBS_DISABLED
    if (n > 0) wand_blocks_skipped.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  static void CountSimdIntersections(std::uint64_t n) {
#ifndef METAPROBE_OBS_DISABLED
    simd_intersections.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  static void AddMappedBytes(std::uint64_t n) {
#ifndef METAPROBE_OBS_DISABLED
    mapped_bytes.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  static void SubMappedBytes(std::uint64_t n) {
#ifndef METAPROBE_OBS_DISABLED
    mapped_bytes.fetch_sub(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  static void AddResidentLists(std::uint64_t n) {
#ifndef METAPROBE_OBS_DISABLED
    resident_lists.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  static void SubResidentLists(std::uint64_t n) {
#ifndef METAPROBE_OBS_DISABLED
    resident_lists.fetch_sub(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  static void CountProbeBatch(std::uint64_t queries) {
#ifndef METAPROBE_OBS_DISABLED
    batch_probe_calls.fetch_add(1, std::memory_order_relaxed);
    batch_probe_queries.fetch_add(queries, std::memory_order_relaxed);
    last_probe_batch_size.store(queries, std::memory_order_relaxed);
#else
    (void)queries;
#endif
  }
};

}  // namespace index
}  // namespace metaprobe

#endif  // METAPROBE_INDEX_INDEX_METRICS_H_
