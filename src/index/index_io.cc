// Binary persistence for InvertedIndex.
//
// Layout (little-endian fixed-width integers):
//   magic   "MPIX"
//   u32     format version (3)
//   u32     num_docs
//   u64     total_tokens
//   u64     num_terms
//   per term, in TermId order:
//     u32   term byte length, then the term bytes
//     u32   posting count
//     u64   encoded payload byte length, then the payload
//
// The envelope is identical across versions; only the per-term payload
// codec differs. Version 3 payloads are the block format produced by
// PostingList::EncodePayload (per-block directory with max-tf entries +
// frame-of-reference bit-packed sections); version 2 lacks the max-tf
// field (the maxima are recovered by decoding the tf sections once on
// load); version 1 payloads are the legacy varint stream (see
// varint_codec.h). All three remain loadable — the reader dispatches on
// the version field, so indexes written by older builds keep working.
//
// Scoring structures (idf, document norms, WAND block bounds) are derived
// data and are recomputed on load, which doubles as a deep validation
// pass: every posting is decoded, bounds-checked against num_docs and
// monotonicity, and every v3 directory max-tf entry is cross-checked
// against the decoded tf values.
//
// Two readers share this layout:
//   * LoadFrom — eager: every payload is copied and deep-validated, the
//     scoring pass runs immediately.
//   * OpenMapped — zero-copy: the file is mmap'd, the envelope and every
//     block directory are validated at open, and the packed sections are
//     served straight from the mapping with lazy per-block decode. The
//     scoring pass (and with it full posting validation) runs on first
//     use unless MappedIndexOptions::eager_scoring asks for it at open.

#include <array>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/macros.h"
#include "common/mmap_file.h"
#include "index/index_metrics.h"
#include "index/inverted_index.h"

namespace metaprobe {
namespace index {

namespace {

constexpr char kMagic[4] = {'M', 'P', 'I', 'X'};
constexpr std::uint32_t kFormatVersion = 3;
constexpr std::uint32_t kOldestReadableVersion = 1;
constexpr std::uint32_t kMaxTermBytes = 1 << 16;
// Serialized sizes of one block-directory entry per format version (see
// posting_list.cc); v3 entries carry the extra u32 max-tf field.
constexpr std::uint64_t kV2DirEntryBytes = 10;
constexpr std::uint64_t kV3DirEntryBytes = 14;
// Minimum serialized footprint of one term entry: length, one term byte,
// posting count, payload length.
constexpr std::uint64_t kMinTermEntryBytes = 4 + 1 + 4 + 8;

// Bytes left in the stream (guards allocations against corrupt length
// fields); falls back to a 1 GiB cap on non-seekable streams.
std::uint64_t RemainingBytes(std::istream& is) {
  std::streampos current = is.tellg();
  if (current == std::streampos(-1)) return 1ull << 30;
  is.seekg(0, std::ios::end);
  std::streampos end = is.tellg();
  is.seekg(current);
  if (end == std::streampos(-1) || end < current) return 1ull << 30;
  return static_cast<std::uint64_t>(end - current);
}

void PutU32(std::ostream& os, std::uint32_t value) {
  std::array<char, 4> buffer;
  for (int i = 0; i < 4; ++i) {
    buffer[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  os.write(buffer.data(), buffer.size());
}

void PutU64(std::ostream& os, std::uint64_t value) {
  std::array<char, 8> buffer;
  for (int i = 0; i < 8; ++i) {
    buffer[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  os.write(buffer.data(), buffer.size());
}

Result<std::uint32_t> GetU32(std::istream& is) {
  std::array<char, 4> buffer;
  if (!is.read(buffer.data(), buffer.size())) {
    return Status::IoError("index file truncated (u32)");
  }
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(buffer[i]))
             << (8 * i);
  }
  return value;
}

Result<std::uint64_t> GetU64(std::istream& is) {
  std::array<char, 8> buffer;
  if (!is.read(buffer.data(), buffer.size())) {
    return Status::IoError("index file truncated (u64)");
  }
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buffer[i]))
             << (8 * i);
  }
  return value;
}

// Bounds-checked little-endian reads over a mapped byte range. `pos`
// advances past the value on success.
Result<std::uint32_t> GetU32At(const std::uint8_t* data, std::size_t size,
                               std::size_t* pos) {
  if (size - *pos < 4) return Status::IoError("index file truncated (u32)");
  const std::uint8_t* p = data + *pos;
  *pos += 4;
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

Result<std::uint64_t> GetU64At(const std::uint8_t* data, std::size_t size,
                               std::size_t* pos) {
  if (size - *pos < 8) return Status::IoError("index file truncated (u64)");
  std::uint64_t value = 0;
  const std::uint8_t* p = data + *pos;
  *pos += 8;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return value;
}

}  // namespace

Status InvertedIndex::SaveTo(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));
  PutU32(os, kFormatVersion);
  PutU32(os, num_docs());
  PutU64(os, total_tokens_);
  PutU64(os, vocab_.size());
  for (text::TermId id = 0; id < vocab_.size(); ++id) {
    const std::string& term = vocab_.TermOf(id);
    if (term.size() > kMaxTermBytes) {
      return Status::InvalidArgument("term too long to serialize");
    }
    PutU32(os, static_cast<std::uint32_t>(term.size()));
    os.write(term.data(), static_cast<std::streamsize>(term.size()));
    const PostingList& list = postings_[id];
    PutU32(os, list.size());
    const std::vector<std::uint8_t> payload = list.EncodePayload();
    PutU64(os, payload.size());
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  }
  if (!os) return Status::IoError("stream write failure while saving index");
  return Status::OK();
}

Result<InvertedIndex> InvertedIndex::LoadFrom(std::istream& is) {
  char magic[4];
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a metaprobe index file");
  }
  ASSIGN_OR_RETURN(std::uint32_t version, GetU32(is));
  if (version < kOldestReadableVersion || version > kFormatVersion) {
    return Status::InvalidArgument("unsupported index version ", version);
  }
  ASSIGN_OR_RETURN(std::uint32_t num_docs, GetU32(is));
  ASSIGN_OR_RETURN(std::uint64_t total_tokens, GetU64(is));
  ASSIGN_OR_RETURN(std::uint64_t num_terms, GetU64(is));
  // Scoring structures allocate per document; bound the claim against the
  // file size (documents average at least a fraction of a posting byte)
  // with generous headroom for tiny indexes.
  if (num_docs > (1u << 20) &&
      static_cast<std::uint64_t>(num_docs) > RemainingBytes(is) * 4) {
    return Status::InvalidArgument("implausible document count ", num_docs);
  }
  if (num_terms > RemainingBytes(is) / kMinTermEntryBytes) {
    return Status::InvalidArgument("implausible term count ", num_terms);
  }

  InvertedIndex index;
  index.total_tokens_ = total_tokens;
  index.postings_.reserve(num_terms);
  std::string term;
  for (std::uint64_t t = 0; t < num_terms; ++t) {
    ASSIGN_OR_RETURN(std::uint32_t term_bytes, GetU32(is));
    if (term_bytes == 0 || term_bytes > kMaxTermBytes) {
      return Status::InvalidArgument("bad term length ", term_bytes);
    }
    term.resize(term_bytes);
    if (!is.read(term.data(), term_bytes)) {
      return Status::IoError("index file truncated (term)");
    }
    text::TermId id = index.vocab_.Intern(term);
    if (id != t) {
      return Status::InvalidArgument("duplicate term '", term,
                                     "' in index file");
    }
    ASSIGN_OR_RETURN(std::uint32_t posting_count, GetU32(is));
    ASSIGN_OR_RETURN(std::uint64_t payload_bytes, GetU64(is));
    if (payload_bytes > RemainingBytes(is)) {
      return Status::InvalidArgument("payload length exceeds file size");
    }
    // Version-specific floor on the payload size: v1 spends at least two
    // varint bytes per posting, v2/v3 at least one directory entry per
    // block.
    const std::uint64_t blocks =
        (static_cast<std::uint64_t>(posting_count) +
         PostingList::kBlockSize - 1) /
        PostingList::kBlockSize;
    const std::uint64_t min_payload =
        version == 1 ? static_cast<std::uint64_t>(posting_count) * 2
        : version == 2 ? blocks * kV2DirEntryBytes
                       : blocks * kV3DirEntryBytes;
    if (min_payload > payload_bytes) {
      return Status::InvalidArgument("posting count exceeds payload");
    }
    std::vector<std::uint8_t> payload(payload_bytes);
    if (payload_bytes > 0 &&
        !is.read(reinterpret_cast<char*>(payload.data()),
                 static_cast<std::streamsize>(payload_bytes))) {
      return Status::IoError("index file truncated (postings)");
    }
    Result<PostingList> list =
        version == 1   ? PostingList::FromV1Encoded(posting_count, payload)
        : version == 2 ? PostingList::FromV2Encoded(posting_count,
                                                    std::move(payload))
                       : PostingList::FromEncoded(posting_count,
                                                  std::move(payload));
    if (!list.ok()) return list.status();
    index.postings_.push_back(std::move(list).ValueOrDie());
  }
  if (num_docs == 0 && num_terms > 0) {
    return Status::InvalidArgument("postings present but num_docs is zero");
  }
  index.frozen_ = true;  // FromEncoded/FromV2Encoded/FromV1Encoded freeze
  RETURN_NOT_OK(index.FinalizeScoring(num_docs));
  return index;
}

Result<InvertedIndex> InvertedIndex::OpenMapped(const std::string& path,
                                                MappedIndexOptions options) {
  ASSIGN_OR_RETURN(common::MmapFile file, common::MmapFile::Open(path));
  const std::uint8_t* data = file.data();
  const std::size_t size = file.size();
  if (size < sizeof(kMagic) + 4 ||
      std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a metaprobe index file");
  }
  std::size_t pos = sizeof(kMagic);
  ASSIGN_OR_RETURN(std::uint32_t version, GetU32At(data, size, &pos));
  if (version < kOldestReadableVersion || version > kFormatVersion) {
    return Status::InvalidArgument("unsupported index version ", version);
  }
  if (version == 1) {
    // v1 payloads are varint streams with no block directory — there is
    // nothing to serve zero-copy. Route them through the eager loader,
    // which re-encodes into the block format.
    std::istringstream is(
        std::string(reinterpret_cast<const char*>(data), size));
    return LoadFrom(is);
  }
  ASSIGN_OR_RETURN(std::uint32_t num_docs, GetU32At(data, size, &pos));
  ASSIGN_OR_RETURN(std::uint64_t total_tokens, GetU64At(data, size, &pos));
  ASSIGN_OR_RETURN(std::uint64_t num_terms, GetU64At(data, size, &pos));
  // Same plausibility bounds as LoadFrom, against the mapped length.
  if (num_docs > (1u << 20) &&
      static_cast<std::uint64_t>(num_docs) > (size - pos) * 4) {
    return Status::InvalidArgument("implausible document count ", num_docs);
  }
  if (num_terms > (size - pos) / kMinTermEntryBytes) {
    return Status::InvalidArgument("implausible term count ", num_terms);
  }
  if (num_docs == 0 && num_terms > 0) {
    return Status::InvalidArgument("postings present but num_docs is zero");
  }

  InvertedIndex index;
  index.total_tokens_ = total_tokens;
  index.postings_.reserve(num_terms);
  for (std::uint64_t t = 0; t < num_terms; ++t) {
    ASSIGN_OR_RETURN(std::uint32_t term_bytes, GetU32At(data, size, &pos));
    if (term_bytes == 0 || term_bytes > kMaxTermBytes ||
        term_bytes > size - pos) {
      return Status::InvalidArgument("bad term length ", term_bytes);
    }
    const std::string_view term(reinterpret_cast<const char*>(data + pos),
                                term_bytes);
    pos += term_bytes;
    text::TermId id = index.vocab_.Intern(term);
    if (id != t) {
      return Status::InvalidArgument("duplicate term '", term,
                                     "' in index file");
    }
    ASSIGN_OR_RETURN(std::uint32_t posting_count, GetU32At(data, size, &pos));
    ASSIGN_OR_RETURN(std::uint64_t payload_bytes, GetU64At(data, size, &pos));
    if (payload_bytes > size - pos) {
      return Status::InvalidArgument("payload length exceeds file size");
    }
    const std::uint64_t blocks =
        (static_cast<std::uint64_t>(posting_count) +
         PostingList::kBlockSize - 1) /
        PostingList::kBlockSize;
    const std::uint64_t min_payload =
        blocks * (version == 2 ? kV2DirEntryBytes : kV3DirEntryBytes);
    if (min_payload > payload_bytes) {
      return Status::InvalidArgument("posting count exceeds payload");
    }
    const std::span<const std::uint8_t> payload(
        data + pos, static_cast<std::size_t>(payload_bytes));
    pos += static_cast<std::size_t>(payload_bytes);
    ASSIGN_OR_RETURN(PostingList list,
                     PostingList::FromMappedPayload(posting_count, payload,
                                                    /*with_max_tf=*/
                                                    version == 3));
    // The eager loader defers this bound to FinalizeScoring's full pass;
    // a lazily scored index must reject out-of-range DocIds at open (the
    // intermediate ones are covered: validated blocks are monotone up to
    // their directory last_doc).
    if (!list.empty() &&
        list.span_last_doc(list.num_spans() - 1) >= num_docs) {
      return Status::InvalidArgument("posting references DocId ",
                                     list.span_last_doc(list.num_spans() - 1),
                                     " but the index has ", num_docs,
                                     " documents");
    }
    index.postings_.push_back(std::move(list));
  }
  if (pos != size) {
    return Status::InvalidArgument("index file has ", size - pos,
                                   " trailing bytes");
  }

  index.num_docs_ = num_docs;
  index.frozen_ = true;
  IndexCounters::AddMappedBytes(size);
  index.mapping_ = std::shared_ptr<const common::MmapFile>(
      new common::MmapFile(std::move(file)),
      [](const common::MmapFile* f) {
        IndexCounters::SubMappedBytes(f->size());
        delete f;
      });
  if (options.eager_scoring) {
    RETURN_NOT_OK(index.FinalizeScoring(num_docs));
  } else {
    index.lazy_ = std::make_unique<LazyScoring>();
  }
  return index;
}

}  // namespace index
}  // namespace metaprobe
