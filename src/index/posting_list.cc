#include "index/posting_list.h"

#include <algorithm>

namespace metaprobe {
namespace index {

namespace {

std::uint64_t GetVarint(const std::vector<std::uint8_t>& bytes,
                        std::size_t* offset) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    std::uint8_t byte = bytes[*offset];
    ++*offset;
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

}  // namespace

void PostingList::PutVarint(std::uint64_t value) {
  while (value >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(value));
}

Status PostingList::Append(DocId doc, std::uint32_t tf) {
  if (has_last_ && doc <= last_doc_) {
    return Status::InvalidArgument("postings must be appended in increasing ",
                                   "DocId order: ", doc, " after ", last_doc_);
  }
  if (tf == 0) {
    return Status::InvalidArgument("posting tf must be positive");
  }
  if (count_ % kSkipInterval == 0) {
    skips_.push_back({doc, count_, bytes_.size()});
  }
  // The first posting of each skip block stores its absolute DocId so the
  // decoder can resume delta decoding from a skip entry.
  DocId delta = (count_ % kSkipInterval == 0) ? doc : doc - last_doc_;
  PutVarint(delta);
  PutVarint(tf);
  last_doc_ = doc;
  has_last_ = true;
  ++count_;
  return Status::OK();
}

void PostingList::ShrinkToFit() {
  bytes_.shrink_to_fit();
  skips_.shrink_to_fit();
}

Result<PostingList> PostingList::FromEncoded(std::uint32_t count,
                                             std::vector<std::uint8_t> bytes) {
  PostingList list;
  list.bytes_ = std::move(bytes);
  list.count_ = count;
  // Validation + skip-table reconstruction in one checked decode pass.
  std::size_t offset = 0;
  DocId prev_doc = 0;
  auto checked_varint = [&](std::uint64_t* value) -> bool {
    *value = 0;
    int shift = 0;
    while (offset < list.bytes_.size()) {
      std::uint8_t byte = list.bytes_[offset++];
      if (shift >= 64) return false;
      *value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return true;
      shift += 7;
    }
    return false;
  };
  for (std::uint32_t i = 0; i < count; ++i) {
    std::size_t entry_offset = offset;
    std::uint64_t delta = 0;
    std::uint64_t tf = 0;
    if (!checked_varint(&delta) || !checked_varint(&tf)) {
      return Status::InvalidArgument("posting payload truncated at entry ", i);
    }
    DocId doc;
    if (i % kSkipInterval == 0) {
      doc = static_cast<DocId>(delta);  // absolute at block start
      list.skips_.push_back({doc, i, entry_offset});
    } else {
      if (delta == 0) {
        return Status::InvalidArgument("zero DocId delta at entry ", i);
      }
      doc = prev_doc + static_cast<DocId>(delta);
      if (doc <= prev_doc) {
        return Status::InvalidArgument("DocId overflow at entry ", i);
      }
    }
    if (i > 0 && doc <= prev_doc) {
      return Status::InvalidArgument("non-increasing DocIds at entry ", i);
    }
    if (tf == 0 || tf > 0xFFFFFFFFull) {
      return Status::InvalidArgument("invalid tf at entry ", i);
    }
    prev_doc = doc;
  }
  if (offset != list.bytes_.size()) {
    return Status::InvalidArgument("trailing garbage after postings");
  }
  list.last_doc_ = prev_doc;
  list.has_last_ = count > 0;
  return list;
}

std::vector<Posting> PostingList::Decode() const {
  std::vector<Posting> out;
  out.reserve(count_);
  for (Iterator it = begin(); it.Valid(); it.Next()) out.push_back(it.posting());
  return out;
}

PostingList::Iterator::Iterator(const PostingList* list)
    : list_(list), remaining_(list->count_) {
  if (remaining_ > 0) DecodeNext();
}

void PostingList::Iterator::DecodeNext() {
  std::uint64_t delta = GetVarint(list_->bytes_, &offset_);
  std::uint64_t tf = GetVarint(list_->bytes_, &offset_);
  std::uint32_t index = list_->count_ - remaining_;
  if (index % kSkipInterval == 0) {
    current_.doc = static_cast<DocId>(delta);  // absolute at block start
  } else {
    current_.doc = prev_doc_ + static_cast<DocId>(delta);
  }
  current_.tf = static_cast<std::uint32_t>(tf);
  prev_doc_ = current_.doc;
  --remaining_;
  valid_current_ = true;
}

void PostingList::Iterator::Next() {
  if (remaining_ > 0) {
    DecodeNext();
  } else {
    valid_current_ = false;
  }
}

void PostingList::Iterator::SkipTo(DocId target) {
  if (!Valid() || current_.doc >= target) return;
  // Binary search the skip table for the last block starting at or before
  // target that is still ahead of the current position.
  const auto& skips = list_->skips_;
  std::uint32_t current_index = list_->count_ - remaining_ - 1;
  auto it = std::upper_bound(
      skips.begin(), skips.end(), target,
      [](DocId t, const SkipEntry& e) { return t < e.doc; });
  if (it != skips.begin()) {
    --it;
    if (it->index > current_index) {
      offset_ = it->offset;
      remaining_ = list_->count_ - it->index;
      prev_doc_ = 0;  // block start stores an absolute DocId
      DecodeNext();
      if (current_.doc >= target) return;
    }
  }
  while (current_.doc < target) {
    if (remaining_ == 0) {
      valid_current_ = false;
      return;
    }
    DecodeNext();
  }
}

}  // namespace index
}  // namespace metaprobe
