#include "index/posting_list.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/macros.h"
#include "index/bitpack.h"
#include "index/index_metrics.h"
#include "index/varint_codec.h"

namespace metaprobe {
namespace index {

namespace {

// Serialized size of one v3 directory entry: first_doc, last_doc, max_tf
// (u32 LE each) plus the two bit widths.
constexpr std::size_t kDirEntryBytes = 4 + 4 + 4 + 1 + 1;
// v2 entries lacked max_tf.
constexpr std::size_t kV2DirEntryBytes = 4 + 4 + 1 + 1;

void PutU32Le(std::uint32_t v, std::vector<std::uint8_t>* out) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t GetU32Le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

// One validated directory entry, shared by the eager and mapped decoders.
struct ParsedMeta {
  DocId first_doc;
  DocId last_doc;
  std::uint32_t max_tf;
  std::uint32_t doc_bits;
  std::uint32_t tf_bits;
  std::uint32_t n;  // postings in this block
};

// Parses and sanity-checks a payload's directory (pass 1 of decoding):
// bit widths, max_tf/width consistency, per-block range plausibility,
// cross-block monotonicity, and that the directory-derived section sizes
// account for the payload exactly. On success `*metas` holds one entry
// per block and `*dir_bytes_out` the directory's byte length.
Status ParseDirectory(const std::uint8_t* data, std::size_t size,
                      std::uint32_t count, bool with_max_tf,
                      std::vector<ParsedMeta>* metas,
                      std::size_t* dir_bytes_out) {
  constexpr std::uint32_t kBlockSize = PostingList::kBlockSize;
  const std::size_t entry_bytes =
      with_max_tf ? kDirEntryBytes : kV2DirEntryBytes;
  const std::size_t full_blocks = count / kBlockSize;
  const std::size_t tail_n = count % kBlockSize;
  const std::size_t num_entries = full_blocks + (tail_n > 0 ? 1 : 0);
  const std::size_t dir_bytes = num_entries * entry_bytes;
  if (size < dir_bytes) {
    return Status::InvalidArgument("posting payload truncated: ", size,
                                   " bytes cannot hold a ", num_entries,
                                   "-block directory");
  }

  metas->resize(num_entries);
  std::uint64_t payload_bytes = 0;
  for (std::size_t b = 0; b < num_entries; ++b) {
    const std::uint8_t* p = data + b * entry_bytes;
    ParsedMeta& m = (*metas)[b];
    m.first_doc = GetU32Le(p);
    m.last_doc = GetU32Le(p + 4);
    if (with_max_tf) {
      m.max_tf = GetU32Le(p + 8);
      m.doc_bits = p[12];
      m.tf_bits = p[13];
    } else {
      m.max_tf = 0;  // recovered from the decoded tf section by the caller
      m.doc_bits = p[8];
      m.tf_bits = p[9];
    }
    m.n = (tail_n > 0 && b + 1 == num_entries)
              ? static_cast<std::uint32_t>(tail_n)
              : kBlockSize;
    if (m.doc_bits > 32 || m.tf_bits > 32) {
      return Status::InvalidArgument("block ", b, " claims ", m.doc_bits, "/",
                                     m.tf_bits, " bit widths (max 32)");
    }
    if (with_max_tf &&
        (m.max_tf == 0 || BitWidthOf(m.max_tf - 1) != m.tf_bits)) {
      return Status::InvalidArgument("block ", b, " claims max tf ", m.max_tf,
                                     " inconsistent with its ", m.tf_bits,
                                     "-bit tf width");
    }
    if (static_cast<std::uint64_t>(m.first_doc) + (m.n - 1) >
        static_cast<std::uint64_t>(m.last_doc)) {
      return Status::InvalidArgument("block ", b, " directory range [",
                                     m.first_doc, ", ", m.last_doc,
                                     "] cannot hold ", m.n, " postings");
    }
    if (b > 0 && m.first_doc <= (*metas)[b - 1].last_doc) {
      return Status::InvalidArgument("non-increasing DocIds between blocks ",
                                     b - 1, " and ", b);
    }
    payload_bytes += PackedBytes(m.n - 1, m.doc_bits);
    payload_bytes += PackedBytes(m.n, m.tf_bits);
  }
  if (dir_bytes + payload_bytes != size) {
    return Status::InvalidArgument("posting payload length mismatch: directory"
                                   " derives ", dir_bytes + payload_bytes,
                                   " bytes, got ", size);
  }
  *dir_bytes_out = dir_bytes;
  return Status::OK();
}

}  // namespace

Status PostingList::Append(DocId doc, std::uint32_t tf) {
  if (frozen_) {
    return Status::FailedPrecondition(
        "cannot append to a frozen posting list");
  }
  if (has_last_ && doc <= last_doc_) {
    return Status::InvalidArgument("postings must be appended in increasing ",
                                   "DocId order: ", doc, " after ", last_doc_);
  }
  if (tf == 0) {
    return Status::InvalidArgument("posting tf must be positive");
  }
  tail_docs_.push_back(doc);
  tail_tfs_.push_back(tf);
  last_doc_ = doc;
  has_last_ = true;
  ++count_;
  if (tail_docs_.size() == kBlockSize) PackTailBlock();
  return Status::OK();
}

void PostingList::PackTailBlock() {
  const std::size_t n = tail_docs_.size();
  BlockMeta m;
  m.first_doc = tail_docs_.front();
  m.last_doc = tail_docs_.back();
  m.offset = bytes_.size();
  std::uint32_t gaps[kBlockSize];
  std::uint32_t tfs[kBlockSize];
  std::uint32_t max_gap = 0;
  std::uint32_t tf_or = 0;  // OR shares its bit width with the max
  std::uint32_t max_tf = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    gaps[i] = tail_docs_[i + 1] - tail_docs_[i] - 1;
    max_gap |= gaps[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    tfs[i] = tail_tfs_[i] - 1;
    tf_or |= tfs[i];
    max_tf = std::max(max_tf, tail_tfs_[i]);
  }
  m.max_tf = max_tf;
  m.doc_bits = static_cast<std::uint8_t>(BitWidthOf(max_gap));
  m.tf_bits = static_cast<std::uint8_t>(BitWidthOf(tf_or));
  PackBits(gaps, n - 1, m.doc_bits, &bytes_);
  PackBits(tfs, n, m.tf_bits, &bytes_);
  blocks_.push_back(m);
  tail_docs_.clear();
  tail_tfs_.clear();
}

void PostingList::Freeze() {
  if (frozen_) return;
  if (!tail_docs_.empty()) PackTailBlock();
  tail_docs_.shrink_to_fit();
  tail_tfs_.shrink_to_fit();
  ShrinkToFit();
  frozen_ = true;
}

std::uint32_t PostingList::span_max_tf(std::size_t s) const {
  if (s < blocks_.size()) return blocks_[s].max_tf;
  return *std::max_element(tail_tfs_.begin(), tail_tfs_.end());
}

std::size_t PostingList::FindSpanContaining(DocId target,
                                            std::size_t from) const {
  const std::size_t nb = blocks_.size();
  if (from < nb) {
    if (blocks_[from].last_doc >= target) return from;
    auto it = std::lower_bound(
        blocks_.begin() + static_cast<std::ptrdiff_t>(from + 1), blocks_.end(),
        target, [](const BlockMeta& m, DocId t) { return m.last_doc < t; });
    const std::size_t b = static_cast<std::size_t>(it - blocks_.begin());
    if (b < nb) return b;
    from = nb;
  }
  if (from == nb && !tail_docs_.empty() && tail_docs_.back() >= target) {
    return nb;
  }
  return num_spans();
}

std::size_t PostingList::HeapByteSize() const {
  return bytes_.size() + blocks_.size() * sizeof(BlockMeta) +
         tail_docs_.size() * (sizeof(DocId) + sizeof(std::uint32_t));
}

void PostingList::ShrinkToFit() {
  bytes_.shrink_to_fit();
  blocks_.shrink_to_fit();
  tail_docs_.shrink_to_fit();
  tail_tfs_.shrink_to_fit();
}

std::vector<Posting> PostingList::Decode() const {
  std::vector<Posting> out;
  out.reserve(count_);
  for (Iterator it = begin(); it.Valid(); it.Next()) out.push_back(it.posting());
  return out;
}

std::vector<std::uint8_t> PostingList::EncodePayload() const {
  std::vector<std::uint8_t> out;
  const std::size_t tail_n = tail_docs_.size();

  // The tail serializes as one final (possibly partial) packed block; a
  // frozen list has already packed it (identically) into blocks_/bytes_.
  std::uint32_t tail_gaps[kBlockSize];
  std::uint32_t tail_tfs[kBlockSize];
  std::uint32_t tail_doc_bits = 0;
  std::uint32_t tail_tf_bits = 0;
  std::uint32_t tail_max_tf = 0;
  if (tail_n > 0) {
    std::uint32_t max_gap = 0;
    std::uint32_t tf_or = 0;
    for (std::size_t i = 0; i + 1 < tail_n; ++i) {
      tail_gaps[i] = tail_docs_[i + 1] - tail_docs_[i] - 1;
      max_gap |= tail_gaps[i];
    }
    for (std::size_t i = 0; i < tail_n; ++i) {
      tail_tfs[i] = tail_tfs_[i] - 1;
      tf_or |= tail_tfs[i];
      tail_max_tf = std::max(tail_max_tf, tail_tfs_[i]);
    }
    tail_doc_bits = BitWidthOf(max_gap);
    tail_tf_bits = BitWidthOf(tf_or);
  }

  const std::size_t num_entries = blocks_.size() + (tail_n > 0 ? 1 : 0);
  out.reserve(num_entries * kDirEntryBytes + section_size() +
              PackedBytes(tail_n > 0 ? tail_n - 1 : 0, tail_doc_bits) +
              PackedBytes(tail_n, tail_tf_bits));
  for (const BlockMeta& m : blocks_) {
    PutU32Le(m.first_doc, &out);
    PutU32Le(m.last_doc, &out);
    PutU32Le(m.max_tf, &out);
    out.push_back(m.doc_bits);
    out.push_back(m.tf_bits);
  }
  if (tail_n > 0) {
    PutU32Le(tail_docs_.front(), &out);
    PutU32Le(tail_docs_.back(), &out);
    PutU32Le(tail_max_tf, &out);
    out.push_back(static_cast<std::uint8_t>(tail_doc_bits));
    out.push_back(static_cast<std::uint8_t>(tail_tf_bits));
  }
  out.insert(out.end(), section_data(), section_data() + section_size());
  if (tail_n > 0) {
    PackBits(tail_gaps, tail_n - 1, tail_doc_bits, &out);
    PackBits(tail_tfs, tail_n, tail_tf_bits, &out);
  }
  return out;
}

Result<PostingList> PostingList::FromEncoded(std::uint32_t count,
                                             std::vector<std::uint8_t> bytes) {
  return FromEncodedImpl(count, std::move(bytes), /*with_max_tf=*/true);
}

Result<PostingList> PostingList::FromV2Encoded(std::uint32_t count,
                                               std::vector<std::uint8_t> bytes) {
  return FromEncodedImpl(count, std::move(bytes), /*with_max_tf=*/false);
}

Result<PostingList> PostingList::FromEncodedImpl(std::uint32_t count,
                                                 std::vector<std::uint8_t> bytes,
                                                 bool with_max_tf) {
  PostingList list;
  list.frozen_ = true;  // loaded lists are read-only
  if (count == 0) {
    if (!bytes.empty()) {
      return Status::InvalidArgument("empty posting list with ", bytes.size(),
                                     " payload bytes");
    }
    return list;
  }
  std::vector<ParsedMeta> metas;
  std::size_t dir_bytes = 0;
  RETURN_NOT_OK(ParseDirectory(bytes.data(), bytes.size(), count, with_max_tf,
                               &metas, &dir_bytes));

  // Pass 2: deep-validate every block's gap section (the decoded last DocId
  // must reproduce the directory entry, which also rules out overflow) and
  // keep the packed sections — the tail block included — as the in-memory
  // layout.
  std::uint32_t gaps[kBlockSize];
  std::size_t offset = dir_bytes;
  list.bytes_.reserve(bytes.size() - dir_bytes);
  list.blocks_.reserve(metas.size());
  for (std::size_t b = 0; b < metas.size(); ++b) {
    const ParsedMeta& m = metas[b];
    const std::size_t gap_bytes = PackedBytes(m.n - 1, m.doc_bits);
    const std::size_t tf_bytes = PackedBytes(m.n, m.tf_bits);
    UnpackBits(bytes.data() + offset, bytes.size() - offset, m.n - 1,
               m.doc_bits, gaps);
    std::uint64_t doc = m.first_doc;
    for (std::uint32_t i = 0; i + 1 < m.n; ++i) {
      doc += static_cast<std::uint64_t>(gaps[i]) + 1;
    }
    if (doc != m.last_doc) {
      return Status::InvalidArgument("block ", b, " decodes to last DocId ",
                                     doc, " but its directory claims ",
                                     m.last_doc);
    }
    BlockMeta meta;
    meta.first_doc = m.first_doc;
    meta.last_doc = m.last_doc;
    meta.offset = list.bytes_.size();
    meta.max_tf = m.max_tf;
    meta.doc_bits = static_cast<std::uint8_t>(m.doc_bits);
    meta.tf_bits = static_cast<std::uint8_t>(m.tf_bits);
    const bool is_partial = m.n < kBlockSize;
    if (!with_max_tf || is_partial) {
      // v2 payloads carry no per-block maxima: recover them by decoding
      // the tf section once on load. For a v3 partial final block the
      // claimed max is cross-checked here (full blocks are cross-checked
      // by InvertedIndex::FinalizeScoring, which decodes every tf anyway).
      std::uint32_t tfs[kBlockSize];
      UnpackBits(bytes.data() + offset + gap_bytes,
                 bytes.size() - offset - gap_bytes, m.n, m.tf_bits, tfs);
      std::uint32_t max_tf = 0;
      for (std::uint32_t i = 0; i < m.n; ++i) {
        max_tf = std::max(max_tf, tfs[i] + 1);
      }
      if (with_max_tf && max_tf != m.max_tf) {
        return Status::InvalidArgument("tail block claims max tf ", m.max_tf,
                                       " but its tf section decodes to ",
                                       max_tf);
      }
      meta.max_tf = max_tf;
    }
    list.bytes_.insert(list.bytes_.end(), bytes.begin() + offset,
                       bytes.begin() + offset + gap_bytes + tf_bytes);
    list.blocks_.push_back(meta);
    offset += gap_bytes + tf_bytes;
  }
  list.count_ = count;
  list.last_doc_ = metas.back().last_doc;
  list.has_last_ = true;
  return list;
}

Result<PostingList> PostingList::FromMappedPayload(
    std::uint32_t count, std::span<const std::uint8_t> payload,
    bool with_max_tf) {
  PostingList list;
  list.frozen_ = true;
  if (count == 0) {
    if (!payload.empty()) {
      return Status::InvalidArgument("empty posting list with ",
                                     payload.size(), " payload bytes");
    }
    return list;
  }
  std::vector<ParsedMeta> metas;
  std::size_t dir_bytes = 0;
  RETURN_NOT_OK(ParseDirectory(payload.data(), payload.size(), count,
                               with_max_tf, &metas, &dir_bytes));

  // Unlike the eager path, the packed sections stay in the mapped region
  // and are decoded lazily on first cursor touch. The lazy decoder
  // cross-checks each block's decoded last DocId against the directory,
  // which is a sound corruption check only when the 32-bit prefix sum
  // cannot wrap; the rare blocks wide enough to wrap are deep-validated
  // with 64-bit sums right here, where we can still return a Status.
  const std::uint8_t* sections = payload.data() + dir_bytes;
  const std::size_t sections_len = payload.size() - dir_bytes;
  list.blocks_.reserve(metas.size());
  std::size_t offset = 0;
  std::uint32_t gaps[kBlockSize];
  for (std::size_t b = 0; b < metas.size(); ++b) {
    const ParsedMeta& m = metas[b];
    const std::size_t gap_bytes = PackedBytes(m.n - 1, m.doc_bits);
    const std::size_t tf_bytes = PackedBytes(m.n, m.tf_bits);
    BlockMeta meta;
    meta.first_doc = m.first_doc;
    meta.last_doc = m.last_doc;
    meta.offset = offset;
    meta.max_tf = m.max_tf;
    meta.doc_bits = static_cast<std::uint8_t>(m.doc_bits);
    meta.tf_bits = static_cast<std::uint8_t>(m.tf_bits);
    const std::uint64_t max_gap_sum =
        static_cast<std::uint64_t>(m.first_doc) +
        static_cast<std::uint64_t>(m.n - 1) *
            ((std::uint64_t{1} << m.doc_bits));
    if (max_gap_sum > std::numeric_limits<std::uint32_t>::max()) {
      UnpackBits(sections + offset, sections_len - offset, m.n - 1,
                 m.doc_bits, gaps);
      std::uint64_t doc = m.first_doc;
      for (std::uint32_t i = 0; i + 1 < m.n; ++i) {
        doc += static_cast<std::uint64_t>(gaps[i]) + 1;
      }
      if (doc != m.last_doc) {
        return Status::InvalidArgument("block ", b, " decodes to last DocId ",
                                       doc, " but its directory claims ",
                                       m.last_doc);
      }
    }
    if (!with_max_tf) {
      // v2 payloads carry no per-block maxima: recover them eagerly (the
      // block-max column must be trustworthy before any WAND traversal).
      std::uint32_t tfs[kBlockSize];
      UnpackBits(sections + offset + gap_bytes,
                 sections_len - offset - gap_bytes, m.n, m.tf_bits, tfs);
      std::uint32_t max_tf = 0;
      for (std::uint32_t i = 0; i < m.n; ++i) {
        max_tf = std::max(max_tf, tfs[i] + 1);
      }
      meta.max_tf = max_tf;
    }
    list.blocks_.push_back(meta);
    offset += gap_bytes + tf_bytes;
  }
  list.mapped_payload_ = payload.data();
  list.mapped_payload_size_ = payload.size();
  list.mapped_sections_offset_ = dir_bytes;
  list.count_ = count;
  list.last_doc_ = metas.back().last_doc;
  list.has_last_ = true;
  return list;
}

Result<PostingList> PostingList::FromV1Encoded(
    std::uint32_t count, const std::vector<std::uint8_t>& bytes) {
  ASSIGN_OR_RETURN(std::vector<Posting> postings,
                   v1::DecodePostings(count, bytes));
  PostingList list;
  for (const Posting& p : postings) {
    RETURN_NOT_OK(list.Append(p.doc, p.tf));
  }
  list.Freeze();  // loaded lists are read-only, like the v2/v3 paths
  return list;
}

PostingList::Iterator::Iterator(const PostingList* list) : list_(list) {
  if (list->count_ > 0) LoadSpan(0);
}

bool PostingList::Iterator::LoadSpan(std::size_t b) {
  block_ = b;
  tfs_loaded_ = false;
  if (b < list_->blocks_.size()) {
    const BlockMeta& m = list_->blocks_[b];
    const std::uint32_t n = list_->SpanLength(b);
    std::uint32_t gaps[kBlockSize - 1];
    UnpackBits(list_->section_data() + m.offset,
               list_->section_size() - m.offset, n - 1, m.doc_bits, gaps);
    PrefixSumGaps(m.first_doc, gaps, n - 1, docs_);
    if (docs_[n - 1] != m.last_doc) {
      // Only reachable for corrupt mapped bytes (heap payloads were
      // deep-validated at load): exhaust permanently rather than serve a
      // block that contradicts its directory. FinalizeScoring's
      // posting-count check turns this into a Status on the index level.
      pos_ = list_->count_;
      span_len_ = 0;
      return false;
    }
    span_len_ = n;
    IndexCounters::CountBlocksDecoded(1);
    if (list_->mapped_payload_ != nullptr) {
      // First touch of a mapped list: its pages are now resident. The
      // flag races benignly between concurrent cursors; atomic_ref keeps
      // the gauge exact without widening PostingList itself.
      std::atomic_ref<bool> counted(list_->resident_counted_);
      if (!counted.load(std::memory_order_relaxed) &&
          !counted.exchange(true, std::memory_order_relaxed)) {
        IndexCounters::AddResidentLists(1);
      }
    }
  } else {
    span_len_ = static_cast<std::uint32_t>(list_->tail_docs_.size());
    std::copy(list_->tail_docs_.begin(), list_->tail_docs_.end(), docs_);
  }
  return true;
}

void PostingList::Iterator::DecodeTfs() const {
  if (block_ < list_->blocks_.size()) {
    const BlockMeta& m = list_->blocks_[block_];
    const std::uint32_t n = list_->SpanLength(block_);
    const std::size_t tf_offset = m.offset + PackedBytes(n - 1, m.doc_bits);
    UnpackBits(list_->section_data() + tf_offset,
               list_->section_size() - tf_offset, n, m.tf_bits, tfs_);
    for (std::uint32_t i = 0; i < n; ++i) ++tfs_[i];  // stored tf-1
  } else {
    std::copy(list_->tail_tfs_.begin(), list_->tail_tfs_.end(), tfs_);
  }
  tfs_loaded_ = true;
}

void PostingList::Iterator::SkipToNewSpan(DocId target) {
  if (target > list_->last_doc_) {
    pos_ = list_->count_;  // no posting can match: exhaust
    return;
  }
  // Gallop over the max-doc directory: every block strictly between the
  // current one and the landing block is skipped without decoding.
  const auto& blocks = list_->blocks_;
  const std::size_t lo = block_ + 1;
  auto it = std::lower_bound(
      blocks.begin() + static_cast<std::ptrdiff_t>(lo), blocks.end(), target,
      [](const BlockMeta& m, DocId t) { return m.last_doc < t; });
  const std::size_t b = static_cast<std::size_t>(it - blocks.begin());
  IndexCounters::CountBlocksSkipped(b - lo);
  if (!LoadSpan(b)) return;
  idx_ = 0;
  pos_ = static_cast<std::uint32_t>(b) * kBlockSize;
}

}  // namespace index
}  // namespace metaprobe
