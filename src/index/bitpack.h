// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_INDEX_BITPACK_H_
#define METAPROBE_INDEX_BITPACK_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#define METAPROBE_BITPACK_SSE2 1
#endif

namespace metaprobe {
namespace index {

/// Frame-of-reference bit packing for posting blocks: fixed-width values
/// written LSB-first into a little-endian bit stream. The layout is
/// byte-order independent (PackBits emits bytes explicitly); UnpackBits
/// takes a word-at-a-time fast path on little-endian hosts and falls back
/// to a portable byte loop elsewhere and near buffer ends.

/// \brief Bits needed to represent `v` (0 for 0).
inline std::uint32_t BitWidthOf(std::uint32_t v) {
  return static_cast<std::uint32_t>(std::bit_width(v));
}

/// \brief Bytes occupied by `n` packed values of `bits` width each.
inline std::size_t PackedBytes(std::size_t n, std::uint32_t bits) {
  return (n * static_cast<std::size_t>(bits) + 7) / 8;
}

/// \brief Appends `n` values of `bits` width each to `out`. `bits` must be
/// in [0, 32] and every value must fit in `bits` bits; bits == 0 appends
/// nothing (all values are implicitly zero).
inline void PackBits(const std::uint32_t* values, std::size_t n,
                     std::uint32_t bits, std::vector<std::uint8_t>* out) {
  if (bits == 0 || n == 0) return;
  std::uint64_t acc = 0;
  unsigned filled = 0;  // bits buffered in acc, always < 8 between values
  for (std::size_t i = 0; i < n; ++i) {
    acc |= static_cast<std::uint64_t>(values[i]) << filled;
    filled += bits;
    while (filled >= 8) {
      out->push_back(static_cast<std::uint8_t>(acc));
      acc >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) out->push_back(static_cast<std::uint8_t>(acc));
}

/// \brief Unpacks `n` values of `bits` width from `src` (holding at least
/// PackedBytes(n, bits) readable bytes out of `src_len`) into `out`.
/// The caller validates lengths; this only chooses safe load widths.
inline void UnpackBits(const std::uint8_t* src, std::size_t src_len,
                       std::size_t n, std::uint32_t bits, std::uint32_t* out) {
  if (bits == 0) {
    std::fill(out, out + n, 0u);
    return;
  }
  const std::uint64_t mask =
      bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  std::size_t i = 0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // Fast path: one unaligned 8-byte load per value (a value of <= 32 bits
  // at any bit offset spans <= 5 bytes, so 8 always covers it). Stops where
  // the load would run past the buffer; the tail loop below finishes up.
  // This loop is branch-free per value and auto-vectorizes well.
  if (src_len >= 8) {
    std::size_t fast_n = std::min(n, ((src_len - 8) * 8) / bits + 1);
    while (fast_n > 0 && ((fast_n - 1) * bits) / 8 + 8 > src_len) --fast_n;
    for (; i < fast_n; ++i) {
      const std::size_t bitpos = i * bits;
      std::uint64_t word;
      std::memcpy(&word, src + (bitpos >> 3), 8);
      out[i] = static_cast<std::uint32_t>((word >> (bitpos & 7)) & mask);
    }
  }
#endif
  // Portable / tail path: assemble the covering bytes explicitly.
  for (; i < n; ++i) {
    const std::size_t bitpos = i * bits;
    const std::size_t byte = bitpos >> 3;
    std::uint64_t word = 0;
    const std::size_t take = std::min<std::size_t>(8, src_len - byte);
    for (std::size_t b = 0; b < take; ++b) {
      word |= static_cast<std::uint64_t>(src[byte + b]) << (8 * b);
    }
    out[i] = static_cast<std::uint32_t>((word >> (bitpos & 7)) & mask);
  }
}

/// \brief Reconstructs absolute doc ids from frame-of-reference gaps:
/// docs[0] = base, docs[i] = docs[i-1] + gaps[i-1] + 1 (strictly
/// increasing sequences store gap-1, so a zero gap value is one step).
/// SIMD prefix sum where SSE2 is available, scalar otherwise.
inline void PrefixSumGaps(std::uint32_t base, const std::uint32_t* gaps,
                          std::size_t n_gaps, std::uint32_t* docs) {
  docs[0] = base;
  std::size_t i = 0;
#if defined(METAPROBE_BITPACK_SSE2)
  if (n_gaps >= 4) {
    const __m128i ones = _mm_set1_epi32(1);
    __m128i carry = _mm_set1_epi32(static_cast<int>(base));
    for (; i + 4 <= n_gaps; i += 4) {
      __m128i g = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(gaps + i));
      g = _mm_add_epi32(g, ones);
      // In-register inclusive scan of the four lanes.
      g = _mm_add_epi32(g, _mm_slli_si128(g, 4));
      g = _mm_add_epi32(g, _mm_slli_si128(g, 8));
      g = _mm_add_epi32(g, carry);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(docs + i + 1), g);
      carry = _mm_shuffle_epi32(g, _MM_SHUFFLE(3, 3, 3, 3));
    }
  }
#endif
  for (; i < n_gaps; ++i) docs[i + 1] = docs[i] + gaps[i] + 1;
}

}  // namespace index
}  // namespace metaprobe

#endif  // METAPROBE_INDEX_BITPACK_H_
