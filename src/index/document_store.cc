#include "index/document_store.h"

namespace metaprobe {
namespace index {

DocId DocumentStore::Add(Document doc) {
  DocId id = static_cast<DocId>(docs_.size());
  docs_.push_back(std::move(doc));
  return id;
}

Result<const Document*> DocumentStore::Get(DocId id) const {
  if (id >= docs_.size()) {
    return Status::NotFound("document ", id, " out of range (store has ",
                            docs_.size(), ")");
  }
  return &docs_[id];
}

}  // namespace index
}  // namespace metaprobe
