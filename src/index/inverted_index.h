// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_INDEX_INVERTED_INDEX_H_
#define METAPROBE_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "index/posting_list.h"
#include "text/vocabulary.h"

namespace metaprobe {

class ThreadPool;

namespace common {
class MmapFile;
}  // namespace common

namespace index {

/// \brief A document with its retrieval score.
struct ScoredDoc {
  DocId doc = 0;
  double score = 0.0;

  bool operator==(const ScoredDoc&) const = default;
};

/// \brief Aggregate size statistics of an index.
struct IndexStats {
  std::uint32_t num_docs = 0;
  std::uint64_t num_terms = 0;
  std::uint64_t num_postings = 0;
  std::uint64_t total_tokens = 0;
  /// Total posting footprint: `heap_bytes + mapped_bytes`.
  std::size_t posting_bytes = 0;
  /// Posting bytes owned on the heap (packed sections, directories,
  /// uncompressed tails).
  std::size_t heap_bytes = 0;
  /// Posting bytes served zero-copy from a mapped index file.
  std::size_t mapped_bytes = 0;
};

/// \brief Options for `InvertedIndex::OpenMapped`.
struct MappedIndexOptions {
  /// When true, scoring structures (idf, document norms, WAND block
  /// bounds) are computed inside OpenMapped — touching every posting, as
  /// the eager loader does. When false (the default) they are computed on
  /// the first scoring query via `EnsureScoringReady`, so opening costs
  /// only header + directory validation regardless of corpus size.
  bool eager_scoring = false;
};

/// \brief Immutable full-text inverted index over one database's documents.
///
/// This is the engine behind every simulated hidden-web database: it answers
/// the two primitives the paper's probes rely on —
///   * `CountConjunctive`: the number of documents containing *all* query
///     terms (the "N results found" line of a search page, used by the
///     document-frequency relevancy definition), and
///   * `TopKCosine`: tf-idf cosine-ranked documents (used by the
///     document-similarity relevancy definition and by result fusion).
///
/// Terms are expected to be pre-analyzed (lowercased, stopped, stemmed) by a
/// shared text::Analyzer. Construction goes through `Builder`; a built index
/// is immutable and safe for concurrent readers.
class InvertedIndex {
 public:
  /// Creates an empty index (no documents, every query matches nothing);
  /// the usual path is `Builder::Build`.
  InvertedIndex() = default;

  /// The destructor settles the process-wide mapped-index gauges
  /// (`metaprobe_index_resident_lists`; the mapping's own release settles
  /// `metaprobe_index_mapped_bytes`). Indexes are move-only: posting
  /// lists of a mapped index point into the shared mapping, so copies
  /// would double-count the gauges without duplicating the storage.
  ~InvertedIndex();
  InvertedIndex(InvertedIndex&& other) noexcept = default;
  InvertedIndex& operator=(InvertedIndex&& other) noexcept;
  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// \brief Incremental index constructor.
  class Builder {
   public:
    Builder() = default;

    /// \brief Adds one document's analyzed terms; returns its DocId.
    /// Duplicate terms within the document are folded into term frequencies.
    DocId AddDocument(const std::vector<std::string>& terms);

    /// \brief Number of documents added so far.
    std::uint32_t num_docs() const {
      return static_cast<std::uint32_t>(doc_token_counts_.size());
    }

    /// \brief Finalizes the index (computes document norms, compacts
    /// posting storage). The builder is consumed.
    Result<InvertedIndex> Build() &&;

   private:
    text::Vocabulary vocab_;
    std::vector<PostingList> postings_;  // indexed by TermId
    std::vector<std::uint32_t> doc_token_counts_;
    std::uint64_t total_tokens_ = 0;
    // Scratch reused across AddDocument calls.
    std::vector<std::pair<text::TermId, std::uint32_t>> scratch_counts_;
  };

  /// \brief Number of indexed documents (the paper's |db|).
  std::uint32_t num_docs() const { return num_docs_; }

  /// \brief Freezes every posting list in place (packs append tails as
  /// final partial blocks — see `PostingList::Freeze`). Query results are
  /// bit-identical before and after; the span structure is unchanged, so
  /// the WAND block bounds stay valid. This is the read-optimized
  /// "FrozenIndex" serving mode `core::LocalDatabase` opts into.
  void Freeze();

  /// \brief True when every posting list is frozen (built indexes after
  /// `Freeze()`, every loaded or mapped index).
  bool frozen() const { return frozen_; }

  /// \brief True for indexes produced by `OpenMapped` whose postings are
  /// served zero-copy from the mapped file.
  bool is_mapped() const { return mapping_ != nullptr; }

  /// \brief Computes the lazy scoring structures of a mapped index if
  /// they have not been computed yet (thread-safe, at most once); no-op
  /// for eagerly loaded indexes. Scoring entry points call this
  /// themselves but abort on failure (a corrupt mapped payload detected
  /// mid-query); callers that need a graceful error — e.g. before
  /// installing a freshly mapped index into serving — should call this
  /// explicitly and check the Status.
  Status EnsureScoringReady() const;

  /// \brief Document frequency of `term` (0 when unknown). This is the
  /// r(db, t) column of the paper's statistical summaries (Figure 2).
  std::uint32_t DocumentFrequency(std::string_view term) const;

  /// \brief Posting list of `term`, or nullptr when unknown.
  const PostingList* Postings(std::string_view term) const;

  /// \brief Number of documents containing every term in `terms`
  /// (conjunctive / AND semantics). Zero for an empty term list or any
  /// unknown term. Duplicate terms are ignored.
  std::uint64_t CountConjunctive(const std::vector<std::string>& terms) const;

  /// \brief Conjunctive counts for a batch of term lists: the returned
  /// vector holds `CountConjunctive(*queries[i])` at position i. Term
  /// lookups are memoized across the batch, so repeated vocabulary probes
  /// (ubiquitous in ED-learning sweeps, where every query classifies
  /// against the same vocabulary) cost one hash each; each query's terms
  /// are canonicalized (resolved, deduplicated, ordered by list size) once
  /// during that memoization pass, never re-sorted per intersection.
  ///
  /// With a non-null `pool` the intersections fan out across its workers
  /// after the sequential canonicalization pass; every query writes only
  /// its own slot, so the result is identical to the sequential path. The
  /// caller blocks on the fan-out, so `pool` must not be a pool whose
  /// workers themselves issue this call (the pool does no work stealing —
  /// same leaf-task rule as ProbingContext::pool).
  std::vector<std::uint64_t> CountConjunctiveBatch(
      const std::vector<const std::vector<std::string>*>& queries,
      ThreadPool* pool = nullptr) const;

  /// \brief Convenience overload over owned term lists.
  std::vector<std::uint64_t> CountConjunctiveBatch(
      const std::vector<std::vector<std::string>>& queries,
      ThreadPool* pool = nullptr) const;

  /// \brief DocIds of up to `limit` conjunctive matches, ascending.
  std::vector<DocId> FindConjunctive(const std::vector<std::string>& terms,
                                     std::size_t limit) const;

  /// \brief Top-k documents by tf-idf cosine similarity to the bag of
  /// `terms` (lnc.ltc weighting), best first; ties broken by lower DocId.
  ///
  /// Implemented as a block-max WAND driver: document-ordered cursors over
  /// the query's posting lists, a running k-th-best threshold, and
  /// per-block score upper bounds (from the format-v3 max-tf directory)
  /// that let it skip whole blocks — and their tf sections — that cannot
  /// beat the threshold. Every contribution a surviving document
  /// accumulates is evaluated with the exact operation sequence of
  /// `TopKCosineExhaustive`, so the two return bit-identical scores and
  /// identical tie order.
  std::vector<ScoredDoc> TopKCosine(const std::vector<std::string>& terms,
                                    std::size_t k) const;

  /// \brief Reference scorer: decodes every posting of every query term
  /// and ranks exhaustively. Kept as the oracle the WAND driver is
  /// property-tested (and benchmarked) against.
  std::vector<ScoredDoc> TopKCosineExhaustive(
      const std::vector<std::string>& terms, std::size_t k) const;

  /// \brief Score of the single best document, 0 when nothing matches. This
  /// is the document-similarity relevancy r(db, q) of Section 2.1.
  double BestCosineScore(const std::vector<std::string>& terms) const;

  /// \brief Term table of this index.
  const text::Vocabulary& vocabulary() const { return vocab_; }

  IndexStats GetStats() const;

  /// \brief Serializes the index (vocabulary + compressed postings) in a
  /// versioned binary format; scoring structures are recomputed on load.
  Status SaveTo(std::ostream& os) const;

  /// \brief Restores an index written by SaveTo, validating framing,
  /// posting monotonicity and DocId bounds.
  static Result<InvertedIndex> LoadFrom(std::istream& is);

  /// \brief Opens an index file zero-copy: the file is mmap'd (with a
  /// read-whole-file fallback), the envelope and every posting directory
  /// are validated exactly as in `LoadFrom`, and each posting list serves
  /// its packed sections straight from the mapping, decoded lazily on
  /// first cursor touch. Cold open therefore costs header + directory
  /// work only — near-constant in the corpus size — and cold lists cost
  /// only page-cache pages. v1 files (varint payloads with no directory)
  /// transparently fall back to the eager loader. The returned index
  /// keeps the mapping alive for as long as it (or any moved-to index)
  /// exists; see DESIGN.md §16.
  static Result<InvertedIndex> OpenMapped(const std::string& path,
                                          MappedIndexOptions options = {});

 private:
  friend class Builder;

  // Recomputes idf_, doc_norms_ and the per-block WAND score bounds from
  // the posting lists; fails if any posting references a DocId >= num_docs
  // or carries a tf exceeding its block's directory max (deep validation
  // of the v3 max-tf entries on load).
  Status FinalizeScoring(std::uint32_t num_docs);

  // Leapfrog-intersects the posting lists, invoking `fn(DocId)` per match;
  // returns early when `fn` returns false. Dense two-list intersections
  // route through the SIMD span kernel (DenseIntersectPair).
  template <typename Fn>
  void IntersectPostings(std::vector<const PostingList*> lists, Fn fn) const;

  // Kept out of line: inlining the dense kernel (two ~1.2 KiB iterators
  // plus the SIMD call) into IntersectPostings degrades the leapfrog
  // loop's register allocation and code layout, measurably slowing 3+-list
  // intersections that never take the dense branch.
  template <typename Fn>
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline))
#endif
  void DenseIntersectPair(const PostingList& a, const PostingList& b,
                          Fn fn) const;

  // Resolves `terms` to (TermId, query tf) pairs over known non-empty
  // terms, sorted by TermId — the deterministic accumulation order both
  // scorers share.
  std::vector<std::pair<text::TermId, std::uint32_t>> QueryTermFreqs(
      const std::vector<std::string>& terms) const;

  // Deferred-scoring state of a lazily opened mapped index: allocated by
  // OpenMapped, resolved at most once by EnsureScoringReady. Behind a
  // pointer so the index stays movable while call_once runs on a stable
  // address; null for eagerly scored indexes.
  struct LazyScoring {
    std::once_flag once;
    Status status;
  };

  text::Vocabulary vocab_;
  std::vector<PostingList> postings_;
  std::vector<double> doc_norms_;  // lnc vector norms for cosine scoring
  std::vector<double> idf_;        // ln(N / df) per term
  // Per term, per span: upper bound on (1 + ln tf) * idf / doc_norm over
  // the span's postings (a hair above the true maximum — see
  // FinalizeScoring); max_impact_ is the per-term maximum across spans.
  std::vector<std::vector<double>> span_bounds_;
  std::vector<double> max_impact_;
  std::uint64_t total_tokens_ = 0;
  // Explicit so a lazily scored mapped index knows its |db| before
  // doc_norms_ exists; FinalizeScoring and OpenMapped both set it.
  std::uint32_t num_docs_ = 0;
  bool frozen_ = false;
  // Keeps the mapped file alive for the posting lists' payload views.
  // The deleter (installed by OpenMapped) settles the mapped-bytes gauge
  // when the last owner releases it.
  std::shared_ptr<const common::MmapFile> mapping_;
  std::unique_ptr<LazyScoring> lazy_;
};

}  // namespace index
}  // namespace metaprobe

#endif  // METAPROBE_INDEX_INVERTED_INDEX_H_
