#include "index/index_metrics.h"

namespace metaprobe {
namespace index {

std::atomic<std::uint64_t> IndexCounters::blocks_decoded{0};
std::atomic<std::uint64_t> IndexCounters::blocks_skipped{0};
std::atomic<std::uint64_t> IndexCounters::wand_blocks_skipped{0};
std::atomic<std::uint64_t> IndexCounters::simd_intersections{0};
std::atomic<std::uint64_t> IndexCounters::batch_probe_queries{0};
std::atomic<std::uint64_t> IndexCounters::batch_probe_calls{0};
std::atomic<std::uint64_t> IndexCounters::last_probe_batch_size{0};
std::atomic<std::uint64_t> IndexCounters::mapped_bytes{0};
std::atomic<std::uint64_t> IndexCounters::resident_lists{0};

}  // namespace index
}  // namespace metaprobe
