#include "index/simd_intersect.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(METAPROBE_INTERSECT_SSE2)
#include <emmintrin.h>
#endif
#if defined(METAPROBE_INTERSECT_AVX2_COMPILED)
#include <immintrin.h>
#endif

namespace metaprobe {
namespace index {

namespace {

// Finishes (or fully performs) a merge intersection from positions i/j.
inline std::size_t ScalarTail(const std::uint32_t* a, std::size_t i,
                              std::size_t na, const std::uint32_t* b,
                              std::size_t j, std::size_t nb,
                              std::uint32_t* out, std::size_t n) {
  while (i < na && j < nb) {
    const std::uint32_t x = a[i];
    const std::uint32_t y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[n++] = x;
      ++i;
      ++j;
    }
  }
  return n;
}

}  // namespace

const char* IntersectKernelName(IntersectKernel kernel) {
  switch (kernel) {
    case IntersectKernel::kScalar:
      return "scalar";
    case IntersectKernel::kSse2:
      return "sse2";
    case IntersectKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::size_t IntersectSortedScalar(const std::uint32_t* a, std::size_t na,
                                  const std::uint32_t* b, std::size_t nb,
                                  std::uint32_t* out) {
  return ScalarTail(a, 0, na, b, 0, nb, out, 0);
}

#if defined(METAPROBE_INTERSECT_SSE2)
std::size_t IntersectSortedSse2(const std::uint32_t* a, std::size_t na,
                                const std::uint32_t* b, std::size_t nb,
                                std::uint32_t* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t n = 0;
  if (na >= 4 && nb >= 4) {
    while (true) {
      const __m128i va =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      const __m128i vb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      // Compare va's four lanes against all four rotations of vb; each a
      // lane matches at most one b lane (runs are duplicate-free), so the
      // OR of the four equality masks flags exactly the common elements.
      const __m128i r1 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
      const __m128i r2 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
      const __m128i r3 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
      const __m128i eq = _mm_or_si128(
          _mm_or_si128(_mm_cmpeq_epi32(va, vb), _mm_cmpeq_epi32(va, r1)),
          _mm_or_si128(_mm_cmpeq_epi32(va, r2), _mm_cmpeq_epi32(va, r3)));
      unsigned mask =
          static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
      while (mask != 0) {
        out[n++] = a[i + static_cast<std::size_t>(std::countr_zero(mask))];
        mask &= mask - 1;
      }
      const std::uint32_t a_max = a[i + 3];
      const std::uint32_t b_max = b[j + 3];
      // Retire whichever window cannot match anything further (ties retire
      // both); every element left behind is <= the other run's window max,
      // so no match is lost.
      if (a_max <= b_max) i += 4;
      if (b_max <= a_max) j += 4;
      if (i + 4 > na || j + 4 > nb) break;
    }
  }
  return ScalarTail(a, i, na, b, j, nb, out, n);
}
#endif  // METAPROBE_INTERSECT_SSE2

#if defined(METAPROBE_INTERSECT_AVX2_COMPILED)
__attribute__((target("avx2"))) std::size_t IntersectSortedAvx2(
    const std::uint32_t* a, std::size_t na, const std::uint32_t* b,
    std::size_t nb, std::uint32_t* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t n = 0;
  if (na >= 8 && nb >= 8) {
    const __m256i rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    while (true) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      __m256i rot =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      // All eight rotations of the b window, cross-lane.
      __m256i eq = _mm256_cmpeq_epi32(va, rot);
      for (int r = 1; r < 8; ++r) {
        rot = _mm256_permutevar8x32_epi32(rot, rotate1);
        eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, rot));
      }
      unsigned mask =
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
      while (mask != 0) {
        out[n++] = a[i + static_cast<std::size_t>(std::countr_zero(mask))];
        mask &= mask - 1;
      }
      const std::uint32_t a_max = a[i + 7];
      const std::uint32_t b_max = b[j + 7];
      if (a_max <= b_max) i += 8;
      if (b_max <= a_max) j += 8;
      if (i + 8 > na || j + 8 > nb) break;
    }
  }
  return ScalarTail(a, i, na, b, j, nb, out, n);
}

bool Avx2IntersectAvailable() { return __builtin_cpu_supports("avx2") != 0; }
#endif  // METAPROBE_INTERSECT_AVX2_COMPILED

namespace {

IntersectKernel ClampToAvailable(IntersectKernel wanted) {
#if defined(METAPROBE_INTERSECT_AVX2_COMPILED)
  if (wanted == IntersectKernel::kAvx2 && Avx2IntersectAvailable()) {
    return IntersectKernel::kAvx2;
  }
#endif
#if defined(METAPROBE_INTERSECT_SSE2)
  if (wanted != IntersectKernel::kScalar) return IntersectKernel::kSse2;
#endif
  (void)wanted;
  return IntersectKernel::kScalar;
}

IntersectKernel DetectKernel() {
  if (const char* env = std::getenv("METAPROBE_SIMD_INTERSECT")) {
    if (std::strcmp(env, "scalar") == 0) return IntersectKernel::kScalar;
    if (std::strcmp(env, "sse2") == 0) {
      return ClampToAvailable(IntersectKernel::kSse2);
    }
    if (std::strcmp(env, "avx2") == 0) {
      return ClampToAvailable(IntersectKernel::kAvx2);
    }
  }
  return ClampToAvailable(IntersectKernel::kAvx2);
}

IntersectKernel& KernelSlot() {
  static IntersectKernel kernel = DetectKernel();
  return kernel;
}

}  // namespace

IntersectKernel ActiveIntersectKernel() { return KernelSlot(); }

void ForceIntersectKernelForTest(IntersectKernel kernel) {
  KernelSlot() =
      kernel == IntersectKernel::kScalar ? kernel : ClampToAvailable(kernel);
}

std::size_t IntersectSorted(const std::uint32_t* a, std::size_t na,
                            const std::uint32_t* b, std::size_t nb,
                            std::uint32_t* out) {
  switch (KernelSlot()) {
#if defined(METAPROBE_INTERSECT_AVX2_COMPILED)
    case IntersectKernel::kAvx2:
      return IntersectSortedAvx2(a, na, b, nb, out);
#endif
#if defined(METAPROBE_INTERSECT_SSE2)
    case IntersectKernel::kSse2:
      return IntersectSortedSse2(a, na, b, nb, out);
#endif
    default:
      return IntersectSortedScalar(a, na, b, nb, out);
  }
}

}  // namespace index
}  // namespace metaprobe
