// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_INDEX_DOCUMENT_STORE_H_
#define METAPROBE_INDEX_DOCUMENT_STORE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "index/posting_list.h"

namespace metaprobe {
namespace index {

/// \brief A stored document: title plus body text.
struct Document {
  std::string title;
  std::string body;
};

/// \brief Optional side store of raw document text, aligned with the
/// inverted index's DocIds.
///
/// The selection algorithms never read document text — they only consume
/// match counts — so databases keep this store only when result fusion or
/// snippet display is wanted (examples, fusion module). Kept separate from
/// InvertedIndex so large experiment corpora can skip the memory cost.
class DocumentStore {
 public:
  /// \brief Appends a document; its DocId is the append position.
  DocId Add(Document doc);

  /// \brief Fetches a document by id.
  Result<const Document*> Get(DocId id) const;

  std::uint32_t size() const { return static_cast<std::uint32_t>(docs_.size()); }
  bool empty() const { return docs_.empty(); }

 private:
  std::vector<Document> docs_;
};

}  // namespace index
}  // namespace metaprobe

#endif  // METAPROBE_INDEX_DOCUMENT_STORE_H_
