#include "index/varint_codec.h"

namespace metaprobe {
namespace index {
namespace v1 {

namespace {

void PutVarint(std::uint64_t value, std::vector<std::uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(value));
}

}  // namespace

std::vector<std::uint8_t> EncodePostings(
    const std::vector<Posting>& postings) {
  std::vector<std::uint8_t> bytes;
  DocId last_doc = 0;
  for (std::size_t i = 0; i < postings.size(); ++i) {
    // The first posting of each skip block stores its absolute DocId.
    DocId delta = (i % kV1SkipInterval == 0) ? postings[i].doc
                                             : postings[i].doc - last_doc;
    PutVarint(delta, &bytes);
    PutVarint(postings[i].tf, &bytes);
    last_doc = postings[i].doc;
  }
  return bytes;
}

Result<std::vector<Posting>> DecodePostings(
    std::uint32_t count, const std::vector<std::uint8_t>& bytes) {
  std::vector<Posting> postings;
  postings.reserve(count);
  std::size_t offset = 0;
  DocId prev_doc = 0;
  auto checked_varint = [&](std::uint64_t* value) -> bool {
    *value = 0;
    int shift = 0;
    while (offset < bytes.size()) {
      std::uint8_t byte = bytes[offset++];
      if (shift >= 64) return false;
      *value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return true;
      shift += 7;
    }
    return false;
  };
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    std::uint64_t tf = 0;
    if (!checked_varint(&delta) || !checked_varint(&tf)) {
      return Status::InvalidArgument("posting payload truncated at entry ", i);
    }
    DocId doc;
    if (i % kV1SkipInterval == 0) {
      doc = static_cast<DocId>(delta);  // absolute at block start
      if (delta > 0xFFFFFFFFull) {
        return Status::InvalidArgument("DocId overflow at entry ", i);
      }
    } else {
      if (delta == 0) {
        return Status::InvalidArgument("zero DocId delta at entry ", i);
      }
      doc = prev_doc + static_cast<DocId>(delta);
      if (doc <= prev_doc) {
        return Status::InvalidArgument("DocId overflow at entry ", i);
      }
    }
    if (i > 0 && doc <= prev_doc) {
      return Status::InvalidArgument("non-increasing DocIds at entry ", i);
    }
    if (tf == 0 || tf > 0xFFFFFFFFull) {
      return Status::InvalidArgument("invalid tf at entry ", i);
    }
    postings.push_back({doc, static_cast<std::uint32_t>(tf)});
    prev_doc = doc;
  }
  if (offset != bytes.size()) {
    return Status::InvalidArgument("trailing garbage after postings");
  }
  return postings;
}

}  // namespace v1
}  // namespace index
}  // namespace metaprobe
