#include "text/tokenizer.h"

#include <cctype>

namespace metaprobe {
namespace text {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

bool Tokenizer::IsTokenChar(unsigned char c) const {
  if (c >= 0x80) return false;
  if (std::isalpha(c)) return true;
  if (options_.keep_numbers && std::isdigit(c)) return true;
  return false;
}

void Tokenizer::Tokenize(std::string_view input,
                         std::vector<std::string>* out) const {
  std::string current;
  auto flush = [&]() {
    bool all_digits = true;
    for (char c : current) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        all_digits = false;
        break;
      }
    }
    if (current.size() >= options_.min_token_length &&
        current.size() <= options_.max_token_length &&
        !(all_digits && !current.empty())) {
      out->push_back(current);
    }
    current.clear();
  };

  for (std::size_t i = 0; i < input.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(input[i]);
    if (IsTokenChar(c)) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (c == '\'' && !current.empty() && i + 1 < input.size() &&
               IsTokenChar(static_cast<unsigned char>(input[i + 1]))) {
      // Collapse internal apostrophes: "don't" -> "dont".
      continue;
    } else if (!current.empty()) {
      flush();
    }
  }
  if (!current.empty()) flush();
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view input) const {
  std::vector<std::string> out;
  Tokenize(input, &out);
  return out;
}

}  // namespace text
}  // namespace metaprobe
