#include "text/analyzer.h"

namespace metaprobe {
namespace text {

Analyzer::Analyzer(AnalyzerOptions options)
    : options_(options), tokenizer_(options.tokenizer) {}

std::vector<std::string> Analyzer::Analyze(std::string_view input) const {
  std::vector<std::string> tokens = tokenizer_.Tokenize(input);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (std::string& token : tokens) {
    if (options_.remove_stopwords && stopwords_.Contains(token)) continue;
    if (options_.stem) {
      out.push_back(stemmer_.Stem(token));
    } else {
      out.push_back(std::move(token));
    }
  }
  return out;
}

std::string Analyzer::AnalyzeTerm(std::string_view word) const {
  std::vector<std::string> terms = Analyze(word);
  return terms.empty() ? std::string() : std::move(terms.front());
}

}  // namespace text
}  // namespace metaprobe
