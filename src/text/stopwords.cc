#include "text/stopwords.h"

#include <array>

namespace metaprobe {
namespace text {

namespace {

// Classic high-frequency English function words. String literals have static
// storage duration, so the set can hold string_views into them.
constexpr std::array<std::string_view, 180> kDefaultStopwords = {
    "a",        "about",   "above",   "after",   "again",    "against",
    "all",      "am",      "an",      "and",     "any",      "are",
    "aren",     "as",      "at",      "be",      "because",  "been",
    "before",   "being",   "below",   "between", "both",     "but",
    "by",       "can",     "cannot",  "could",   "couldn",   "did",
    "didn",     "do",      "does",    "doesn",   "doing",    "don",
    "down",     "during",  "each",    "few",     "for",      "from",
    "further",  "had",     "hadn",    "has",     "hasn",     "have",
    "haven",    "having",  "he",      "her",     "here",     "hers",
    "herself",  "him",     "himself", "his",     "how",      "i",
    "if",       "in",      "into",    "is",      "isn",      "it",
    "its",      "itself",  "just",    "ll",      "me",       "more",
    "most",     "mustn",   "my",      "myself",  "no",       "nor",
    "not",      "now",     "of",      "off",     "on",       "once",
    "only",     "or",      "other",   "ought",   "our",      "ours",
    "ourselves","out",     "over",    "own",     "re",       "same",
    "shan",     "she",     "should",  "shouldn", "so",       "some",
    "such",     "than",    "that",    "the",     "their",    "theirs",
    "them",     "themselves", "then", "there",   "these",    "they",
    "this",     "those",   "through", "to",      "too",      "under",
    "until",    "up",      "ve",      "very",    "was",      "wasn",
    "we",       "were",    "weren",   "what",    "when",     "where",
    "which",    "while",   "who",     "whom",    "why",      "with",
    "won",      "would",   "wouldn",  "you",     "your",     "yours",
    "yourself", "yourselves", "also", "among",   "another",  "back",
    "even",     "ever",    "every",   "get",     "go",       "goes",
    "got",      "like",    "made",    "make",    "many",     "may",
    "might",    "much",    "must",    "new",     "one",      "put",
    "said",     "say",     "says",    "see",     "still",    "take",
    "two",      "us",      "use",     "way",     "well",     "will",
};

}  // namespace

StopwordList::StopwordList()
    : words_(kDefaultStopwords.begin(), kDefaultStopwords.end()) {}

StopwordList::StopwordList(std::initializer_list<std::string_view> words)
    : words_(words.begin(), words.end()) {}

bool StopwordList::Contains(std::string_view word) const {
  return words_.count(word) > 0;
}

}  // namespace text
}  // namespace metaprobe
