#include "text/porter_stemmer.h"

#include <array>
#include <cctype>

namespace metaprobe {
namespace text {

namespace {

// A consonant is any letter other than a, e, i, o, u, with 'y' counting as a
// consonant only when not preceded by a consonant.
bool IsConsonant(const std::string& w, std::size_t i) {
  char c = w[i];
  switch (c) {
    case 'a':
    case 'e':
    case 'i':
    case 'o':
    case 'u':
      return false;
    case 'y':
      return i == 0 ? true : !IsConsonant(w, i - 1);
    default:
      return true;
  }
}

// Measure m of the word prefix w[0, end): number of VC sequences in the
// canonical form [C](VC)^m[V].
int Measure(const std::string& w, std::size_t end) {
  int m = 0;
  std::size_t i = 0;
  // Skip initial consonants.
  while (i < end && IsConsonant(w, i)) ++i;
  while (i < end) {
    // Vowel run.
    while (i < end && !IsConsonant(w, i)) ++i;
    if (i >= end) break;
    ++m;
    // Consonant run.
    while (i < end && IsConsonant(w, i)) ++i;
  }
  return m;
}

bool HasVowel(const std::string& w, std::size_t end) {
  for (std::size_t i = 0; i < end; ++i) {
    if (!IsConsonant(w, i)) return true;
  }
  return false;
}

bool EndsWithDoubleConsonant(const std::string& w) {
  std::size_t n = w.size();
  if (n < 2) return false;
  return w[n - 1] == w[n - 2] && IsConsonant(w, n - 1);
}

// cvc with final consonant not w, x, or y ("hop", "crim" in "crime"-trimmed).
bool EndsCvc(const std::string& w, std::size_t end) {
  if (end < 3) return false;
  std::size_t i = end - 1;
  if (!IsConsonant(w, i) || IsConsonant(w, i - 1) || !IsConsonant(w, i - 2)) {
    return false;
  }
  char c = w[i];
  return c != 'w' && c != 'x' && c != 'y';
}

bool EndsWith(const std::string& w, std::string_view suffix) {
  return w.size() >= suffix.size() &&
         std::string_view(w).substr(w.size() - suffix.size()) == suffix;
}

// If the word ends with `suffix` and the stem before it has measure > m_min,
// replace the suffix and return true.
bool ReplaceIfMeasure(std::string* w, std::string_view suffix,
                      std::string_view replacement, int m_min) {
  if (!EndsWith(*w, suffix)) return false;
  std::size_t stem_len = w->size() - suffix.size();
  if (Measure(*w, stem_len) <= m_min) return true;  // matched; rule consumed
  w->resize(stem_len);
  w->append(replacement);
  return true;
}

}  // namespace

void PorterStemmer::Step1a(std::string* w) {
  if (EndsWith(*w, "sses")) {
    w->resize(w->size() - 2);  // sses -> ss
  } else if (EndsWith(*w, "ies")) {
    w->resize(w->size() - 2);  // ies -> i
  } else if (EndsWith(*w, "ss")) {
    // ss -> ss (no change)
  } else if (EndsWith(*w, "s")) {
    w->resize(w->size() - 1);  // s ->
  }
}

void PorterStemmer::Step1b(std::string* w) {
  bool second_or_third = false;
  if (EndsWith(*w, "eed")) {
    if (Measure(*w, w->size() - 3) > 0) w->resize(w->size() - 1);  // eed -> ee
  } else if (EndsWith(*w, "ed") && HasVowel(*w, w->size() - 2)) {
    w->resize(w->size() - 2);
    second_or_third = true;
  } else if (EndsWith(*w, "ing") && HasVowel(*w, w->size() - 3)) {
    w->resize(w->size() - 3);
    second_or_third = true;
  }
  if (second_or_third) {
    if (EndsWith(*w, "at") || EndsWith(*w, "bl") || EndsWith(*w, "iz")) {
      w->push_back('e');
    } else if (EndsWithDoubleConsonant(*w)) {
      char last = w->back();
      if (last != 'l' && last != 's' && last != 'z') w->resize(w->size() - 1);
    } else if (Measure(*w, w->size()) == 1 && EndsCvc(*w, w->size())) {
      w->push_back('e');
    }
  }
}

void PorterStemmer::Step1c(std::string* w) {
  if (EndsWith(*w, "y") && HasVowel(*w, w->size() - 1)) {
    (*w)[w->size() - 1] = 'i';
  }
}

void PorterStemmer::Step2(std::string* w) {
  struct Rule {
    std::string_view suffix;
    std::string_view replacement;
  };
  static constexpr std::array<Rule, 20> kRules = {{
      {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
      {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
      {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
      {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
      {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
      {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
      {"iviti", "ive"},   {"biliti", "ble"},
  }};
  for (const Rule& rule : kRules) {
    if (EndsWith(*w, rule.suffix)) {
      ReplaceIfMeasure(w, rule.suffix, rule.replacement, 0);
      return;
    }
  }
}

void PorterStemmer::Step3(std::string* w) {
  struct Rule {
    std::string_view suffix;
    std::string_view replacement;
  };
  static constexpr std::array<Rule, 7> kRules = {{
      {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
      {"ical", "ic"},  {"ful", ""},   {"ness", ""},
  }};
  for (const Rule& rule : kRules) {
    if (EndsWith(*w, rule.suffix)) {
      ReplaceIfMeasure(w, rule.suffix, rule.replacement, 0);
      return;
    }
  }
}

void PorterStemmer::Step4(std::string* w) {
  static constexpr std::array<std::string_view, 19> kSuffixes = {
      "al",    "ance", "ence", "er",  "ic",  "able", "ible", "ant",  "ement",
      "ment",  "ent",  "ou",   "ism", "ate", "iti",  "ous",  "ive",  "ize",
      "ion"};
  for (std::string_view suffix : kSuffixes) {
    if (!EndsWith(*w, suffix)) continue;
    std::size_t stem_len = w->size() - suffix.size();
    if (suffix == "ion") {
      // (m>1 and (*S or *T)) ION ->
      if (stem_len > 0 &&
          ((*w)[stem_len - 1] == 's' || (*w)[stem_len - 1] == 't') &&
          Measure(*w, stem_len) > 1) {
        w->resize(stem_len);
      }
    } else if (Measure(*w, stem_len) > 1) {
      w->resize(stem_len);
    }
    return;
  }
}

void PorterStemmer::Step5a(std::string* w) {
  if (!EndsWith(*w, "e")) return;
  std::size_t stem_len = w->size() - 1;
  int m = Measure(*w, stem_len);
  if (m > 1 || (m == 1 && !EndsCvc(*w, stem_len))) {
    w->resize(stem_len);
  }
}

void PorterStemmer::Step5b(std::string* w) {
  if (w->size() >= 2 && w->back() == 'l' && EndsWithDoubleConsonant(*w) &&
      Measure(*w, w->size()) > 1) {
    w->resize(w->size() - 1);
  }
}

std::string PorterStemmer::Stem(std::string_view word) const {
  // Words of length <= 2 are left untouched, per the original paper.
  if (word.size() <= 2) return std::string(word);
  for (char c : word) {
    if (!std::islower(static_cast<unsigned char>(c))) return std::string(word);
  }
  std::string w(word);
  Step1a(&w);
  Step1b(&w);
  Step1c(&w);
  Step2(&w);
  Step3(&w);
  Step4(&w);
  Step5a(&w);
  Step5b(&w);
  return w;
}

}  // namespace text
}  // namespace metaprobe
