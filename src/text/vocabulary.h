// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_TEXT_VOCABULARY_H_
#define METAPROBE_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace metaprobe {
namespace text {

/// \brief Dense integer id of an interned term.
using TermId = std::uint32_t;

/// \brief Sentinel returned for unknown terms.
inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// \brief Bidirectional term <-> id interning table.
///
/// Every index and summary in the library speaks TermIds instead of strings,
/// so posting lists and document-frequency tables stay compact. Ids are
/// assigned densely in first-seen order, making them usable as vector
/// indexes.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Movable but not copyable: instances can hold millions of strings and are
  // shared by reference.
  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  /// \brief Returns the id of `term`, interning it if new.
  TermId Intern(std::string_view term);

  /// \brief Returns the id of `term`, or kInvalidTermId when unknown.
  TermId Lookup(std::string_view term) const;

  /// \brief Returns the term for `id`; `id` must be valid.
  const std::string& TermOf(TermId id) const { return terms_[id]; }

  /// \brief Number of distinct terms.
  std::size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> terms_;
};

}  // namespace text
}  // namespace metaprobe

#endif  // METAPROBE_TEXT_VOCABULARY_H_
