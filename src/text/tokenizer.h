// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_TEXT_TOKENIZER_H_
#define METAPROBE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace metaprobe {
namespace text {

/// \brief Options controlling raw tokenization.
struct TokenizerOptions {
  /// Drop tokens shorter than this after normalization.
  std::size_t min_token_length = 2;
  /// Drop tokens longer than this (guards against binary junk).
  std::size_t max_token_length = 40;
  /// Keep digits inside tokens ("2004", "covid19"); purely numeric tokens
  /// are still dropped when false.
  bool keep_numbers = false;
};

/// \brief Splits raw text into lowercase ASCII word tokens.
///
/// A token is a maximal run of ASCII letters (plus digits when
/// `keep_numbers`), with internal apostrophes collapsed ("don't" -> "dont").
/// Non-ASCII bytes act as separators, which is adequate for the synthetic
/// English-like corpora this library generates.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// \brief Tokenizes `input`, appending to `out`.
  void Tokenize(std::string_view input, std::vector<std::string>* out) const;

  /// \brief Convenience overload returning a fresh vector.
  std::vector<std::string> Tokenize(std::string_view input) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  bool IsTokenChar(unsigned char c) const;

  TokenizerOptions options_;
};

}  // namespace text
}  // namespace metaprobe

#endif  // METAPROBE_TEXT_TOKENIZER_H_
