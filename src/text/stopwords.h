// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_TEXT_STOPWORDS_H_
#define METAPROBE_TEXT_STOPWORDS_H_

#include <string_view>
#include <unordered_set>

namespace metaprobe {
namespace text {

/// \brief English stopword filter.
///
/// The default list is the classic SMART-style set of high-frequency
/// function words. Stopwords are dropped by the analysis pipeline both when
/// indexing documents and when parsing queries, mirroring the keyword-search
/// interfaces the paper's hidden-web databases expose.
class StopwordList {
 public:
  /// Creates the default English list.
  StopwordList();

  /// Creates a list from explicit words (already lowercase).
  explicit StopwordList(std::initializer_list<std::string_view> words);

  /// \brief Returns true if `word` (lowercase) is a stopword.
  bool Contains(std::string_view word) const;

  /// \brief Number of words in the list.
  std::size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string_view> words_;
};

}  // namespace text
}  // namespace metaprobe

#endif  // METAPROBE_TEXT_STOPWORDS_H_
