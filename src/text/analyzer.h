// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_TEXT_ANALYZER_H_
#define METAPROBE_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace metaprobe {
namespace text {

/// \brief Options for the end-to-end analysis pipeline.
struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  bool stem = true;
};

/// \brief Tokenize -> stopword-filter -> stem pipeline.
///
/// One analyzer is shared by the indexer and the query parser so documents
/// and queries land in the same term space. Analysis is stateless and
/// thread-compatible (const methods on an immutable configuration).
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {});

  /// \brief Analyzes free text into index terms.
  std::vector<std::string> Analyze(std::string_view input) const;

  /// \brief Analyzes a single already-tokenized word (stopwords map to "").
  std::string AnalyzeTerm(std::string_view word) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
  Tokenizer tokenizer_;
  StopwordList stopwords_;
  PorterStemmer stemmer_;
};

}  // namespace text
}  // namespace metaprobe

#endif  // METAPROBE_TEXT_ANALYZER_H_
