// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_TEXT_PORTER_STEMMER_H_
#define METAPROBE_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace metaprobe {
namespace text {

/// \brief The classic Porter (1980) suffix-stripping stemmer.
///
/// Maps inflected English word forms to a common stem
/// ("caresses" -> "caress", "relational" -> "relat", "probing" -> "probe"
/// -> "probe"). Used by the analysis pipeline so that a query term matches
/// every morphological variant in the indexed documents, the behaviour web
/// search interfaces of the paper's era exhibited.
///
/// The input must already be lowercase ASCII (the tokenizer guarantees
/// this); other inputs are returned unchanged.
class PorterStemmer {
 public:
  /// \brief Returns the stem of `word`.
  std::string Stem(std::string_view word) const;

 private:
  // The five rule steps of the algorithm, operating on a mutable buffer.
  static void Step1a(std::string* w);
  static void Step1b(std::string* w);
  static void Step1c(std::string* w);
  static void Step2(std::string* w);
  static void Step3(std::string* w);
  static void Step4(std::string* w);
  static void Step5a(std::string* w);
  static void Step5b(std::string* w);
};

}  // namespace text
}  // namespace metaprobe

#endif  // METAPROBE_TEXT_PORTER_STEMMER_H_
