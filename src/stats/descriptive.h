// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_STATS_DESCRIPTIVE_H_
#define METAPROBE_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace metaprobe {
namespace stats {

/// \brief Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// \brief Population variance; 0 for fewer than two values.
double Variance(const std::vector<double>& xs);

/// \brief Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// \brief Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
double Percentile(std::vector<double> xs, double p);

/// \brief Streaming accumulator for mean / variance / extrema (Welford).
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace stats
}  // namespace metaprobe

#endif  // METAPROBE_STATS_DESCRIPTIVE_H_
