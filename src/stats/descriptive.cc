#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace metaprobe {
namespace stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace stats
}  // namespace metaprobe
