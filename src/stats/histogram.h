// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_STATS_HISTOGRAM_H_
#define METAPROBE_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace metaprobe {
namespace stats {

/// \brief Fixed-bin histogram over the real line.
///
/// Bins are defined by `edges` e_0 < e_1 < ... < e_m plus two implicit
/// open-ended tails, giving m+1 cells:
///   cell 0:      (-inf, e_0)
///   cell i:      [e_{i-1}, e_i)   for 1 <= i <= m-1 ... (half open)
///   cell m:      [e_{m-1}, +inf)
/// i.e. with m edges there are m+1 cells; a value lands in the cell whose
/// lower edge is the greatest edge <= value.
///
/// This is the container behind the paper's error distributions (EDs): the
/// learner adds one observed estimation error per training query, then the
/// histogram is normalized into a `DiscreteDistribution` whose support is
/// one representative value per non-empty cell.
class Histogram {
 public:
  /// Builds a histogram with the given edges; edges must be strictly
  /// increasing and non-empty.
  static Result<Histogram> Make(std::vector<double> edges);

  /// \brief Records one observation.
  void Add(double value);

  /// \brief Records an observation with the given weight (>0).
  void AddWeighted(double value, double weight);

  /// \brief Returns the cell index for `value` (see class comment).
  std::size_t CellFor(double value) const;

  /// \brief Number of cells (= edges + 1).
  std::size_t num_cells() const { return counts_.size(); }

  /// \brief Raw weight in cell `i`.
  double count(std::size_t i) const { return counts_[i]; }

  /// \brief Sum of weights across all cells.
  double total() const { return total_; }

  /// \brief Per-cell probabilities; all zeros if the histogram is empty.
  std::vector<double> Probabilities() const;

  /// \brief Representative value for cell `i`, used as the discrete support
  /// point when converting to a distribution: the midpoint for interior
  /// cells, and the finite edge offset by half the adjacent cell width for
  /// the two open tails.
  double Representative(std::size_t i) const;

  /// \brief Lower/upper bounds of cell `i`; tails return +-infinity.
  double LowerEdge(std::size_t i) const;
  double UpperEdge(std::size_t i) const;

  const std::vector<double>& edges() const { return edges_; }

  /// \brief Merges another histogram with identical edges into this one.
  Status MergeFrom(const Histogram& other);

  /// \brief Resets all counts to zero.
  void Clear();

  /// \brief Renders an ASCII sketch ("[-0.50,-0.25): ####  0.21") for docs,
  /// examples and the Fig. 9 bench.
  std::string ToAscii(int width = 40) const;

 private:
  explicit Histogram(std::vector<double> edges);

  std::vector<double> edges_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace stats
}  // namespace metaprobe

#endif  // METAPROBE_STATS_HISTOGRAM_H_
