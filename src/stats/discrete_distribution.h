// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_STATS_DISCRETE_DISTRIBUTION_H_
#define METAPROBE_STATS_DISCRETE_DISTRIBUTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "stats/random.h"

namespace metaprobe {
namespace stats {

/// \brief A single support point of a discrete distribution.
struct Atom {
  double value = 0.0;
  double prob = 0.0;

  bool operator==(const Atom&) const = default;
};

/// \brief Finite discrete probability distribution over real values.
///
/// The support is kept sorted by value with strictly increasing, de-duplicated
/// values and probabilities normalized to 1. This is the representation of
/// the paper's relevancy distributions (RDs); the order-statistics math in
/// core/correctness.cc relies on the sortedness to evaluate
/// `Pr(X >= v)` / `Pr(X < v)`. Alongside the atoms the distribution keeps
/// the suffix sums tail[i] = sum of probs from atom i to the end, so the
/// tail queries are a binary search plus one lookup instead of a linear
/// accumulation.
class DiscreteDistribution {
 public:
  /// Creates an impulse at 0 (also the value-initialized state).
  DiscreteDistribution();

  /// Builds a distribution from unordered atoms. Atoms with equal values are
  /// merged; non-positive probabilities are dropped; the result is
  /// normalized. Fails if no positive mass remains or a value is non-finite.
  static Result<DiscreteDistribution> Make(std::vector<Atom> atoms);

  /// \brief Returns the distribution concentrated at `value` (an RD after a
  /// probe: the paper's "impulse function").
  static DiscreteDistribution Impulse(double value);

  /// \brief Number of support points.
  std::size_t size() const { return atoms_.size(); }

  /// \brief True when all mass sits on a single value.
  bool IsImpulse() const { return atoms_.size() == 1; }

  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(std::size_t i) const { return atoms_[i]; }

  double Mean() const;
  double Variance() const;
  double StdDev() const;

  /// \brief Smallest/largest support value.
  double MinValue() const { return atoms_.front().value; }
  double MaxValue() const { return atoms_.back().value; }

  /// \brief Pr(X == v) (0 when v is off-support).
  double PrEqual(double v) const;
  /// \brief Pr(X >= v).
  double PrAtLeast(double v) const;
  /// \brief Pr(X > v).
  double PrGreaterThan(double v) const;
  /// \brief Pr(X < v).
  double PrLessThan(double v) const { return 1.0 - PrAtLeast(v); }
  /// \brief Pr(X <= v).
  double PrAtMost(double v) const { return 1.0 - PrGreaterThan(v); }

  /// \brief Fills `ge[g]` = Pr(X >= grid[g]) and `gt[g]` = Pr(X > grid[g])
  /// for every value of `grid` (ascending, deduplicated) in one merged
  /// descending pass: O(grid.size() + size()) instead of a binary search
  /// per entry. The expected-correctness kernel uses this to build its
  /// per-database tail tables (see core/correctness.h).
  void FillTailTables(const std::vector<double>& grid, double* ge,
                      double* gt) const;

  /// \brief Draws a value.
  double Sample(Rng* rng) const;

  /// \brief Returns a copy with every support value transformed by
  /// `fn(value)`; useful for deriving an RD from an ED (r = r_hat * (1+err)).
  /// `fn` must be monotonically non-decreasing to preserve ordering; values
  /// that collide after transformation are merged.
  template <typename Fn>
  DiscreteDistribution MapValues(Fn fn) const {
    std::vector<Atom> mapped;
    mapped.reserve(atoms_.size());
    for (const Atom& a : atoms_) mapped.push_back({fn(a.value), a.prob});
    return Make(std::move(mapped)).ValueOrDie();
  }

  /// \brief Renders "{v1: p1, v2: p2, ...}" for logging and test output.
  std::string ToString(int digits = 3) const;

  bool operator==(const DiscreteDistribution& other) const {
    return atoms_ == other.atoms_;  // tails_ is derived state
  }

 private:
  explicit DiscreteDistribution(std::vector<Atom> atoms);

  std::vector<Atom> atoms_;
  /// tails_[i] = sum of atoms_[i..].prob; tails_[size()] = 0. Derived from
  /// atoms_ on construction, never mutated afterwards.
  std::vector<double> tails_;
};

}  // namespace stats
}  // namespace metaprobe

#endif  // METAPROBE_STATS_DISCRETE_DISTRIBUTION_H_
