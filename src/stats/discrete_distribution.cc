#include "stats/discrete_distribution.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/strings.h"

namespace metaprobe {
namespace stats {

DiscreteDistribution::DiscreteDistribution() : atoms_{{0.0, 1.0}} {
  tails_ = {1.0, 0.0};
}

DiscreteDistribution::DiscreteDistribution(std::vector<Atom> atoms)
    : atoms_(std::move(atoms)) {
  tails_.resize(atoms_.size() + 1);
  tails_.back() = 0.0;
  for (std::size_t i = atoms_.size(); i-- > 0;) {
    tails_[i] = tails_[i + 1] + atoms_[i].prob;
  }
}

Result<DiscreteDistribution> DiscreteDistribution::Make(
    std::vector<Atom> atoms) {
  std::vector<Atom> kept;
  kept.reserve(atoms.size());
  for (const Atom& a : atoms) {
    if (!std::isfinite(a.value)) {
      return Status::InvalidArgument("distribution value must be finite, got ",
                                     a.value);
    }
    if (a.prob > 0.0) kept.push_back(a);
  }
  if (kept.empty()) {
    return Status::InvalidArgument("distribution has no positive mass");
  }
  std::sort(kept.begin(), kept.end(),
            [](const Atom& x, const Atom& y) { return x.value < y.value; });
  // Merge equal values and normalize.
  std::vector<Atom> merged;
  merged.reserve(kept.size());
  double total = 0.0;
  for (const Atom& a : kept) {
    if (!merged.empty() && merged.back().value == a.value) {
      merged.back().prob += a.prob;
    } else {
      merged.push_back(a);
    }
    total += a.prob;
  }
  for (Atom& a : merged) a.prob /= total;
  return DiscreteDistribution(std::move(merged));
}

DiscreteDistribution DiscreteDistribution::Impulse(double value) {
  return DiscreteDistribution({{value, 1.0}});
}

double DiscreteDistribution::Mean() const {
  double m = 0.0;
  for (const Atom& a : atoms_) m += a.value * a.prob;
  return m;
}

double DiscreteDistribution::Variance() const {
  double m = Mean();
  double v = 0.0;
  for (const Atom& a : atoms_) v += (a.value - m) * (a.value - m) * a.prob;
  return v;
}

double DiscreteDistribution::StdDev() const { return std::sqrt(Variance()); }

double DiscreteDistribution::PrEqual(double v) const {
  auto it = std::lower_bound(
      atoms_.begin(), atoms_.end(), v,
      [](const Atom& a, double x) { return a.value < x; });
  if (it != atoms_.end() && it->value == v) return it->prob;
  return 0.0;
}

double DiscreteDistribution::PrAtLeast(double v) const {
  auto it = std::lower_bound(
      atoms_.begin(), atoms_.end(), v,
      [](const Atom& a, double x) { return a.value < x; });
  return tails_[static_cast<std::size_t>(it - atoms_.begin())];
}

double DiscreteDistribution::PrGreaterThan(double v) const {
  auto it = std::upper_bound(
      atoms_.begin(), atoms_.end(), v,
      [](double x, const Atom& a) { return x < a.value; });
  return tails_[static_cast<std::size_t>(it - atoms_.begin())];
}

void DiscreteDistribution::FillTailTables(const std::vector<double>& grid,
                                          double* ge, double* gt) const {
  // Walk the grid and the support together, descending; the atom cursor
  // only ever moves down, so the pass is linear in both sizes. tails_[a]
  // gives Pr(X >= atoms_[a].value) directly.
  std::size_t a = atoms_.size();  // atoms_[a..] have value > current grid v
  for (std::size_t g = grid.size(); g-- > 0;) {
    const double v = grid[g];
    while (a > 0 && atoms_[a - 1].value > v) --a;
    gt[g] = tails_[a];
    ge[g] = (a > 0 && atoms_[a - 1].value == v) ? tails_[a - 1] : tails_[a];
  }
}

double DiscreteDistribution::Sample(Rng* rng) const {
  double u = rng->Uniform();
  double acc = 0.0;
  for (const Atom& a : atoms_) {
    acc += a.prob;
    if (u < acc) return a.value;
  }
  return atoms_.back().value;
}

std::string DiscreteDistribution::ToString(int digits) const {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out << ", ";
    out << FormatDouble(atoms_[i].value, digits) << ": "
        << FormatDouble(atoms_[i].prob, digits);
  }
  out << "}";
  return out.str();
}

}  // namespace stats
}  // namespace metaprobe
