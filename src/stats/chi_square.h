// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_STATS_CHI_SQUARE_H_
#define METAPROBE_STATS_CHI_SQUARE_H_

#include <vector>

#include "common/result.h"

namespace metaprobe {
namespace stats {

/// \brief Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
/// Series expansion for x < a+1, continued fraction otherwise (Numerical
/// Recipes style). Requires a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// \brief Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// \brief CDF of the chi-square distribution with `dof` degrees of freedom.
double ChiSquareCdf(double x, double dof);

/// \brief Survival function (upper tail) of the chi-square distribution;
/// this is the p-value of a chi-square statistic.
double ChiSquareSf(double x, double dof);

/// \brief Outcome of a Pearson goodness-of-fit test.
struct ChiSquareTestResult {
  double statistic = 0.0;   ///< The chi-square statistic.
  double dof = 0.0;         ///< Effective degrees of freedom after merging.
  double p_value = 1.0;     ///< Upper-tail probability; near 0 => reject.
  int merged_cells = 0;     ///< Cells folded into neighbors for low counts.
};

/// \brief Pearson chi-square goodness-of-fit test of observed counts against
/// expected cell probabilities.
///
/// This is the test the paper uses to score how well an error distribution
/// built from a small sample matches the "ideal" distribution built from the
/// full query set (Section 4.2, Figures 7-8): the sample histogram's counts
/// are the observations, the ideal histogram's probabilities are the
/// expectations, and a p-value above 0.05 accepts the sample as a good
/// approximation.
///
/// Cells whose expected count falls below `min_expected` are merged into the
/// nearest following cell (textbook validity guard); degrees of freedom are
/// reduced accordingly. Fails when the inputs differ in size, have fewer
/// than two cells after merging, or expected probabilities do not sum to ~1.
Result<ChiSquareTestResult> PearsonChiSquareTest(
    const std::vector<double>& observed_counts,
    const std::vector<double>& expected_probs, double min_expected = 5.0);

}  // namespace stats
}  // namespace metaprobe

#endif  // METAPROBE_STATS_CHI_SQUARE_H_
