#include "stats/random.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace metaprobe {
namespace stats {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 significant bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  if (bound == 0) {
    std::fprintf(stderr, "Rng::UniformInt: bound must be positive\n");
    std::abort();
  }
  // Lemire-style rejection to remove modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) std::swap(lo, hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  return lo + static_cast<std::int64_t>(UniformInt(span));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

std::vector<std::size_t> Rng::SampleIndices(std::size_t population,
                                            std::size_t n) {
  n = std::min(n, population);
  if (n == 0) return {};
  // Partial Fisher–Yates over an index array; O(population) memory which is
  // fine for the query-trace sizes this library handles.
  std::vector<std::size_t> indices(population);
  for (std::size_t i = 0; i < population; ++i) indices[i] = i;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t j = i + static_cast<std::size_t>(UniformInt(population - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(n);
  return indices;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->Uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(std::size_t i) const {
  if (i >= cdf_.size()) return 0.0;
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

WeightedSampler::WeightedSampler(std::vector<double> weights) {
  cdf_.resize(weights.size());
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    total += std::max(0.0, weights[i]);
    cdf_[i] = total;
  }
  if (total <= 0.0) {
    // Degenerate weights: fall back to uniform.
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      cdf_[i] = static_cast<double>(i + 1) / static_cast<double>(cdf_.size());
    }
  } else {
    for (double& c : cdf_) c /= total;
  }
}

std::size_t WeightedSampler::Sample(Rng* rng) const {
  if (cdf_.empty()) {
    std::fprintf(stderr, "WeightedSampler::Sample on empty sampler\n");
    std::abort();
  }
  double u = rng->Uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace stats
}  // namespace metaprobe
