// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_STATS_RANDOM_H_
#define METAPROBE_STATS_RANDOM_H_

#include <cstdint>
#include <vector>

namespace metaprobe {
namespace stats {

/// \brief Deterministic pseudo-random generator (xoshiro256**, seeded via
/// splitmix64).
///
/// Every stochastic component of the library draws from an `Rng` that the
/// caller seeds, so corpus generation, query sampling, ED learning and
/// Monte-Carlo estimation are all reproducible bit-for-bit. The generator is
/// not thread-safe; use one instance per thread.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Equal seeds produce equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// \brief Returns the next raw 64-bit value.
  std::uint64_t Next();

  /// \brief Returns a double uniformly distributed in [0, 1).
  double Uniform();

  /// \brief Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// \brief Returns an integer uniformly distributed in [0, bound).
  /// `bound` must be positive. Uses rejection to avoid modulo bias.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// \brief Returns an integer uniformly distributed in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// \brief Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// \brief Returns a standard normal deviate (Box–Muller, cached pair).
  double Normal();

  /// \brief Returns a normal deviate with the given mean and stddev.
  double Normal(double mean, double stddev);

  /// \brief Returns exp(Normal(mu, sigma)): lognormal on the natural scale.
  double LogNormal(double mu, double sigma);

  /// \brief Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// \brief Samples `n` distinct indices from [0, population) (n <=
  /// population), in random order.
  std::vector<std::size_t> SampleIndices(std::size_t population, std::size_t n);

  /// \brief Derives an independent generator; convenient for handing each
  /// subsystem its own stream from one master seed.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// \brief Samples ranks 0..n-1 with probability proportional to
/// 1/(rank+1)^exponent (Zipf / discrete power law).
///
/// Construction precomputes the CDF; sampling is a binary search, O(log n).
class ZipfSampler {
 public:
  /// \param n number of ranks (must be >= 1)
  /// \param exponent Zipf skew; 1.0 is the classical distribution.
  ZipfSampler(std::size_t n, double exponent);

  /// \brief Draws one rank in [0, n).
  std::size_t Sample(Rng* rng) const;

  /// \brief Returns the probability of rank `i`.
  double Probability(std::size_t i) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// \brief Samples an index according to explicit (unnormalized) weights.
class WeightedSampler {
 public:
  explicit WeightedSampler(std::vector<double> weights);

  /// \brief Draws one index in [0, weights.size()).
  std::size_t Sample(Rng* rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace stats
}  // namespace metaprobe

#endif  // METAPROBE_STATS_RANDOM_H_
