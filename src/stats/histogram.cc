#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/strings.h"

namespace metaprobe {
namespace stats {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1, 0.0) {}

Result<Histogram> Histogram::Make(std::vector<double> edges) {
  if (edges.empty()) {
    return Status::InvalidArgument("histogram needs at least one edge");
  }
  for (std::size_t i = 1; i < edges.size(); ++i) {
    if (!(edges[i - 1] < edges[i])) {
      return Status::InvalidArgument("histogram edges must strictly increase");
    }
  }
  for (double e : edges) {
    if (!std::isfinite(e)) {
      return Status::InvalidArgument("histogram edges must be finite");
    }
  }
  return Histogram(std::move(edges));
}

void Histogram::Add(double value) { AddWeighted(value, 1.0); }

void Histogram::AddWeighted(double value, double weight) {
  if (weight <= 0.0 || !std::isfinite(value)) return;
  counts_[CellFor(value)] += weight;
  total_ += weight;
}

std::size_t Histogram::CellFor(double value) const {
  // Index of the first edge strictly greater than value == cell index.
  auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  return static_cast<std::size_t>(it - edges_.begin());
}

std::vector<double> Histogram::Probabilities() const {
  std::vector<double> probs(counts_.size(), 0.0);
  if (total_ <= 0.0) return probs;
  for (std::size_t i = 0; i < counts_.size(); ++i) probs[i] = counts_[i] / total_;
  return probs;
}

double Histogram::Representative(std::size_t i) const {
  const std::size_t m = edges_.size();
  if (m == 1) {
    // Two open tails around a single edge.
    return i == 0 ? edges_[0] - 1.0 : edges_[0] + 1.0;
  }
  if (i == 0) {
    double width = edges_[1] - edges_[0];
    return edges_[0] - 0.5 * width;
  }
  if (i >= m) {
    double width = edges_[m - 1] - edges_[m - 2];
    return edges_[m - 1] + 0.5 * width;
  }
  return 0.5 * (edges_[i - 1] + edges_[i]);
}

double Histogram::LowerEdge(std::size_t i) const {
  if (i == 0) return -std::numeric_limits<double>::infinity();
  return edges_[std::min(i - 1, edges_.size() - 1)];
}

double Histogram::UpperEdge(std::size_t i) const {
  if (i >= edges_.size()) return std::numeric_limits<double>::infinity();
  return edges_[i];
}

Status Histogram::MergeFrom(const Histogram& other) {
  if (other.edges_ != edges_) {
    return Status::InvalidArgument("cannot merge histograms with different edges");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  return Status::OK();
}

void Histogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  total_ = 0.0;
}

std::string Histogram::ToAscii(int width) const {
  std::ostringstream out;
  const std::vector<double> probs = Probabilities();
  double max_prob = 0.0;
  for (double p : probs) max_prob = std::max(max_prob, p);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    char range[64];
    std::snprintf(range, sizeof(range), "[%7.2f,%7.2f)", LowerEdge(i),
                  UpperEdge(i));
    int bars = max_prob > 0.0
                   ? static_cast<int>(std::lround(probs[i] / max_prob * width))
                   : 0;
    out << range << " " << std::string(static_cast<std::size_t>(bars), '#')
        << std::string(static_cast<std::size_t>(width - bars), ' ') << " "
        << FormatDouble(probs[i], 3) << "\n";
  }
  return out.str();
}

}  // namespace stats
}  // namespace metaprobe
