#include "stats/chi_square.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace metaprobe {
namespace stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 3.0e-12;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEpsilon;

// Series representation of P(a, x); converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued-fraction representation of Q(a, x); converges for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  if (a <= 0.0 || x < 0.0 || !std::isfinite(a) || !std::isfinite(x)) {
    std::fprintf(stderr, "RegularizedGammaP: invalid a=%g x=%g\n", a, x);
    std::abort();
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  if (a <= 0.0 || x < 0.0 || !std::isfinite(a) || !std::isfinite(x)) {
    std::fprintf(stderr, "RegularizedGammaQ: invalid a=%g x=%g\n", a, x);
    std::abort();
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double dof) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(dof / 2.0, x / 2.0);
}

double ChiSquareSf(double x, double dof) {
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(dof / 2.0, x / 2.0);
}

Result<ChiSquareTestResult> PearsonChiSquareTest(
    const std::vector<double>& observed_counts,
    const std::vector<double>& expected_probs, double min_expected) {
  if (observed_counts.size() != expected_probs.size()) {
    return Status::InvalidArgument(
        "observed (", observed_counts.size(), ") and expected (",
        expected_probs.size(), ") cell counts differ");
  }
  if (observed_counts.size() < 2) {
    return Status::InvalidArgument("need at least two cells");
  }
  double n = 0.0;
  for (double c : observed_counts) {
    if (c < 0.0) return Status::InvalidArgument("negative observed count");
    n += c;
  }
  if (n <= 0.0) return Status::InvalidArgument("no observations");
  double prob_total = 0.0;
  for (double p : expected_probs) {
    if (p < 0.0) return Status::InvalidArgument("negative expected probability");
    prob_total += p;
  }
  if (std::fabs(prob_total - 1.0) > 1e-6) {
    return Status::InvalidArgument("expected probabilities sum to ", prob_total,
                                   ", want 1");
  }

  // Merge low-expectation cells forward (the final merged block absorbs any
  // trailing remainder backward).
  std::vector<double> obs;
  std::vector<double> exp;
  double pending_obs = 0.0;
  double pending_exp = 0.0;
  ChiSquareTestResult result;
  for (std::size_t i = 0; i < observed_counts.size(); ++i) {
    pending_obs += observed_counts[i];
    pending_exp += expected_probs[i] * n;
    if (pending_exp >= min_expected) {
      obs.push_back(pending_obs);
      exp.push_back(pending_exp);
      pending_obs = 0.0;
      pending_exp = 0.0;
    } else {
      ++result.merged_cells;
    }
  }
  if (pending_exp > 0.0 || pending_obs > 0.0) {
    if (obs.empty()) {
      obs.push_back(pending_obs);
      exp.push_back(pending_exp);
    } else {
      obs.back() += pending_obs;
      exp.back() += pending_exp;
    }
  }
  if (obs.size() < 2) {
    return Status::FailedPrecondition(
        "fewer than two cells remain after merging; expected counts too small");
  }

  double statistic = 0.0;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    double diff = obs[i] - exp[i];
    statistic += diff * diff / exp[i];
  }
  result.statistic = statistic;
  result.dof = static_cast<double>(obs.size() - 1);
  result.p_value = ChiSquareSf(statistic, result.dof);
  return result;
}

}  // namespace stats
}  // namespace metaprobe
