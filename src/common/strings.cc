#include "common/strings.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace metaprobe {

std::vector<std::string> SplitString(std::string_view input,
                                     std::string_view delims) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || delims.find(input[i]) != std::string_view::npos) {
      if (i > start) pieces.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLowerAscii(std::string input) {
  for (char& c : input) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return input;
}

std::string_view StripAsciiWhitespace(std::string_view input) {
  std::size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  std::size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

long GetEnvLong(const char* name, long fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  long value = std::strtol(env, &end, 10);
  if (end == env || value <= 0) return fallback;
  return value;
}

}  // namespace metaprobe
