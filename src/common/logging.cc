#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace metaprobe {

namespace {

std::atomic<int> g_threshold{-1};  // -1: not yet initialized from env

LogLevel ThresholdFromEnv() {
  const char* env = std::getenv("METAPROBE_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

// Monotonic seconds since the first log record of the process; wall-clock
// stamps would jump under NTP and say nothing about intervals, which is
// what log readers correlate with latency histograms.
double SecondsSinceStart() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Small sequential per-thread id: stable within a run and readable, unlike
// the hashed std::thread::id values.
int ThisThreadLogId() {
  static std::atomic<int> next{0};
  static thread_local const int id = next.fetch_add(1);
  return id;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogThreshold() {
  int current = g_threshold.load(std::memory_order_relaxed);
  if (current < 0) {
    current = static_cast<int>(ThresholdFromEnv());
    g_threshold.store(current, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(current);
}

void SetLogThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ResetLogThresholdForTest() {
  g_threshold.store(-1, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogThreshold()), level_(level) {
  if (enabled_) {
    const char* basename = std::strrchr(file, '/');
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "%.6f tid=%d", SecondsSinceStart(),
                  ThisThreadLogId());
    stream_ << "[" << LevelName(level_) << " " << prefix << " "
            << (basename ? basename + 1 : file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal

}  // namespace metaprobe
