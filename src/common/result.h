// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_COMMON_RESULT_H_
#define METAPROBE_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace metaprobe {

/// \brief Holds either a value of type `T` or an error `Status`.
///
/// `Result<T>` is the return type of fallible operations that produce a
/// value. Use `ok()` to test, `ValueOrDie()` / `operator*` to access, or the
/// `ASSIGN_OR_RETURN` macro (see macros.h) to propagate errors:
///
///     Result<Index> OpenIndex(const std::string& path);
///
///     Status Use(const std::string& path) {
///       ASSIGN_OR_RETURN(Index index, OpenIndex(path));
///       ...
///     }
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a success result holding `value`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result; `status` must not be OK.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(rep_).ok()) {
      // An OK status carries no value; constructing a Result from it is a
      // programming error that would otherwise surface far from its cause.
      std::fprintf(stderr, "Result<T> constructed from OK status\n");
      std::abort();
    }
  }

  /// \brief Returns true if a value is present.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// \brief Returns the status: OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// \brief Returns the value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::get<T>(std::move(rep_));
  }

  /// \brief Moves the value out; aborts if this holds an error.
  T MoveValueUnsafe() {
    DieIfError();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Returns the value or `fallback` when this holds an error.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "Result<T>::ValueOrDie on error: %s\n",
                   std::get<Status>(rep_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<Status, T> rep_;
};

}  // namespace metaprobe

#endif  // METAPROBE_COMMON_RESULT_H_
