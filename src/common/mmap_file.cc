// Copyright 2026 The metaprobe Authors

#include "common/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <new>
#include <utility>

#include "common/macros.h"

#if defined(__unix__) || defined(__APPLE__)
#define METAPROBE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define METAPROBE_HAS_MMAP 0
#endif

namespace metaprobe::common {

namespace {

Status ReadWholeFile(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError("cannot open '", path, "' for reading");
  }
  const std::streamoff end = in.tellg();
  if (end < 0) {
    return Status::IoError("cannot determine size of '", path, "'");
  }
  out->resize(static_cast<std::size_t>(end));
  in.seekg(0);
  if (end > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), end)) {
    return Status::IoError("short read from '", path, "'");
  }
  return Status::OK();
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path) {
  MmapFile file;
#if METAPROBE_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
      ::close(fd);
      return Status::IoError("'", path, "' is not a regular file");
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return file;  // Empty file: valid zero-length view, nothing to map.
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // The mapping keeps its own reference to the file.
    if (addr != MAP_FAILED) {
      file.data_ = static_cast<const std::uint8_t*>(addr);
      file.size_ = size;
      file.mapped_ = true;
      return file;
    }
    // mmap can legitimately fail (e.g. filesystems without mmap support);
    // fall through to the portable read path rather than erroring out.
  } else if (errno == ENOENT || errno == EACCES) {
    return Status::IoError("cannot open '", path, "': ",
                           std::strerror(errno));
  }
#endif
  RETURN_NOT_OK(ReadWholeFile(path, &file.fallback_));
  file.data_ = file.fallback_.empty() ? nullptr : file.fallback_.data();
  file.size_ = file.fallback_.size();
  file.mapped_ = false;
  return file;
}

MmapFile::~MmapFile() {
#if METAPROBE_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      fallback_(std::move(other.fallback_)) {
  // A moved-from fallback vector may still own the bytes `data_` points at;
  // std::vector's move transfers the allocation, so the pointer stays valid.
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    this->~MmapFile();
    new (this) MmapFile(std::move(other));
  }
  return *this;
}

}  // namespace metaprobe::common
