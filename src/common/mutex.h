// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_COMMON_MUTEX_H_
#define METAPROBE_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace metaprobe {

/// \brief std::mutex with thread-safety-analysis capability attributes.
///
/// A drop-in replacement for the std type everywhere the repo guards
/// members: declare the member `Mutex`, annotate the data it protects with
/// GUARDED_BY(member), and take the lock with MutexLock. Zero runtime
/// difference from std::mutex — the wrapper only exists because attribute
/// annotations cannot be attached to std types.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  /// \brief The underlying std::mutex, for std::unique_lock interop (the
  /// condition-variable wait sites). Prefer MutexLock everywhere else.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief std::shared_mutex with capability attributes: exclusive
/// Lock/Unlock plus shared (reader) LockShared/UnlockShared.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief Scoped exclusive lock over a Mutex (std::lock_guard equivalent).
///
/// Wraps std::unique_lock so condition-variable waits work through
/// `native()`:
///
///     MutexLock lock(mutex_);
///     while (!ready_) cv_.wait(lock.native());
///
/// The analysis treats the capability as held for the whole scope; a
/// cv wait's release/reacquire inside the scope is invisible to it, which
/// matches the guarded-data contract (the data is only touched while the
/// lock is actually held).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// \brief The owned std::unique_lock, for std::condition_variable::wait.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// \brief Scoped shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->LockShared();
  }
  ~SharedMutexLock() RELEASE() { mu_->UnlockShared(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// \brief Scoped exclusive (writer) lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace metaprobe

#endif  // METAPROBE_COMMON_MUTEX_H_
