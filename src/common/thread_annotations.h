// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_COMMON_THREAD_ANNOTATIONS_H_
#define METAPROBE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros.
///
/// These turn the repo's locking disciplines — the RCU-style trained-state
/// slot, the sharded RD cache, the lock-striped health tracker, the serving
/// queue, the thread pool — from comment-only contracts into compile-time
/// checked ones: a Clang build with `-Wthread-safety -Werror=thread-safety`
/// (check.sh stage 5, the `lint` CI job) refuses to compile an unlocked
/// access to a GUARDED_BY member or a call to a REQUIRES method without the
/// capability held. On non-Clang compilers every macro expands to nothing,
/// so GCC builds are unaffected.
///
/// Use the annotated wrappers in common/mutex.h (Mutex, SharedMutex and
/// their scoped locks) rather than annotating std types directly — the std
/// primitives cannot carry CAPABILITY attributes.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define METAPROBE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define METAPROBE_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (a lock type). The string names the
/// capability kind in diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) METAPROBE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (MutexLock and friends).
#define SCOPED_CAPABILITY METAPROBE_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member is protected by the given capability: every
/// read requires the capability held (shared or exclusive), every write
/// requires it held exclusively.
#define GUARDED_BY(x) METAPROBE_THREAD_ANNOTATION(guarded_by(x))

/// Like GUARDED_BY, but for pointer members: the pointed-to data (not the
/// pointer itself) is protected.
#define PT_GUARDED_BY(x) METAPROBE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that callers must hold the given capabilities exclusively
/// before calling; they are not released.
#define REQUIRES(...) \
  METAPROBE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared (reader) flavor of REQUIRES.
#define REQUIRES_SHARED(...) \
  METAPROBE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Declares that the function acquires the capabilities (held on return).
#define ACQUIRE(...) \
  METAPROBE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Shared (reader) flavor of ACQUIRE.
#define ACQUIRE_SHARED(...) \
  METAPROBE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Declares that the function releases the capabilities (which must be
/// held on entry). With no argument on a SCOPED_CAPABILITY member it
/// releases whatever the scoped object manages.
#define RELEASE(...) \
  METAPROBE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Shared (reader) flavor of RELEASE.
#define RELEASE_SHARED(...) \
  METAPROBE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the given capabilities (deadlock
/// prevention for non-reentrant locks).
#define EXCLUDES(...) METAPROBE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the capability that
/// guards the annotated data (lets the analysis match e.g.
/// REQUIRES(StripeFor(db)) call sites against the lock actually taken).
#define RETURN_CAPABILITY(x) METAPROBE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Reserve for code
/// whose discipline the analysis cannot express; every use must carry a
/// comment saying what actually guarantees safety.
#define NO_THREAD_SAFETY_ANALYSIS \
  METAPROBE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // METAPROBE_COMMON_THREAD_ANNOTATIONS_H_
