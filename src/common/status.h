// Copyright 2026 The metaprobe Authors
//
// Licensed under the Apache License, Version 2.0 (the "License");
// you may not use this file except in compliance with the License.

#ifndef METAPROBE_COMMON_STATUS_H_
#define METAPROBE_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

namespace metaprobe {

/// \brief Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kDeadlineExceeded = 9,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail.
///
/// The library does not throw exceptions for anticipated failures; fallible
/// operations return `Status` (or `Result<T>`, see result.h). The success
/// path stores no allocation: an OK status is a null pointer internally.
///
/// Idiomatic use:
///
///     Status DoThing() {
///       if (bad) return Status::InvalidArgument("k must be positive, got ", k);
///       return Status::OK();
///     }
///
/// The class is [[nodiscard]]: a dropped Status is a swallowed error, so
/// every call site must consume the result — check ok(), propagate it, or
/// CheckOK() when failure is unrecoverable.
class [[nodiscard]] Status {
 public:
  /// Creates an OK (success) status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// \brief Returns a success status.
  static Status OK() { return Status(); }

  /// \brief Returns true if the status indicates success.
  [[nodiscard]] bool ok() const { return state_ == nullptr; }

  /// \brief Returns the status code (kOk for success).
  [[nodiscard]] StatusCode code() const {
    return ok() ? StatusCode::kOk : state_->code;
  }

  /// \brief Returns the error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  /// \brief Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// \brief Builds a status of the given code by streaming all arguments.
  template <typename... Args>
  static Status FromArgs(StatusCode code, Args&&... args) {
    std::ostringstream stream;
    (stream << ... << std::forward<Args>(args));
    return Status(code, stream.str());
  }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return FromArgs(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return FromArgs(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return FromArgs(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return FromArgs(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status FailedPrecondition(Args&&... args) {
    return FromArgs(StatusCode::kFailedPrecondition, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IoError(Args&&... args) {
    return FromArgs(StatusCode::kIoError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return FromArgs(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return FromArgs(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status DeadlineExceeded(Args&&... args) {
    return FromArgs(StatusCode::kDeadlineExceeded, std::forward<Args>(args)...);
  }

  /// \brief Aborts the process with the status message unless OK. Reserved
  /// for unrecoverable programming errors (e.g. in examples and benches).
  void CheckOK() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace metaprobe

#endif  // METAPROBE_COMMON_STATUS_H_
