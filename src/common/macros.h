// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_COMMON_MACROS_H_
#define METAPROBE_COMMON_MACROS_H_

#include "common/result.h"
#include "common/status.h"
// Clang Thread Safety Analysis capability macros (GUARDED_BY, REQUIRES,
// ACQUIRE/RELEASE, ...). Kept in their own header so lock-heavy headers can
// include just the annotations; re-exported here so macros.h remains the
// one-stop include for the repo's macro vocabulary.
#include "common/thread_annotations.h"  // IWYU pragma: export

#define METAPROBE_CONCAT_IMPL(x, y) x##y
#define METAPROBE_CONCAT(x, y) METAPROBE_CONCAT_IMPL(x, y)

/// Forces inlining of a hot-path function. The compiler's per-unit inline
/// growth budget is shared across a translation unit, so adding unrelated
/// code can silently out-line an inner-loop accessor that was previously
/// inlined (observed: a ~70% slowdown of the conjunctive leapfrog when
/// PostingList::Iterator::SkipTo fell out of line). Reserve this for
/// functions whose fast path must fold into the caller.
#if defined(__GNUC__) || defined(__clang__)
#define METAPROBE_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define METAPROBE_ALWAYS_INLINE inline
#endif

/// Propagates a non-OK Status to the caller.
#define RETURN_NOT_OK(expr)                       \
  do {                                            \
    ::metaprobe::Status _st = (expr);             \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluates a Result<T> expression; on error returns the status, otherwise
/// binds the value to `lhs` (which may include a type declaration).
#define ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL(METAPROBE_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                          \
  if (!result_name.ok()) return result_name.status();  \
  lhs = std::move(result_name).ValueOrDie()

namespace metaprobe {

/// \brief Checks an invariant that should hold regardless of input; aborts
/// with a message when violated. Enabled in all build types: the cost is
/// negligible relative to the analytics this library performs, and silent
/// corruption of probability mass is far worse than an abort.
#define METAPROBE_DCHECK(cond, what)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "Invariant failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, (what));                                    \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

}  // namespace metaprobe

#endif  // METAPROBE_COMMON_MACROS_H_
