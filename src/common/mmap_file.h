// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_COMMON_MMAP_FILE_H_
#define METAPROBE_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace metaprobe::common {

/// \brief A read-only memory mapping of a whole file.
///
/// `MmapFile::Open` maps the file with `mmap(PROT_READ, MAP_PRIVATE)` on
/// POSIX systems so readers touch only the pages they actually decode; the
/// kernel page cache backs the mapping and evicts cold pages under pressure.
/// On platforms without mmap (or when the map call fails, e.g. on
/// filesystems that forbid it) it falls back to reading the whole file into
/// an owned buffer — callers see the same `data()`/`size()` view either way
/// and can query `is_mapped()` to learn which path was taken.
///
/// The mapping is immutable and move-only. All `data()` pointers obtained
/// from an `MmapFile` are invalidated when it is destroyed or moved-from;
/// holders of long-lived views (e.g. mapped posting lists) must keep the
/// `MmapFile` alive for as long as the views are dereferenced — see
/// DESIGN.md §16 for the ownership rules used by the index layer.
class MmapFile {
 public:
  /// Opens `path` read-only and maps (or reads) its entire contents.
  /// Empty files yield an object with `size() == 0` and a null `data()`.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

  /// True when the contents are backed by an actual `mmap` region rather
  /// than the read-whole-file fallback buffer.
  bool is_mapped() const { return mapped_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> fallback_;
};

}  // namespace metaprobe::common

#endif  // METAPROBE_COMMON_MMAP_FILE_H_
