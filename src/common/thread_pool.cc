#include "common/thread_pool.h"

namespace metaprobe {

ThreadPool::ThreadPool(unsigned num_threads) {
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) wake_.wait(lock.native());
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace metaprobe
