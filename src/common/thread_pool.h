// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_COMMON_THREAD_POOL_H_
#define METAPROBE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace metaprobe {

/// \brief Fixed-size worker pool for the concurrent serving paths (batch
/// query fan-out, speculative probe dispatch, parallel ED training).
///
/// Semantics chosen for predictability under test:
///   * `Submit` never drops or rejects a task. With zero workers, or once
///     `Shutdown` has begun, the task runs inline on the submitting thread
///     and its future is ready on return — every configuration degrades
///     gracefully to sequential execution instead of failing.
///   * `Shutdown` drains every task queued before it was called, then joins
///     the workers. It is idempotent and is invoked by the destructor.
///   * Tasks must not block on futures of tasks queued behind them (the
///     pool does no work stealing); the serving code only submits leaf
///     tasks, which cannot deadlock.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 creates a pool that executes every
  ///   task inline in `Submit` (useful as a deterministic stand-in).
  explicit ThreadPool(unsigned num_threads);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues `fn` and returns a future for its result. Thread-safe;
  /// callable from worker threads as long as the caller does not wait on a
  /// task queued behind its own.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    bool queued = false;
    {
      MutexLock lock(mutex_);
      if (!workers_.empty() && !stopping_) {
        queue_.emplace_back([task]() { (*task)(); });
        queued = true;
      }
    }
    if (queued) {
      wake_.notify_one();
      return future;
    }
    // Zero-worker pool, or submit raced with shutdown: run inline.
    (*task)();
    tasks_run_inline_.fetch_add(1, std::memory_order_relaxed);
    return future;
  }

  /// \brief Drains the queue, joins all workers, and puts the pool in
  /// inline mode (later Submits still execute, on the caller's thread).
  void Shutdown();

  std::size_t num_workers() const { return workers_.size(); }

  /// \brief Tasks executed so far by pool workers (not inline fallbacks).
  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// \brief Tasks that ran inline on the submitter (zero workers or
  /// post-shutdown submits); test hooks assert on this.
  std::uint64_t tasks_run_inline() const {
    return tasks_run_inline_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  Mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
  // workers_ is not guarded by mutex_: it is written only in the
  // constructor (before any concurrency exists) and in Shutdown after the
  // workers have been told to stop; concurrent paths only call
  // workers_.empty()/size(), which race at most with Shutdown's clear()
  // and are benign there (Submit re-checks stopping_ under the lock).
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> tasks_run_inline_{0};
};

/// \brief Fans `fn(begin, end)` over [0, n) in contiguous chunks on `pool`
/// and blocks until every chunk finishes. With a null or zero-worker pool
/// (or a single item) it degrades to one inline `fn(0, n)` call. The chunk
/// boundaries are an execution detail only — callers must write disjoint
/// output slots so the result is identical either way. The caller blocks on
/// the futures, so `pool` must not be one whose workers issue this call
/// themselves (no work stealing — the leaf-task rule above).
template <typename Fn>
void ParallelForRanges(ThreadPool* pool, std::size_t n, Fn fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_workers() == 0 || n < 2) {
    fn(std::size_t{0}, n);
    return;
  }
  // A few chunks per worker evens out skew without per-item dispatch cost.
  const std::size_t chunks = std::min(n, pool->num_workers() * 4);
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += step) {
    const std::size_t end = std::min(n, begin + step);
    futures.push_back(pool->Submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (std::future<void>& f : futures) f.get();
}

}  // namespace metaprobe

#endif  // METAPROBE_COMMON_THREAD_POOL_H_
