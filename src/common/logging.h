// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_COMMON_LOGGING_H_
#define METAPROBE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace metaprobe {

/// \brief Severity of a log record, in increasing order.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum severity; records below it are dropped.
/// Defaults to kInfo; overridable with the METAPROBE_LOG_LEVEL environment
/// variable (debug|info|warning|error), read once at first use.
LogLevel GetLogThreshold();

/// \brief Overrides the process-wide log threshold.
void SetLogThreshold(LogLevel level);

/// \brief Forgets any SetLogThreshold override so the next GetLogThreshold
/// re-reads METAPROBE_LOG_LEVEL. Test helper: lets a test that lowers the
/// threshold restore whatever the environment configured, instead of
/// guessing the prior value.
void ResetLogThresholdForTest();

namespace internal {

/// \brief Accumulates one log record and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define METAPROBE_LOG(level)                                         \
  ::metaprobe::internal::LogMessage(::metaprobe::LogLevel::k##level, \
                                    __FILE__, __LINE__)

}  // namespace metaprobe

#endif  // METAPROBE_COMMON_LOGGING_H_
