// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_COMMON_STRINGS_H_
#define METAPROBE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace metaprobe {

/// \brief Splits `input` on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view input,
                                     std::string_view delims);

/// \brief Joins `pieces` with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// \brief ASCII-lowercases `input` in place and returns it.
std::string ToLowerAscii(std::string input);

/// \brief Removes leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view input);

/// \brief Returns true if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// \brief Returns true if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// \brief Formats a double with `digits` fractional digits ("0.755").
std::string FormatDouble(double value, int digits);

/// \brief Reads a positive integer from the environment, or `fallback` when
/// unset or unparsable. Used by benches for scale knobs.
long GetEnvLong(const char* name, long fallback);

}  // namespace metaprobe

#endif  // METAPROBE_COMMON_STRINGS_H_
