// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_EVAL_TABLE_H_
#define METAPROBE_EVAL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace metaprobe {
namespace eval {

/// \brief Column-aligned ASCII table, used by every bench to print the
/// reproduced paper tables/series in a diff-friendly format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// \brief Appends a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// \brief Renders with a header underline and two-space column gaps.
  void Print(std::ostream& os) const;

  /// \brief Renders as CSV (comma-separated, minimal quoting).
  void PrintCsv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats a cell as a fixed-precision number.
std::string Cell(double value, int digits = 3);
std::string Cell(std::size_t value);
std::string Cell(int value);

}  // namespace eval
}  // namespace metaprobe

#endif  // METAPROBE_EVAL_TABLE_H_
