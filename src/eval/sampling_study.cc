#include "eval/sampling_study.h"

#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"
#include "core/error_distribution.h"
#include "core/estimator.h"
#include "core/summary.h"
#include "stats/chi_square.h"
#include "stats/random.h"

namespace metaprobe {
namespace eval {

Result<std::vector<DbGoodness>> RunSamplingStudy(
    const Testbed& testbed, const SamplingStudyOptions& options) {
  if (options.sample_sizes.empty() || options.repetitions == 0) {
    return Status::InvalidArgument("sampling study needs sizes and reps");
  }
  core::TermIndependenceEstimator estimator;
  core::QueryTypeClassifier classifier(options.query_class);
  stats::Rng rng(options.seed);

  std::vector<DbGoodness> results;
  for (const auto& db : testbed.databases) {
    core::StatSummary summary =
        core::StatSummary::FromIndex(db->name(), db->index_for_summaries());

    // Collect the observed error of every trace query that lands in the
    // studied type on this database.
    std::vector<double> errors;
    for (const core::Query& query : testbed.train_queries) {
      if (static_cast<int>(query.num_terms()) != options.query_terms) continue;
      double estimate = estimator.Estimate(summary, query);
      bool high =
          estimate >= options.query_class.estimate_threshold;
      if (high != options.high_estimate) continue;
      ASSIGN_OR_RETURN(std::uint64_t actual, db->CountMatches(query));
      errors.push_back(
          core::RelativeError(static_cast<double>(actual), estimate));
    }

    DbGoodness goodness;
    goodness.database = db->name();
    goodness.type_query_count = errors.size();
    if (errors.size() < 20) {
      // Too few type members on this database for a meaningful ideal ED.
      goodness.avg_goodness.assign(options.sample_sizes.size(), 0.0);
      goodness.effective_sizes = options.sample_sizes;
      results.push_back(std::move(goodness));
      continue;
    }

    // Ideal ED from all available queries of the type.
    core::ErrorDistribution ideal;
    for (double e : errors) ideal.AddObservation(e);
    std::vector<double> expected_probs = ideal.histogram().Probabilities();

    for (std::size_t size : options.sample_sizes) {
      std::size_t effective = std::min(size, errors.size());
      goodness.effective_sizes.push_back(effective);
      double total_p = 0.0;
      for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
        core::ErrorDistribution sample_ed;
        for (std::size_t idx : rng.SampleIndices(errors.size(), effective)) {
          sample_ed.AddObservation(errors[idx]);
        }
        std::vector<double> observed;
        const stats::Histogram& h = sample_ed.histogram();
        observed.reserve(h.num_cells());
        for (std::size_t c = 0; c < h.num_cells(); ++c) {
          observed.push_back(h.count(c));
        }
        auto test = stats::PearsonChiSquareTest(observed, expected_probs);
        if (test.ok()) {
          total_p += test->p_value;
        } else {
          // Degenerate cell structure (e.g. all mass in one cell): treat a
          // sample that exactly matches the only populated cell as perfect.
          total_p += 1.0;
        }
      }
      goodness.avg_goodness.push_back(
          total_p / static_cast<double>(options.repetitions));
    }
    results.push_back(std::move(goodness));
  }
  return results;
}

}  // namespace eval
}  // namespace metaprobe
