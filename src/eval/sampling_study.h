// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_EVAL_SAMPLING_STUDY_H_
#define METAPROBE_EVAL_SAMPLING_STUDY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/query_class.h"
#include "eval/testbed.h"

namespace metaprobe {
namespace eval {

/// \brief Parameters of the Section 4.2 sampling-size study.
struct SamplingStudyOptions {
  /// Sampling sizes to evaluate (the paper's five: 100..2000).
  std::vector<std::size_t> sample_sizes = {100, 200, 500, 1000, 2000};
  /// Repetitions per size (the paper averages 100; 30 is stable enough at
  /// default scale).
  std::size_t repetitions = 30;
  /// Which query type to study; the paper reports 2-term queries with
  /// r_hat >= threshold.
  int query_terms = 2;
  bool high_estimate = true;
  core::QueryClassOptions query_class;
  std::uint64_t seed = 7;
};

/// \brief Per-database outcome: the average chi-square goodness (p-value)
/// of a size-S sample ED against the ideal ED built from every available
/// query of the type.
struct DbGoodness {
  std::string database;
  std::size_t type_query_count = 0;      ///< |Q_total| restricted to the type.
  std::vector<double> avg_goodness;      ///< aligned with sample_sizes
  std::vector<std::size_t> effective_sizes;  ///< sizes clamped to the pool
};

/// \brief Runs the study over a testbed's databases using its *train*
/// query set as the comprehensive trace (the stand-in for the paper's 4.7M
/// Overture queries; see DESIGN.md).
Result<std::vector<DbGoodness>> RunSamplingStudy(
    const Testbed& testbed, const SamplingStudyOptions& options);

}  // namespace eval
}  // namespace metaprobe

#endif  // METAPROBE_EVAL_SAMPLING_STUDY_H_
