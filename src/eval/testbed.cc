#include "eval/testbed.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/macros.h"
#include "corpus/domain.h"
#include "stats/random.h"

namespace metaprobe {
namespace eval {

namespace {

struct MixtureEntry {
  const char* topic;
  double weight;
};

struct DbRecipe {
  const char* name;
  std::uint32_t base_docs;
  double topical_fraction;
  std::vector<MixtureEntry> mixture;
  // Database-specific co-occurrence strength and subtopic emphasis: this
  // heterogeneity is what gives the term-independence estimator its
  // non-uniform, database-dependent errors (Section 2.3).
  double subtopic_affinity = 0.8;
  std::size_t subtopic_rotation = 0;
  // Fraction of focused (single-topic) documents; drives how strongly this
  // database's contents violate term independence.
  double doc_focus = 0.3;
};

// The 20 health/science/news databases of the Section 6 testbed. Sizes are
// scaled-down proxies of the paper's 3k-180k document databases; mixtures
// give each database its own topical identity so estimator errors are
// database-specific.
std::vector<DbRecipe> HealthRecipes() {
  return {
      {"pubmed-central", 6000, 0.60,
       {{"clinical", 1.6}, {"oncology", 1.0}, {"cardiology", 1.0}, {"infectious", 1.0},
        {"neurology", 1.0}, {"pharmacology", 1.0}, {"pediatrics", 1.0},
        {"nutrition", 1.0}, {"mentalhealth", 1.0}},
       0.50, 1, 0.20},
      {"medweb", 4500, 0.55,
       {{"clinical", 1.2}, {"oncology", 1.0}, {"cardiology", 1.0}, {"nutrition", 1.0},
        {"pediatrics", 1.0}, {"infectious", 1.0}},
       0.63, 2, 0.45},
      {"nih", 7000, 0.58,
       {{"clinical", 1.8}, {"oncology", 1.0}, {"cardiology", 1.0}, {"neurology", 1.0},
        {"infectious", 1.0}, {"pediatrics", 1.0}, {"nutrition", 1.0},
        {"pharmacology", 1.0}, {"mentalhealth", 1.0}, {"biology", 0.5}},
       0.45, 3, 0.15},
      {"oncolink", 2500, 0.65,
       {{"clinical", 0.8}, {"oncology", 5.0}, {"pharmacology", 1.0}},
       0.66, 0, 0.50},
      {"heart-center", 2400, 0.62,
       {{"clinical", 0.9}, {"cardiology", 5.0}, {"nutrition", 1.0}},
       0.52, 2, 0.30},
      {"neuro-archive", 2200, 0.62,
       {{"clinical", 0.7}, {"neurology", 5.0}, {"mentalhealth", 1.0}},
       0.65, 1, 0.42},
      {"cdc-infectious", 3000, 0.60,
       {{"clinical", 1.0}, {"infectious", 4.0}, {"pediatrics", 1.0}},
       0.43, 3, 0.22},
      {"kids-health", 2600, 0.55,
       {{"clinical", 1.1}, {"pediatrics", 4.0}, {"nutrition", 1.0}, {"infectious", 0.8}},
       0.59, 0, 0.38},
      {"nutrition-source", 2000, 0.58,
       {{"clinical", 0.6}, {"nutrition", 4.0}, {"cardiology", 0.7}},
       0.67, 2, 0.48},
      {"drug-info", 2800, 0.60,
       {{"clinical", 1.0}, {"pharmacology", 4.0}, {"infectious", 0.6}},
       0.47, 1, 0.25},
      {"mind-matters", 1900, 0.57,
       {{"clinical", 0.8}, {"mentalhealth", 4.0}, {"neurology", 0.8}},
       0.62, 3, 0.40},
      {"oncology-trials", 1700, 0.63,
       {{"clinical", 0.9}, {"oncology", 3.0}, {"pharmacology", 2.0}},
       0.41, 0, 0.18},
      {"family-practice", 3200, 0.50,
       {{"clinical", 1.5}, {"pediatrics", 1.0}, {"cardiology", 1.0}, {"nutrition", 1.0},
        {"infectious", 1.0}, {"mentalhealth", 1.0}},
       0.66, 2, 0.44},
      {"science-weekly", 3800, 0.52,
       {{"physics", 1.5}, {"biology", 1.5}, {"chemistry", 1.0},
        {"astronomy", 1.0}, {"oncology", 0.3}, {"infectious", 0.3}},
       0.54, 1, 0.32},
      {"nature-journal", 4000, 0.54,
       {{"biology", 2.0}, {"chemistry", 1.0}, {"physics", 1.0},
        {"oncology", 0.4}, {"neurology", 0.3}},
       0.44, 2, 0.21},
      {"bio-archive", 3000, 0.56,
       {{"biology", 3.0}, {"chemistry", 1.0}, {"infectious", 0.5}},
       0.64, 3, 0.43},
      {"physics-today", 2600, 0.56,
       {{"physics", 3.0}, {"astronomy", 1.5}},
       0.51, 0, 0.28},
      {"cnn-daily", 3600, 0.45,
       {{"politics", 2.0}, {"economy", 1.5}, {"sportsnews", 1.0},
        {"weather", 1.0}, {"infectious", 0.5}, {"nutrition", 0.3}},
       0.60, 2, 0.36},
      {"times-health", 4200, 0.47,
       {{"politics", 2.0}, {"economy", 2.0}, {"weather", 0.8},
        {"oncology", 0.3}, {"mentalhealth", 0.3}},
       0.47, 1, 0.24},
      {"metro-herald", 2400, 0.45,
       {{"sportsnews", 2.0}, {"weather", 1.5}, {"politics", 1.0},
        {"pediatrics", 0.3}, {"cardiology", 0.3}},
       0.66, 3, 0.46},
  };
}

Result<Testbed> BuildFromRecipes(
    std::vector<corpus::TopicSpec> all_topics,
    const std::vector<DbRecipe>& recipes,
    std::vector<std::string> query_topics, const TestbedOptions& options) {
  Testbed testbed;
  testbed.analyzer = std::make_shared<text::Analyzer>();

  corpus::CorpusGenerator::Options gen_options;
  gen_options.filler_seed = options.seed * 31 + 7;
  testbed.generator = std::make_unique<corpus::CorpusGenerator>(
      std::move(all_topics), gen_options, testbed.analyzer.get());

  std::uint32_t scale = std::max<std::uint32_t>(options.scale, 1);
  stats::Rng summary_rng(options.seed * 69069 + 3);
  for (std::size_t i = 0; i < recipes.size(); ++i) {
    const DbRecipe& recipe = recipes[i];
    corpus::DatabaseSpec spec;
    spec.name = recipe.name;
    spec.num_docs = recipe.base_docs * scale;
    spec.topical_fraction = recipe.topical_fraction;
    spec.subtopic_affinity = recipe.subtopic_affinity;
    spec.subtopic_rotation = recipe.subtopic_rotation;
    spec.doc_focus = recipe.doc_focus;
    spec.store_documents = options.store_documents;
    spec.seed = options.seed * 1000003 + i * 7919 + 13;
    for (const MixtureEntry& entry : recipe.mixture) {
      spec.mixture.push_back({entry.topic, entry.weight});
    }
    ASSIGN_OR_RETURN(corpus::GeneratedDatabase generated,
                     testbed.generator->Generate(spec));
    auto database = std::make_shared<core::LocalDatabase>(
        generated.name, std::move(generated.index),
        std::move(generated.documents));

    // Pre-collect the statistical summary the metasearcher will consult,
    // including the configured imperfections: sample-based term statistics
    // and a systematically mis-advertised database size.
    core::StatSummary summary =
        options.summary_sample_rate >= 1.0
            ? core::StatSummary::FromIndex(database->name(),
                                           database->index_for_summaries())
            : core::StatSummary::FromIndexSampled(
                  database->name(), database->index_for_summaries(),
                  options.summary_sample_rate, &summary_rng);
    if (options.summary_size_distortion > 0.0) {
      double d = options.summary_size_distortion;
      double factor = std::exp(summary_rng.Uniform(-d, d));
      double distorted = static_cast<double>(database->size()) * factor;
      summary.OverrideDatabaseSize(static_cast<std::uint32_t>(
          std::max(1.0, std::round(distorted))));
    }
    testbed.summaries.push_back(std::move(summary));
    testbed.databases.push_back(std::move(database));
  }

  corpus::QueryLogOptions query_options;
  query_options.seed = options.seed * 524287 + 1;
  query_options.cross_topic_prob = 0.10;
  corpus::QueryLogGenerator query_gen(testbed.generator.get(),
                                      std::move(query_topics), query_options);
  ASSIGN_OR_RETURN(auto split,
                   query_gen.GenerateSplit(options.train_queries_per_term_count,
                                           options.test_queries_per_term_count));
  testbed.train_queries = std::move(split.first);
  testbed.test_queries = std::move(split.second);

  METAPROBE_LOG(Info) << "testbed ready: " << testbed.databases.size()
                      << " databases, " << testbed.train_queries.size()
                      << " train / " << testbed.test_queries.size()
                      << " test queries";
  return testbed;
}

}  // namespace

std::vector<const core::HiddenWebDatabase*> Testbed::database_ptrs() const {
  std::vector<const core::HiddenWebDatabase*> ptrs;
  ptrs.reserve(databases.size());
  for (const auto& db : databases) ptrs.push_back(db.get());
  return ptrs;
}

Result<Testbed> BuildHealthTestbed(const TestbedOptions& options) {
  std::vector<corpus::TopicSpec> all_topics = corpus::HealthTopics();
  for (corpus::TopicSpec& t : corpus::ScienceTopics()) {
    all_topics.push_back(std::move(t));
  }
  for (corpus::TopicSpec& t : corpus::NewsTopics()) {
    all_topics.push_back(std::move(t));
  }
  std::vector<std::string> query_topics;
  for (const corpus::TopicSpec& t : corpus::HealthTopics()) {
    query_topics.push_back(t.name);
  }
  return BuildFromRecipes(std::move(all_topics), HealthRecipes(),
                          std::move(query_topics), options);
}

Result<Testbed> BuildNewsgroupTestbed(const TestbedOptions& options) {
  std::vector<corpus::TopicSpec> topics = corpus::NewsgroupTopics();
  std::vector<std::string> topic_names;
  for (const corpus::TopicSpec& t : topics) topic_names.push_back(t.name);

  // 20 groups cycling through the hobbyist topics with varying sizes,
  // secondary interests and token mixes (the UCLA news-server groups range
  // from 2890 to 18040 articles; these are scaled-down proxies).
  std::vector<DbRecipe> recipes;
  std::vector<std::string> names;  // keep storage alive for c_str()
  names.reserve(20);
  for (std::size_t i = 0; i < 20; ++i) {
    const std::string& main_topic = topic_names[i % topic_names.size()];
    const std::string& side_topic = topic_names[(i + 3) % topic_names.size()];
    names.push_back("ng." + main_topic + "." + std::to_string(i));
    DbRecipe recipe;
    recipe.name = names.back().c_str();
    recipe.base_docs = static_cast<std::uint32_t>(1500 + (i * 373) % 4200);
    recipe.topical_fraction = 0.50 + 0.03 * static_cast<double>(i % 5);
    recipe.mixture = {{main_topic.c_str(), 3.0}, {side_topic.c_str(), 0.6}};
    recipe.subtopic_affinity = 0.25 + 0.05 * static_cast<double>(i % 8);
    recipe.subtopic_rotation = i % 4;
    recipe.doc_focus = 0.15 + 0.06 * static_cast<double>(i % 6);
    recipes.push_back(std::move(recipe));
  }
  return BuildFromRecipes(std::move(topics), recipes, topic_names, options);
}

Result<std::unique_ptr<core::Metasearcher>> BuildTrainedMetasearcher(
    const Testbed& testbed, core::MetasearcherOptions options) {
  auto metasearcher = std::make_unique<core::Metasearcher>(options);
  for (std::size_t i = 0; i < testbed.databases.size(); ++i) {
    RETURN_NOT_OK(metasearcher->AddDatabase(testbed.databases[i],
                                            testbed.summaries[i]));
  }
  RETURN_NOT_OK(metasearcher->Train(testbed.train_queries));
  return metasearcher;
}

}  // namespace eval
}  // namespace metaprobe
