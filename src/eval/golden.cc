#include "eval/golden.h"

#include "common/macros.h"
#include "core/correctness.h"

namespace metaprobe {
namespace eval {

Result<GoldenStandard> GoldenStandard::Build(
    const std::vector<const core::HiddenWebDatabase*>& databases,
    const std::vector<core::Query>& queries,
    core::RelevancyDefinition definition, ThreadPool* pool) {
  // One ProbeBatch per database yields that database's column of the
  // relevancy matrix; columns are independent, so they fan out over the
  // pool and are transposed into rows afterwards.
  std::vector<Result<std::vector<double>>> columns(
      databases.size(), Status::Internal("golden column not built"));
  auto build_column = [&](std::size_t db) {
    columns[db] = databases[db]->ProbeBatch(queries, definition);
  };
  if (pool == nullptr || databases.size() <= 1) {
    for (std::size_t db = 0; db < databases.size(); ++db) build_column(db);
  } else {
    std::vector<std::future<void>> pending;
    pending.reserve(databases.size());
    for (std::size_t db = 0; db < databases.size(); ++db) {
      pending.push_back(pool->Submit([&build_column, db] { build_column(db); }));
    }
    for (std::future<void>& f : pending) f.get();
  }
  std::vector<std::vector<double>> relevancies(
      queries.size(), std::vector<double>(databases.size(), 0.0));
  for (std::size_t db = 0; db < databases.size(); ++db) {
    RETURN_NOT_OK(columns[db].status());
    const std::vector<double>& column = *columns[db];
    for (std::size_t q = 0; q < queries.size(); ++q) {
      relevancies[q][db] = column[q];
    }
  }
  return GoldenStandard(std::move(relevancies));
}

std::vector<std::size_t> GoldenStandard::TopK(std::size_t q, int k) const {
  return core::TopKIndices(relevancies_[q], k);
}

}  // namespace eval
}  // namespace metaprobe
