#include "eval/golden.h"

#include "common/macros.h"
#include "core/correctness.h"

namespace metaprobe {
namespace eval {

Result<GoldenStandard> GoldenStandard::Build(
    const std::vector<const core::HiddenWebDatabase*>& databases,
    const std::vector<core::Query>& queries,
    core::RelevancyDefinition definition) {
  std::vector<std::vector<double>> relevancies;
  relevancies.reserve(queries.size());
  for (const core::Query& query : queries) {
    std::vector<double> row;
    row.reserve(databases.size());
    for (const core::HiddenWebDatabase* db : databases) {
      ASSIGN_OR_RETURN(double relevancy,
                       core::ProbeRelevancy(*db, query, definition));
      row.push_back(relevancy);
    }
    relevancies.push_back(std::move(row));
  }
  return GoldenStandard(std::move(relevancies));
}

std::vector<std::size_t> GoldenStandard::TopK(std::size_t q, int k) const {
  return core::TopKIndices(relevancies_[q], k);
}

}  // namespace eval
}  // namespace metaprobe
