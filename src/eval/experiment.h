// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_EVAL_EXPERIMENT_H_
#define METAPROBE_EVAL_EXPERIMENT_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/metasearcher.h"
#include "core/probing.h"
#include "eval/golden.h"
#include "eval/testbed.h"

namespace metaprobe {
namespace eval {

/// \brief A fully trained experiment environment: testbed + trained
/// metasearcher + golden standard over the test queries. The shared input
/// of the Figure 15/16/17 benches and the ablations.
struct TrainedWorld {
  Testbed testbed;
  std::unique_ptr<core::Metasearcher> metasearcher;
  std::unique_ptr<GoldenStandard> golden;

  std::size_t num_test_queries() const { return testbed.test_queries.size(); }
};

/// \brief Builds the Section 6 health testbed, trains a metasearcher on the
/// train split, and probes the golden standard for the test split.
Result<TrainedWorld> BuildTrainedHealthWorld(
    const TestbedOptions& testbed_options,
    core::MetasearcherOptions searcher_options = {});

/// \brief Average absolute and partial correctness of a selection method.
struct CorrectnessScores {
  double avg_absolute = 0.0;
  double avg_partial = 0.0;
};

/// \brief Scores the term-independence baseline (rank by r_hat) on all test
/// queries against the golden standard.
CorrectnessScores EvaluateBaseline(const TrainedWorld& world, int k);

/// \brief Scores the RD-based method (no probing) on all test queries.
CorrectnessScores EvaluateRdBased(const TrainedWorld& world, int k,
                                  core::CorrectnessMetric metric);

/// \brief Average correctness of APro's reported best answer after exactly
/// 0, 1, ..., max_probes probes (Figure 16's series). Uses the first
/// `query_limit` test queries (0 = all).
///
/// Runs with threshold 1.0 and trace recording; when APro reaches full
/// certainty early, the answer is already exact and later probe counts
/// reuse the final answer.
std::vector<CorrectnessScores> EvaluateProbingTrace(
    const TrainedWorld& world, int k, core::CorrectnessMetric metric,
    core::ProbingPolicy* policy, int max_probes, std::size_t query_limit = 0);

/// \brief Result of one threshold sweep point (Figure 17).
struct ThresholdPoint {
  double threshold = 0.0;
  double avg_probes = 0.0;
  double avg_correctness = 0.0;  ///< Realized (not expected) correctness.
  double reached_fraction = 0.0;
};

/// \brief Average number of probes APro spends to reach each threshold.
std::vector<ThresholdPoint> EvaluateThresholdSweep(
    const TrainedWorld& world, int k, core::CorrectnessMetric metric,
    core::ProbingPolicy* policy, const std::vector<double>& thresholds,
    std::size_t query_limit = 0);

/// \brief Standard scale knobs every bench reads from the environment:
/// METAPROBE_SCALE (database size multiplier), METAPROBE_TRAIN /
/// METAPROBE_TEST (queries per term count), METAPROBE_QUERY_LIMIT
/// (cap on test queries evaluated in probe-heavy sweeps), METAPROBE_SEED.
struct BenchScale {
  std::uint32_t scale = 1;
  std::size_t train_per_term = 1000;
  std::size_t test_per_term = 1000;
  std::size_t query_limit = 300;
  std::uint64_t seed = 42;
};

/// \brief Reads the knobs and logs the effective configuration.
BenchScale ReadBenchScale();

/// \brief TestbedOptions matching a BenchScale.
TestbedOptions ToTestbedOptions(const BenchScale& scale);

}  // namespace eval
}  // namespace metaprobe

#endif  // METAPROBE_EVAL_EXPERIMENT_H_
