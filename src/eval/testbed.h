// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_EVAL_TESTBED_H_
#define METAPROBE_EVAL_TESTBED_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/hidden_web_database.h"
#include "core/metasearcher.h"
#include "core/query.h"
#include "corpus/query_log.h"
#include "corpus/synthetic_corpus.h"
#include "text/analyzer.h"

namespace metaprobe {
namespace eval {

/// \brief Parameters of a reproducible experiment testbed.
struct TestbedOptions {
  /// Multiplies database sizes; 1 is laptop scale (~50k docs total for the
  /// health testbed), larger values approach the paper's corpus sizes.
  std::uint32_t scale = 1;
  /// Unique training / test queries per keyword count (the paper uses
  /// 1000 + 1000 of each of 2- and 3-term).
  std::size_t train_queries_per_term_count = 1000;
  std::size_t test_queries_per_term_count = 1000;
  std::uint64_t seed = 42;
  /// Keep raw document text (needed only for fusion demos).
  bool store_documents = false;
  /// Magnitude of the per-database advertised-size distortion: each
  /// summary's |db| is scaled by exp(U(-d, d)). Hidden-web databases rarely
  /// export exact sizes (the paper estimates them by probing common terms),
  /// and this systematic per-database bias is a major component of the
  /// estimation error the RDs learn. 0 disables the distortion.
  double summary_size_distortion = 1.6;
  /// Fraction of documents the summary statistics are (simulated to be)
  /// collected from; 1.0 = exact term frequencies, lower values add
  /// sample-based summary noise (Callan-style construction, the paper's
  /// reference [8]).
  double summary_sample_rate = 1.0;
};

/// \brief A fully constructed experiment environment: the simulated
/// hidden-web databases plus disjoint train/test query traces.
///
/// Shared by the benches reproducing the paper's figures, the integration
/// tests, and the larger examples, so every consumer measures the same
/// world.
struct Testbed {
  std::shared_ptr<text::Analyzer> analyzer;
  std::unique_ptr<corpus::CorpusGenerator> generator;
  std::vector<std::shared_ptr<core::LocalDatabase>> databases;
  /// Pre-collected statistical summaries, one per database, including the
  /// configured size distortion / sampling noise.
  std::vector<core::StatSummary> summaries;
  std::vector<core::Query> train_queries;
  std::vector<core::Query> test_queries;

  /// \brief Raw-pointer view of the databases (learner/golden interfaces).
  std::vector<const core::HiddenWebDatabase*> database_ptrs() const;

  std::size_t num_databases() const { return databases.size(); }
};

/// \brief The Section 6 testbed: 20 medical/health-related databases
/// (13 specialized health, 4 broader science, 3 daily news with health
/// coverage) and health-care query traces.
Result<Testbed> BuildHealthTestbed(const TestbedOptions& options);

/// \brief The Section 4.2 testbed: 20 newsgroup-style databases and a
/// large comprehensive query trace over hobbyist topics.
Result<Testbed> BuildNewsgroupTestbed(const TestbedOptions& options);

/// \brief Builds a Metasearcher over `testbed`'s databases (exact
/// summaries, paper-default options) and trains it on the train queries.
Result<std::unique_ptr<core::Metasearcher>> BuildTrainedMetasearcher(
    const Testbed& testbed, core::MetasearcherOptions options = {});

}  // namespace eval
}  // namespace metaprobe

#endif  // METAPROBE_EVAL_TESTBED_H_
