// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_EVAL_GOLDEN_H_
#define METAPROBE_EVAL_GOLDEN_H_

#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/hidden_web_database.h"
#include "core/query.h"
#include "core/relevancy_definition.h"

namespace metaprobe {
namespace eval {

/// \brief The golden standard of Section 6.1: every test query issued to
/// every database, recording the true relevancies, so any selection
/// method's answer can be scored exactly.
class GoldenStandard {
 public:
  /// \brief Probes all databases with all queries under `definition`.
  ///
  /// Each database receives the full query set as one ProbeBatch, and
  /// databases fan out across `pool` when one is given (null = build on
  /// the calling thread). Both choices leave the recorded relevancies
  /// identical to query-at-a-time probing — batching amortizes probe
  /// overhead and databases are independent.
  static Result<GoldenStandard> Build(
      const std::vector<const core::HiddenWebDatabase*>& databases,
      const std::vector<core::Query>& queries,
      core::RelevancyDefinition definition =
          core::RelevancyDefinition::kDocumentFrequency,
      ThreadPool* pool = nullptr);

  std::size_t num_queries() const { return relevancies_.size(); }
  std::size_t num_databases() const {
    return relevancies_.empty() ? 0 : relevancies_[0].size();
  }

  /// \brief True relevancy r(db, q) for query `q` and database `db`.
  double Relevancy(std::size_t q, std::size_t db) const {
    return relevancies_[q][db];
  }

  /// \brief All true relevancies for query `q`.
  const std::vector<double>& Relevancies(std::size_t q) const {
    return relevancies_[q];
  }

  /// \brief DB_topk for query `q` (ascending ids, lowest-id tie-break).
  std::vector<std::size_t> TopK(std::size_t q, int k) const;

 private:
  explicit GoldenStandard(std::vector<std::vector<double>> relevancies)
      : relevancies_(std::move(relevancies)) {}

  std::vector<std::vector<double>> relevancies_;  // [query][database]
};

}  // namespace eval
}  // namespace metaprobe

#endif  // METAPROBE_EVAL_GOLDEN_H_
