#include "eval/experiment.h"

#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"
#include "common/strings.h"
#include "core/correctness.h"
#include "core/selection.h"

namespace metaprobe {
namespace eval {

Result<TrainedWorld> BuildTrainedHealthWorld(
    const TestbedOptions& testbed_options,
    core::MetasearcherOptions searcher_options) {
  // The covered-vs-uncovered estimate threshold scales with database size:
  // the paper's 100 suits its 3k-180k-document databases; at this testbed's
  // reduced sizes the same boundary sits near 30 matching documents.
  // Override with METAPROBE_THRESHOLD.
  searcher_options.query_class.estimate_threshold =
      static_cast<double>(GetEnvLong("METAPROBE_THRESHOLD", 30));
  TrainedWorld world;
  ASSIGN_OR_RETURN(world.testbed, BuildHealthTestbed(testbed_options));
  ASSIGN_OR_RETURN(world.metasearcher,
                   BuildTrainedMetasearcher(world.testbed, searcher_options));
  // Golden-standard values are deterministic per database, so fanning the
  // per-database ProbeBatch columns over a transient pool cannot change
  // them — it only overlaps the exhaustive probing.
  ThreadPool golden_pool(std::max(1u, std::thread::hardware_concurrency()));
  ASSIGN_OR_RETURN(
      GoldenStandard golden,
      GoldenStandard::Build(world.testbed.database_ptrs(),
                            world.testbed.test_queries,
                            searcher_options.relevancy_definition,
                            &golden_pool));
  golden_pool.Shutdown();
  world.golden = std::make_unique<GoldenStandard>(std::move(golden));
  return world;
}

namespace {

CorrectnessScores ScoreSelections(
    const TrainedWorld& world,
    const std::vector<std::vector<std::size_t>>& selections, int k) {
  CorrectnessScores scores;
  std::size_t n = selections.size();
  if (n == 0) return scores;
  for (std::size_t q = 0; q < n; ++q) {
    std::vector<std::size_t> actual = world.golden->TopK(q, k);
    scores.avg_absolute += core::AbsoluteCorrectness(selections[q], actual);
    scores.avg_partial += core::PartialCorrectness(selections[q], actual);
  }
  scores.avg_absolute /= static_cast<double>(n);
  scores.avg_partial /= static_cast<double>(n);
  return scores;
}

}  // namespace

CorrectnessScores EvaluateBaseline(const TrainedWorld& world, int k) {
  std::vector<std::vector<std::size_t>> selections;
  for (const core::Query& query : world.testbed.test_queries) {
    selections.push_back(
        core::SelectByEstimate(world.metasearcher->EstimateAll(query), k)
            .databases);
  }
  return ScoreSelections(world, selections, k);
}

CorrectnessScores EvaluateRdBased(const TrainedWorld& world, int k,
                                  core::CorrectnessMetric metric) {
  std::vector<std::vector<std::size_t>> selections;
  for (const core::Query& query : world.testbed.test_queries) {
    core::TopKModel model =
        world.metasearcher->BuildModel(query).ValueOrDie();
    selections.push_back(core::SelectByRd(model, k, metric).databases);
  }
  return ScoreSelections(world, selections, k);
}

std::vector<CorrectnessScores> EvaluateProbingTrace(
    const TrainedWorld& world, int k, core::CorrectnessMetric metric,
    core::ProbingPolicy* policy, int max_probes, std::size_t query_limit) {
  std::size_t n = world.num_test_queries();
  if (query_limit > 0) n = std::min(n, query_limit);
  std::vector<CorrectnessScores> trace(
      static_cast<std::size_t>(max_probes) + 1);
  for (std::size_t q = 0; q < n; ++q) {
    const core::Query& query = world.testbed.test_queries[q];
    core::TopKModel model =
        world.metasearcher->BuildModel(query).ValueOrDie();
    core::AProOptions options;
    options.k = k;
    options.threshold = 1.0;
    options.metric = metric;
    options.max_probes = max_probes;
    options.record_trace = true;
    core::AdaptiveProber prober(policy, options);
    core::ProbeFn probe = [&](std::size_t db) -> Result<double> {
      return world.golden->Relevancy(q, db);
    };
    core::AProResult result = prober.Run(&model, probe).ValueOrDie();
    std::vector<std::size_t> actual = world.golden->TopK(q, k);
    for (int p = 0; p <= max_probes; ++p) {
      // If APro halted early (full certainty), its final answer stands for
      // the remaining probe budgets.
      const core::SelectionResult& step =
          result.trace[std::min<std::size_t>(p, result.trace.size() - 1)];
      trace[p].avg_absolute +=
          core::AbsoluteCorrectness(step.databases, actual);
      trace[p].avg_partial += core::PartialCorrectness(step.databases, actual);
    }
  }
  for (CorrectnessScores& scores : trace) {
    scores.avg_absolute /= static_cast<double>(n);
    scores.avg_partial /= static_cast<double>(n);
  }
  return trace;
}

std::vector<ThresholdPoint> EvaluateThresholdSweep(
    const TrainedWorld& world, int k, core::CorrectnessMetric metric,
    core::ProbingPolicy* policy, const std::vector<double>& thresholds,
    std::size_t query_limit) {
  std::size_t n = world.num_test_queries();
  if (query_limit > 0) n = std::min(n, query_limit);
  std::vector<ThresholdPoint> points;
  for (double t : thresholds) {
    ThresholdPoint point;
    point.threshold = t;
    for (std::size_t q = 0; q < n; ++q) {
      const core::Query& query = world.testbed.test_queries[q];
      core::TopKModel model =
          world.metasearcher->BuildModel(query).ValueOrDie();
      core::AProOptions options;
      options.k = k;
      options.threshold = t;
      options.metric = metric;
      core::AdaptiveProber prober(policy, options);
      core::ProbeFn probe = [&](std::size_t db) -> Result<double> {
        return world.golden->Relevancy(q, db);
      };
      core::AProResult result = prober.Run(&model, probe).ValueOrDie();
      point.avg_probes += result.num_probes();
      point.reached_fraction += result.reached_threshold ? 1.0 : 0.0;
      std::vector<std::size_t> actual = world.golden->TopK(q, k);
      point.avg_correctness +=
          metric == core::CorrectnessMetric::kAbsolute
              ? core::AbsoluteCorrectness(result.selected, actual)
              : core::PartialCorrectness(result.selected, actual);
    }
    point.avg_probes /= static_cast<double>(n);
    point.avg_correctness /= static_cast<double>(n);
    point.reached_fraction /= static_cast<double>(n);
    points.push_back(point);
  }
  return points;
}

BenchScale ReadBenchScale() {
  BenchScale scale;
  scale.scale = static_cast<std::uint32_t>(GetEnvLong("METAPROBE_SCALE", 1));
  scale.train_per_term =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TRAIN", 1000));
  scale.test_per_term =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_TEST", 1000));
  scale.query_limit =
      static_cast<std::size_t>(GetEnvLong("METAPROBE_QUERY_LIMIT", 300));
  scale.seed = static_cast<std::uint64_t>(GetEnvLong("METAPROBE_SEED", 42));
  METAPROBE_LOG(Info) << "bench scale: db_scale=" << scale.scale
                      << " train/term=" << scale.train_per_term
                      << " test/term=" << scale.test_per_term
                      << " query_limit=" << scale.query_limit
                      << " seed=" << scale.seed;
  return scale;
}

TestbedOptions ToTestbedOptions(const BenchScale& scale) {
  TestbedOptions options;
  options.scale = scale.scale;
  options.train_queries_per_term_count = scale.train_per_term;
  options.test_queries_per_term_count = scale.test_per_term;
  options.seed = scale.seed;
  return options;
}

}  // namespace eval
}  // namespace metaprobe
