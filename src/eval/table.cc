#include "eval/table.h"

#include <algorithm>

#include "common/strings.h"

namespace metaprobe {
namespace eval {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      bool needs_quotes =
          row[c].find(',') != std::string::npos ||
          row[c].find('"') != std::string::npos;
      if (needs_quotes) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string Cell(double value, int digits) {
  return FormatDouble(value, digits);
}

std::string Cell(std::size_t value) { return std::to_string(value); }

std::string Cell(int value) { return std::to_string(value); }

}  // namespace eval
}  // namespace metaprobe
