#include "serving/introspection.h"

#include <cstdio>

namespace metaprobe {
namespace serving {

namespace {

std::string Js(const std::string& s) {
  std::string quoted;
  quoted.reserve(s.size() + 2);
  quoted.push_back('"');
  quoted += obs::JsonEscape(s);
  quoted.push_back('"');
  return quoted;
}

std::string Jn(double value) {
  char buf[64];
  if (value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

std::string Jn(std::uint64_t value) {
  return std::to_string(value);
}

void AppendTraceArray(
    std::string* out,
    const std::vector<std::shared_ptr<const obs::QueryTrace>>& traces) {
  *out += '[';
  bool first = true;
  for (const auto& trace : traces) {
    if (!first) *out += ',';
    first = false;
    *out += "{\"trace_id\":" + Jn(trace->trace_id()) +
            ",\"query\":" + Js(trace->query()) +
            ",\"duration_seconds\":" + Jn(trace->DurationSeconds()) +
            ",\"num_spans\":" + Jn(static_cast<std::uint64_t>(
                                   trace->spans().size())) +
            "}";
  }
  *out += ']';
}

}  // namespace

IntrospectionService::IntrospectionService(Components components)
    : components_(std::move(components)),
      clock_(components_.clock != nullptr ? components_.clock
                                          : obs::RealClock::Get()),
      start_ns_(clock_->NowNanos()) {}

std::string IntrospectionService::MetricsText() const {
  std::string text;
  if (components_.searcher != nullptr) {
    text += components_.searcher->metrics().ExpositionText();
  }
  if (components_.server != nullptr) {
    text += components_.server->metrics().ExpositionText();
  }
  return text;
}

std::string IntrospectionService::StatuszJson() const {
  std::string json = "{";
#ifdef METAPROBE_OBS_DISABLED
  const char* obs_compiled_out = "true";
#else
  const char* obs_compiled_out = "false";
#endif
  json += "\"build\":{\"compiler\":" + Js(__VERSION__) +
          ",\"date\":" + Js(__DATE__ " " __TIME__) +
          ",\"obs_compiled_out\":" + obs_compiled_out + "}";
  json += ",\"uptime_seconds\":" +
          Jn(static_cast<double>(clock_->NowNanos() - start_ns_) * 1e-9);
  if (components_.server != nullptr) {
    const ServerStats stats = components_.server->stats();
    json += ",\"server\":{\"accepted\":" + Jn(stats.accepted) +
            ",\"throttled\":" + Jn(stats.throttled) +
            ",\"queue_rejections\":" + Jn(stats.queue_rejections) +
            ",\"shutdown_rejections\":" + Jn(stats.shutdown_rejections) +
            ",\"completed_ok\":" + Jn(stats.completed_ok) +
            ",\"completed_degraded\":" + Jn(stats.completed_degraded) +
            ",\"failed\":" + Jn(stats.failed) +
            ",\"queue_depth\":" + Jn(stats.queue_depth) + "}";
    json += ",\"tenants\":[";
    bool first = true;
    for (const auto& tenant : components_.server->admission().Snapshot()) {
      if (!first) json += ',';
      first = false;
      json += "{\"tenant\":" + Js(tenant.tenant) +
              ",\"tokens\":" + Jn(tenant.tokens) +
              ",\"refill_per_second\":" + Jn(tenant.refill_per_second) +
              ",\"burst\":" + Jn(tenant.burst) + "}";
    }
    json += ']';
  }
  if (components_.searcher != nullptr) {
    const core::ServingStats stats = components_.searcher->stats();
    json += ",\"searcher\":{\"queries_served\":" + Jn(stats.queries_served) +
            ",\"batches_served\":" + Jn(stats.batches_served) +
            ",\"probes_issued\":" + Jn(stats.probes_issued) +
            ",\"probes_failed\":" + Jn(stats.probes_failed) + "}";
    // Per-database index storage, split by backing, so operators can tell
    // heap-held indexes from mmap-served (page-cache-reclaimable) ones.
    json += ",\"storage\":[";
    bool first = true;
    for (std::size_t i = 0; i < components_.searcher->num_databases(); ++i) {
      const core::HiddenWebDatabase& db = components_.searcher->database(i);
      const core::StorageStats storage = db.GetStorageStats();
      if (!first) json += ',';
      first = false;
      json += "{\"name\":" + Js(db.name()) +
              ",\"heap_bytes\":" + Jn(static_cast<std::uint64_t>(
                                      storage.heap_bytes)) +
              ",\"mapped_bytes\":" + Jn(static_cast<std::uint64_t>(
                                        storage.mapped_bytes)) +
              ",\"frozen\":" + (storage.frozen ? "true" : "false") +
              ",\"mapped\":" + (storage.mapped ? "true" : "false") + "}";
    }
    json += ']';
  }
  if (!components_.slos.empty()) {
    json += ",\"slos\":[";
    bool first = true;
    for (const obs::SloMonitor* slo : components_.slos) {
      if (slo == nullptr) continue;
      const obs::SloSnapshot snap = slo->Snapshot();
      if (!first) json += ',';
      first = false;
      json += "{\"name\":" + Js(snap.name) +
              ",\"objective_seconds\":" + Jn(snap.objective_seconds) +
              ",\"window_count\":" + Jn(snap.window_count) +
              ",\"p50_seconds\":" + Jn(snap.p50_seconds) +
              ",\"p95_seconds\":" + Jn(snap.p95_seconds) +
              ",\"p99_seconds\":" + Jn(snap.p99_seconds) +
              ",\"violation_fraction\":" + Jn(snap.violation_fraction) +
              ",\"burn_rate\":" + Jn(snap.burn_rate) + "}";
    }
    json += ']';
  }
  if (components_.health != nullptr) {
    json += ",\"databases\":[";
    bool first = true;
    for (const obs::DbHealthSnapshot& db : components_.health->SnapshotAll()) {
      if (!first) json += ',';
      first = false;
      json += "{\"db\":" + Jn(static_cast<std::uint64_t>(db.db)) +
              ",\"name\":" + Js(db.name) + ",\"probes\":" + Jn(db.probes) +
              ",\"ok\":" + Jn(db.ok) + ",\"degraded\":" + Jn(db.degraded) +
              ",\"timeouts\":" + Jn(db.timeouts) +
              ",\"errors\":" + Jn(db.errors) +
              ",\"error_rate\":" + Jn(db.error_rate) +
              ",\"window_mean_latency_seconds\":" +
              Jn(db.window_mean_latency_seconds) +
              ",\"ewma_latency_seconds\":" + Jn(db.ewma_latency_seconds) +
              ",\"rank_agreement\":" + Jn(db.rank_agreement) +
              ",\"health_score\":" + Jn(db.health_score) +
              ",\"healthy\":" + (db.healthy ? "true" : "false") + "}";
    }
    json += ']';
  }
  json += '}';
  return json;
}

std::string IntrospectionService::TracezJson() const {
  std::string json = "{";
  if (components_.tracer != nullptr) {
    json += "\"slow_threshold_seconds\":" +
            Jn(components_.tracer->slow_threshold_seconds());
    json += ",\"recent\":";
    AppendTraceArray(&json, components_.tracer->Snapshot());
    json += ",\"slow\":";
    AppendTraceArray(&json, components_.tracer->SnapshotSlow());
  } else {
    json += "\"slow_threshold_seconds\":0,\"recent\":[],\"slow\":[]";
  }
  json += '}';
  return json;
}

void IntrospectionService::RegisterEndpoints(obs::HttpServer* http) const {
  http->Handle("/healthz", [](const std::string&) {
    return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });
#ifdef METAPROBE_OBS_DISABLED
  // Observability is compiled out: liveness stays, telemetry goes. The
  // scrape endpoints would only serve empty registries and rings, so they
  // are not registered at all (a scraper sees 404, not silent zeros).
  return;
#endif
  http->Handle("/metrics", [this](const std::string&) {
    return obs::HttpResponse{
        200, "text/plain; version=0.0.4; charset=utf-8", MetricsText()};
  });
  http->Handle("/statusz", [this](const std::string&) {
    return obs::HttpResponse{200, "application/json", StatuszJson()};
  });
  http->Handle("/tracez", [this](const std::string&) {
    return obs::HttpResponse{200, "application/json", TracezJson()};
  });
}

}  // namespace serving
}  // namespace metaprobe
