#include "serving/admission.h"

#include <algorithm>
#include <limits>

namespace metaprobe {
namespace serving {

TokenBucket::TokenBucket(const TokenBucketOptions& options,
                         std::uint64_t now_ns)
    : options_(options),
      tokens_(std::max(options.burst, 1.0)),
      last_refill_ns_(now_ns) {
  // A bucket that cannot hold one token would refuse everything forever;
  // floor the capacity at a single query.
  options_.burst = std::max(options_.burst, 1.0);
}

bool TokenBucket::TryAcquire(std::uint64_t now_ns,
                             double* retry_after_seconds) {
  if (now_ns > last_refill_ns_ && options_.refill_per_second > 0.0) {
    double elapsed_seconds =
        static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
    tokens_ = std::min(options_.burst,
                       tokens_ + elapsed_seconds * options_.refill_per_second);
  }
  last_refill_ns_ = std::max(last_refill_ns_, now_ns);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  if (retry_after_seconds != nullptr) {
    *retry_after_seconds =
        options_.refill_per_second > 0.0
            ? (1.0 - tokens_) / options_.refill_per_second
            : std::numeric_limits<double>::infinity();
  }
  return false;
}

AdmissionController::AdmissionController(TokenBucketOptions defaults,
                                         const obs::MonotonicClock* clock)
    : defaults_(defaults),
      clock_(clock != nullptr ? clock : obs::RealClock::Get()) {}

void AdmissionController::SetTenantRate(const std::string& tenant,
                                        TokenBucketOptions options) {
  MutexLock lock(mutex_);
  overrides_[tenant] = options;
  auto it = buckets_.find(tenant);
  if (it != buckets_.end()) {
    it->second = TokenBucket(options, clock_->NowNanos());
  }
}

bool AdmissionController::Admit(const std::string& tenant,
                                double* retry_after_seconds) {
  std::uint64_t now_ns = clock_->NowNanos();
  MutexLock lock(mutex_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    auto override_it = overrides_.find(tenant);
    const TokenBucketOptions& rate =
        override_it != overrides_.end() ? override_it->second : defaults_;
    it = buckets_.emplace(tenant, TokenBucket(rate, now_ns)).first;
  }
  return it->second.TryAcquire(now_ns, retry_after_seconds);
}

std::size_t AdmissionController::num_tenants() const {
  MutexLock lock(mutex_);
  return buckets_.size();
}

std::vector<AdmissionController::TenantState> AdmissionController::Snapshot()
    const {
  std::vector<TenantState> states;
  {
    MutexLock lock(mutex_);
    states.reserve(buckets_.size());
    for (const auto& [tenant, bucket] : buckets_) {
      states.push_back({tenant, bucket.tokens(),
                        bucket.options().refill_per_second,
                        bucket.options().burst});
    }
  }
  std::sort(states.begin(), states.end(),
            [](const TenantState& a, const TenantState& b) {
              return a.tenant < b.tenant;
            });
  return states;
}

}  // namespace serving
}  // namespace metaprobe
