// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_SERVING_ADMISSION_H_
#define METAPROBE_SERVING_ADMISSION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "obs/clock.h"

namespace metaprobe {
namespace serving {

/// \brief Rate shape of one tenant's token bucket.
struct TokenBucketOptions {
  /// Steady-state admitted queries per second. Zero or negative means the
  /// bucket never refills: the tenant gets its burst and nothing more.
  double refill_per_second = 100.0;
  /// Bucket capacity — how far a tenant may run ahead of its steady rate.
  double burst = 20.0;
};

/// \brief Classic token bucket over an injected monotonic timebase.
///
/// Not internally synchronized: the AdmissionController serializes access
/// under its own mutex, and tests drive a bucket directly from one thread.
class TokenBucket {
 public:
  TokenBucket(const TokenBucketOptions& options, std::uint64_t now_ns);

  /// \brief Consumes one token if available (refilling for the elapsed
  /// time first). On refusal fills `*retry_after_seconds` with the time
  /// until a full token accrues — infinity for non-refilling buckets.
  bool TryAcquire(std::uint64_t now_ns, double* retry_after_seconds);

  double tokens() const { return tokens_; }
  const TokenBucketOptions& options() const { return options_; }

 private:
  TokenBucketOptions options_;
  double tokens_;
  std::uint64_t last_refill_ns_;
};

/// \brief Per-tenant admission control: one token bucket per tenant id,
/// created on first sight with the default rate (or a per-tenant override
/// installed during setup). Thread-safe; the bucket map is tiny (one entry
/// per tenant) and the critical section is a map lookup plus arithmetic.
class AdmissionController {
 public:
  /// \param defaults rate applied to tenants without an override
  /// \param clock borrowed timebase (tests inject obs::FakeClock)
  AdmissionController(TokenBucketOptions defaults,
                      const obs::MonotonicClock* clock);

  /// \brief Installs a per-tenant rate. Setup-phase only if the tenant has
  /// already been seen (the existing bucket is rebuilt, forfeiting its
  /// accumulated tokens).
  void SetTenantRate(const std::string& tenant, TokenBucketOptions options);

  /// \brief Admits or refuses one query for `tenant`; on refusal
  /// `*retry_after_seconds` says when a token will be available.
  bool Admit(const std::string& tenant, double* retry_after_seconds);

  std::size_t num_tenants() const;

  /// \brief Point-in-time view of one tenant's bucket for /statusz.
  struct TenantState {
    std::string tenant;
    double tokens = 0.0;            ///< As of the tenant's last admission.
    double refill_per_second = 0.0;
    double burst = 0.0;
  };

  /// \brief Every seen tenant's bucket state, sorted by tenant id so the
  /// /statusz table is stable across scrapes.
  std::vector<TenantState> Snapshot() const;

 private:
  TokenBucketOptions defaults_;
  const obs::MonotonicClock* clock_;
  mutable Mutex mutex_;
  std::unordered_map<std::string, TokenBucket> buckets_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, TokenBucketOptions> overrides_
      GUARDED_BY(mutex_);
};

}  // namespace serving
}  // namespace metaprobe

#endif  // METAPROBE_SERVING_ADMISSION_H_
