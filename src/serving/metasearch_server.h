// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_SERVING_METASEARCH_SERVER_H_
#define METAPROBE_SERVING_METASEARCH_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "core/deadline.h"
#include "core/metasearcher.h"
#include "core/query.h"
#include "obs/clock.h"
#include "obs/metric_registry.h"
#include "serving/admission.h"

namespace metaprobe {
namespace serving {

/// \brief Configuration of a MetasearchServer.
struct MetasearchServerOptions {
  /// Worker threads draining the queue. 0 spawns none: requests queue up
  /// and the owner pumps them with RunOne() — the deterministic mode the
  /// serving tests drive with a FakeClock.
  int num_workers = 4;
  /// Queue slots beyond the in-flight workers. A Submit that finds the
  /// queue full is refused with kQueueFull (backpressure) instead of
  /// growing the queue without bound.
  std::size_t max_queue_depth = 64;
  /// Per-tenant token-bucket admission. Disabled, every request goes
  /// straight to the queue — the load generator's control arm.
  bool admission_enabled = true;
  TokenBucketOptions tenant_rate;
  /// Latency budget applied to requests that do not carry their own.
  /// 0 = no deadline. Measured from *enqueue*, so time spent waiting in
  /// the queue counts against the budget.
  std::uint64_t default_deadline_ns = 0;
  /// Selection parameters for requests that do not override them.
  int default_k = 3;
  double default_threshold = 0.9;
  /// Borrowed timebase for admission, deadlines and latency metrics;
  /// null = the real clock. Tests inject obs::FakeClock.
  const obs::MonotonicClock* clock = nullptr;
};

/// \brief Admission outcome of one Submit.
enum class AdmitResult {
  kAccepted,   ///< Queued; the ticket's future will be fulfilled.
  kThrottled,  ///< Tenant over its rate; retry after `retry_after_seconds`.
  kQueueFull,  ///< Server saturated; back off and retry.
  kShutdown,   ///< Server no longer accepts work.
};

const char* AdmitResultName(AdmitResult result);

/// \brief One selection request as submitted by a client.
struct ServeRequest {
  core::Query query;
  std::string tenant = "default";
  /// Latency budget for this request; 0 inherits the server default.
  std::uint64_t deadline_ns = 0;
  /// Selection parameters; 0 inherits the server defaults.
  int k = 0;
  double threshold = 0.0;
};

/// \brief What the worker hands back through the ticket's future.
struct ServeResponse {
  Status status = Status::OK();   ///< Non-OK only for malformed queries.
  core::SelectionReport report;   ///< Valid when status is OK.
  /// True when the deadline expired before probing reached the certainty
  /// threshold: `report` holds the best (possibly estimate-only) answer.
  bool degraded = false;
  double queue_seconds = 0.0;     ///< Enqueue -> dequeue.
  double total_seconds = 0.0;     ///< Enqueue -> completion.
};

/// \brief Submit outcome: the admission decision plus, when accepted, the
/// future that delivers the response. Every accepted ticket is fulfilled
/// exactly once — including during shutdown drain (zero loss).
struct Ticket {
  AdmitResult admit = AdmitResult::kAccepted;
  double retry_after_seconds = 0.0;  ///< Meaningful when throttled.
  std::future<ServeResponse> response;

  bool accepted() const { return admit == AdmitResult::kAccepted; }
};

/// \brief Counter snapshot mirroring the server's registry series.
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t throttled = 0;
  std::uint64_t queue_rejections = 0;
  std::uint64_t shutdown_rejections = 0;
  std::uint64_t completed_ok = 0;        ///< Served, full certainty path.
  std::uint64_t completed_degraded = 0;  ///< Served, deadline cut probing.
  std::uint64_t failed = 0;              ///< Served with an error status.
  std::uint64_t queue_depth = 0;         ///< Requests queued right now.

  std::uint64_t completed() const {
    return completed_ok + completed_degraded + failed;
  }
};

/// \brief Always-on serving loop around a trained Metasearcher: a bounded
/// request queue drained by a worker pool, fronted by per-tenant
/// token-bucket admission control.
///
/// Life of a request (see DESIGN.md §12):
///   1. Submit() — admission: shutdown check, tenant token bucket
///      (kThrottled + retry-after), bounded queue (kQueueFull). Accepted
///      requests get their deadline stamped *now*, so queueing time counts
///      against the budget, and are enqueued with a promise.
///   2. A worker dequeues, records the queue wait, and runs
///      Metasearcher::Select with the propagated deadline. An expired or
///      expiring deadline degrades the answer (estimate-only selection,
///      degraded=true) — it never becomes an error.
///   3. The response is delivered through the ticket's future.
///
/// Shutdown() stops admission, lets the workers drain every queued
/// request, and joins them: accepted work is never dropped. The destructor
/// calls Shutdown().
///
/// Thread-safety: Submit may be called from any number of threads; stats()
/// and metrics() may be scraped concurrently. The wrapped Metasearcher
/// must stay alive and untouched by setup calls for the server's lifetime
/// (Train is fine — the searcher publishes trained state atomically).
class MetasearchServer {
 public:
  MetasearchServer(const core::Metasearcher* searcher,
                   MetasearchServerOptions options);
  ~MetasearchServer();

  MetasearchServer(const MetasearchServer&) = delete;
  MetasearchServer& operator=(const MetasearchServer&) = delete;

  /// \brief Admission + enqueue; never blocks on serving work.
  Ticket Submit(ServeRequest request);

  /// \brief Dequeues and serves one request on the calling thread;
  /// returns false if the queue was empty. The num_workers = 0 pump —
  /// with a FakeClock this makes the whole server a deterministic state
  /// machine. Safe alongside worker threads (they share the same queue).
  bool RunOne();

  /// \brief Stops admission, drains the queue, joins the workers.
  /// Idempotent. With num_workers = 0 the drain happens inline.
  void Shutdown();

  ServerStats stats() const;
  std::size_t queue_depth() const;

  /// \brief The server's own registry (admission counters, queue depth,
  /// queue-wait and end-to-end latency histograms) — scrape alongside the
  /// searcher's registry for the full serving picture.
  obs::MetricRegistry& metrics() const { return registry_; }

  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  const MetasearchServerOptions& options() const { return options_; }

 private:
  struct Work {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    std::uint64_t enqueue_ns = 0;
    core::Deadline deadline;
  };

  void WorkerLoop();
  void Process(Work work);

  const core::Metasearcher* searcher_;  // borrowed
  MetasearchServerOptions options_;
  const obs::MonotonicClock* clock_;
  AdmissionController admission_;

  mutable Mutex mutex_;
  std::condition_variable work_available_;
  std::deque<Work> queue_ GUARDED_BY(mutex_);
  bool accepting_ GUARDED_BY(mutex_) = true;
  bool stopping_ GUARDED_BY(mutex_) = false;
  // Written in the constructor and in Shutdown only (after stopping_ is
  // set); the join loop runs lock-free by design, so workers_ is not
  // guarded — see the ThreadPool note for the same discipline.
  std::vector<std::thread> workers_;

  struct Telemetry {
    obs::Counter* accepted = nullptr;
    obs::Counter* throttled = nullptr;
    obs::Counter* queue_rejections = nullptr;
    obs::Counter* shutdown_rejections = nullptr;
    obs::Counter* completed_ok = nullptr;
    obs::Counter* completed_degraded = nullptr;
    obs::Counter* failed = nullptr;
    obs::Histogram* queue_wait = nullptr;
    obs::Histogram* latency = nullptr;
  };

  mutable obs::MetricRegistry registry_;
  Telemetry telemetry_;
};

}  // namespace serving
}  // namespace metaprobe

#endif  // METAPROBE_SERVING_METASEARCH_SERVER_H_
