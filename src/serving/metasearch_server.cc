#include "serving/metasearch_server.h"

#include <utility>

namespace metaprobe {
namespace serving {

const char* AdmitResultName(AdmitResult result) {
  switch (result) {
    case AdmitResult::kAccepted:
      return "accepted";
    case AdmitResult::kThrottled:
      return "throttled";
    case AdmitResult::kQueueFull:
      return "queue_full";
    case AdmitResult::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

MetasearchServer::MetasearchServer(const core::Metasearcher* searcher,
                                   MetasearchServerOptions options)
    : searcher_(searcher),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : obs::RealClock::Get()),
      admission_(options_.tenant_rate, clock_) {
  telemetry_.accepted = registry_.GetCounter(
      "metaprobe_server_requests_total", "result=\"accepted\"");
  telemetry_.throttled = registry_.GetCounter(
      "metaprobe_server_requests_total", "result=\"throttled\"");
  telemetry_.queue_rejections = registry_.GetCounter(
      "metaprobe_server_requests_total", "result=\"queue_full\"");
  telemetry_.shutdown_rejections = registry_.GetCounter(
      "metaprobe_server_requests_total", "result=\"shutdown\"");
  telemetry_.completed_ok = registry_.GetCounter(
      "metaprobe_server_completed_total", "outcome=\"ok\"");
  telemetry_.completed_degraded = registry_.GetCounter(
      "metaprobe_server_completed_total", "outcome=\"degraded\"");
  telemetry_.failed = registry_.GetCounter(
      "metaprobe_server_completed_total", "outcome=\"error\"");
  registry_.RegisterCallbackGauge(
      "metaprobe_server_queue_depth", "",
      [this]() { return static_cast<double>(queue_depth()); });
  telemetry_.queue_wait =
      registry_.GetHistogram("metaprobe_server_queue_wait_seconds");
  telemetry_.latency =
      registry_.GetHistogram("metaprobe_server_latency_seconds");

  workers_.reserve(options_.num_workers > 0 ? options_.num_workers : 0);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

MetasearchServer::~MetasearchServer() { Shutdown(); }

Ticket MetasearchServer::Submit(ServeRequest request) {
  Ticket ticket;
  {
    MutexLock lock(mutex_);
    if (!accepting_) {
      ticket.admit = AdmitResult::kShutdown;
      telemetry_.shutdown_rejections->Increment();
      return ticket;
    }
    if (options_.admission_enabled &&
        !admission_.Admit(request.tenant, &ticket.retry_after_seconds)) {
      ticket.admit = AdmitResult::kThrottled;
      telemetry_.throttled->Increment();
      return ticket;
    }
    if (queue_.size() >= options_.max_queue_depth) {
      ticket.admit = AdmitResult::kQueueFull;
      telemetry_.queue_rejections->Increment();
      return ticket;
    }
    Work work;
    work.enqueue_ns = clock_->NowNanos();
    // The deadline starts at enqueue: a request that rots in the queue
    // burns its budget there and is served estimate-only the moment a
    // worker picks it up, instead of probing into an already-blown SLO.
    std::uint64_t budget_ns = request.deadline_ns != 0
                                  ? request.deadline_ns
                                  : options_.default_deadline_ns;
    if (budget_ns != 0) {
      work.deadline = core::Deadline::After(clock_, budget_ns);
    }
    work.request = std::move(request);
    ticket.response = work.promise.get_future();
    queue_.push_back(std::move(work));
    telemetry_.accepted->Increment();
  }
  work_available_.notify_one();
  return ticket;
}

bool MetasearchServer::RunOne() {
  Work work;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    work = std::move(queue_.front());
    queue_.pop_front();
  }
  Process(std::move(work));
  return true;
}

void MetasearchServer::WorkerLoop() {
  for (;;) {
    Work work;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(lock.native());
      if (queue_.empty()) {
        // stopping_ and nothing left: the queue is drained, not dropped.
        return;
      }
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    Process(std::move(work));
  }
}

void MetasearchServer::Process(Work work) {
  std::uint64_t start_ns = clock_->NowNanos();
  ServeResponse response;
  response.queue_seconds =
      static_cast<double>(start_ns - work.enqueue_ns) * 1e-9;
  telemetry_.queue_wait->Observe(response.queue_seconds);

  const ServeRequest& request = work.request;
  int k = request.k > 0 ? request.k : options_.default_k;
  double threshold =
      request.threshold > 0.0 ? request.threshold : options_.default_threshold;
  Result<core::SelectionReport> result =
      searcher_->Select(request.query, k, threshold, work.deadline);
  if (result.ok()) {
    response.report = std::move(result).ValueOrDie();
    response.degraded = response.report.degraded;
    (response.degraded ? telemetry_.completed_degraded
                       : telemetry_.completed_ok)
        ->Increment();
  } else {
    response.status = result.status();
    telemetry_.failed->Increment();
  }

  std::uint64_t end_ns = clock_->NowNanos();
  response.total_seconds =
      static_cast<double>(end_ns - work.enqueue_ns) * 1e-9;
  telemetry_.latency->Observe(response.total_seconds);
  work.promise.set_value(std::move(response));
}

void MetasearchServer::Shutdown() {
  {
    MutexLock lock(mutex_);
    if (stopping_ && workers_.empty()) {
      // A second Shutdown after the first finished; the inline drain
      // below would find an empty queue anyway, so just return.
      if (queue_.empty()) return;
    }
    accepting_ = false;
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // No workers (num_workers = 0, or they already exited): drain inline so
  // every accepted promise is fulfilled.
  while (RunOne()) {
  }
}

ServerStats MetasearchServer::stats() const {
  ServerStats stats;
  stats.accepted = telemetry_.accepted->Value();
  stats.throttled = telemetry_.throttled->Value();
  stats.queue_rejections = telemetry_.queue_rejections->Value();
  stats.shutdown_rejections = telemetry_.shutdown_rejections->Value();
  stats.completed_ok = telemetry_.completed_ok->Value();
  stats.completed_degraded = telemetry_.completed_degraded->Value();
  stats.failed = telemetry_.failed->Value();
  stats.queue_depth = queue_depth();
  return stats;
}

std::size_t MetasearchServer::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

}  // namespace serving
}  // namespace metaprobe
