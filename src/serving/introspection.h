// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_SERVING_INTROSPECTION_H_
#define METAPROBE_SERVING_INTROSPECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/metasearcher.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serving/metasearch_server.h"

namespace metaprobe {
namespace serving {

/// \brief The live introspection surface of a serving stack: binds
/// /metrics, /statusz, /tracez and /healthz onto an obs::HttpServer.
///
/// Everything is borrowed — the service only reads: registry expositions
/// for /metrics, counter/health/admission/SLO snapshots for /statusz, the
/// tracer's recent and slow rings for /tracez. Every component is optional
/// (null members simply drop their section), so the same service works for
/// a bare Metasearcher and for a full MetasearchServer deployment.
///
/// Endpoints:
///   /healthz — "ok\n" (liveness; reports 200 as long as the process
///     serves HTTP — backend sickness is /statusz's job).
///   /metrics — Prometheus text: the searcher's registry followed by the
///     server's (they share no family names).
///   /statusz — one JSON object: build info, uptime, serving counters +
///     queue depth, per-tenant admission table, SLO snapshots, and the
///     per-database health table.
///   /tracez  — JSON: slow-trace threshold plus "recent" and "slow" trace
///     summaries (id, query, duration, span count), newest last.
class IntrospectionService {
 public:
  struct Components {
    const core::Metasearcher* searcher = nullptr;
    const MetasearchServer* server = nullptr;
    const obs::QueryTracer* tracer = nullptr;
    const obs::DbHealthTracker* health = nullptr;
    std::vector<const obs::SloMonitor*> slos;
    /// Timebase for the uptime report; null = the real clock.
    const obs::MonotonicClock* clock = nullptr;
  };

  explicit IntrospectionService(Components components);

  /// \brief Registers the four endpoints. Call before HttpServer::Start;
  /// the service must outlive the HTTP server.
  void RegisterEndpoints(obs::HttpServer* http) const;

  // Exposed for tests and for embedding into other transports.
  std::string MetricsText() const;
  std::string StatuszJson() const;
  std::string TracezJson() const;

 private:
  Components components_;
  const obs::MonotonicClock* clock_;
  std::uint64_t start_ns_;
};

}  // namespace serving
}  // namespace metaprobe

#endif  // METAPROBE_SERVING_INTROSPECTION_H_
