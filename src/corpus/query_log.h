// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORPUS_QUERY_LOG_H_
#define METAPROBE_CORPUS_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/query.h"
#include "corpus/synthetic_corpus.h"

namespace metaprobe {
namespace corpus {

/// \brief Knobs of the synthetic web-query trace.
struct QueryLogOptions {
  /// Keyword counts to generate and how many unique queries of each; the
  /// paper's traces are dominated by 2- and 3-term queries (web queries
  /// average 2.2 terms).
  std::vector<int> term_counts = {2, 3};
  /// Probability that all keywords come from one latent subtopic, i.e. the
  /// query hits positively-correlated terms ("breast cancer").
  double same_subtopic_prob = 0.55;
  /// Probability that one keyword is replaced by a term from a different
  /// topic (yielding rare or zero co-occurrence).
  double cross_topic_prob = 0.18;
  /// Probability that one keyword is replaced by a background filler term.
  double filler_term_prob = 0.08;
  /// Zipf exponent over topic popularity in the trace.
  double topic_zipf_exponent = 0.8;
  std::uint64_t seed = 99;
  /// Give up after this many consecutive rejected candidates (duplicates /
  /// degenerate analyses) before reporting failure.
  int max_rejects = 200000;
};

/// \brief Generates deduplicated keyword-query traces against a
/// CorpusGenerator's topic language, substituting for the paper's
/// one-month Overture trace filtered to health-care vocabulary.
///
/// Query keywords are drawn from the *query domain* topics (a subset of the
/// generator's topics, e.g. only the health topics for the Section 6
/// testbed) with controlled subtopic correlation, so traces contain the
/// full spectrum the paper relies on: strongly correlated pairs, weakly
/// related pairs, off-topic and unanswerable queries.
class QueryLogGenerator {
 public:
  /// \param generator source of topic models (not owned; must outlive this)
  /// \param query_topics names of topics queries may draw keywords from
  QueryLogGenerator(const CorpusGenerator* generator,
                    std::vector<std::string> query_topics,
                    QueryLogOptions options);

  /// \brief Generates `per_term_count` unique queries for each configured
  /// term count (e.g. 1000 two-term + 1000 three-term).
  Result<std::vector<core::Query>> Generate(std::size_t per_term_count);

  /// \brief Generates two disjoint query sets in one pass (the paper's
  /// Q_train / Q_test discipline: test queries never seen in training).
  Result<std::pair<std::vector<core::Query>, std::vector<core::Query>>>
  GenerateSplit(std::size_t train_per_term_count,
                std::size_t test_per_term_count);

 private:
  /// Draws one candidate raw query with `num_terms` keywords.
  std::vector<std::string> DrawKeywords(int num_terms, stats::Rng* rng) const;

  const CorpusGenerator* generator_;
  std::vector<const TopicLanguageModel*> topics_;
  QueryLogOptions options_;
  stats::ZipfSampler topic_sampler_;
  stats::Rng rng_;
  // Keys of every query handed out, so repeated Generate calls stay
  // mutually disjoint.
  std::unordered_set<std::string> issued_keys_;
};

}  // namespace corpus
}  // namespace metaprobe

#endif  // METAPROBE_CORPUS_QUERY_LOG_H_
