#include "corpus/topic_model.h"

#include <cmath>
#include <unordered_set>

namespace metaprobe {
namespace corpus {

namespace {

TopicModelOptions Sanitize(TopicModelOptions options) {
  if (options.num_subtopics == 0) options.num_subtopics = 1;
  return options;
}

}  // namespace

TopicLanguageModel::TopicLanguageModel(TopicSpec spec,
                                       TopicModelOptions options)
    : spec_(std::move(spec)),
      options_(Sanitize(options)),
      subtopic_prior_(options_.num_subtopics, options_.subtopic_zipf_exponent),
      whole_topic_sampler_(spec_.seed_terms.size(), options_.zipf_exponent) {
  subtopic_ranks_.resize(options_.num_subtopics);
  for (std::size_t rank = 0; rank < spec_.seed_terms.size(); ++rank) {
    subtopic_ranks_[SubtopicOf(rank)].push_back(rank);
  }
  subtopic_samplers_.reserve(options_.num_subtopics);
  for (std::size_t s = 0; s < options_.num_subtopics; ++s) {
    std::vector<double> weights;
    weights.reserve(subtopic_ranks_[s].size());
    for (std::size_t rank : subtopic_ranks_[s]) {
      weights.push_back(
          1.0 / std::pow(static_cast<double>(rank + 1), options_.zipf_exponent));
    }
    subtopic_samplers_.emplace_back(std::move(weights));
  }
}

std::size_t TopicLanguageModel::SampleSubtopic(stats::Rng* rng) const {
  return subtopic_prior_.Sample(rng);
}

const std::string& TopicLanguageModel::SampleTerm(std::size_t subtopic,
                                                  stats::Rng* rng) const {
  subtopic %= options_.num_subtopics;
  if (!subtopic_ranks_[subtopic].empty() &&
      rng->Bernoulli(options_.subtopic_affinity)) {
    std::size_t within = subtopic_samplers_[subtopic].Sample(rng);
    return spec_.seed_terms[subtopic_ranks_[subtopic][within]];
  }
  return spec_.seed_terms[whole_topic_sampler_.Sample(rng)];
}

const std::string& TopicLanguageModel::SampleSubtopicTerm(
    std::size_t subtopic, stats::Rng* rng) const {
  subtopic %= options_.num_subtopics;
  if (subtopic_ranks_[subtopic].empty()) return SampleTopicTerm(rng);
  std::size_t within = subtopic_samplers_[subtopic].Sample(rng);
  return spec_.seed_terms[subtopic_ranks_[subtopic][within]];
}

const std::string& TopicLanguageModel::SampleTopicTerm(stats::Rng* rng) const {
  return spec_.seed_terms[whole_topic_sampler_.Sample(rng)];
}

std::vector<std::size_t> TopicLanguageModel::SubtopicTermRanks(
    std::size_t subtopic) const {
  subtopic %= options_.num_subtopics;
  return subtopic_ranks_[subtopic];
}

TopicLanguageModel TopicLanguageModel::WithAffinity(double affinity) const {
  TopicModelOptions options = options_;
  options.subtopic_affinity = affinity;
  return TopicLanguageModel(spec_, options);
}

namespace {

// Deterministic pronounceable pseudo-word from an index and an Rng stream.
std::string MakePseudoWord(stats::Rng* rng) {
  static constexpr const char* kOnsets[] = {
      "b", "br", "c", "cl", "d", "dr", "f", "fl", "g", "gr", "h",  "j",
      "k", "l",  "m", "n",  "p", "pl", "r", "s",  "st", "t", "tr", "v"};
  static constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ai",
                                            "ea", "io", "ou", "oa"};
  static constexpr const char* kCodas[] = {"", "n", "r", "s", "l", "m",
                                           "nd", "rt", "x", "ck"};
  std::size_t syllables = 2 + rng->UniformInt(std::uint64_t{2});  // 2-3
  std::string word;
  for (std::size_t s = 0; s < syllables; ++s) {
    word += kOnsets[rng->UniformInt(std::uint64_t{std::size(kOnsets)})];
    word += kVowels[rng->UniformInt(std::uint64_t{std::size(kVowels)})];
  }
  word += kCodas[rng->UniformInt(std::uint64_t{std::size(kCodas)})];
  return word;
}

}  // namespace

FillerVocabulary::FillerVocabulary(std::size_t size, double zipf_exponent,
                                   std::uint64_t seed)
    : sampler_(size == 0 ? 1 : size, zipf_exponent) {
  if (size == 0) size = 1;
  stats::Rng rng(seed);
  std::unordered_set<std::string> seen;
  terms_.reserve(size);
  while (terms_.size() < size) {
    std::string word = MakePseudoWord(&rng);
    if (seen.insert(word).second) terms_.push_back(std::move(word));
  }
}

const std::string& FillerVocabulary::SampleTerm(stats::Rng* rng) const {
  return terms_[sampler_.Sample(rng)];
}

}  // namespace corpus
}  // namespace metaprobe
