#include "corpus/query_log.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"

namespace metaprobe {
namespace corpus {

QueryLogGenerator::QueryLogGenerator(const CorpusGenerator* generator,
                                     std::vector<std::string> query_topics,
                                     QueryLogOptions options)
    : generator_(generator),
      options_(options),
      topic_sampler_(std::max<std::size_t>(query_topics.size(), 1),
                     options.topic_zipf_exponent),
      rng_(options.seed) {
  for (const std::string& name : query_topics) {
    const TopicLanguageModel* model = generator_->Model(name);
    if (model != nullptr) topics_.push_back(model);
  }
}

std::vector<std::string> QueryLogGenerator::DrawKeywords(
    int num_terms, stats::Rng* rng) const {
  std::vector<std::string> words;
  const TopicLanguageModel* model = topics_[topic_sampler_.Sample(rng)];
  bool correlated = rng->Bernoulli(options_.same_subtopic_prob);
  std::size_t subtopic = model->SampleSubtopic(rng);
  for (int i = 0; i < num_terms; ++i) {
    const std::string& word = correlated
                                  ? model->SampleSubtopicTerm(subtopic, rng)
                                  : model->SampleTopicTerm(rng);
    words.push_back(word);
  }
  // Occasionally swap one keyword for an out-of-topic or background term,
  // producing the weakly-related and unanswerable queries real traces have.
  if (topics_.size() > 1 && rng->Bernoulli(options_.cross_topic_prob)) {
    std::size_t other_index = topic_sampler_.Sample(rng);
    const TopicLanguageModel* other = topics_[other_index];
    if (other != model) {
      words[rng->UniformInt(words.size())] = other->SampleTopicTerm(rng);
    }
  }
  if (rng->Bernoulli(options_.filler_term_prob)) {
    words[rng->UniformInt(words.size())] =
        generator_->filler().SampleTerm(rng);
  }
  return words;
}

Result<std::vector<core::Query>> QueryLogGenerator::Generate(
    std::size_t per_term_count) {
  if (topics_.empty()) {
    return Status::FailedPrecondition("no query topics resolved");
  }
  std::vector<core::Query> queries;
  for (int num_terms : options_.term_counts) {
    if (num_terms < 1) {
      return Status::InvalidArgument("term count must be >= 1, got ", num_terms);
    }
    std::size_t produced = 0;
    int rejects = 0;
    while (produced < per_term_count) {
      if (rejects > options_.max_rejects) {
        return Status::Internal(
            "query generator exhausted after ", rejects,
            " rejects; the topic vocabulary cannot supply ", per_term_count,
            " unique ", num_terms, "-term queries");
      }
      std::vector<std::string> words = DrawKeywords(num_terms, &rng_);
      core::Query query =
          core::ParseQuery(generator_->analyzer(), JoinStrings(words, " "));
      // Require exactly num_terms distinct analyzed keywords: duplicated
      // stems or stopword-collapsed keywords would change the query type.
      std::vector<std::string> sorted = query.terms;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      if (static_cast<int>(sorted.size()) != num_terms) {
        ++rejects;
        continue;
      }
      std::string key = core::QueryKey(query);
      if (!issued_keys_.insert(key).second) {
        ++rejects;
        continue;
      }
      queries.push_back(std::move(query));
      ++produced;
      rejects = 0;
    }
  }
  return queries;
}

Result<std::pair<std::vector<core::Query>, std::vector<core::Query>>>
QueryLogGenerator::GenerateSplit(std::size_t train_per_term_count,
                                 std::size_t test_per_term_count) {
  ASSIGN_OR_RETURN(std::vector<core::Query> train,
                   Generate(train_per_term_count));
  ASSIGN_OR_RETURN(std::vector<core::Query> test,
                   Generate(test_per_term_count));
  return std::make_pair(std::move(train), std::move(test));
}

}  // namespace corpus
}  // namespace metaprobe
