// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORPUS_TOPIC_MODEL_H_
#define METAPROBE_CORPUS_TOPIC_MODEL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/domain.h"
#include "stats/random.h"

namespace metaprobe {
namespace corpus {

/// \brief Knobs of the topical generative model.
struct TopicModelOptions {
  /// Latent subtopics per topic; terms are round-robin partitioned by rank.
  std::size_t num_subtopics = 4;
  /// Probability that a topical token is drawn from the document's own
  /// subtopic pool (the source of positive term co-occurrence; the
  /// complement draws from the whole topic, making cross-subtopic pairs
  /// rarer than independence predicts).
  double subtopic_affinity = 0.8;
  /// Zipf exponent over seed terms by rank.
  double zipf_exponent = 0.9;
  /// Zipf exponent over subtopic popularity.
  double subtopic_zipf_exponent = 0.7;
};

/// \brief Generative unigram model of one topic with latent subtopics.
///
/// Every document generated from a topic first samples a latent subtopic;
/// tokens then prefer that subtopic's term pool. Terms sharing a subtopic
/// therefore co-occur far more often than the term-independence assumption
/// predicts (estimator underestimates), while terms of different subtopics
/// co-occur less often (estimator overestimates). This reproduces exactly
/// the non-uniform estimation errors the paper measures on real hidden-web
/// databases (Section 2.3).
class TopicLanguageModel {
 public:
  TopicLanguageModel(TopicSpec spec, TopicModelOptions options);

  const std::string& name() const { return spec_.name; }
  const std::vector<std::string>& seed_terms() const {
    return spec_.seed_terms;
  }
  std::size_t num_subtopics() const { return options_.num_subtopics; }

  /// \brief Subtopic that `rank`-th seed term belongs to.
  std::size_t SubtopicOf(std::size_t rank) const {
    return rank % options_.num_subtopics;
  }

  /// \brief Draws a document-level latent subtopic.
  std::size_t SampleSubtopic(stats::Rng* rng) const;

  /// \brief Draws one token for a document with the given latent subtopic.
  const std::string& SampleTerm(std::size_t subtopic, stats::Rng* rng) const;

  /// \brief Draws a term strictly from `subtopic`'s pool (query generation
  /// uses this to form positively-correlated keyword pairs).
  const std::string& SampleSubtopicTerm(std::size_t subtopic,
                                        stats::Rng* rng) const;

  /// \brief Draws a term from the whole topic, ignoring subtopics.
  const std::string& SampleTopicTerm(stats::Rng* rng) const;

  /// \brief Seed-term ranks belonging to `subtopic`, most frequent first.
  std::vector<std::size_t> SubtopicTermRanks(std::size_t subtopic) const;

  /// \brief A copy of this model with a different subtopic affinity.
  /// Databases override affinity to get *database-specific* co-occurrence
  /// strength — the paper's estimator errs non-uniformly precisely because
  /// real databases differ this way.
  TopicLanguageModel WithAffinity(double affinity) const;

  const TopicModelOptions& options() const { return options_; }

 private:
  TopicSpec spec_;
  TopicModelOptions options_;
  stats::ZipfSampler subtopic_prior_;
  stats::ZipfSampler whole_topic_sampler_;
  // One sampler per subtopic over that subtopic's term ranks.
  std::vector<stats::WeightedSampler> subtopic_samplers_;
  std::vector<std::vector<std::size_t>> subtopic_ranks_;
};

/// \brief Shared non-topical background vocabulary.
///
/// Deterministically synthesizes `size` pronounceable pseudo-words
/// ("background English") with Zipf frequencies. Filler tokens pad
/// documents to realistic lengths and supply the off-topic query terms that
/// produce zero-match probes.
class FillerVocabulary {
 public:
  FillerVocabulary(std::size_t size, double zipf_exponent, std::uint64_t seed);

  const std::string& SampleTerm(stats::Rng* rng) const;
  const std::vector<std::string>& terms() const { return terms_; }
  std::size_t size() const { return terms_.size(); }

 private:
  std::vector<std::string> terms_;
  stats::ZipfSampler sampler_;
};

}  // namespace corpus
}  // namespace metaprobe

#endif  // METAPROBE_CORPUS_TOPIC_MODEL_H_
