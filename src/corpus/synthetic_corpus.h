// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORPUS_SYNTHETIC_CORPUS_H_
#define METAPROBE_CORPUS_SYNTHETIC_CORPUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "corpus/domain.h"
#include "corpus/topic_model.h"
#include "index/document_store.h"
#include "index/inverted_index.h"
#include "stats/random.h"
#include "text/analyzer.h"

namespace metaprobe {
namespace corpus {

/// \brief One component of a database's topical blend.
struct TopicMixture {
  std::string topic;
  double weight = 1.0;
};

/// \brief Recipe for one synthetic hidden-web database.
struct DatabaseSpec {
  std::string name;
  std::uint32_t num_docs = 1000;
  /// Topics this database covers, with relative weights. Each document is
  /// generated from one topic drawn from this mixture.
  std::vector<TopicMixture> mixture;
  /// Fraction of each document's tokens drawn from its topic model; the
  /// remainder comes from the shared filler vocabulary.
  double topical_fraction = 0.55;
  /// Database-specific subtopic affinity (co-occurrence strength); < 0
  /// keeps the generator's default. Varying this across databases is what
  /// makes the term-independence estimator err non-uniformly, the central
  /// phenomenon of the paper.
  double subtopic_affinity = -1.0;
  /// Rotates which subtopics are popular in this database: document
  /// subtopics are offset by this amount modulo the subtopic count, so two
  /// databases on the same topic emphasize different co-occurring term
  /// clusters.
  std::size_t subtopic_rotation = 0;
  /// Probability that a document is *focused* (all topical tokens from one
  /// topic drawn per document) rather than *mixed* (every topical token
  /// draws its topic from the database mixture independently). Focused
  /// documents create term co-occurrence above independence; mixed ones do
  /// not, so this knob sets how strongly the database violates the
  /// term-independence assumption.
  double doc_focus = 1.0;
  /// Document length ~ lognormal(mu, sigma), clamped to [min, max].
  double doc_length_mu = 4.25;     // median ~70 tokens
  double doc_length_sigma = 0.45;
  std::uint32_t min_doc_length = 20;
  std::uint32_t max_doc_length = 400;
  /// Keep raw document text for fusion/snippets (memory cost).
  bool store_documents = false;
  std::uint64_t seed = 1;
};

/// \brief A generated database: its searchable index plus optional raw text.
struct GeneratedDatabase {
  std::string name;
  index::InvertedIndex index;
  std::shared_ptr<index::DocumentStore> documents;  // null unless requested
};

/// \brief Generates synthetic topical databases.
///
/// This is the substitute for the paper's real CompletePlanet / newsgroup
/// corpora (see DESIGN.md): topic mixtures with latent subtopics produce
/// databases whose term co-occurrence deviates from independence in
/// database-specific ways, which is the behaviour the probabilistic
/// relevancy model is designed to capture.
///
/// One generator instance owns the topic models and the shared filler
/// vocabulary, so several databases and the query log are generated against
/// a consistent language. Generation is deterministic given the specs'
/// seeds.
class CorpusGenerator {
 public:
  struct Options {
    TopicModelOptions topic_model;
    std::size_t filler_vocab_size = 3000;
    double filler_zipf_exponent = 1.05;
    std::uint64_t filler_seed = 7777;
  };

  CorpusGenerator(std::vector<TopicSpec> topics, Options options,
                  const text::Analyzer* analyzer);

  /// \brief Generates a database per `spec`. Fails on an unknown topic name
  /// or an empty mixture.
  Result<GeneratedDatabase> Generate(const DatabaseSpec& spec) const;

  /// \brief Topic model registered for `name`; nullptr when unknown.
  const TopicLanguageModel* Model(const std::string& name) const;

  const std::vector<TopicLanguageModel>& models() const { return models_; }
  const FillerVocabulary& filler() const { return filler_; }
  const text::Analyzer& analyzer() const { return *analyzer_; }

  /// \brief Analyzes one generated token with memoization (the hot path of
  /// generation; stemming dominates otherwise). Returns "" for stopwords.
  const std::string& AnalyzeCached(const std::string& token) const;

 private:
  std::vector<TopicLanguageModel> models_;
  std::unordered_map<std::string, std::size_t> model_by_name_;
  FillerVocabulary filler_;
  const text::Analyzer* analyzer_;
  mutable std::unordered_map<std::string, std::string> analyze_cache_;
};

}  // namespace corpus
}  // namespace metaprobe

#endif  // METAPROBE_CORPUS_SYNTHETIC_CORPUS_H_
