#include "corpus/synthetic_corpus.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace metaprobe {
namespace corpus {

CorpusGenerator::CorpusGenerator(std::vector<TopicSpec> topics,
                                 Options options,
                                 const text::Analyzer* analyzer)
    : filler_(options.filler_vocab_size, options.filler_zipf_exponent,
              options.filler_seed),
      analyzer_(analyzer) {
  models_.reserve(topics.size());
  for (TopicSpec& spec : topics) {
    model_by_name_[spec.name] = models_.size();
    models_.emplace_back(std::move(spec), options.topic_model);
  }
}

const TopicLanguageModel* CorpusGenerator::Model(
    const std::string& name) const {
  auto it = model_by_name_.find(name);
  return it == model_by_name_.end() ? nullptr : &models_[it->second];
}

const std::string& CorpusGenerator::AnalyzeCached(
    const std::string& token) const {
  auto it = analyze_cache_.find(token);
  if (it != analyze_cache_.end()) return it->second;
  std::string analyzed = analyzer_->AnalyzeTerm(token);
  return analyze_cache_.emplace(token, std::move(analyzed)).first->second;
}

Result<GeneratedDatabase> CorpusGenerator::Generate(
    const DatabaseSpec& spec) const {
  if (spec.mixture.empty()) {
    return Status::InvalidArgument("database '", spec.name,
                                   "' has an empty topic mixture");
  }
  if (spec.num_docs == 0) {
    return Status::InvalidArgument("database '", spec.name, "' has no docs");
  }
  // Database-specific affinity overrides get private model copies.
  std::vector<TopicLanguageModel> local_models;
  if (spec.subtopic_affinity >= 0.0) {
    local_models.reserve(spec.mixture.size());
  }
  std::vector<const TopicLanguageModel*> mixture_models;
  std::vector<double> mixture_weights;
  for (const TopicMixture& component : spec.mixture) {
    const TopicLanguageModel* model = Model(component.topic);
    if (model == nullptr) {
      return Status::NotFound("unknown topic '", component.topic,
                              "' in database '", spec.name, "'");
    }
    if (spec.subtopic_affinity >= 0.0) {
      local_models.push_back(model->WithAffinity(spec.subtopic_affinity));
      model = &local_models.back();
    }
    mixture_models.push_back(model);
    mixture_weights.push_back(component.weight);
  }
  stats::WeightedSampler topic_sampler(std::move(mixture_weights));
  stats::Rng rng(spec.seed);

  GeneratedDatabase out;
  out.name = spec.name;
  if (spec.store_documents) {
    out.documents = std::make_shared<index::DocumentStore>();
  }

  index::InvertedIndex::Builder builder;
  std::vector<std::string> doc_terms;
  std::string raw_text;
  for (std::uint32_t d = 0; d < spec.num_docs; ++d) {
    const TopicLanguageModel* doc_model =
        mixture_models[topic_sampler.Sample(&rng)];
    std::size_t subtopic =
        (doc_model->SampleSubtopic(&rng) + spec.subtopic_rotation) %
        doc_model->num_subtopics();
    const bool focused = rng.Bernoulli(spec.doc_focus);
    double len = rng.LogNormal(spec.doc_length_mu, spec.doc_length_sigma);
    std::uint32_t length = static_cast<std::uint32_t>(std::lround(
        std::clamp(len, static_cast<double>(spec.min_doc_length),
                   static_cast<double>(spec.max_doc_length))));

    doc_terms.clear();
    if (spec.store_documents) raw_text.clear();
    for (std::uint32_t t = 0; t < length; ++t) {
      const std::string* token = nullptr;
      if (rng.Bernoulli(spec.topical_fraction)) {
        if (focused) {
          token = &doc_model->SampleTerm(subtopic, &rng);
        } else {
          // Mixed document: each topical token draws its topic afresh, so
          // terms of different topics co-occur at independence rates.
          const TopicLanguageModel* token_model =
              mixture_models[topic_sampler.Sample(&rng)];
          token = &token_model->SampleTopicTerm(&rng);
        }
      } else {
        token = &filler_.SampleTerm(&rng);
      }
      if (spec.store_documents) {
        if (!raw_text.empty()) raw_text += ' ';
        raw_text += *token;
      }
      const std::string& analyzed = AnalyzeCached(*token);
      if (!analyzed.empty()) doc_terms.push_back(analyzed);
    }
    index::DocId id = builder.AddDocument(doc_terms);
    if (spec.store_documents) {
      index::Document doc;
      doc.title = spec.name + " #" + std::to_string(id) + " (" +
                  doc_model->name() + ")";
      doc.body = raw_text;
      index::DocId stored = out.documents->Add(std::move(doc));
      if (stored != id) {
        return Status::Internal("document store out of sync with index");
      }
    }
  }
  ASSIGN_OR_RETURN(out.index, std::move(builder).Build());
  return out;
}

}  // namespace corpus
}  // namespace metaprobe
