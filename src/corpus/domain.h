// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORPUS_DOMAIN_H_
#define METAPROBE_CORPUS_DOMAIN_H_

#include <string>
#include <vector>

namespace metaprobe {
namespace corpus {

/// \brief A thematic vocabulary used to generate topical documents.
///
/// `seed_terms` are ordered by intended frequency rank (rank 0 most common
/// within the topic); the topic language model assigns them Zipf weights in
/// this order and partitions them into latent subtopics to create realistic
/// term co-occurrence.
struct TopicSpec {
  std::string name;
  std::vector<std::string> seed_terms;
};

/// \brief Health & medicine topics (oncology, cardiology, neurology,
/// infectious disease, pediatrics, nutrition, pharmacology, mental health).
/// These model the paper's CompletePlanet "Health & Medicine" databases
/// (PubMed Central, MedWeb, NIH, ...).
std::vector<TopicSpec> HealthTopics();

/// \brief Broader-science topics (physics, biology, chemistry, astronomy),
/// modelling the Science/Nature-style databases of the testbed.
std::vector<TopicSpec> ScienceTopics();

/// \brief Daily-news topics (politics, economy, sports, weather) with
/// health-adjacent coverage, modelling the CNN/NYTimes-style databases.
std::vector<TopicSpec> NewsTopics();

/// \brief Newsgroup-style hobbyist topics (nascar, beatles, classical
/// recordings, springsteen, autos, photography, ...), modelling the 20 UCLA
/// news-server groups of the sampling-size study (Section 4.2).
std::vector<TopicSpec> NewsgroupTopics();

/// \brief Looks up a topic by name across all domains; returns nullptr
/// when absent.
const TopicSpec* FindTopic(const std::vector<TopicSpec>& topics,
                           const std::string& name);

}  // namespace corpus
}  // namespace metaprobe

#endif  // METAPROBE_CORPUS_DOMAIN_H_
