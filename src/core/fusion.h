// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_FUSION_H_
#define METAPROBE_CORE_FUSION_H_

#include <string>
#include <vector>

#include "core/hidden_web_database.h"

namespace metaprobe {
namespace core {

/// \brief One merged result with its provenance.
struct FusedHit {
  std::size_t database = 0;     ///< Index of the source database.
  std::string database_name;
  index::DocId doc = 0;
  double score = 0.0;           ///< Merged score used for the final order.
  std::string title;
};

/// \brief How per-database result lists are merged (the paper's task 2,
/// result fusion; Section 1 Figure 1 arrows labelled 2).
enum class FusionStrategy {
  /// Normalize each database's scores by its own maximum, optionally weight
  /// by the database's (expected) relevancy, and sort globally.
  kNormalizedScore,
  /// Interleave the per-database rankings round-robin, preserving each
  /// list's internal order — robust when scores are incomparable.
  kRoundRobin,
};

/// \brief Options for result fusion.
struct FusionOptions {
  FusionStrategy strategy = FusionStrategy::kNormalizedScore;
  /// Per-database weights (e.g. expected relevancies); empty = uniform.
  /// Only used by kNormalizedScore.
  std::vector<double> database_weights;
};

/// \brief Merges per-database hit lists into one ranked list of up to
/// `max_results`. `lists[i]` must correspond to `names[i]` (same index
/// space as options.database_weights when provided).
std::vector<FusedHit> FuseResults(
    const std::vector<std::vector<SearchHit>>& lists,
    const std::vector<std::string>& names, std::size_t max_results,
    const FusionOptions& options = {});

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_FUSION_H_
