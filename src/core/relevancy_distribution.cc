#include "core/relevancy_distribution.h"

#include <algorithm>

namespace metaprobe {
namespace core {

RelevancyDistribution RelevancyDistribution::FromEstimate(
    double r_hat, const ErrorDistribution& ed) {
  if (ed.empty()) {
    RelevancyDistribution rd;
    rd.dist = stats::DiscreteDistribution::Impulse(std::max(r_hat, 0.0));
    rd.estimate = r_hat;
    return rd;
  }
  return FromErrorDist(r_hat, ed.ToDistribution());
}

RelevancyDistribution RelevancyDistribution::FromErrorDist(
    double r_hat, const stats::DiscreteDistribution& errors) {
  r_hat = std::max(r_hat, 0.0);
  const double denom = std::max(r_hat, 1.0);
  RelevancyDistribution rd;
  rd.estimate = r_hat;
  rd.dist = errors.MapValues(
      [&](double err) { return std::max(0.0, r_hat + err * denom); });
  return rd;
}

RelevancyDistribution RelevancyDistribution::Probed(double actual) {
  RelevancyDistribution rd;
  rd.dist = stats::DiscreteDistribution::Impulse(std::max(actual, 0.0));
  rd.probed = true;
  rd.estimate = actual;
  return rd;
}

}  // namespace core
}  // namespace metaprobe
