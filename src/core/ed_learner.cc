#include "core/ed_learner.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/macros.h"

namespace metaprobe {
namespace core {

EdTable::EdTable(std::size_t num_databases, std::uint32_t num_types,
                 std::vector<double> bin_edges)
    : num_databases_(num_databases), num_types_(num_types) {
  cells_.reserve(num_databases * num_types);
  for (std::size_t i = 0; i < num_databases * num_types; ++i) {
    cells_.push_back(
        ErrorDistribution::MakeWithEdges(bin_edges).ValueOrDie());
  }
}

const ErrorDistribution& EdTable::Get(std::size_t db, QueryTypeId type) const {
  METAPROBE_DCHECK(db < num_databases_ && type < num_types_,
                   "EdTable index out of range");
  return cells_[db * num_types_ + type];
}

ErrorDistribution* EdTable::GetMutable(std::size_t db, QueryTypeId type) {
  METAPROBE_DCHECK(db < num_databases_ && type < num_types_,
                   "EdTable index out of range");
  return &cells_[db * num_types_ + type];
}

Status EdTable::Set(std::size_t db, QueryTypeId type, ErrorDistribution ed) {
  if (db >= num_databases_ || type >= num_types_) {
    return Status::OutOfRange("EdTable::Set(", db, ", ", type, ")");
  }
  cells_[db * num_types_ + type] = std::move(ed);
  return Status::OK();
}

std::size_t EdTable::total_samples() const {
  std::size_t total = 0;
  for (const ErrorDistribution& ed : cells_) total += ed.sample_count();
  return total;
}

EdLearner::EdLearner(const RelevancyEstimator* estimator,
                     const QueryTypeClassifier* classifier,
                     EdLearnerOptions options)
    : estimator_(estimator),
      classifier_(classifier),
      options_(std::move(options)) {}

Result<EdTable> EdLearner::Learn(
    const std::vector<const HiddenWebDatabase*>& databases,
    const std::vector<const StatSummary*>& summaries,
    const std::vector<Query>& training_queries) const {
  if (databases.size() != summaries.size()) {
    return Status::InvalidArgument("got ", databases.size(), " databases but ",
                                   summaries.size(), " summaries");
  }
  if (databases.empty()) {
    return Status::InvalidArgument("no databases to learn EDs for");
  }
  EdTable table(databases.size(), classifier_->num_types(),
                options_.bin_edges);

  // One database's sampling never touches another's table row, so the
  // outer loop parallelizes with bit-identical results.
  auto learn_database = [&](std::size_t db) -> Status {
    if (options_.probe_batch_size <= 1) {
      // Legacy one-probe-at-a-time sweep.
      for (const Query& query : training_queries) {
        if (query.empty()) continue;
        double estimate = estimator_->Estimate(*summaries[db], query);
        QueryTypeId type = classifier_->Classify(query, estimate);
        ErrorDistribution* ed = table.GetMutable(db, type);
        if (options_.max_samples_per_type > 0 &&
            ed->sample_count() >= options_.max_samples_per_type) {
          continue;
        }
        ASSIGN_OR_RETURN(double actual,
                         ProbeRelevancy(*databases[db], query,
                                        options_.definition));
        ed->AddSample(actual, estimate);
      }
      return Status::OK();
    }
    // Batched sweep. Estimation and classification read only the summary,
    // never the database, so the whole trace can be planned up front: the
    // per-type caps are simulated on counters (AddSample grows a cell by
    // exactly one), leaving precisely the probes the sequential sweep
    // would issue. Those then go out in ProbeBatch chunks, and samples are
    // added in trace order — the resulting table is identical.
    struct PlannedProbe {
      const Query* query;
      QueryTypeId type;
      double estimate;
    };
    std::vector<PlannedProbe> planned;
    std::vector<std::size_t> simulated_count(classifier_->num_types());
    for (QueryTypeId t = 0; t < classifier_->num_types(); ++t) {
      simulated_count[t] = table.Get(db, t).sample_count();
    }
    for (const Query& query : training_queries) {
      if (query.empty()) continue;
      double estimate = estimator_->Estimate(*summaries[db], query);
      QueryTypeId type = classifier_->Classify(query, estimate);
      if (options_.max_samples_per_type > 0 &&
          simulated_count[type] >= options_.max_samples_per_type) {
        continue;
      }
      ++simulated_count[type];
      planned.push_back({&query, type, estimate});
    }
    std::vector<const Query*> chunk;
    for (std::size_t begin = 0; begin < planned.size();
         begin += options_.probe_batch_size) {
      const std::size_t end =
          std::min(planned.size(), begin + options_.probe_batch_size);
      chunk.clear();
      for (std::size_t i = begin; i < end; ++i) chunk.push_back(planned[i].query);
      ASSIGN_OR_RETURN(std::vector<double> actuals,
                       databases[db]->ProbeBatch(chunk, options_.definition));
      for (std::size_t i = begin; i < end; ++i) {
        table.GetMutable(db, planned[i].type)
            ->AddSample(actuals[i - begin], planned[i].estimate);
      }
    }
    return Status::OK();
  };

  unsigned num_threads = options_.num_threads;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min<unsigned>(
      num_threads, static_cast<unsigned>(databases.size()));

  if (num_threads <= 1) {
    for (std::size_t db = 0; db < databases.size(); ++db) {
      RETURN_NOT_OK(learn_database(db));
    }
    return table;
  }

  std::vector<Status> statuses(databases.size());
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  std::atomic<std::size_t> next_db{0};
  for (unsigned w = 0; w < num_threads; ++w) {
    workers.emplace_back([&]() {
      for (;;) {
        std::size_t db = next_db.fetch_add(1, std::memory_order_relaxed);
        if (db >= databases.size()) return;
        statuses[db] = learn_database(db);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const Status& status : statuses) RETURN_NOT_OK(status);
  return table;
}

}  // namespace core
}  // namespace metaprobe
