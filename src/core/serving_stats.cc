#include "core/serving_stats.h"

#include <algorithm>
#include <cmath>

namespace metaprobe {
namespace core {

RdCache::RdCache(double buckets_per_decade)
    : buckets_per_decade_(std::max(buckets_per_decade, 1.0)) {}

void RdCache::Reset(std::size_t num_databases, std::uint32_t num_types) {
  (void)num_databases;  // sizing hint only; the maps grow on demand
  // Shards are cleared one at a time; callers that need the clear to be
  // atomic against readers (Train) swap in a whole new cache instead.
  for (Shard& shard : shards_) {
    WriterMutexLock lock(shard.mutex);
    shard.entries.clear();
  }
  num_types_ = num_types;
}

void RdCache::SetCounters(obs::Counter* hits, obs::Counter* misses) {
  if (hits != nullptr) hits_ = hits;
  if (misses != nullptr) misses_ = misses;
}

namespace {

// Log-grid bucket of a non-negative estimate. Estimates below 1 share one
// bucket (the RD derivation unit-floors the denominator there anyway);
// bucket b covers one buckets_per_decade-th of a decade.
int BucketIndex(double r_hat, double buckets_per_decade) {
  if (!(r_hat > 1.0)) return -1;
  return static_cast<int>(std::floor(std::log10(r_hat) * buckets_per_decade));
}

}  // namespace

double RdCache::Representative(double r_hat) const {
  int bucket = BucketIndex(r_hat, buckets_per_decade_);
  if (bucket < 0) return r_hat;  // sub-unit estimates pass through exactly
  // Geometric midpoint of the bucket.
  return std::pow(10.0, (bucket + 0.5) / buckets_per_decade_);
}

std::uint64_t RdCache::KeyOf(std::size_t db, QueryTypeId type,
                             double r_hat) const {
  int bucket = BucketIndex(r_hat, buckets_per_decade_);
  // Estimates are document counts, so buckets fit comfortably in 16 bits
  // even at web scale (10^9 docs -> bucket ~180 at 20/decade).
  std::uint64_t bucket_code =
      static_cast<std::uint64_t>(std::clamp(bucket + 2, 0, 0xFFFF));
  std::uint64_t cell = static_cast<std::uint64_t>(db) * num_types_ + type;
  return (cell << 16) | bucket_code;
}

RelevancyDistribution RdCache::GetOrDerive(
    std::size_t db, QueryTypeId type, double r_hat,
    const std::function<RelevancyDistribution(double)>& derive) {
  // Sub-unit estimates are not quantized, so caching them would key
  // distinct RDs to one bucket; derive those directly.
  if (BucketIndex(r_hat, buckets_per_decade_) < 0) {
    misses_->Increment();
    return derive(r_hat);
  }
  std::uint64_t key = KeyOf(db, type, r_hat);
  Shard& shard = shards_[ShardOf(key)];
  {
    SharedMutexLock lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      hits_->Increment();
      return it->second;
    }
  }
  misses_->Increment();
  RelevancyDistribution rd = derive(Representative(r_hat));
  {
    WriterMutexLock lock(shard.mutex);
    shard.entries.emplace(key, rd);  // a racing inserter won: keep the original
  }
  return rd;
}

std::uint64_t RdCache::entries() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    SharedMutexLock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace core
}  // namespace metaprobe
