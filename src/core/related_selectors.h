// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_RELATED_SELECTORS_H_
#define METAPROBE_CORE_RELATED_SELECTORS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "core/summary.h"

namespace metaprobe {
namespace core {

/// \brief The CORI database-ranking function (Callan, Lu & Croft, SIGIR'95)
/// — the strongest classic summary-based selector and the standard
/// comparator in the metasearch literature contemporary with the paper.
///
/// Scores database db for query q as the mean belief over keywords:
///
///   T = df / (df + 50 + 150 * cw / mean_cw)
///   I = log((C + 0.5) / cf) / log(C + 1.0)
///   belief(t, db) = d_b + (1 - d_b) * T * I,   d_b = 0.4
///
/// where C is the number of mediated databases, cf the number of databases
/// whose summary contains t, and cw the database's size (document count as
/// the standard proxy when collection word counts are unavailable).
///
/// Unlike the relevancy estimators, CORI needs *cross-database* statistics
/// (cf, mean_cw), so it is constructed over the full summary set.
class CoriSelector {
 public:
  /// \param summaries one summary per mediated database (not owned; must
  ///   outlive the selector).
  explicit CoriSelector(std::vector<const StatSummary*> summaries);

  /// \brief CORI belief score per database, aligned with the constructor's
  /// summary order. Rank descending to select.
  std::vector<double> Score(const Query& query) const;

  /// \brief Number of databases whose summary contains `term`.
  std::uint32_t CollectionFrequency(std::string_view term) const;

  std::size_t num_databases() const { return summaries_.size(); }

 private:
  std::vector<const StatSummary*> summaries_;
  double mean_cw_ = 1.0;
  // cf is computed lazily per term and memoized: the vocabulary union is
  // large and queries touch a tiny fraction of it.
  mutable std::unordered_map<std::string, std::uint32_t> cf_cache_;
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_RELATED_SELECTORS_H_
