#include "core/relevancy_definition.h"

#include "common/macros.h"

namespace metaprobe {
namespace core {

const char* RelevancyDefinitionName(RelevancyDefinition definition) {
  switch (definition) {
    case RelevancyDefinition::kDocumentFrequency:
      return "document-frequency";
    case RelevancyDefinition::kDocumentSimilarity:
      return "document-similarity";
  }
  return "?";
}

Result<double> ProbeRelevancy(const HiddenWebDatabase& database,
                              const Query& query,
                              RelevancyDefinition definition) {
  switch (definition) {
    case RelevancyDefinition::kDocumentFrequency: {
      ASSIGN_OR_RETURN(std::uint64_t count, database.CountMatches(query));
      return static_cast<double>(count);
    }
    case RelevancyDefinition::kDocumentSimilarity: {
      ASSIGN_OR_RETURN(std::vector<SearchHit> hits, database.Search(query, 1));
      return hits.empty() ? 0.0 : hits.front().score;
    }
  }
  return Status::InvalidArgument("unknown relevancy definition");
}

}  // namespace core
}  // namespace metaprobe
