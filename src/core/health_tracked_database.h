// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_HEALTH_TRACKED_DATABASE_H_
#define METAPROBE_CORE_HEALTH_TRACKED_DATABASE_H_

#include <memory>

#include "core/hidden_web_database.h"
#include "obs/clock.h"
#include "obs/health.h"

namespace metaprobe {
namespace core {

/// \brief Telemetry decorator: records every operation against the wrapped
/// database — CountMatches, Search, and fused ProbeBatch alike — into a
/// DbHealthTracker.
///
/// The Metasearcher's serving loop already records its own probes (it wraps
/// the APro probe oracle directly, see SetHealthTracker); this decorator
/// covers everything that bypasses that loop: training sweeps, ProbeBatch
/// golden-standard builds, and direct Search fetches after selection. Pick
/// ONE layer per backend — wrapping a database with this decorator *and*
/// installing the same tracker on the owning Metasearcher records every
/// serving probe twice. A batch of n queries records n outcomes (the batch
/// latency is attributed per query, evenly), keeping windowed probe counts
/// comparable between the batched and per-probe paths.
///
/// Decoration order with FlakyDatabase matters: wrap the flaky layer
/// (tracker outermost) so injected failures are visible as errors, which is
/// exactly what robustness tests assert.
class HealthTrackedDatabase : public HiddenWebDatabase {
 public:
  /// \param inner the real database (shared; not modified)
  /// \param tracker borrowed sink; must outlive this decorator
  /// \param db the database's index inside the tracker
  HealthTrackedDatabase(std::shared_ptr<HiddenWebDatabase> inner,
                        obs::DbHealthTracker* tracker, std::size_t db);

  const std::string& name() const override { return inner_->name(); }
  std::uint32_t size() const override { return inner_->size(); }

  Result<std::uint64_t> CountMatches(const Query& query) const override;
  Result<std::vector<SearchHit>> Search(const Query& query,
                                        std::size_t k) const override;
  using HiddenWebDatabase::ProbeBatch;
  Result<std::vector<double>> ProbeBatch(
      const std::vector<const Query*>& queries, RelevancyDefinition definition,
      const Deadline& deadline) const override;
  std::uint64_t queries_served() const override {
    return inner_->queries_served();
  }
  StorageStats GetStorageStats() const override {
    return inner_->GetStorageStats();
  }

  const std::shared_ptr<HiddenWebDatabase>& inner() const { return inner_; }

 private:
  /// Classifies a finished operation and records `count` outcomes of
  /// `total_seconds` split evenly across them.
  void Record(const Status& status, double total_seconds,
              std::size_t count) const;

  std::shared_ptr<HiddenWebDatabase> inner_;
  obs::DbHealthTracker* tracker_;
  std::size_t db_;
  const obs::MonotonicClock* clock_;
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_HEALTH_TRACKED_DATABASE_H_
