// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_HIDDEN_WEB_DATABASE_H_
#define METAPROBE_CORE_HIDDEN_WEB_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/deadline.h"
#include "core/query.h"
#include "index/document_store.h"
#include "index/inverted_index.h"

namespace metaprobe {
namespace core {

// Defined in relevancy_definition.h; forward-declared here to keep the
// probe interface below it in the include graph.
enum class RelevancyDefinition;

/// \brief One search result returned by a database probe.
struct SearchHit {
  index::DocId doc = 0;
  double score = 0.0;
  std::string title;
};

/// \brief Storage footprint of a database's index, split by backing.
///
/// `/statusz` reports these per database so operators can tell heap-held
/// indexes from mmap-served ones: mapped bytes are page-cache pages the
/// kernel can reclaim under pressure, heap bytes are not.
struct StorageStats {
  std::size_t heap_bytes = 0;
  std::size_t mapped_bytes = 0;
  bool frozen = false;
  bool mapped = false;
};

/// \brief A database reachable only through its keyword-search interface.
///
/// This models the paper's hidden-web databases (PubMed, MEDLINEplus, ...):
/// the metasearcher cannot crawl the contents; it can only
///   * read coarse metadata (name, advertised size),
///   * issue a query and read the "N documents matched" line
///     (`CountMatches` — the probe of Section 3.4 under the
///     document-frequency relevancy definition), and
///   * retrieve the top-ranked documents (`Search` — the probe under the
///     document-similarity definition, and the input to result fusion).
///
/// Implementations must be thread-compatible for concurrent const access.
class HiddenWebDatabase {
 public:
  virtual ~HiddenWebDatabase() = default;

  /// \brief Human-readable database name.
  virtual const std::string& name() const = 0;

  /// \brief Advertised number of documents (|db| in Eq. 1). Real databases
  /// export this or let it be estimated with broad queries.
  virtual std::uint32_t size() const = 0;

  /// \brief Issues `query` and returns the number of documents matching all
  /// keywords — the probe primitive.
  virtual Result<std::uint64_t> CountMatches(const Query& query) const = 0;

  /// \brief Issues `query` and returns the `k` best-ranked documents.
  virtual Result<std::vector<SearchHit>> Search(const Query& query,
                                                std::size_t k) const = 0;

  /// \brief Probes the relevancy r(db, q) of every query in `queries`
  /// under `definition` in one round trip, returning one value per query
  /// in order. Results are identical to calling ProbeRelevancy per query;
  /// batching only amortizes per-call overhead (vocabulary lookups, decode
  /// state), so training sweeps and golden-standard builds can run
  /// thousands of probes per dispatch. Every query must be non-empty.
  ///
  /// The base implementation loops over ProbeRelevancy — decorators such
  /// as FlakyDatabase inherit it so per-probe failure injection still
  /// applies; LocalDatabase overrides it with a fused fast path.
  ///
  /// `deadline` is the batch's cancellation point: the base loop checks it
  /// between probes and returns DeadlineExceeded the moment it passes, so
  /// one slow backend overruns the cutoff by at most a single probe, never
  /// by the remaining batch. Implementations that answer the whole batch in
  /// one fused local operation (LocalDatabase) check it only on entry. The
  /// inactive default never reads a clock.
  virtual Result<std::vector<double>> ProbeBatch(
      const std::vector<const Query*>& queries, RelevancyDefinition definition,
      const Deadline& deadline) const;

  /// \brief Convenience overloads without a deadline / over owned queries.
  Result<std::vector<double>> ProbeBatch(
      const std::vector<const Query*>& queries,
      RelevancyDefinition definition) const;
  Result<std::vector<double>> ProbeBatch(const std::vector<Query>& queries,
                                         RelevancyDefinition definition,
                                         const Deadline& deadline = {}) const;

  /// \brief Number of queries this database has served (both primitives);
  /// experiments use it to audit probing cost.
  virtual std::uint64_t queries_served() const = 0;

  /// \brief Index storage footprint, for introspection. A real remote
  /// database reveals nothing, so the default reports zeros; local
  /// adapters override it. Never consulted by selection algorithms.
  virtual StorageStats GetStorageStats() const { return {}; }
};

/// \brief How a LocalDatabase holds its index for serving.
enum class IndexMode {
  /// As built: full blocks packed, the append tail uncompressed.
  kStandard,
  /// `InvertedIndex::Freeze()` applied at construction: tails packed as
  /// partial blocks, the whole index immutable and read-optimized (the
  /// serving loop's "FrozenIndex" mode). Query results are bit-identical
  /// to kStandard.
  kFrozen,
};

/// \brief In-process database backed by an InvertedIndex.
///
/// The standard adapter for simulated hidden-web databases: exposes exactly
/// the probe-only interface while holding the index privately, so algorithm
/// code physically cannot peek beyond what a real remote database would
/// reveal.
class LocalDatabase : public HiddenWebDatabase {
 public:
  /// \param name database name
  /// \param index built index (owned)
  /// \param documents optional raw text store for result titles (may be null)
  /// \param mode kFrozen packs the index read-only at construction
  LocalDatabase(std::string name, index::InvertedIndex index,
                std::shared_ptr<index::DocumentStore> documents = nullptr,
                IndexMode mode = IndexMode::kStandard);

  const std::string& name() const override { return name_; }
  std::uint32_t size() const override { return index_.num_docs(); }
  Result<std::uint64_t> CountMatches(const Query& query) const override;
  Result<std::vector<SearchHit>> Search(const Query& query,
                                        std::size_t k) const override;
  using HiddenWebDatabase::ProbeBatch;
  Result<std::vector<double>> ProbeBatch(
      const std::vector<const Query*>& queries, RelevancyDefinition definition,
      const Deadline& deadline) const override;
  std::uint64_t queries_served() const override {
    return queries_served_.load(std::memory_order_relaxed);
  }
  StorageStats GetStorageStats() const override;

  /// \brief Back-door used only by summary construction and golden-standard
  /// evaluation harnesses (never by selection algorithms).
  const index::InvertedIndex& index_for_summaries() const { return index_; }

  /// \brief Installs a worker pool for ProbeBatch fan-out (not owned; must
  /// outlive the database, or be reset to null first). Results are
  /// byte-identical with or without a pool — parallelism only changes
  /// wall-clock. The batch caller blocks on the fan-out, so the pool must
  /// not be one whose own workers issue ProbeBatch against this database
  /// (the pool does no work stealing — the leaf-task rule of
  /// ThreadPool::Submit). Passing nullptr restores the sequential path.
  void set_batch_pool(ThreadPool* pool) { batch_pool_ = pool; }

 private:
  std::string name_;
  index::InvertedIndex index_;
  std::shared_ptr<index::DocumentStore> documents_;
  ThreadPool* batch_pool_ = nullptr;
  mutable std::atomic<std::uint64_t> queries_served_{0};
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_HIDDEN_WEB_DATABASE_H_
