#include "core/flaky_database.h"

#include <algorithm>

namespace metaprobe {
namespace core {

FlakyDatabase::FlakyDatabase(std::shared_ptr<HiddenWebDatabase> inner,
                             double failure_probability, std::uint64_t seed)
    : inner_(std::move(inner)),
      failure_probability_(std::clamp(failure_probability, 0.0, 1.0)),
      rng_(seed) {}

bool FlakyDatabase::ShouldFail() const {
  MutexLock lock(mutex_);
  if (!rng_.Bernoulli(failure_probability_)) return false;
  failures_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Result<std::uint64_t> FlakyDatabase::CountMatches(const Query& query) const {
  if (ShouldFail()) {
    return Status::IoError("database '", name(), "' timed out");
  }
  return inner_->CountMatches(query);
}

Result<std::vector<SearchHit>> FlakyDatabase::Search(const Query& query,
                                                     std::size_t k) const {
  if (ShouldFail()) {
    return Status::IoError("database '", name(), "' timed out");
  }
  return inner_->Search(query, k);
}

}  // namespace core
}  // namespace metaprobe
