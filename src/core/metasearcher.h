// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_METASEARCHER_H_
#define METAPROBE_CORE_METASEARCHER_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/correctness.h"
#include "obs/health.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"
#include "core/deadline.h"
#include "core/ed_learner.h"
#include "core/estimator.h"
#include "core/fusion.h"
#include "core/hidden_web_database.h"
#include "core/probing.h"
#include "core/query_class.h"
#include "core/relevancy_definition.h"
#include "core/serving_stats.h"
#include "core/summary.h"

namespace metaprobe {
namespace core {

/// \brief Configuration of a Metasearcher.
struct MetasearcherOptions {
  /// Which relevancy definition the metasearcher optimizes; determines the
  /// probe primitive and the default estimator.
  RelevancyDefinition relevancy_definition =
      RelevancyDefinition::kDocumentFrequency;
  QueryClassOptions query_class;
  EdLearnerOptions ed_learner;
  CorrectnessMetric metric = CorrectnessMetric::kAbsolute;
  int search_width = 4;
  FusionOptions fusion;
  /// Probes dispatched concurrently per APro round (see
  /// AProOptions::speculative_batch). 1 = the paper's sequential loop
  /// ("deterministic mode"); larger values speculate, trading extra probes
  /// for latency, and use the pool installed with SetProbePool.
  int speculative_batch = 1;
  /// Memoize derived RDs per (database, query type, r_hat bucket). Opt-in:
  /// the cache quantizes r_hat onto a log grid (see RdCache), so selections
  /// can differ slightly from the uncached, bit-exact reproduction path.
  bool enable_rd_cache = false;
  double rd_cache_buckets_per_decade = 20.0;
};

/// \brief Outcome of one database-selection request.
struct SelectionReport {
  std::vector<std::size_t> databases;       ///< Selected ids, ascending.
  std::vector<std::string> database_names;  ///< Names, aligned with ids.
  double expected_correctness = 0.0;
  bool reached_threshold = false;
  /// True when the request's deadline expired before probing could reach
  /// the certainty threshold: the selection is the best estimate-only (or
  /// partially probed) answer, not an error. Serving layers surface this
  /// so callers can distinguish a degraded answer from a confident one.
  bool degraded = false;
  std::vector<std::size_t> probe_order;     ///< Databases probed, in order.
  std::vector<double> estimates;            ///< r_hat per database.
  /// Databases the installed health tracker currently reports unhealthy
  /// (rolling-window view at selection time; empty without a tracker).
  /// These are *not* excluded from the selection — the caller decides
  /// whether to trust, retry, or reroute.
  std::vector<std::size_t> unhealthy_databases;

  int num_probes() const { return static_cast<int>(probe_order.size()); }
};

/// \brief The end-to-end metasearcher of Figure 1: mediates a set of
/// hidden-web databases, selects the most relevant ones for each query with
/// probabilistic modelling + adaptive probing, and fuses their results.
///
/// Lifecycle:
///   1. `AddDatabase` each mediated database with its statistical summary
///      (or `AddLocalDatabase` to summarize automatically).
///   2. `Train` once with sample queries to learn error distributions.
///   3. Serve queries with `Select` (database selection only) or `Search`
///      (selection + dispatch + result fusion).
///
/// The estimator and probing policy are pluggable; the defaults are the
/// paper's term-independence estimator and the stopping-probability probing
/// policy (a refinement of the paper's greedy; see probing.h).
///
/// Concurrency contract (see DESIGN.md, "Serving architecture"): setup
/// calls (AddDatabase, SetEstimator, SetProbingPolicy, SetProbePool) are
/// single-threaded. After that, the serving methods (Select, Search,
/// SelectBatch, SearchBatch, BuildModel, EstimateAll) may run concurrently
/// from any number of threads. The trained state (ED table + RD cache) is
/// published as an immutable snapshot: serving reads pin the snapshot
/// pointer once (a mutex held only for the shared_ptr copy) and derive the
/// per-query model from it with no lock held at all, while Train builds
/// the next snapshot off to the side and swaps it into the slot. Readers
/// mid-query keep the old snapshot alive through their shared_ptr, so
/// retraining never waits on probe round-trips and serving never waits on
/// retraining. The batch paths clone the probing policy per query;
/// concurrent *direct* Select calls share the installed policy instance and
/// are safe with any stateless policy (every built-in except
/// RandomProbingPolicy).
class Metasearcher {
 public:
  explicit Metasearcher(MetasearcherOptions options = {});

  /// \brief Registers a database with its pre-collected summary.
  Status AddDatabase(std::shared_ptr<HiddenWebDatabase> database,
                     StatSummary summary);

  /// \brief Registers a local database, building its exact summary.
  Status AddLocalDatabase(std::shared_ptr<LocalDatabase> database);

  /// \brief Replaces the relevancy estimator (before Train).
  Status SetEstimator(std::unique_ptr<RelevancyEstimator> estimator);

  /// \brief Replaces the probing policy (setup phase only; the serving
  /// paths read it without synchronization).
  void SetProbingPolicy(std::unique_ptr<ProbingPolicy> policy);

  /// \brief Installs a borrowed worker pool for speculative probe dispatch
  /// (used when options().speculative_batch > 1). Must outlive serving and
  /// must be a *different* pool from the one passed to SelectBatch, or the
  /// nested waits could starve each other.
  void SetProbePool(ThreadPool* pool) { probe_pool_ = pool; }

  /// \brief Installs a borrowed query tracer (setup phase only). While set,
  /// every Select/Search records a structured trace — estimate, model
  /// build, one span per probe with certainty before/after, the stop
  /// decision — retrievable from the tracer. Tracing costs one best-set
  /// search per probe on speculative rounds (the sequential loop already
  /// pays it), so leave it null for bit-exact reproduction benches.
  void SetTracer(obs::QueryTracer* tracer) { tracer_ = tracer; }
  obs::QueryTracer* tracer() const { return tracer_; }

  /// \brief Installs a borrowed per-database health tracker (setup phase
  /// only; must be built over the same databases, in registration order).
  /// While set, every serving probe records its latency and outcome, each
  /// selection feeds estimate-vs-observation rank pairs back, reports carry
  /// unhealthy_databases, and the tracker's gauges join this searcher's
  /// registry. Null detaches (the gauges of a previous tracker remain
  /// registered; detach only at teardown).
  void SetHealthTracker(obs::DbHealthTracker* tracker);
  obs::DbHealthTracker* health_tracker() const { return health_tracker_; }

  /// \brief Swaps the monotonic clock behind every latency metric and span
  /// timestamp (setup phase only; tests inject an obs::FakeClock). Null
  /// restores the real clock.
  void SetClock(const obs::MonotonicClock* clock) {
    clock_ = clock != nullptr ? clock : obs::RealClock::Get();
  }

  /// \brief The searcher's metric registry: every serving counter and
  /// latency histogram, Prometheus-scrapeable via ExpositionText(). Safe to
  /// scrape concurrently with serving. Mutable so callers can toggle
  /// registry.set_enabled() around benches.
  obs::MetricRegistry& metrics() const { return registry_; }

  /// \brief Learns one ED per (database, query type) by sampling every
  /// database with `training_queries` (Section 4).
  Status Train(const std::vector<Query>& training_queries);

  bool trained() const { return snapshot() != nullptr; }

  /// \brief Point estimates r_hat(db, q) for all databases.
  std::vector<double> EstimateAll(const Query& query) const;

  /// \brief Builds the probabilistic relevancy model (one RD per database)
  /// for `query`. Requires Train.
  Result<TopKModel> BuildModel(const Query& query) const;

  /// \brief Selects the k most relevant databases with certainty at least
  /// `threshold`, probing adaptively as needed (the full APro pipeline).
  Result<SelectionReport> Select(const Query& query, int k,
                                 double threshold) const;

  /// \brief Select with a latency budget. The deadline is threaded into
  /// the probing loop: when it expires, probing stops at the next probe
  /// boundary and the best answer so far — the pure estimate-only
  /// selection if it expired before the first probe — is returned with
  /// report.degraded = true. A deadline never turns a servable query into
  /// an error. Deadline::None() behaves exactly like the overload above.
  Result<SelectionReport> Select(const Query& query, int k, double threshold,
                                 const Deadline& deadline) const;

  /// \brief Selection + dispatch + result fusion: queries the selected
  /// databases for their best `per_database` documents and merges them.
  Result<std::vector<FusedHit>> Search(const Query& query, int k,
                                       double threshold,
                                       std::size_t per_database,
                                       std::size_t max_results) const;

  /// \brief Search with a latency budget applied to the selection phase
  /// (see the Select overload); the result fetch from the — possibly
  /// degraded — selection always completes.
  Result<std::vector<FusedHit>> Search(const Query& query, int k,
                                       double threshold,
                                       std::size_t per_database,
                                       std::size_t max_results,
                                       const Deadline& deadline) const;

  /// \brief Runs Select for every query, fanned across `pool` (null =
  /// inline, sequentially). Reports are returned in query order and — with
  /// the default deterministic options — are identical to running Select on
  /// each query in sequence. Fails as a whole on the first per-query error
  /// (by query order, deterministically).
  Result<std::vector<SelectionReport>> SelectBatch(
      const std::vector<Query>& queries, int k, double threshold,
      ThreadPool* pool) const;

  /// \brief Batch counterpart of Search, fanned across `pool` like
  /// SelectBatch.
  Result<std::vector<std::vector<FusedHit>>> SearchBatch(
      const std::vector<Query>& queries, int k, double threshold,
      std::size_t per_database, std::size_t max_results,
      ThreadPool* pool) const;

  /// \brief Serializes the trained state -- options, per-database
  /// summaries and the learned error distributions -- in a versioned,
  /// line-oriented text format. The database *connections* are not
  /// serialized; pass live ones to LoadTrainedModel. Requires Train.
  ///
  /// The intended deployment: train once offline against a query trace,
  /// persist, and let serving instances load the model instead of
  /// re-probing every database.
  Status SaveTrainedModel(std::ostream& os) const;

  /// \brief Restores a trained metasearcher over live databases. The
  /// supplied databases must match the saved summaries in count, order and
  /// name (summaries and EDs are database-specific). The estimator is
  /// reconstructed from the saved relevancy definition; models trained
  /// with a custom estimator cannot be round-tripped and fail to load.
  static Result<std::unique_ptr<Metasearcher>> LoadTrainedModel(
      std::istream& is,
      std::vector<std::shared_ptr<HiddenWebDatabase>> databases);

  /// \brief Snapshot of the serving counters (queries, probes, RD cache),
  /// sampled from the metric registry — the same series the Prometheus
  /// exposition exports.
  ServingStats stats() const;

  /// \brief Zeroes every registry counter and histogram (queries, probes,
  /// RD cache hit/miss, kernel cache events). The RD cache keeps its
  /// entries — only Train drops those.
  void ResetStats();

  std::size_t num_databases() const { return databases_.size(); }
  const HiddenWebDatabase& database(std::size_t i) const {
    return *databases_[i];
  }
  const StatSummary& summary(std::size_t i) const { return summaries_[i]; }
  const RelevancyEstimator& estimator() const { return *estimator_; }
  const QueryTypeClassifier& classifier() const { return classifier_; }
  /// \brief The learned ED table of the current trained snapshot (null
  /// before Train). The returned pointer shares ownership of the snapshot,
  /// so it stays valid even across a concurrent retrain.
  std::shared_ptr<const EdTable> ed_table() const;
  const MetasearcherOptions& options() const { return options_; }

 private:
  /// The immutable trained model: the ED table learned by Train plus the
  /// RD cache keyed against it. Published behind state_ as a whole, so a
  /// snapshot's cache can never serve entries derived from a different
  /// table. The cache is internally synchronized (sharded rwlocks), hence
  /// mutable inside the logically-const snapshot.
  struct TrainedState {
    EdTable table;
    mutable RdCache rd_cache;
    TrainedState(EdTable t, double buckets_per_decade)
        : table(std::move(t)), rd_cache(buckets_per_decade) {}
  };

  /// Pins the current snapshot; null before Train. The slot lock covers
  /// only the shared_ptr copy (a refcount bump — nanoseconds, once per
  /// query); everything derived from the snapshot then runs lock-free.
  /// (Not std::atomic<shared_ptr>: libstdc++ 12's _Sp_atomic lacks the
  /// TSAN annotations added in GCC 13, so TSAN flags its internal
  /// lock-bit protocol as a race and the sanitizer tier would fail.)
  std::shared_ptr<const TrainedState> snapshot() const {
    MutexLock lock(state_mutex_);
    return state_;
  }
  /// Wires the new state's cache counters into the registry and publishes
  /// it into the slot. Used by Train and LoadTrainedModel.
  void PublishTrainedState(EdTable table);

  Result<TopKModel> BuildModelFromState(const TrainedState& state,
                                        const Query& query) const;
  Result<SelectionReport> SelectWithPolicy(const Query& query, int k,
                                           double threshold,
                                           ProbingPolicy* policy,
                                           const Deadline& deadline) const;
  Result<std::vector<FusedHit>> SearchWithPolicy(const Query& query, int k,
                                                 double threshold,
                                                 std::size_t per_database,
                                                 std::size_t max_results,
                                                 ProbingPolicy* policy,
                                                 const Deadline& deadline) const;

  MetasearcherOptions options_;
  QueryTypeClassifier classifier_;
  std::unique_ptr<RelevancyEstimator> estimator_;
  std::unique_ptr<ProbingPolicy> policy_;
  ThreadPool* probe_pool_ = nullptr;  // borrowed; speculative dispatch
  std::vector<std::shared_ptr<HiddenWebDatabase>> databases_;
  std::vector<StatSummary> summaries_;

  /// RCU-style published trained state: serving threads pin the pointer
  /// once per query and work on the immutable snapshot without further
  /// synchronization; Train publishes a freshly built snapshot into the
  /// slot. Old snapshots are reclaimed when the last in-flight query
  /// drops its reference.
  mutable Mutex state_mutex_;  ///< guards the state_ slot only
  std::shared_ptr<const TrainedState> state_ GUARDED_BY(state_mutex_);

  /// Resolved registry handles for the hot serving paths; looked up once in
  /// the constructor so recording is pointer-chasing, never a map lookup.
  struct Telemetry {
    obs::Counter* queries_served = nullptr;
    obs::Counter* queries_degraded = nullptr;
    obs::Counter* batches_served = nullptr;
    obs::Counter* probes_ok = nullptr;
    obs::Counter* probes_failed = nullptr;
    obs::Counter* rd_cache_hits = nullptr;
    obs::Counter* rd_cache_misses = nullptr;
    obs::Counter* speculative_probes = nullptr;
    obs::Counter* speculative_waste = nullptr;
    obs::Histogram* select_latency = nullptr;
    obs::Histogram* model_build_latency = nullptr;
    obs::Histogram* probe_latency = nullptr;
    obs::Histogram* train_latency = nullptr;
  };

  // registry_ is declared after state_ on purpose: its callback gauge
  // reads the snapshot's rd_cache.entries(), so the registry (and the
  // callback) must be destroyed first.
  mutable obs::MetricRegistry registry_;
  Telemetry telemetry_;
  TopKModel::KernelTelemetry kernel_telemetry_;
  obs::QueryTracer* tracer_ = nullptr;  // borrowed; see SetTracer
  obs::DbHealthTracker* health_tracker_ = nullptr;  // borrowed
  const obs::MonotonicClock* clock_ = obs::RealClock::Get();
};

inline std::shared_ptr<const EdTable> Metasearcher::ed_table() const {
  std::shared_ptr<const TrainedState> state = snapshot();
  if (state == nullptr) return nullptr;
  // Aliasing constructor: the table pointer keeps the whole snapshot alive.
  return std::shared_ptr<const EdTable>(state, &state->table);
}

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_METASEARCHER_H_
