// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_METASEARCHER_H_
#define METAPROBE_CORE_METASEARCHER_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/correctness.h"
#include "core/ed_learner.h"
#include "core/estimator.h"
#include "core/fusion.h"
#include "core/hidden_web_database.h"
#include "core/probing.h"
#include "core/query_class.h"
#include "core/relevancy_definition.h"
#include "core/summary.h"

namespace metaprobe {
namespace core {

/// \brief Configuration of a Metasearcher.
struct MetasearcherOptions {
  /// Which relevancy definition the metasearcher optimizes; determines the
  /// probe primitive and the default estimator.
  RelevancyDefinition relevancy_definition =
      RelevancyDefinition::kDocumentFrequency;
  QueryClassOptions query_class;
  EdLearnerOptions ed_learner;
  CorrectnessMetric metric = CorrectnessMetric::kAbsolute;
  int search_width = 4;
  FusionOptions fusion;
};

/// \brief Outcome of one database-selection request.
struct SelectionReport {
  std::vector<std::size_t> databases;       ///< Selected ids, ascending.
  std::vector<std::string> database_names;  ///< Names, aligned with ids.
  double expected_correctness = 0.0;
  bool reached_threshold = false;
  std::vector<std::size_t> probe_order;     ///< Databases probed, in order.
  std::vector<double> estimates;            ///< r_hat per database.

  int num_probes() const { return static_cast<int>(probe_order.size()); }
};

/// \brief The end-to-end metasearcher of Figure 1: mediates a set of
/// hidden-web databases, selects the most relevant ones for each query with
/// probabilistic modelling + adaptive probing, and fuses their results.
///
/// Lifecycle:
///   1. `AddDatabase` each mediated database with its statistical summary
///      (or `AddLocalDatabase` to summarize automatically).
///   2. `Train` once with sample queries to learn error distributions.
///   3. Serve queries with `Select` (database selection only) or `Search`
///      (selection + dispatch + result fusion).
///
/// The estimator and probing policy are pluggable; the defaults are the
/// paper's term-independence estimator and the stopping-probability probing
/// policy (a refinement of the paper's greedy; see probing.h).
class Metasearcher {
 public:
  explicit Metasearcher(MetasearcherOptions options = {});

  /// \brief Registers a database with its pre-collected summary.
  Status AddDatabase(std::shared_ptr<HiddenWebDatabase> database,
                     StatSummary summary);

  /// \brief Registers a local database, building its exact summary.
  Status AddLocalDatabase(std::shared_ptr<LocalDatabase> database);

  /// \brief Replaces the relevancy estimator (before Train).
  Status SetEstimator(std::unique_ptr<RelevancyEstimator> estimator);

  /// \brief Replaces the probing policy (any time).
  void SetProbingPolicy(std::unique_ptr<ProbingPolicy> policy);

  /// \brief Learns one ED per (database, query type) by sampling every
  /// database with `training_queries` (Section 4).
  Status Train(const std::vector<Query>& training_queries);

  bool trained() const { return ed_table_ != nullptr; }

  /// \brief Point estimates r_hat(db, q) for all databases.
  std::vector<double> EstimateAll(const Query& query) const;

  /// \brief Builds the probabilistic relevancy model (one RD per database)
  /// for `query`. Requires Train.
  Result<TopKModel> BuildModel(const Query& query) const;

  /// \brief Selects the k most relevant databases with certainty at least
  /// `threshold`, probing adaptively as needed (the full APro pipeline).
  Result<SelectionReport> Select(const Query& query, int k,
                                 double threshold) const;

  /// \brief Selection + dispatch + result fusion: queries the selected
  /// databases for their best `per_database` documents and merges them.
  Result<std::vector<FusedHit>> Search(const Query& query, int k,
                                       double threshold,
                                       std::size_t per_database,
                                       std::size_t max_results) const;

  /// \brief Serializes the trained state -- options, per-database
  /// summaries and the learned error distributions -- in a versioned,
  /// line-oriented text format. The database *connections* are not
  /// serialized; pass live ones to LoadTrainedModel. Requires Train.
  ///
  /// The intended deployment: train once offline against a query trace,
  /// persist, and let serving instances load the model instead of
  /// re-probing every database.
  Status SaveTrainedModel(std::ostream& os) const;

  /// \brief Restores a trained metasearcher over live databases. The
  /// supplied databases must match the saved summaries in count, order and
  /// name (summaries and EDs are database-specific). The estimator is
  /// reconstructed from the saved relevancy definition; models trained
  /// with a custom estimator cannot be round-tripped and fail to load.
  static Result<std::unique_ptr<Metasearcher>> LoadTrainedModel(
      std::istream& is,
      std::vector<std::shared_ptr<HiddenWebDatabase>> databases);

  std::size_t num_databases() const { return databases_.size(); }
  const HiddenWebDatabase& database(std::size_t i) const {
    return *databases_[i];
  }
  const StatSummary& summary(std::size_t i) const { return summaries_[i]; }
  const RelevancyEstimator& estimator() const { return *estimator_; }
  const QueryTypeClassifier& classifier() const { return classifier_; }
  const EdTable* ed_table() const { return ed_table_.get(); }
  const MetasearcherOptions& options() const { return options_; }

 private:
  MetasearcherOptions options_;
  QueryTypeClassifier classifier_;
  std::unique_ptr<RelevancyEstimator> estimator_;
  std::unique_ptr<ProbingPolicy> policy_;
  std::vector<std::shared_ptr<HiddenWebDatabase>> databases_;
  std::vector<StatSummary> summaries_;
  std::unique_ptr<EdTable> ed_table_;
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_METASEARCHER_H_
