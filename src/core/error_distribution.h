// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_ERROR_DISTRIBUTION_H_
#define METAPROBE_CORE_ERROR_DISTRIBUTION_H_

#include <vector>

#include "common/result.h"
#include "stats/discrete_distribution.h"
#include "stats/histogram.h"

namespace metaprobe {
namespace core {

/// \brief Relative estimation error of Eq. 2 with a unit floor on the
/// denominator so that r_hat = 0 stays finite:
///
///   err(db, q) = (r(db, q) - r_hat(db, q)) / max(r_hat(db, q), 1).
///
/// Always >= -1 because the true relevancy is non-negative.
double RelativeError(double actual, double estimate);

/// \brief The default 10-cell error binning (degrees of freedom 9, matching
/// the paper's chi-square setup): denser near -1..0 where underestimation
/// errors concentrate, geometric above 0 with an open +inf tail.
std::vector<double> DefaultErrorBinEdges();

/// \brief The histogram of a relevancy estimator's errors on one
/// (database, query type) pair — the paper's ED (Section 3.1, Figure 4).
///
/// Built by sampling: each training query contributes one observed relative
/// error. `ToDistribution` converts the histogram into the discrete error
/// distribution used to derive relevancy distributions, with each cell
/// represented by its representative value clamped to >= -1.
class ErrorDistribution {
 public:
  /// Creates an empty ED over the default binning.
  ErrorDistribution();

  /// Creates an empty ED over custom bin edges (ablation benches vary the
  /// cell count). `edges` must be strictly increasing and non-empty.
  static Result<ErrorDistribution> MakeWithEdges(std::vector<double> edges);

  /// \brief Records one sampled error observation.
  void AddObservation(double error);

  /// \brief Records the (actual, estimate) pair directly.
  void AddSample(double actual, double estimate);

  /// \brief Number of observations accumulated.
  std::size_t sample_count() const { return sample_count_; }

  /// \brief True when no observations were recorded; callers fall back to
  /// the zero-error impulse (the estimator trusted as-is).
  bool empty() const { return sample_count_ == 0; }

  /// \brief The discrete error distribution: one atom per non-empty cell at
  /// the cell's representative error. Returns an impulse at 0 when empty.
  stats::DiscreteDistribution ToDistribution() const;

  /// \brief Underlying histogram (chi-square tests, plots, Fig. 9 output).
  const stats::Histogram& histogram() const { return histogram_; }

  /// \brief Merges another ED with identical binning.
  Status MergeFrom(const ErrorDistribution& other);

  /// \brief Reconstructs an ED from serialized state: the histogram edges,
  /// the per-cell weights, and the observation count. Used by model
  /// persistence (core/model_io.cc).
  static Result<ErrorDistribution> Restore(std::vector<double> edges,
                                           const std::vector<double>& counts,
                                           std::size_t sample_count);

 private:
  explicit ErrorDistribution(stats::Histogram histogram);

  stats::Histogram histogram_;
  std::size_t sample_count_ = 0;
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_ERROR_DISTRIBUTION_H_
