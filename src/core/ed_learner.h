// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_ED_LEARNER_H_
#define METAPROBE_CORE_ED_LEARNER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/error_distribution.h"
#include "core/estimator.h"
#include "core/hidden_web_database.h"
#include "core/query_class.h"
#include "core/relevancy_definition.h"
#include "core/summary.h"

namespace metaprobe {
namespace core {

/// \brief The learned error distributions: one ED per (database, type).
class EdTable {
 public:
  EdTable(std::size_t num_databases, std::uint32_t num_types,
          std::vector<double> bin_edges);

  /// \brief ED for (database, type); both indexes must be in range.
  const ErrorDistribution& Get(std::size_t db, QueryTypeId type) const;
  ErrorDistribution* GetMutable(std::size_t db, QueryTypeId type);

  /// \brief Replaces one cell (deserialization hook).
  Status Set(std::size_t db, QueryTypeId type, ErrorDistribution ed);

  std::size_t num_databases() const { return num_databases_; }
  std::uint32_t num_types() const { return num_types_; }

  /// \brief Total training observations across all cells.
  std::size_t total_samples() const;

 private:
  std::size_t num_databases_;
  std::uint32_t num_types_;
  std::vector<ErrorDistribution> cells_;  // row-major [db][type]
};

/// \brief Options for offline ED learning (Section 4).
struct EdLearnerOptions {
  /// Which notion of relevancy the actual values are probed under.
  RelevancyDefinition definition = RelevancyDefinition::kDocumentFrequency;
  /// Stop adding samples to a (database, type) cell once it has this many;
  /// the paper settles on 500 sample queries per type as conservative
  /// (Figure 8 shows ~100 already suffices). 0 means unlimited.
  std::size_t max_samples_per_type = 500;
  /// Histogram binning of each ED.
  std::vector<double> bin_edges = DefaultErrorBinEdges();
  /// Databases are sampled independently, so training parallelizes across
  /// them with identical results: 1 = serial (default), 0 = one thread per
  /// hardware core, n = exactly n threads.
  unsigned num_threads = 1;
  /// Queries per HiddenWebDatabase::ProbeBatch dispatch during the training
  /// sweep. The learner pre-classifies the trace and simulates the
  /// per-type sample caps, so the batched sweep probes exactly the queries
  /// the sequential sweep would and the resulting EdTable is identical;
  /// batching only amortizes probe overhead. <= 1 probes one query at a
  /// time through ProbeRelevancy.
  std::size_t probe_batch_size = 128;
};

/// \brief Offline sampling driver: issues training queries to every
/// database, compares actual vs estimated relevancy, and fills the EdTable
/// (the procedure of Example 2).
///
/// The sample queries play the role of "previous query traces"; training
/// cost is databases x queries probes, paid once before serving users.
class EdLearner {
 public:
  EdLearner(const RelevancyEstimator* estimator,
            const QueryTypeClassifier* classifier, EdLearnerOptions options);

  /// \brief Learns EDs for `databases` (with matching `summaries`) from
  /// `training_queries`.
  Result<EdTable> Learn(
      const std::vector<const HiddenWebDatabase*>& databases,
      const std::vector<const StatSummary*>& summaries,
      const std::vector<Query>& training_queries) const;

 private:
  const RelevancyEstimator* estimator_;
  const QueryTypeClassifier* classifier_;
  EdLearnerOptions options_;
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_ED_LEARNER_H_
