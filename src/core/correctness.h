// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_CORRECTNESS_H_
#define METAPROBE_CORE_CORRECTNESS_H_

#include <cstdint>
#include <vector>

#include "core/relevancy_distribution.h"
#include "stats/discrete_distribution.h"
#include "stats/random.h"

namespace metaprobe {

namespace obs {
class Counter;
}  // namespace obs

namespace core {

/// \brief Which correctness definition of Section 3.2 to target.
enum class CorrectnessMetric {
  kAbsolute,  ///< Cor_a: 1 iff the selected set equals DB_topk exactly.
  kPartial,   ///< Cor_p: |selected ∩ DB_topk| / k.
};

const char* CorrectnessMetricName(CorrectnessMetric metric);

/// \brief Joint probabilistic model of all databases' relevancies for one
/// query, with the machinery to evaluate expected correctness exactly.
///
/// Holds one discrete RD per database, treated as independent (databases
/// answer independently). All support values carry a deterministic
/// per-database tie-breaking perturbation (+ (n - i) * kTieEpsilon), so the
/// "k most relevant databases" is almost surely unique and matches the
/// golden standard's lowest-index-wins convention; see DESIGN.md.
///
/// This class implements the f/g functions the paper defers to its extended
/// report: `PrExactTopSet` evaluates Pr(S = DB_topk) via order statistics
/// over the union support, and `MembershipProbabilities` evaluates
/// Pr(db_i ∈ DB_topk) with a Poisson-binomial dynamic program. Both are
/// exact up to floating-point rounding and are cross-validated against
/// Monte-Carlo sampling and the naive reference implementations (the
/// `reference` namespace below) in the test suite.
///
/// Evaluation runs on a lazily built *kernel cache* (DESIGN.md §9): a
/// merged, deduplicated grid of every database's support values plus one
/// flat (value, tail-CDF) row per database, so every Pr(X >= v) / Pr(X > v)
/// the order-statistics math needs is an index lookup instead of a binary
/// search. `Observe` and `ScopedCondition` invalidate only the touched
/// database's row when they can (full rebuilds happen only when a new
/// support value appears, i.e. on off-grid probe outcomes).
///
/// Thread-compatibility: the cache is memoized under `const` evaluation
/// methods, so a TopKModel instance must be confined to one thread at a
/// time. The serving paths honor this by building one model per query and
/// cloning it per scoring task (see GreedyUsefulnessPolicy).
class TopKModel {
 public:
  static constexpr double kTieEpsilon = 1e-7;

  /// \brief Counters the kernel cache reports into (all borrowed, any may
  /// be null). The serving layer points one instance at its metric
  /// registry and shares it across every model built from the searcher;
  /// obs::Counter is sharded and thread-safe, so clones scoring on worker
  /// threads bump the same counters without synchronization.
  struct KernelTelemetry {
    obs::Counter* full_rebuilds = nullptr;   ///< Whole-grid cache rebuilds.
    obs::Counter* row_repairs = nullptr;     ///< Single-row recomputes.
    obs::Counter* fast_restores = nullptr;   ///< ScopedCondition fast saves.
    obs::Counter* dp_fallbacks = nullptr;    ///< Deconvolution -> direct DP.
    obs::Counter* marginals_memo_hits = nullptr;  ///< Memoized marginals.
  };

  /// Builds the model from per-database RDs (index = database id).
  explicit TopKModel(std::vector<RelevancyDistribution> rds);

  std::size_t num_databases() const { return dists_.size(); }

  /// \brief The (tie-adjusted) RD of database `i`.
  const stats::DiscreteDistribution& rd(std::size_t i) const {
    return dists_[i];
  }
  bool probed(std::size_t i) const { return probed_[i]; }
  std::size_t num_probed() const;

  /// \brief Collapses database `i`'s RD to the probe outcome `actual`
  /// (a raw, unadjusted relevancy).
  void Observe(std::size_t i, double actual);

  /// \brief Pr(db_i ∈ DB_topk) for every database. The result is memoized
  /// per `k` until the model is mutated, so policies and the APro loop can
  /// each ask for the marginals without recomputing them.
  std::vector<double> MembershipProbabilities(int k) const;

  /// \brief Pr(`set` is exactly the top-|set| databases).
  double PrExactTopSet(const std::vector<std::size_t>& set) const;

  /// \brief E[Cor_p(set)] with |set| = k.
  double ExpectedPartialCorrectness(const std::vector<std::size_t>& set) const;

  /// \brief E[Cor_p(set)] from marginals the caller already holds (the
  /// result of MembershipProbabilities(set.size())); avoids recomputing
  /// them when scoring many sets against one model state.
  double ExpectedPartialCorrectness(const std::vector<std::size_t>& set,
                                    const std::vector<double>& marginals) const;

  /// \brief E[Cor(set)] under `metric`.
  double ExpectedCorrectness(const std::vector<std::size_t>& set,
                             CorrectnessMetric metric) const;

  /// \brief A k-subset together with its expected correctness.
  struct BestSet {
    std::vector<std::size_t> members;  // ascending database ids
    double expected_correctness = 0.0;
  };

  /// \brief Finds the k-subset maximizing expected correctness.
  ///
  /// Under the partial metric the optimum is closed-form: the k databases
  /// with the highest membership probabilities (E[Cor_p] is their mean).
  /// Under the absolute metric the search enumerates all k-subsets of the
  /// top (k + search_width) databases by membership probability; passing
  /// search_width >= n - k makes the search exhaustive (used by tests to
  /// validate the default width).
  BestSet FindBestSet(int k, CorrectnessMetric metric,
                      int search_width = 4) const;

  /// \brief Support atoms of database `i`'s adjusted RD; policy code
  /// iterates these to enumerate probe outcomes.
  const std::vector<stats::Atom>& SupportOf(std::size_t i) const {
    return dists_[i].atoms();
  }

  /// \brief Builds the kernel cache now instead of on first evaluation.
  /// Callers that clone a model per scoring task call this once on the
  /// original so every clone copies a ready cache instead of rebuilding.
  void WarmKernelCache() const { EnsureCache(); }

  /// \brief Temporarily pins database `i` to the *adjusted* support value
  /// `adjusted_value`, restoring the prior RD on destruction. The greedy
  /// probing policy uses this to evaluate hypothetical probe outcomes
  /// without copying the whole model. The saved RD is swapped out (not
  /// copied), and the kernel cache keeps its grid: the pinned value is one
  /// of the grid's own points, so only database `i`'s tail row is saved
  /// and restored.
  class ScopedCondition {
   public:
    ScopedCondition(TopKModel* model, std::size_t i, double adjusted_value);
    ~ScopedCondition();

    ScopedCondition(const ScopedCondition&) = delete;
    ScopedCondition& operator=(const ScopedCondition&) = delete;

   private:
    TopKModel* model_;
    std::size_t index_;
    stats::DiscreteDistribution saved_;
    // Fast cache restore: the pre-condition tail row and atom indices of
    // database `index_`, valid only while the cache generation matches.
    bool fast_restore_ = false;
    std::uint64_t generation_ = 0;
    std::vector<double> saved_ge_;
    std::vector<double> saved_gt_;
    std::vector<std::uint32_t> saved_atom_index_;
  };

  /// \brief Installs kernel cache telemetry. `telemetry` is borrowed and
  /// must outlive the model and every clone of it (clones copy the
  /// pointer); the counters it names must be thread-safe. Null detaches.
  void set_telemetry(const KernelTelemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// \brief Draws one joint sample of raw-ordering ranks: returns database
  /// ids sorted by sampled relevancy, best first (Monte-Carlo validation).
  std::vector<std::size_t> SampleRanking(stats::Rng* rng) const;

  /// \brief Allocation-free SampleRanking: `sampled` and `order` are
  /// caller-owned scratch, resized as needed (Monte-Carlo loops reuse them
  /// across samples). Draws from `rng` exactly like SampleRanking.
  void SampleRankingInto(stats::Rng* rng, std::vector<double>* sampled,
                         std::vector<std::size_t>* order) const;

 private:
  /// Merged-grid kernel cache (the "TopKModelScratch" of DESIGN.md §9).
  /// grid = ascending deduplicated union of all support values; row i of
  /// tail_ge/tail_gt holds Pr(X_i >= grid[g]) / Pr(X_i > grid[g]) as flat
  /// SoA arrays. atom_index[i] maps database i's atoms (in support order)
  /// to their grid positions. The remaining vectors are reusable scratch
  /// for the sweep/scoring kernels, kept here so hot paths do not allocate.
  struct KernelCache {
    bool valid = false;
    std::uint64_t generation = 0;  // bumped on every full rebuild
    std::vector<double> grid;
    std::vector<double> tail_ge;  // num_databases x grid.size(), row-major
    std::vector<double> tail_gt;
    std::vector<std::vector<std::uint32_t>> atom_index;
    std::vector<bool> dirty;  // per-database row invalidation
    bool any_dirty = false;
    // Memoized marginals: MembershipProbabilities(marginals_k).
    int marginals_k = -1;
    std::vector<double> marginals;
    // Sweep + best-set scratch (contents meaningless between calls).
    std::vector<std::uint32_t> entry_start, entry_db, scratch_u32;
    std::vector<double> entry_prob, dp, loo, dp_scratch, q, all_prod;
    std::vector<std::uint32_t> all_zero;
  };

  double Bias(std::size_t i) const {
    return static_cast<double>(dists_.size() - i) * kTieEpsilon;
  }

  void EnsureCache() const;
  void RebuildCache() const;
  void RecomputeRow(std::size_t i) const;
  /// Marks database `i`'s row stale and drops the marginals memo.
  void InvalidateDb(std::size_t i) const;

  std::vector<stats::DiscreteDistribution> dists_;  // tie-adjusted
  std::vector<bool> probed_;
  mutable KernelCache cache_;
  const KernelTelemetry* telemetry_ = nullptr;  // borrowed; see set_telemetry
};

/// \brief Monte-Carlo estimate of E[Cor(set)] by sampling the joint RDs
/// `num_samples` times; cross-validates the exact computation.
double MonteCarloExpectedCorrectness(const TopKModel& model,
                                     const std::vector<std::size_t>& set,
                                     CorrectnessMetric metric,
                                     std::size_t num_samples, stats::Rng* rng);

/// \brief Indices of the k largest values, ties broken toward the lower
/// index — the golden-standard convention matching TopKModel's tie
/// perturbation. Returned ascending by index.
std::vector<std::size_t> TopKIndices(const std::vector<double>& values, int k);

/// \brief Cor_a of `selected` against the golden `actual_topk` (Eq. 3).
double AbsoluteCorrectness(const std::vector<std::size_t>& selected,
                           const std::vector<std::size_t>& actual_topk);

/// \brief Cor_p of `selected` against the golden `actual_topk` (Eq. 4).
double PartialCorrectness(const std::vector<std::size_t>& selected,
                          const std::vector<std::size_t>& actual_topk);

/// \brief Naive reference implementations of the expected-correctness
/// kernel, retained verbatim from the pre-optimization code: one
/// Poisson-binomial DP per (database, atom) pair and per-threshold binary
/// searches, no caching. O(n^2 * A * k) versus the production kernel's
/// O(n * A * k) sweep. The randomized equivalence suite
/// (tests/correctness_kernel_test.cc) pins the fast kernel against these
/// to 1e-12; they are not for production use.
namespace reference {

std::vector<double> MembershipProbabilities(const TopKModel& model, int k);

double PrExactTopSet(const TopKModel& model,
                     const std::vector<std::size_t>& set);

double ExpectedCorrectness(const TopKModel& model,
                           const std::vector<std::size_t>& set,
                           CorrectnessMetric metric);

TopKModel::BestSet FindBestSet(const TopKModel& model, int k,
                               CorrectnessMetric metric, int search_width = 4);

}  // namespace reference

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_CORRECTNESS_H_
