// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_CORRECTNESS_H_
#define METAPROBE_CORE_CORRECTNESS_H_

#include <cstdint>
#include <vector>

#include "core/relevancy_distribution.h"
#include "stats/discrete_distribution.h"
#include "stats/random.h"

namespace metaprobe {
namespace core {

/// \brief Which correctness definition of Section 3.2 to target.
enum class CorrectnessMetric {
  kAbsolute,  ///< Cor_a: 1 iff the selected set equals DB_topk exactly.
  kPartial,   ///< Cor_p: |selected ∩ DB_topk| / k.
};

const char* CorrectnessMetricName(CorrectnessMetric metric);

/// \brief Joint probabilistic model of all databases' relevancies for one
/// query, with the machinery to evaluate expected correctness exactly.
///
/// Holds one discrete RD per database, treated as independent (databases
/// answer independently). All support values carry a deterministic
/// per-database tie-breaking perturbation (+ (n - i) * kTieEpsilon), so the
/// "k most relevant databases" is almost surely unique and matches the
/// golden standard's lowest-index-wins convention; see DESIGN.md.
///
/// This class implements the f/g functions the paper defers to its extended
/// report: `PrExactTopSet` evaluates Pr(S = DB_topk) via order statistics
/// over the union support, and `MembershipProbabilities` evaluates
/// Pr(db_i ∈ DB_topk) with a Poisson-binomial dynamic program. Both are
/// exact up to floating-point rounding and are cross-validated against
/// Monte-Carlo sampling in the test suite.
class TopKModel {
 public:
  static constexpr double kTieEpsilon = 1e-7;

  /// Builds the model from per-database RDs (index = database id).
  explicit TopKModel(std::vector<RelevancyDistribution> rds);

  std::size_t num_databases() const { return dists_.size(); }

  /// \brief The (tie-adjusted) RD of database `i`.
  const stats::DiscreteDistribution& rd(std::size_t i) const {
    return dists_[i];
  }
  bool probed(std::size_t i) const { return probed_[i]; }
  std::size_t num_probed() const;

  /// \brief Collapses database `i`'s RD to the probe outcome `actual`
  /// (a raw, unadjusted relevancy).
  void Observe(std::size_t i, double actual);

  /// \brief Pr(db_i ∈ DB_topk) for every database.
  std::vector<double> MembershipProbabilities(int k) const;

  /// \brief Pr(`set` is exactly the top-|set| databases).
  double PrExactTopSet(const std::vector<std::size_t>& set) const;

  /// \brief E[Cor_p(set)] with |set| = k.
  double ExpectedPartialCorrectness(const std::vector<std::size_t>& set) const;

  /// \brief E[Cor(set)] under `metric`.
  double ExpectedCorrectness(const std::vector<std::size_t>& set,
                             CorrectnessMetric metric) const;

  /// \brief A k-subset together with its expected correctness.
  struct BestSet {
    std::vector<std::size_t> members;  // ascending database ids
    double expected_correctness = 0.0;
  };

  /// \brief Finds the k-subset maximizing expected correctness.
  ///
  /// Under the partial metric the optimum is closed-form: the k databases
  /// with the highest membership probabilities (E[Cor_p] is their mean).
  /// Under the absolute metric the search enumerates all k-subsets of the
  /// top (k + search_width) databases by membership probability; passing
  /// search_width >= n - k makes the search exhaustive (used by tests to
  /// validate the default width).
  BestSet FindBestSet(int k, CorrectnessMetric metric,
                      int search_width = 4) const;

  /// \brief Support atoms of database `i`'s adjusted RD; policy code
  /// iterates these to enumerate probe outcomes.
  const std::vector<stats::Atom>& SupportOf(std::size_t i) const {
    return dists_[i].atoms();
  }

  /// \brief Temporarily pins database `i` to the *adjusted* support value
  /// `adjusted_value`, restoring the prior RD on destruction. The greedy
  /// probing policy uses this to evaluate hypothetical probe outcomes
  /// without copying the whole model.
  class ScopedCondition {
   public:
    ScopedCondition(TopKModel* model, std::size_t i, double adjusted_value);
    ~ScopedCondition();

    ScopedCondition(const ScopedCondition&) = delete;
    ScopedCondition& operator=(const ScopedCondition&) = delete;

   private:
    TopKModel* model_;
    std::size_t index_;
    stats::DiscreteDistribution saved_;
  };

  /// \brief Draws one joint sample of raw-ordering ranks: returns database
  /// ids sorted by sampled relevancy, best first (Monte-Carlo validation).
  std::vector<std::size_t> SampleRanking(stats::Rng* rng) const;

 private:
  double Bias(std::size_t i) const {
    return static_cast<double>(dists_.size() - i) * kTieEpsilon;
  }

  std::vector<stats::DiscreteDistribution> dists_;  // tie-adjusted
  std::vector<bool> probed_;
};

/// \brief Monte-Carlo estimate of E[Cor(set)] by sampling the joint RDs
/// `num_samples` times; cross-validates the exact computation.
double MonteCarloExpectedCorrectness(const TopKModel& model,
                                     const std::vector<std::size_t>& set,
                                     CorrectnessMetric metric,
                                     std::size_t num_samples, stats::Rng* rng);

/// \brief Indices of the k largest values, ties broken toward the lower
/// index — the golden-standard convention matching TopKModel's tie
/// perturbation. Returned ascending by index.
std::vector<std::size_t> TopKIndices(const std::vector<double>& values, int k);

/// \brief Cor_a of `selected` against the golden `actual_topk` (Eq. 3).
double AbsoluteCorrectness(const std::vector<std::size_t>& selected,
                           const std::vector<std::size_t>& actual_topk);

/// \brief Cor_p of `selected` against the golden `actual_topk` (Eq. 4).
double PartialCorrectness(const std::vector<std::size_t>& selected,
                          const std::vector<std::size_t>& actual_topk);

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_CORRECTNESS_H_
