#include "core/health_tracked_database.h"

namespace metaprobe {
namespace core {

HealthTrackedDatabase::HealthTrackedDatabase(
    std::shared_ptr<HiddenWebDatabase> inner, obs::DbHealthTracker* tracker,
    std::size_t db)
    : inner_(std::move(inner)),
      tracker_(tracker),
      db_(db),
      clock_(tracker != nullptr && tracker->options().clock != nullptr
                 ? tracker->options().clock
                 : obs::RealClock::Get()) {}

void HealthTrackedDatabase::Record(const Status& status, double total_seconds,
                                   std::size_t count) const {
  if (tracker_ == nullptr || count == 0) return;
  obs::ProbeHealthOutcome outcome;
  if (status.ok()) {
    outcome = obs::ProbeHealthOutcome::kOk;
  } else if (status.IsDeadlineExceeded()) {
    outcome = obs::ProbeHealthOutcome::kTimeout;
  } else {
    outcome = obs::ProbeHealthOutcome::kError;
  }
  const double per_op = total_seconds / static_cast<double>(count);
  for (std::size_t i = 0; i < count; ++i) {
    tracker_->RecordProbe(db_, per_op, outcome);
  }
}

Result<std::uint64_t> HealthTrackedDatabase::CountMatches(
    const Query& query) const {
  const std::uint64_t start_ns = clock_->NowNanos();
  Result<std::uint64_t> result = inner_->CountMatches(query);
  Record(result.status(),
         static_cast<double>(clock_->NowNanos() - start_ns) * 1e-9, 1);
  return result;
}

Result<std::vector<SearchHit>> HealthTrackedDatabase::Search(
    const Query& query, std::size_t k) const {
  const std::uint64_t start_ns = clock_->NowNanos();
  Result<std::vector<SearchHit>> result = inner_->Search(query, k);
  Record(result.status(),
         static_cast<double>(clock_->NowNanos() - start_ns) * 1e-9, 1);
  return result;
}

Result<std::vector<double>> HealthTrackedDatabase::ProbeBatch(
    const std::vector<const Query*>& queries, RelevancyDefinition definition,
    const Deadline& deadline) const {
  const std::uint64_t start_ns = clock_->NowNanos();
  Result<std::vector<double>> result =
      inner_->ProbeBatch(queries, definition, deadline);
  Record(result.status(),
         static_cast<double>(clock_->NowNanos() - start_ns) * 1e-9,
         queries.size());
  return result;
}

}  // namespace core
}  // namespace metaprobe
