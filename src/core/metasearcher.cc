#include "core/metasearcher.h"

#include <algorithm>
#include <future>
#include <utility>

#include "common/macros.h"
#include "index/index_metrics.h"

namespace metaprobe {
namespace core {

Metasearcher::Metasearcher(MetasearcherOptions options)
    : options_(std::move(options)),
      classifier_(options_.query_class),
      policy_(std::make_unique<StoppingProbabilityPolicy>()) {
  // The probe primitive and the EDs must agree on the relevancy notion.
  options_.ed_learner.definition = options_.relevancy_definition;
  if (options_.relevancy_definition ==
      RelevancyDefinition::kDocumentSimilarity) {
    estimator_ = std::make_unique<CoverageSimilarityEstimator>();
  } else {
    estimator_ = std::make_unique<TermIndependenceEstimator>();
  }

  // Register the serving metrics once; the resolved pointers are what the
  // hot paths touch. Registration order is exposition order.
  telemetry_.queries_served =
      registry_.GetCounter("metaprobe_queries_served_total");
  telemetry_.queries_degraded =
      registry_.GetCounter("metaprobe_queries_degraded_total");
  telemetry_.batches_served =
      registry_.GetCounter("metaprobe_batches_served_total");
  telemetry_.probes_ok =
      registry_.GetCounter("metaprobe_probes_total", "result=\"ok\"");
  telemetry_.probes_failed =
      registry_.GetCounter("metaprobe_probes_total", "result=\"failed\"");
  telemetry_.speculative_probes =
      registry_.GetCounter("metaprobe_speculative_probes_total");
  telemetry_.speculative_waste =
      registry_.GetCounter("metaprobe_speculative_waste_total");
  telemetry_.rd_cache_hits =
      registry_.GetCounter("metaprobe_rd_cache_requests_total",
                           "result=\"hit\"");
  telemetry_.rd_cache_misses =
      registry_.GetCounter("metaprobe_rd_cache_requests_total",
                           "result=\"miss\"");
  registry_.RegisterCallbackGauge(
      "metaprobe_rd_cache_entries", "", [this]() {
        std::shared_ptr<const TrainedState> state = snapshot();
        return state == nullptr
                   ? 0.0
                   : static_cast<double>(state->rd_cache.entries());
      });
  kernel_telemetry_.full_rebuilds = registry_.GetCounter(
      "metaprobe_kernel_cache_events_total", "event=\"full_rebuild\"");
  kernel_telemetry_.row_repairs = registry_.GetCounter(
      "metaprobe_kernel_cache_events_total", "event=\"row_repair\"");
  kernel_telemetry_.fast_restores = registry_.GetCounter(
      "metaprobe_kernel_cache_events_total", "event=\"fast_restore\"");
  kernel_telemetry_.dp_fallbacks = registry_.GetCounter(
      "metaprobe_kernel_cache_events_total", "event=\"dp_fallback\"");
  kernel_telemetry_.marginals_memo_hits = registry_.GetCounter(
      "metaprobe_kernel_cache_events_total", "event=\"marginals_memo_hit\"");
  telemetry_.select_latency =
      registry_.GetHistogram("metaprobe_select_latency_seconds");
  telemetry_.model_build_latency =
      registry_.GetHistogram("metaprobe_model_build_latency_seconds");
  telemetry_.probe_latency =
      registry_.GetHistogram("metaprobe_probe_latency_seconds");
  telemetry_.train_latency =
      registry_.GetHistogram("metaprobe_train_latency_seconds");
  // Index-substrate telemetry accumulates in process-wide counters (the
  // index layer sits below any registry); surface it here so scrapes of a
  // metasearcher see the block decoder and probe batching at work.
  registry_.RegisterCallbackGauge(
      "metaprobe_index_blocks_decoded_total", "", []() {
        return static_cast<double>(index::IndexCounters::blocks_decoded.load(
            std::memory_order_relaxed));
      });
  registry_.RegisterCallbackGauge(
      "metaprobe_index_blocks_skipped_total", "", []() {
        return static_cast<double>(index::IndexCounters::blocks_skipped.load(
            std::memory_order_relaxed));
      });
  registry_.RegisterCallbackGauge(
      "metaprobe_index_blocks_wand_skipped_total", "", []() {
        return static_cast<double>(
            index::IndexCounters::wand_blocks_skipped.load(
                std::memory_order_relaxed));
      });
  registry_.RegisterCallbackGauge(
      "metaprobe_index_simd_intersections_total", "", []() {
        return static_cast<double>(
            index::IndexCounters::simd_intersections.load(
                std::memory_order_relaxed));
      });
  registry_.RegisterCallbackGauge(
      "metaprobe_index_mapped_bytes", "", []() {
        return static_cast<double>(index::IndexCounters::mapped_bytes.load(
            std::memory_order_relaxed));
      });
  registry_.RegisterCallbackGauge(
      "metaprobe_index_resident_lists", "", []() {
        return static_cast<double>(index::IndexCounters::resident_lists.load(
            std::memory_order_relaxed));
      });
  registry_.RegisterCallbackGauge(
      "metaprobe_probe_batch_size", "", []() {
        return static_cast<double>(
            index::IndexCounters::last_probe_batch_size.load(
                std::memory_order_relaxed));
      });
}

Status Metasearcher::AddDatabase(std::shared_ptr<HiddenWebDatabase> database,
                                 StatSummary summary) {
  if (database == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  if (trained()) {
    return Status::FailedPrecondition(
        "cannot add databases after training; retrain from scratch");
  }
  databases_.push_back(std::move(database));
  summaries_.push_back(std::move(summary));
  return Status::OK();
}

Status Metasearcher::AddLocalDatabase(
    std::shared_ptr<LocalDatabase> database) {
  if (database == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  StatSummary summary =
      StatSummary::FromIndex(database->name(), database->index_for_summaries());
  return AddDatabase(std::move(database), std::move(summary));
}

Status Metasearcher::SetEstimator(
    std::unique_ptr<RelevancyEstimator> estimator) {
  if (estimator == nullptr) {
    return Status::InvalidArgument("estimator must not be null");
  }
  if (trained()) {
    return Status::FailedPrecondition(
        "EDs were learned for the previous estimator; retrain after swapping");
  }
  estimator_ = std::move(estimator);
  return Status::OK();
}

void Metasearcher::SetProbingPolicy(std::unique_ptr<ProbingPolicy> policy) {
  if (policy != nullptr) policy_ = std::move(policy);
}

void Metasearcher::SetHealthTracker(obs::DbHealthTracker* tracker) {
  health_tracker_ = tracker;
  if (tracker != nullptr) tracker->RegisterMetrics(&registry_);
}

Status Metasearcher::Train(const std::vector<Query>& training_queries) {
  obs::ScopedTimer train_timer(telemetry_.train_latency, clock_);
  if (databases_.empty()) {
    return Status::FailedPrecondition("no databases registered");
  }
  if (training_queries.empty()) {
    return Status::InvalidArgument("no training queries supplied");
  }
  EdLearner learner(estimator_.get(), &classifier_, options_.ed_learner);
  std::vector<const HiddenWebDatabase*> dbs;
  std::vector<const StatSummary*> sums;
  for (std::size_t i = 0; i < databases_.size(); ++i) {
    dbs.push_back(databases_[i].get());
    sums.push_back(&summaries_[i]);
  }
  // The learning probes run concurrently with any live serving (they
  // touch no serving state); publishing the new snapshot is one atomic
  // store, so no reader ever waits on training.
  ASSIGN_OR_RETURN(EdTable table, learner.Learn(dbs, sums, training_queries));
  PublishTrainedState(std::move(table));
  return Status::OK();
}

void Metasearcher::PublishTrainedState(EdTable table) {
  auto state = std::make_shared<TrainedState>(
      std::move(table), options_.rd_cache_buckets_per_decade);
  // Key and wire the fresh cache before anyone can see it; counters are
  // monotonic registry series that survive retraining.
  state->rd_cache.Reset(databases_.size(), classifier_.num_types());
  state->rd_cache.SetCounters(telemetry_.rd_cache_hits,
                              telemetry_.rd_cache_misses);
  MutexLock lock(state_mutex_);
  state_ = std::move(state);
}

std::vector<double> Metasearcher::EstimateAll(const Query& query) const {
  std::vector<double> estimates;
  estimates.reserve(databases_.size());
  for (const StatSummary& summary : summaries_) {
    estimates.push_back(estimator_->Estimate(summary, query));
  }
  return estimates;
}

Result<TopKModel> Metasearcher::BuildModelFromState(const TrainedState& state,
                                                    const Query& query) const {
  if (query.empty()) {
    return Status::InvalidArgument("query has no usable keywords");
  }
  std::vector<RelevancyDistribution> rds;
  rds.reserve(databases_.size());
  for (std::size_t i = 0; i < databases_.size(); ++i) {
    double estimate = estimator_->Estimate(summaries_[i], query);
    QueryTypeId type = classifier_.Classify(query, estimate);
    if (options_.enable_rd_cache) {
      rds.push_back(state.rd_cache.GetOrDerive(
          i, type, estimate, [&state, i, type](double representative) {
            return RelevancyDistribution::FromEstimate(
                representative, state.table.Get(i, type));
          }));
    } else {
      rds.push_back(RelevancyDistribution::FromEstimate(
          estimate, state.table.Get(i, type)));
    }
  }
  TopKModel model(std::move(rds));
  // Kernel cache events from every model (and its per-task clones) land in
  // the searcher's registry; counter bumps have no floating-point effect,
  // so the bit-exact reproduction paths are unaffected.
  model.set_telemetry(&kernel_telemetry_);
  return model;
}

Result<TopKModel> Metasearcher::BuildModel(const Query& query) const {
  std::shared_ptr<const TrainedState> state = snapshot();
  if (state == nullptr) {
    return Status::FailedPrecondition("Train must be called before serving");
  }
  return BuildModelFromState(*state, query);
}

namespace {

std::string QueryText(const Query& query) {
  if (!query.raw.empty()) return query.raw;
  std::string text;
  for (const std::string& term : query.terms) {
    if (!text.empty()) text.push_back(' ');
    text += term;
  }
  return text;
}

}  // namespace

Result<SelectionReport> Metasearcher::SelectWithPolicy(
    const Query& query, int k, double threshold, ProbingPolicy* policy,
    const Deadline& deadline) const {
  obs::ScopedTimer select_timer(telemetry_.select_latency, clock_);
  // One trace per query while a tracer is installed; this coordinator
  // thread is the only span writer, per QueryTrace's contract.
  std::unique_ptr<obs::QueryTrace> trace;
  if (tracer_ != nullptr) trace = tracer_->StartTrace(QueryText(query));
  auto finish_trace = [this, &trace]() {
    if (trace != nullptr) tracer_->Finish(std::move(trace));
  };

  obs::TraceSpan* estimate_span =
      trace != nullptr ? trace->StartSpan("estimate") : nullptr;
  std::vector<double> estimates = EstimateAll(query);
  if (estimate_span != nullptr) {
    estimate_span->Num("databases", static_cast<double>(estimates.size()));
    trace->EndSpan(estimate_span);
  }

  // BuildModel loads the published snapshot once and derives the
  // per-query RDs from it lock-free; the probing loop below runs on that
  // private model, so an in-flight Train neither blocks this query nor
  // waits behind its probe round-trips.
  obs::TraceSpan* model_span =
      trace != nullptr ? trace->StartSpan("model_build") : nullptr;
  Result<TopKModel> model_result = [this, &query]() {
    obs::ScopedTimer model_timer(telemetry_.model_build_latency, clock_);
    return BuildModel(query);
  }();
  if (!model_result.ok()) {
    finish_trace();
    return model_result.status();
  }
  TopKModel model = std::move(model_result).ValueOrDie();
  if (model_span != nullptr) {
    model_span->Num("databases", static_cast<double>(model.num_databases()));
    trace->EndSpan(model_span);
  }

  AProOptions apro_options;
  apro_options.k = k;
  apro_options.threshold = threshold;
  apro_options.metric = options_.metric;
  apro_options.search_width = options_.search_width;
  apro_options.speculative_batch = options_.speculative_batch;
  apro_options.pool = probe_pool_;
  apro_options.trace = trace.get();
  apro_options.probe_latency = telemetry_.probe_latency;
  apro_options.clock = clock_;
  apro_options.deadline = deadline;
  apro_options.speculative_probes = telemetry_.speculative_probes;
  apro_options.speculative_waste = telemetry_.speculative_waste;
  AdaptiveProber prober(policy, apro_options);
  // With a health tracker installed every probe is timed and classified,
  // and the observed relevancies are kept so the estimate-vs-observation
  // rank agreement can be fed back after the run. Speculative rounds call
  // the probe from pool threads, hence the mutex around the observation
  // list (RecordProbe itself is internally striped).
  Mutex observed_mutex;
  std::vector<std::pair<std::size_t, double>> observed;
  ProbeFn probe = [this, &query, &observed_mutex,
                   &observed](std::size_t db) -> Result<double> {
    if (health_tracker_ == nullptr) {
      return ProbeRelevancy(*databases_[db], query,
                            options_.relevancy_definition);
    }
    const std::uint64_t start_ns = clock_->NowNanos();
    Result<double> result = ProbeRelevancy(*databases_[db], query,
                                           options_.relevancy_definition);
    const double seconds =
        static_cast<double>(clock_->NowNanos() - start_ns) * 1e-9;
    obs::ProbeHealthOutcome outcome;
    if (result.ok()) {
      outcome = obs::ProbeHealthOutcome::kOk;
      MutexLock lock(observed_mutex);
      observed.emplace_back(db, result.ValueOrDie());
    } else {
      outcome = result.status().IsDeadlineExceeded()
                    ? obs::ProbeHealthOutcome::kTimeout
                    : obs::ProbeHealthOutcome::kError;
    }
    health_tracker_->RecordProbe(db, seconds, outcome);
    return result;
  };
  Result<AProResult> apro_result = prober.Run(&model, probe);
  if (!apro_result.ok()) {
    finish_trace();
    return apro_result.status();
  }
  AProResult apro = std::move(apro_result).ValueOrDie();

  SelectionReport report;
  report.databases = std::move(apro.selected);
  for (std::size_t id : report.databases) {
    report.database_names.push_back(databases_[id]->name());
  }
  report.expected_correctness = apro.expected_correctness;
  report.reached_threshold = apro.reached_threshold;
  report.degraded = apro.deadline_expired;
  report.probe_order = std::move(apro.probe_order);
  report.estimates = std::move(estimates);

  if (health_tracker_ != nullptr) {
    // Pairwise concordance between the estimates' order and the observed
    // order, credited to both databases of each pair. Probed sets are small
    // (bounded by the database count), so the quadratic pass is cheap.
    for (std::size_t a = 0; a < observed.size(); ++a) {
      for (std::size_t b = a + 1; b < observed.size(); ++b) {
        const auto& [db_a, r_a] = observed[a];
        const auto& [db_b, r_b] = observed[b];
        const double est_delta =
            report.estimates[db_a] - report.estimates[db_b];
        const double obs_delta = r_a - r_b;
        // Ties on either side are counted concordant: an estimator that
        // says "equal" is not wrong about which side is bigger.
        const bool concordant = est_delta == 0.0 || obs_delta == 0.0 ||
                                (est_delta > 0.0) == (obs_delta > 0.0);
        health_tracker_->RecordRankPair(db_a, concordant);
        health_tracker_->RecordRankPair(db_b, concordant);
      }
    }
    report.unhealthy_databases = health_tracker_->UnhealthyDatabases();
  }

  telemetry_.queries_served->Increment();
  if (report.degraded) telemetry_.queries_degraded->Increment();
  telemetry_.probes_ok->Add(report.probe_order.size());
  telemetry_.probes_failed->Add(apro.failed_probes.size());
  finish_trace();
  return report;
}

Result<SelectionReport> Metasearcher::Select(const Query& query, int k,
                                             double threshold) const {
  return SelectWithPolicy(query, k, threshold, policy_.get(),
                          Deadline::None());
}

Result<SelectionReport> Metasearcher::Select(const Query& query, int k,
                                             double threshold,
                                             const Deadline& deadline) const {
  return SelectWithPolicy(query, k, threshold, policy_.get(), deadline);
}

Result<std::vector<FusedHit>> Metasearcher::SearchWithPolicy(
    const Query& query, int k, double threshold, std::size_t per_database,
    std::size_t max_results, ProbingPolicy* policy,
    const Deadline& deadline) const {
  ASSIGN_OR_RETURN(SelectionReport report,
                   SelectWithPolicy(query, k, threshold, policy, deadline));
  std::vector<std::vector<SearchHit>> lists;
  std::vector<std::string> names;
  FusionOptions fusion = options_.fusion;
  fusion.database_weights.clear();
  for (std::size_t id : report.databases) {
    ASSIGN_OR_RETURN(std::vector<SearchHit> hits,
                     databases_[id]->Search(query, per_database));
    lists.push_back(std::move(hits));
    names.push_back(databases_[id]->name());
    fusion.database_weights.push_back(report.estimates[id]);
  }
  return FuseResults(lists, names, max_results, fusion);
}

Result<std::vector<FusedHit>> Metasearcher::Search(
    const Query& query, int k, double threshold, std::size_t per_database,
    std::size_t max_results) const {
  return SearchWithPolicy(query, k, threshold, per_database, max_results,
                          policy_.get(), Deadline::None());
}

Result<std::vector<FusedHit>> Metasearcher::Search(
    const Query& query, int k, double threshold, std::size_t per_database,
    std::size_t max_results, const Deadline& deadline) const {
  return SearchWithPolicy(query, k, threshold, per_database, max_results,
                          policy_.get(), deadline);
}

namespace {

/// Fans `run(i)` over `pool` for i in [0, count) and collects the results
/// in index order; the first error (by index, deterministically) fails the
/// whole batch. Neither the coordinator nor the tasks hold the state lock
/// across a wait: each task takes it briefly inside BuildModel only.
template <typename T>
Result<std::vector<T>> FanOut(
    ThreadPool* pool, std::size_t count,
    const std::function<Result<T>(std::size_t)>& run) {
  std::vector<std::future<Result<T>>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (pool != nullptr) {
      futures.push_back(pool->Submit([&run, i]() { return run(i); }));
    } else {
      std::promise<Result<T>> ready;
      ready.set_value(run(i));
      futures.push_back(ready.get_future());
    }
  }
  std::vector<T> values;
  values.reserve(count);
  Status first_error = Status::OK();
  for (std::future<Result<T>>& future : futures) {
    Result<T> result = future.get();
    if (!result.ok()) {
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    if (first_error.ok()) values.push_back(std::move(result).ValueOrDie());
  }
  if (!first_error.ok()) return first_error;
  return values;
}

}  // namespace

Result<std::vector<SelectionReport>> Metasearcher::SelectBatch(
    const std::vector<Query>& queries, int k, double threshold,
    ThreadPool* pool) const {
  // One policy clone per in-flight query: stateful policies never see two
  // threads, and a clone of a stateless one behaves identically to the
  // installed instance, keeping batch results equal to sequential ones.
  std::vector<std::unique_ptr<ProbingPolicy>> policies;
  policies.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    policies.push_back(policy_->Clone());
  }
  auto run = [this, &queries, &policies, k,
              threshold](std::size_t i) -> Result<SelectionReport> {
    return SelectWithPolicy(queries[i], k, threshold, policies[i].get(),
                            Deadline::None());
  };
  Result<std::vector<SelectionReport>> reports =
      FanOut<SelectionReport>(pool, queries.size(), run);
  if (reports.ok()) telemetry_.batches_served->Increment();
  return reports;
}

Result<std::vector<std::vector<FusedHit>>> Metasearcher::SearchBatch(
    const std::vector<Query>& queries, int k, double threshold,
    std::size_t per_database, std::size_t max_results,
    ThreadPool* pool) const {
  std::vector<std::unique_ptr<ProbingPolicy>> policies;
  policies.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    policies.push_back(policy_->Clone());
  }
  auto run = [this, &queries, &policies, k, threshold, per_database,
              max_results](std::size_t i) -> Result<std::vector<FusedHit>> {
    return SearchWithPolicy(queries[i], k, threshold, per_database,
                            max_results, policies[i].get(), Deadline::None());
  };
  Result<std::vector<std::vector<FusedHit>>> results =
      FanOut<std::vector<FusedHit>>(pool, queries.size(), run);
  if (results.ok()) telemetry_.batches_served->Increment();
  return results;
}

ServingStats Metasearcher::stats() const {
  ServingStats stats;
  stats.queries_served = telemetry_.queries_served->Value();
  stats.batches_served = telemetry_.batches_served->Value();
  stats.probes_issued = telemetry_.probes_ok->Value();
  stats.probes_failed = telemetry_.probes_failed->Value();
  stats.rd_cache_hits = telemetry_.rd_cache_hits->Value();
  stats.rd_cache_misses = telemetry_.rd_cache_misses->Value();
  std::shared_ptr<const TrainedState> state = snapshot();
  stats.rd_cache_entries = state == nullptr ? 0 : state->rd_cache.entries();
  return stats;
}

void Metasearcher::ResetStats() { registry_.ResetCounters(); }

}  // namespace core
}  // namespace metaprobe
