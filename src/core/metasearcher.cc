#include "core/metasearcher.h"

#include <algorithm>

#include "common/macros.h"

namespace metaprobe {
namespace core {

Metasearcher::Metasearcher(MetasearcherOptions options)
    : options_(std::move(options)),
      classifier_(options_.query_class),
      policy_(std::make_unique<StoppingProbabilityPolicy>()) {
  // The probe primitive and the EDs must agree on the relevancy notion.
  options_.ed_learner.definition = options_.relevancy_definition;
  if (options_.relevancy_definition ==
      RelevancyDefinition::kDocumentSimilarity) {
    estimator_ = std::make_unique<CoverageSimilarityEstimator>();
  } else {
    estimator_ = std::make_unique<TermIndependenceEstimator>();
  }
}

Status Metasearcher::AddDatabase(std::shared_ptr<HiddenWebDatabase> database,
                                 StatSummary summary) {
  if (database == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  if (trained()) {
    return Status::FailedPrecondition(
        "cannot add databases after training; retrain from scratch");
  }
  databases_.push_back(std::move(database));
  summaries_.push_back(std::move(summary));
  return Status::OK();
}

Status Metasearcher::AddLocalDatabase(
    std::shared_ptr<LocalDatabase> database) {
  if (database == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  StatSummary summary =
      StatSummary::FromIndex(database->name(), database->index_for_summaries());
  return AddDatabase(std::move(database), std::move(summary));
}

Status Metasearcher::SetEstimator(
    std::unique_ptr<RelevancyEstimator> estimator) {
  if (estimator == nullptr) {
    return Status::InvalidArgument("estimator must not be null");
  }
  if (trained()) {
    return Status::FailedPrecondition(
        "EDs were learned for the previous estimator; retrain after swapping");
  }
  estimator_ = std::move(estimator);
  return Status::OK();
}

void Metasearcher::SetProbingPolicy(std::unique_ptr<ProbingPolicy> policy) {
  if (policy != nullptr) policy_ = std::move(policy);
}

Status Metasearcher::Train(const std::vector<Query>& training_queries) {
  if (databases_.empty()) {
    return Status::FailedPrecondition("no databases registered");
  }
  if (training_queries.empty()) {
    return Status::InvalidArgument("no training queries supplied");
  }
  EdLearner learner(estimator_.get(), &classifier_, options_.ed_learner);
  std::vector<const HiddenWebDatabase*> dbs;
  std::vector<const StatSummary*> sums;
  for (std::size_t i = 0; i < databases_.size(); ++i) {
    dbs.push_back(databases_[i].get());
    sums.push_back(&summaries_[i]);
  }
  ASSIGN_OR_RETURN(EdTable table, learner.Learn(dbs, sums, training_queries));
  ed_table_ = std::make_unique<EdTable>(std::move(table));
  return Status::OK();
}

std::vector<double> Metasearcher::EstimateAll(const Query& query) const {
  std::vector<double> estimates;
  estimates.reserve(databases_.size());
  for (const StatSummary& summary : summaries_) {
    estimates.push_back(estimator_->Estimate(summary, query));
  }
  return estimates;
}

Result<TopKModel> Metasearcher::BuildModel(const Query& query) const {
  if (!trained()) {
    return Status::FailedPrecondition("Train must be called before serving");
  }
  if (query.empty()) {
    return Status::InvalidArgument("query has no usable keywords");
  }
  std::vector<RelevancyDistribution> rds;
  rds.reserve(databases_.size());
  for (std::size_t i = 0; i < databases_.size(); ++i) {
    double estimate = estimator_->Estimate(summaries_[i], query);
    QueryTypeId type = classifier_.Classify(query, estimate);
    rds.push_back(
        RelevancyDistribution::FromEstimate(estimate, ed_table_->Get(i, type)));
  }
  return TopKModel(std::move(rds));
}

Result<SelectionReport> Metasearcher::Select(const Query& query, int k,
                                             double threshold) const {
  ASSIGN_OR_RETURN(TopKModel model, BuildModel(query));
  AProOptions apro_options;
  apro_options.k = k;
  apro_options.threshold = threshold;
  apro_options.metric = options_.metric;
  apro_options.search_width = options_.search_width;
  AdaptiveProber prober(policy_.get(), apro_options);
  ProbeFn probe = [this, &query](std::size_t db) -> Result<double> {
    return ProbeRelevancy(*databases_[db], query,
                          options_.relevancy_definition);
  };
  ASSIGN_OR_RETURN(AProResult apro, prober.Run(&model, probe));

  SelectionReport report;
  report.databases = std::move(apro.selected);
  for (std::size_t id : report.databases) {
    report.database_names.push_back(databases_[id]->name());
  }
  report.expected_correctness = apro.expected_correctness;
  report.reached_threshold = apro.reached_threshold;
  report.probe_order = std::move(apro.probe_order);
  report.estimates = EstimateAll(query);
  return report;
}

Result<std::vector<FusedHit>> Metasearcher::Search(
    const Query& query, int k, double threshold, std::size_t per_database,
    std::size_t max_results) const {
  ASSIGN_OR_RETURN(SelectionReport report, Select(query, k, threshold));
  std::vector<std::vector<SearchHit>> lists;
  std::vector<std::string> names;
  FusionOptions fusion = options_.fusion;
  fusion.database_weights.clear();
  for (std::size_t id : report.databases) {
    ASSIGN_OR_RETURN(std::vector<SearchHit> hits,
                     databases_[id]->Search(query, per_database));
    lists.push_back(std::move(hits));
    names.push_back(databases_[id]->name());
    fusion.database_weights.push_back(report.estimates[id]);
  }
  return FuseResults(lists, names, max_results, fusion);
}

}  // namespace core
}  // namespace metaprobe
