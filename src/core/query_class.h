// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_QUERY_CLASS_H_
#define METAPROBE_CORE_QUERY_CLASS_H_

#include <cstdint>
#include <string>

#include "core/query.h"

namespace metaprobe {
namespace core {

/// \brief Dense index of a query type; valid values are
/// [0, QueryTypeClassifier::num_types()).
using QueryTypeId = std::uint32_t;

/// \brief Configuration of the query-type decision tree (Section 4.1).
struct QueryClassOptions {
  /// Split queries by keyword count (the estimator errs more on longer
  /// conjunctions). Counts are clamped into [min_terms, max_terms].
  bool split_by_term_count = true;
  int min_terms = 2;
  int max_terms = 3;

  /// Split queries by the magnitude of the initial estimate r_hat(db, q):
  /// below the threshold the database likely lacks the topic (errors skew
  /// negative, true count usually 0); above it keyword correlation usually
  /// pushes the true count higher (errors skew positive). The paper found
  /// 100 an effective threshold empirically.
  bool split_by_estimate = true;
  double estimate_threshold = 100.0;
};

/// \brief Classifies queries into error-homogeneous types, per database.
///
/// One error distribution is learned per (database, type); at query time
/// the classifier routes the query to the ED whose sample queries behaved
/// like it. Classification is database-dependent through `r_hat`: the same
/// query can be high-estimate on PubMed and low-estimate on a sports site.
class QueryTypeClassifier {
 public:
  explicit QueryTypeClassifier(QueryClassOptions options = {});

  /// \brief Type of `query` on a database where it has estimate `r_hat`.
  QueryTypeId Classify(const Query& query, double r_hat) const;

  /// \brief Total number of types this configuration produces.
  std::uint32_t num_types() const;

  /// \brief Human-readable description, e.g. "2-term, r_hat>=100".
  std::string TypeName(QueryTypeId type) const;

  const QueryClassOptions& options() const { return options_; }

 private:
  int NumTermBuckets() const;

  QueryClassOptions options_;
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_QUERY_CLASS_H_
