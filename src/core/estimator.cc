#include "core/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace metaprobe {
namespace core {

double TermIndependenceEstimator::Estimate(const StatSummary& summary,
                                           const Query& query) const {
  if (query.empty() || summary.database_size() == 0) return 0.0;
  const double n = static_cast<double>(summary.database_size());
  double estimate = n;
  for (const std::string& term : query.terms) {
    estimate *= static_cast<double>(summary.DocumentFrequency(term)) / n;
    if (estimate == 0.0) return 0.0;
  }
  return estimate;
}

double MinFrequencyEstimator::Estimate(const StatSummary& summary,
                                       const Query& query) const {
  if (query.empty() || summary.database_size() == 0) return 0.0;
  double min_df = static_cast<double>(summary.database_size());
  for (const std::string& term : query.terms) {
    min_df = std::min(min_df,
                      static_cast<double>(summary.DocumentFrequency(term)));
  }
  return min_df;
}

double CoverageSimilarityEstimator::Estimate(const StatSummary& summary,
                                             const Query& query) const {
  if (query.empty() || summary.database_size() == 0) return 0.0;
  const double n = static_cast<double>(summary.database_size());
  double covered = 0.0;
  double total = 0.0;
  for (const std::string& term : query.terms) {
    double df = static_cast<double>(summary.DocumentFrequency(term));
    double weight = std::log(1.0 + n / (df + 1.0));
    total += weight * weight;
    if (df > 0.0) covered += weight * weight;
  }
  if (total <= 0.0) return 0.0;
  return std::sqrt(covered / total);
}

BlendedEstimator::BlendedEstimator(double alpha)
    : alpha_(std::clamp(alpha, 0.0, 1.0)) {}

std::string BlendedEstimator::name() const {
  return "blended(alpha=" + FormatDouble(alpha_, 2) + ")";
}

double BlendedEstimator::Estimate(const StatSummary& summary,
                                  const Query& query) const {
  double indep = independence_.Estimate(summary, query);
  double upper = min_freq_.Estimate(summary, query);
  if (indep <= 0.0 || upper <= 0.0) return 0.0;
  return std::pow(upper, alpha_) * std::pow(indep, 1.0 - alpha_);
}

}  // namespace core
}  // namespace metaprobe
