// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_QUERY_H_
#define METAPROBE_CORE_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/analyzer.h"

namespace metaprobe {
namespace core {

/// \brief A keyword query as the metasearcher sees it.
///
/// `terms` are the analyzed (lowercased, stopped, stemmed) keywords that the
/// databases match conjunctively; `raw` preserves the user's original text
/// for display. Construct via `ParseQuery` so that queries and indexed
/// documents share the same analysis.
struct Query {
  std::vector<std::string> terms;
  std::string raw;

  std::size_t num_terms() const { return terms.size(); }
  bool empty() const { return terms.empty(); }

  bool operator==(const Query& other) const { return terms == other.terms; }
};

/// \brief Analyzes raw user text ("Breast CANCER treatments") into a Query.
inline Query ParseQuery(const text::Analyzer& analyzer, std::string_view raw) {
  Query q;
  q.raw = std::string(raw);
  q.terms = analyzer.Analyze(raw);
  return q;
}

/// \brief Canonical key for deduplicating queries (sorted terms joined).
std::string QueryKey(const Query& query);

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_QUERY_H_
