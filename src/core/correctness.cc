#include "core/correctness.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "common/macros.h"

namespace metaprobe {
namespace core {

const char* CorrectnessMetricName(CorrectnessMetric metric) {
  switch (metric) {
    case CorrectnessMetric::kAbsolute:
      return "absolute";
    case CorrectnessMetric::kPartial:
      return "partial";
  }
  return "?";
}

TopKModel::TopKModel(std::vector<RelevancyDistribution> rds) {
  dists_.reserve(rds.size());
  probed_.reserve(rds.size());
  std::size_t n = rds.size();
  for (std::size_t i = 0; i < n; ++i) {
    double bias = static_cast<double>(n - i) * kTieEpsilon;
    dists_.push_back(
        rds[i].dist.MapValues([bias](double v) { return v + bias; }));
    probed_.push_back(rds[i].probed);
  }
}

std::size_t TopKModel::num_probed() const {
  std::size_t count = 0;
  for (bool p : probed_) count += p ? 1 : 0;
  return count;
}

void TopKModel::Observe(std::size_t i, double actual) {
  METAPROBE_DCHECK(i < dists_.size(), "Observe index out of range");
  dists_[i] = stats::DiscreteDistribution::Impulse(actual + Bias(i));
  probed_[i] = true;
}

std::vector<double> TopKModel::MembershipProbabilities(int k) const {
  const std::size_t n = dists_.size();
  std::vector<double> result(n, 1.0);
  if (k <= 0) {
    std::fill(result.begin(), result.end(), 0.0);
    return result;
  }
  if (static_cast<std::size_t>(k) >= n) return result;

  std::vector<double> dp(static_cast<std::size_t>(k), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double p_in = 0.0;
    for (const stats::Atom& atom : dists_[i].atoms()) {
      // Poisson-binomial DP over the other databases: dp[c] = probability
      // that exactly c of them exceed atom.value; mass reaching c == k is
      // dropped (absorbed by "not in top-k").
      std::fill(dp.begin(), dp.end(), 0.0);
      dp[0] = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        double q = dists_[j].PrGreaterThan(atom.value);
        if (q <= 0.0) continue;
        for (int c = k - 1; c >= 1; --c) {
          dp[c] = dp[c] * (1.0 - q) + dp[c - 1] * q;
        }
        dp[0] *= (1.0 - q);
      }
      double pr_at_most_k_minus_1 =
          std::accumulate(dp.begin(), dp.end(), 0.0);
      p_in += atom.prob * pr_at_most_k_minus_1;
    }
    result[i] = std::min(p_in, 1.0);
  }
  return result;
}

double TopKModel::PrExactTopSet(const std::vector<std::size_t>& set) const {
  const std::size_t n = dists_.size();
  if (set.empty()) return 0.0;
  if (set.size() >= n) return 1.0;

  // Candidate thresholds: every support value of the set's members (the
  // minimum over the set must land on one of them).
  std::vector<double> thresholds;
  for (std::size_t s : set) {
    METAPROBE_DCHECK(s < n, "set member out of range");
    for (const stats::Atom& atom : dists_[s].atoms()) {
      thresholds.push_back(atom.value);
    }
  }
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  std::vector<bool> in_set(n, false);
  for (std::size_t s : set) in_set[s] = true;

  double total = 0.0;
  for (double v : thresholds) {
    // Pr(min over set == v) = prod Pr(X_s >= v) - prod Pr(X_s > v).
    double pr_all_ge = 1.0;
    double pr_all_gt = 1.0;
    for (std::size_t s : set) {
      pr_all_ge *= dists_[s].PrAtLeast(v);
      pr_all_gt *= dists_[s].PrGreaterThan(v);
      if (pr_all_ge <= 0.0) break;
    }
    double pr_min_eq = pr_all_ge - pr_all_gt;
    if (pr_min_eq <= 0.0) continue;
    // Every non-member must fall strictly below v.
    double pr_others_below = 1.0;
    for (std::size_t j = 0; j < n && pr_others_below > 0.0; ++j) {
      if (!in_set[j]) pr_others_below *= dists_[j].PrLessThan(v);
    }
    total += pr_min_eq * pr_others_below;
  }
  return std::clamp(total, 0.0, 1.0);
}

double TopKModel::ExpectedPartialCorrectness(
    const std::vector<std::size_t>& set) const {
  if (set.empty()) return 0.0;
  std::vector<double> marginals =
      MembershipProbabilities(static_cast<int>(set.size()));
  double sum = 0.0;
  for (std::size_t s : set) sum += marginals[s];
  return sum / static_cast<double>(set.size());
}

double TopKModel::ExpectedCorrectness(const std::vector<std::size_t>& set,
                                      CorrectnessMetric metric) const {
  switch (metric) {
    case CorrectnessMetric::kAbsolute:
      return PrExactTopSet(set);
    case CorrectnessMetric::kPartial:
      return ExpectedPartialCorrectness(set);
  }
  return 0.0;
}

namespace {

// Enumerates k-subsets of `candidates`, invoking fn(subset).
void ForEachSubset(const std::vector<std::size_t>& candidates, std::size_t k,
                   std::size_t start, std::vector<std::size_t>* current,
                   const std::function<void(const std::vector<std::size_t>&)>& fn) {
  if (current->size() == k) {
    fn(*current);
    return;
  }
  std::size_t needed = k - current->size();
  for (std::size_t i = start; i + needed <= candidates.size(); ++i) {
    current->push_back(candidates[i]);
    ForEachSubset(candidates, k, i + 1, current, fn);
    current->pop_back();
  }
}

}  // namespace

TopKModel::BestSet TopKModel::FindBestSet(int k, CorrectnessMetric metric,
                                          int search_width) const {
  const std::size_t n = dists_.size();
  BestSet best;
  if (k <= 0 || n == 0) return best;
  if (static_cast<std::size_t>(k) >= n) {
    best.members.resize(n);
    std::iota(best.members.begin(), best.members.end(), 0);
    best.expected_correctness = 1.0;
    return best;
  }

  std::vector<double> marginals = MembershipProbabilities(k);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (marginals[a] != marginals[b]) return marginals[a] > marginals[b];
    return a < b;
  });

  if (metric == CorrectnessMetric::kPartial) {
    // E[Cor_p] of a set is the mean of its members' membership
    // probabilities, so the top-k by marginal is exactly optimal.
    best.members.assign(order.begin(), order.begin() + k);
    double sum = 0.0;
    for (std::size_t s : best.members) sum += marginals[s];
    best.expected_correctness = sum / static_cast<double>(k);
    std::sort(best.members.begin(), best.members.end());
    return best;
  }

  // Absolute metric: search k-subsets of the most probable members.
  std::size_t pool = std::min(
      n, static_cast<std::size_t>(k) + static_cast<std::size_t>(
                                           std::max(search_width, 0)));
  std::vector<std::size_t> candidates(order.begin(), order.begin() + pool);
  best.expected_correctness = -1.0;
  std::vector<std::size_t> scratch;
  ForEachSubset(candidates, static_cast<std::size_t>(k), 0, &scratch,
                [&](const std::vector<std::size_t>& subset) {
                  double p = PrExactTopSet(subset);
                  if (p > best.expected_correctness) {
                    best.expected_correctness = p;
                    best.members = subset;
                  }
                });
  std::sort(best.members.begin(), best.members.end());
  return best;
}

TopKModel::ScopedCondition::ScopedCondition(TopKModel* model, std::size_t i,
                                            double adjusted_value)
    : model_(model), index_(i), saved_(model->dists_[i]) {
  model_->dists_[i] = stats::DiscreteDistribution::Impulse(adjusted_value);
}

TopKModel::ScopedCondition::~ScopedCondition() {
  model_->dists_[index_] = std::move(saved_);
}

std::vector<std::size_t> TopKModel::SampleRanking(stats::Rng* rng) const {
  const std::size_t n = dists_.size();
  std::vector<double> sampled(n);
  for (std::size_t i = 0; i < n; ++i) sampled[i] = dists_[i].Sample(rng);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (sampled[a] != sampled[b]) return sampled[a] > sampled[b];
    return a < b;
  });
  return order;
}

double MonteCarloExpectedCorrectness(const TopKModel& model,
                                     const std::vector<std::size_t>& set,
                                     CorrectnessMetric metric,
                                     std::size_t num_samples,
                                     stats::Rng* rng) {
  if (num_samples == 0 || set.empty()) return 0.0;
  const int k = static_cast<int>(set.size());
  std::vector<std::size_t> sorted_set = set;
  std::sort(sorted_set.begin(), sorted_set.end());
  double total = 0.0;
  for (std::size_t s = 0; s < num_samples; ++s) {
    std::vector<std::size_t> ranking = model.SampleRanking(rng);
    std::vector<std::size_t> topk(ranking.begin(), ranking.begin() + k);
    std::sort(topk.begin(), topk.end());
    total += metric == CorrectnessMetric::kAbsolute
                 ? AbsoluteCorrectness(sorted_set, topk)
                 : PartialCorrectness(sorted_set, topk);
  }
  return total / static_cast<double>(num_samples);
}

std::vector<std::size_t> TopKIndices(const std::vector<double>& values,
                                     int k) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] > values[b];
    return a < b;  // lower index wins ties
  });
  order.resize(std::min<std::size_t>(order.size(),
                                     static_cast<std::size_t>(std::max(k, 0))));
  std::sort(order.begin(), order.end());
  return order;
}

double AbsoluteCorrectness(const std::vector<std::size_t>& selected,
                           const std::vector<std::size_t>& actual_topk) {
  std::vector<std::size_t> a = selected;
  std::vector<std::size_t> b = actual_topk;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b ? 1.0 : 0.0;
}

double PartialCorrectness(const std::vector<std::size_t>& selected,
                          const std::vector<std::size_t>& actual_topk) {
  if (selected.empty()) return 0.0;
  std::vector<std::size_t> a = selected;
  std::vector<std::size_t> b = actual_topk;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<std::size_t> overlap;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(overlap));
  return static_cast<double>(overlap.size()) /
         static_cast<double>(selected.size());
}

}  // namespace core
}  // namespace metaprobe
