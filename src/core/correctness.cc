#include "core/correctness.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "common/macros.h"
#include "obs/metric_registry.h"

namespace metaprobe {
namespace core {

namespace {

// Telemetry counters are optional at two levels (no struct, null counter);
// every bump site funnels through here so the disabled path is one branch.
inline void Bump(obs::Counter* counter, std::uint64_t n = 1) {
  if (counter != nullptr && n > 0) counter->Add(n);
}

}  // namespace

const char* CorrectnessMetricName(CorrectnessMetric metric) {
  switch (metric) {
    case CorrectnessMetric::kAbsolute:
      return "absolute";
    case CorrectnessMetric::kPartial:
      return "partial";
  }
  return "?";
}

TopKModel::TopKModel(std::vector<RelevancyDistribution> rds) {
  dists_.reserve(rds.size());
  probed_.reserve(rds.size());
  std::size_t n = rds.size();
  for (std::size_t i = 0; i < n; ++i) {
    double bias = static_cast<double>(n - i) * kTieEpsilon;
    dists_.push_back(
        rds[i].dist.MapValues([bias](double v) { return v + bias; }));
    probed_.push_back(rds[i].probed);
  }
}

std::size_t TopKModel::num_probed() const {
  std::size_t count = 0;
  for (bool p : probed_) count += p ? 1 : 0;
  return count;
}

void TopKModel::Observe(std::size_t i, double actual) {
  METAPROBE_DCHECK(i < dists_.size(), "Observe index out of range");
  dists_[i] = stats::DiscreteDistribution::Impulse(actual + Bias(i));
  probed_[i] = true;
  // The observed value is usually off-grid, so EnsureCache's dirty-row check
  // escalates to a full rebuild on the next evaluation.
  InvalidateDb(i);
}

// ------------------------------------------------------------ kernel cache

void TopKModel::InvalidateDb(std::size_t i) const {
  cache_.marginals_k = -1;
  if (cache_.valid) {
    cache_.dirty[i] = true;
    cache_.any_dirty = true;
  }
}

void TopKModel::RecomputeRow(std::size_t i) const {
  KernelCache& c = cache_;
  const std::size_t g_size = c.grid.size();
  dists_[i].FillTailTables(c.grid, &c.tail_ge[i * g_size],
                           &c.tail_gt[i * g_size]);
  std::vector<std::uint32_t>& index = c.atom_index[i];
  index.clear();
  auto git = c.grid.begin();
  for (const stats::Atom& a : dists_[i].atoms()) {
    git = std::lower_bound(git, c.grid.end(), a.value);
    METAPROBE_DCHECK(git != c.grid.end() && *git == a.value,
                     "support value missing from kernel grid");
    index.push_back(static_cast<std::uint32_t>(git - c.grid.begin()));
  }
}

void TopKModel::RebuildCache() const {
  KernelCache& c = cache_;
  const std::size_t n = dists_.size();
  c.grid.clear();
  for (const stats::DiscreteDistribution& dist : dists_) {
    for (const stats::Atom& a : dist.atoms()) c.grid.push_back(a.value);
  }
  std::sort(c.grid.begin(), c.grid.end());
  c.grid.erase(std::unique(c.grid.begin(), c.grid.end()), c.grid.end());
  const std::size_t g_size = c.grid.size();
  c.tail_ge.assign(n * g_size, 0.0);
  c.tail_gt.assign(n * g_size, 0.0);
  c.atom_index.resize(n);
  c.dirty.assign(n, false);
  c.any_dirty = false;
  c.marginals_k = -1;
  for (std::size_t i = 0; i < n; ++i) RecomputeRow(i);
  ++c.generation;
  c.valid = true;
  if (telemetry_ != nullptr) Bump(telemetry_->full_rebuilds);
}

void TopKModel::EnsureCache() const {
  if (!cache_.valid) {
    RebuildCache();
    return;
  }
  if (!cache_.any_dirty) return;
  // Row-level repair is only possible while every stale database's support
  // still lies on the grid (ScopedCondition pins to existing grid points;
  // Observe typically introduces a new value and lands in the else branch).
  for (std::size_t i = 0; i < dists_.size(); ++i) {
    if (!cache_.dirty[i]) continue;
    for (const stats::Atom& a : dists_[i].atoms()) {
      auto it = std::lower_bound(cache_.grid.begin(), cache_.grid.end(),
                                 a.value);
      if (it == cache_.grid.end() || *it != a.value) {
        RebuildCache();
        return;
      }
    }
  }
  std::uint64_t repaired = 0;
  for (std::size_t i = 0; i < dists_.size(); ++i) {
    if (cache_.dirty[i]) {
      RecomputeRow(i);
      cache_.dirty[i] = false;
      ++repaired;
    }
  }
  cache_.any_dirty = false;
  if (telemetry_ != nullptr) Bump(telemetry_->row_repairs, repaired);
}

namespace {

// Truncated Poisson-binomial DP helpers. dp[c] = Pr(exactly c successes)
// for c < k; mass at >= k is dropped (absorbed by "not in top-k").

// Folds one Bernoulli(q) into dp. Numerically benign: a convex average.
inline void AddBernoulli(double* dp, std::size_t k, double q) {
  for (std::size_t c = k; c-- > 1;) {
    dp[c] = dp[c] * (1.0 - q) + dp[c - 1] * q;
  }
  dp[0] *= (1.0 - q);
}

// Inverse of AddBernoulli (bottom-up deconvolution):
//   out[c] = (dp[c] - out[c-1] * q) / (1 - q).
// Divides by (1 - q), so existing error is amplified by ~1/(1 - 2q);
// callers gate on q before using it (DESIGN.md §9 derives the thresholds).
inline void RemoveBernoulli(const double* dp, std::size_t k, double q,
                            double* out) {
  const double r = 1.0 / (1.0 - q);
  out[0] = dp[0] * r;
  for (std::size_t c = 1; c < k; ++c) {
    out[c] = (dp[c] - out[c - 1] * q) * r;
  }
}

// Direct DP over every q[j] except j == skip (pass q.size() to skip none).
inline void BuildDp(const std::vector<double>& q, std::size_t skip,
                    std::size_t k, double* dp) {
  std::fill(dp, dp + k, 0.0);
  dp[0] = 1.0;
  for (std::size_t j = 0; j < q.size(); ++j) {
    if (j == skip || q[j] <= 0.0) continue;
    AddBernoulli(dp, k, q[j]);
  }
}

// Enumerates k-subsets of `candidates`, invoking fn(subset).
void ForEachSubset(const std::vector<std::size_t>& candidates, std::size_t k,
                   std::size_t start, std::vector<std::size_t>* current,
                   const std::function<void(const std::vector<std::size_t>&)>& fn) {
  if (current->size() == k) {
    fn(*current);
    return;
  }
  std::size_t needed = k - current->size();
  for (std::size_t i = start; i + needed <= candidates.size(); ++i) {
    current->push_back(candidates[i]);
    ForEachSubset(candidates, k, i + 1, current, fn);
    current->pop_back();
  }
}

}  // namespace

std::vector<double> TopKModel::MembershipProbabilities(int k) const {
  const std::size_t n = dists_.size();
  std::vector<double> result(n, 1.0);
  if (k <= 0) {
    std::fill(result.begin(), result.end(), 0.0);
    return result;
  }
  if (static_cast<std::size_t>(k) >= n) return result;
  EnsureCache();
  KernelCache& c = cache_;
  if (c.marginals_k == k) {
    if (telemetry_ != nullptr) Bump(telemetry_->marginals_memo_hits);
    return c.marginals;
  }

  const std::size_t kk = static_cast<std::size_t>(k);
  const std::size_t g_size = c.grid.size();

  // CSR reverse index: the (database, atom prob) pairs sitting at each grid
  // point. Distinct databases share a grid point only when conditioning
  // makes two adjusted values collide, but the layout handles it anyway.
  c.entry_start.assign(g_size + 1, 0);
  std::size_t total_atoms = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t g : c.atom_index[i]) ++c.entry_start[g + 1];
    total_atoms += c.atom_index[i].size();
  }
  for (std::size_t g = 0; g < g_size; ++g) {
    c.entry_start[g + 1] += c.entry_start[g];
  }
  c.entry_db.resize(total_atoms);
  c.entry_prob.resize(total_atoms);
  c.scratch_u32.assign(c.entry_start.begin(), c.entry_start.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<stats::Atom>& atoms = dists_[i].atoms();
    for (std::size_t a = 0; a < atoms.size(); ++a) {
      std::uint32_t pos = c.scratch_u32[c.atom_index[i][a]]++;
      c.entry_db[pos] = static_cast<std::uint32_t>(i);
      c.entry_prob[pos] = atoms[a].prob;
    }
  }

  // Leave-one-out sweep (DESIGN.md §9): walk the grid top-down maintaining
  // dp = PoissonBinomial({q_j = Pr(X_j > v)}) truncated below k. At a grid
  // point carrying database i's atom, deconvolving q_i out of dp yields the
  // "others" DP the membership integrand needs; afterwards the atom's mass
  // moves into q_i (it counts as "exceeding" for all lower thresholds).
  //
  // Numerical policy: deconvolution divides by (1 - q) and amplifies error
  // by ~1/(1 - 2q) per entry, so (a) query removals fall back to the direct
  // DP once q exceeds a k-aware bound, (b) update removals only run while
  // q <= 0.25 and a running amplification product triggers a fresh rebuild
  // of dp before accumulated error can reach the 1e-12 equivalence budget.
  const double query_q_max =
      1.0 - std::pow(10.0, -1.5 / static_cast<double>(kk));
  const double update_q_max = 0.25;
  const double err_cap = 32.0;
  double err_scale = 1.0;
  // Local tally, published once after the sweep: the hot loop must not pay
  // even a sharded atomic per fallback.
  std::uint64_t dp_fallbacks = 0;

  c.q.assign(n, 0.0);
  c.dp.assign(kk, 0.0);
  c.dp[0] = 1.0;
  c.loo.resize(kk);
  c.dp_scratch.resize(kk);
  std::fill(result.begin(), result.end(), 0.0);

  for (std::size_t g = g_size; g-- > 0;) {
    const std::uint32_t begin = c.entry_start[g];
    const std::uint32_t end = c.entry_start[g + 1];
    // Queries first: dp still excludes the atoms at this grid point, so
    // q_j == Pr(X_j > grid[g]) for every j, exactly what the naive kernel
    // evaluates at this threshold.
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::size_t i = c.entry_db[e];
      const double qi = c.q[i];
      if (qi <= 0.0) {
        std::copy(c.dp.begin(), c.dp.end(), c.loo.begin());
      } else if (qi < query_q_max) {
        RemoveBernoulli(c.dp.data(), kk, qi, c.loo.data());
      } else {
        BuildDp(c.q, i, kk, c.loo.data());
        ++dp_fallbacks;
      }
      double pr_at_most = 0.0;
      for (std::size_t cc = 0; cc < kk; ++cc) pr_at_most += c.loo[cc];
      result[i] += c.entry_prob[e] * pr_at_most;
    }
    // Updates: fold the atoms at this grid point into their databases' q.
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::size_t i = c.entry_db[e];
      const double q_old = c.q[i];
      const double q_new = q_old + c.entry_prob[e];
      if (q_old <= 0.0) {
        AddBernoulli(c.dp.data(), kk, q_new);
        c.q[i] = q_new;
      } else if (q_old < update_q_max) {
        RemoveBernoulli(c.dp.data(), kk, q_old, c.dp_scratch.data());
        AddBernoulli(c.dp_scratch.data(), kk, q_new);
        std::copy(c.dp_scratch.begin(), c.dp_scratch.end(), c.dp.begin());
        c.q[i] = q_new;
        err_scale *= 1.0 / (1.0 - 2.0 * q_old);
        if (err_scale > err_cap) {
          BuildDp(c.q, n, kk, c.dp.data());
          err_scale = 1.0;
          ++dp_fallbacks;
        }
      } else {
        c.q[i] = q_new;
        BuildDp(c.q, n, kk, c.dp.data());
        err_scale = 1.0;
        ++dp_fallbacks;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) result[i] = std::min(result[i], 1.0);
  if (telemetry_ != nullptr) Bump(telemetry_->dp_fallbacks, dp_fallbacks);
  c.marginals_k = k;
  c.marginals = result;
  return result;
}

double TopKModel::PrExactTopSet(const std::vector<std::size_t>& set) const {
  const std::size_t n = dists_.size();
  if (set.empty()) return 0.0;
  if (set.size() >= n) return 1.0;
  EnsureCache();
  const KernelCache& c = cache_;
  const std::size_t g_size = c.grid.size();

  // Candidate thresholds: every support point of the set's members (the
  // minimum over the set must land on one of them), as grid indices.
  std::vector<std::uint32_t> thresholds;
  std::vector<char> in_set(n, 0);
  for (std::size_t s : set) {
    METAPROBE_DCHECK(s < n, "set member out of range");
    in_set[s] = 1;
    thresholds.insert(thresholds.end(), c.atom_index[s].begin(),
                      c.atom_index[s].end());
  }
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  double total = 0.0;
  for (std::uint32_t g : thresholds) {
    // Pr(min over set == v) = prod Pr(X_s >= v) - prod Pr(X_s > v).
    double pr_all_ge = 1.0;
    double pr_all_gt = 1.0;
    for (std::size_t s : set) {
      pr_all_ge *= c.tail_ge[s * g_size + g];
      pr_all_gt *= c.tail_gt[s * g_size + g];
    }
    double pr_min_eq = pr_all_ge - pr_all_gt;
    if (pr_min_eq <= 0.0) continue;
    // Every non-member must fall strictly below v.
    double pr_others_below = 1.0;
    for (std::size_t j = 0; j < n && pr_others_below > 0.0; ++j) {
      if (!in_set[j]) pr_others_below *= 1.0 - c.tail_ge[j * g_size + g];
    }
    total += pr_min_eq * pr_others_below;
  }
  return std::clamp(total, 0.0, 1.0);
}

double TopKModel::ExpectedPartialCorrectness(
    const std::vector<std::size_t>& set) const {
  if (set.empty()) return 0.0;
  return ExpectedPartialCorrectness(
      set, MembershipProbabilities(static_cast<int>(set.size())));
}

double TopKModel::ExpectedPartialCorrectness(
    const std::vector<std::size_t>& set,
    const std::vector<double>& marginals) const {
  if (set.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t s : set) sum += marginals[s];
  return sum / static_cast<double>(set.size());
}

double TopKModel::ExpectedCorrectness(const std::vector<std::size_t>& set,
                                      CorrectnessMetric metric) const {
  switch (metric) {
    case CorrectnessMetric::kAbsolute:
      return PrExactTopSet(set);
    case CorrectnessMetric::kPartial:
      return ExpectedPartialCorrectness(set);
  }
  return 0.0;
}

TopKModel::BestSet TopKModel::FindBestSet(int k, CorrectnessMetric metric,
                                          int search_width) const {
  const std::size_t n = dists_.size();
  BestSet best;
  if (k <= 0 || n == 0) return best;
  if (static_cast<std::size_t>(k) >= n) {
    best.members.resize(n);
    std::iota(best.members.begin(), best.members.end(), 0);
    best.expected_correctness = 1.0;
    return best;
  }

  std::vector<double> marginals = MembershipProbabilities(k);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (marginals[a] != marginals[b]) return marginals[a] > marginals[b];
    return a < b;
  });

  if (metric == CorrectnessMetric::kPartial) {
    // E[Cor_p] of a set is the mean of its members' membership
    // probabilities, so the top-k by marginal is exactly optimal.
    best.members.assign(order.begin(), order.begin() + k);
    best.expected_correctness =
        ExpectedPartialCorrectness(best.members, marginals);
    std::sort(best.members.begin(), best.members.end());
    return best;
  }

  // Absolute metric: search k-subsets of the most probable members.
  std::size_t pool = std::min(
      n, static_cast<std::size_t>(k) + static_cast<std::size_t>(
                                           std::max(search_width, 0)));
  std::vector<std::size_t> candidates(order.begin(), order.begin() + pool);

  // Subset scoring runs on the kernel cache in O(k) per threshold: the
  // product of Pr(X_j < v) over ALL databases is precomputed per grid point
  // (zero factors counted separately so they can be divided back out), and
  // a subset's "everyone else falls below v" term is that product with the
  // subset's own k factors divided out.
  KernelCache& c = cache_;
  const std::size_t g_size = c.grid.size();
  c.all_prod.assign(g_size, 1.0);
  c.all_zero.assign(g_size, 0);
  for (std::size_t j = 0; j < n; ++j) {
    const double* ge = &c.tail_ge[j * g_size];
    for (std::size_t g = 0; g < g_size; ++g) {
      const double lt = 1.0 - ge[g];
      if (lt <= 0.0) {
        ++c.all_zero[g];
      } else {
        c.all_prod[g] *= lt;
      }
    }
  }

  best.expected_correctness = -1.0;
  std::vector<std::size_t> scratch;
  ForEachSubset(
      candidates, static_cast<std::size_t>(k), 0, &scratch,
      [&](const std::vector<std::size_t>& subset) {
        // Thresholds: union of the members' support points (off-support
        // grid values contribute Pr(min == v) = 0 and can be skipped).
        std::vector<std::uint32_t>& thresholds = c.scratch_u32;
        thresholds.clear();
        for (std::size_t s : subset) {
          thresholds.insert(thresholds.end(), c.atom_index[s].begin(),
                            c.atom_index[s].end());
        }
        std::sort(thresholds.begin(), thresholds.end());
        thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                         thresholds.end());
        double total = 0.0;
        for (std::uint32_t g : thresholds) {
          double pr_all_ge = 1.0;
          double pr_all_gt = 1.0;
          for (std::size_t s : subset) {
            pr_all_ge *= c.tail_ge[s * g_size + g];
            pr_all_gt *= c.tail_gt[s * g_size + g];
          }
          const double pr_min_eq = pr_all_ge - pr_all_gt;
          if (pr_min_eq <= 0.0) continue;
          std::uint32_t zeros = c.all_zero[g];
          double member_prod = 1.0;
          for (std::size_t s : subset) {
            const double lt = 1.0 - c.tail_ge[s * g_size + g];
            if (lt <= 0.0) {
              --zeros;
            } else {
              member_prod *= lt;
            }
          }
          if (zeros > 0) continue;  // some non-member never falls below v
          double pr_others_below;
          if (member_prod > 1e-290) {
            pr_others_below = c.all_prod[g] / member_prod;
          } else {
            // Underflow guard: recompute the complement product directly.
            pr_others_below = 1.0;
            for (std::size_t j = 0; j < n; ++j) {
              if (std::find(subset.begin(), subset.end(), j) ==
                  subset.end()) {
                pr_others_below *= 1.0 - c.tail_ge[j * g_size + g];
              }
            }
          }
          total += pr_min_eq * pr_others_below;
        }
        total = std::clamp(total, 0.0, 1.0);
        if (total > best.expected_correctness) {
          best.expected_correctness = total;
          best.members = subset;
        }
      });
  std::sort(best.members.begin(), best.members.end());
  return best;
}

TopKModel::ScopedCondition::ScopedCondition(TopKModel* model, std::size_t i,
                                            double adjusted_value)
    : model_(model), index_(i) {
  // Swap (not copy) the RD out; the saved distribution goes back in the
  // destructor, so no atom vector is ever duplicated.
  using std::swap;
  swap(saved_, model_->dists_[i]);
  model_->dists_[i] = stats::DiscreteDistribution::Impulse(adjusted_value);
  KernelCache& c = model_->cache_;
  c.marginals_k = -1;
  if (c.valid && !c.dirty[i]) {
    auto it = std::lower_bound(c.grid.begin(), c.grid.end(), adjusted_value);
    if (it != c.grid.end() && *it == adjusted_value) {
      // Fast path: the pinned value is a grid point (it always is when the
      // caller pins to a SupportOf value), so the grid stays valid and only
      // this database's tail row changes. Save the row, overwrite it with
      // the impulse pattern, restore on destruction.
      const std::size_t g_size = c.grid.size();
      const std::size_t idx =
          static_cast<std::size_t>(it - c.grid.begin());
      fast_restore_ = true;
      generation_ = c.generation;
      double* ge = &c.tail_ge[i * g_size];
      double* gt = &c.tail_gt[i * g_size];
      saved_ge_.assign(ge, ge + g_size);
      saved_gt_.assign(gt, gt + g_size);
      saved_atom_index_ = std::move(c.atom_index[i]);
      std::fill(ge, ge + idx + 1, 1.0);
      std::fill(ge + idx + 1, ge + g_size, 0.0);
      std::fill(gt, gt + idx, 1.0);
      std::fill(gt + idx, gt + g_size, 0.0);
      c.atom_index[i] = {static_cast<std::uint32_t>(idx)};
      if (model_->telemetry_ != nullptr) {
        Bump(model_->telemetry_->fast_restores);
      }
      return;
    }
  }
  model_->InvalidateDb(i);
}

TopKModel::ScopedCondition::~ScopedCondition() {
  model_->dists_[index_] = std::move(saved_);
  KernelCache& c = model_->cache_;
  c.marginals_k = -1;
  if (fast_restore_ && c.valid && c.generation == generation_) {
    const std::size_t g_size = c.grid.size();
    std::copy(saved_ge_.begin(), saved_ge_.end(),
              &c.tail_ge[index_ * g_size]);
    std::copy(saved_gt_.begin(), saved_gt_.end(),
              &c.tail_gt[index_ * g_size]);
    c.atom_index[index_] = std::move(saved_atom_index_);
    // If something inside the scope marked this row dirty (e.g. a nested
    // Observe), the flag survives and EnsureCache recomputes the row from
    // the restored RD — the restore above is then merely redundant.
  } else {
    model_->InvalidateDb(index_);
  }
}

std::vector<std::size_t> TopKModel::SampleRanking(stats::Rng* rng) const {
  std::vector<double> sampled;
  std::vector<std::size_t> order;
  SampleRankingInto(rng, &sampled, &order);
  return order;
}

void TopKModel::SampleRankingInto(stats::Rng* rng,
                                  std::vector<double>* sampled,
                                  std::vector<std::size_t>* order) const {
  const std::size_t n = dists_.size();
  sampled->resize(n);
  for (std::size_t i = 0; i < n; ++i) (*sampled)[i] = dists_[i].Sample(rng);
  order->resize(n);
  std::iota(order->begin(), order->end(), 0);
  std::sort(order->begin(), order->end(), [&](std::size_t a, std::size_t b) {
    if ((*sampled)[a] != (*sampled)[b]) return (*sampled)[a] > (*sampled)[b];
    return a < b;
  });
}

double MonteCarloExpectedCorrectness(const TopKModel& model,
                                     const std::vector<std::size_t>& set,
                                     CorrectnessMetric metric,
                                     std::size_t num_samples,
                                     stats::Rng* rng) {
  if (num_samples == 0 || set.empty()) return 0.0;
  const std::size_t k = set.size();
  std::vector<std::size_t> sorted_set = set;
  std::sort(sorted_set.begin(), sorted_set.end());
  // Scratch reused across samples: the per-sample draw/sort used to
  // allocate three vectors per iteration.
  std::vector<double> sampled;
  std::vector<std::size_t> ranking;
  std::vector<std::size_t> topk;
  std::vector<std::size_t> overlap;
  double total = 0.0;
  for (std::size_t s = 0; s < num_samples; ++s) {
    model.SampleRankingInto(rng, &sampled, &ranking);
    topk.assign(ranking.begin(), ranking.begin() + k);
    std::sort(topk.begin(), topk.end());
    if (metric == CorrectnessMetric::kAbsolute) {
      total += sorted_set == topk ? 1.0 : 0.0;
    } else {
      overlap.clear();
      std::set_intersection(sorted_set.begin(), sorted_set.end(),
                            topk.begin(), topk.end(),
                            std::back_inserter(overlap));
      total += static_cast<double>(overlap.size()) /
               static_cast<double>(sorted_set.size());
    }
  }
  return total / static_cast<double>(num_samples);
}

std::vector<std::size_t> TopKIndices(const std::vector<double>& values,
                                     int k) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] > values[b];
    return a < b;  // lower index wins ties
  });
  order.resize(std::min<std::size_t>(order.size(),
                                     static_cast<std::size_t>(std::max(k, 0))));
  std::sort(order.begin(), order.end());
  return order;
}

double AbsoluteCorrectness(const std::vector<std::size_t>& selected,
                           const std::vector<std::size_t>& actual_topk) {
  std::vector<std::size_t> a = selected;
  std::vector<std::size_t> b = actual_topk;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b ? 1.0 : 0.0;
}

double PartialCorrectness(const std::vector<std::size_t>& selected,
                          const std::vector<std::size_t>& actual_topk) {
  if (selected.empty()) return 0.0;
  std::vector<std::size_t> a = selected;
  std::vector<std::size_t> b = actual_topk;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<std::size_t> overlap;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(overlap));
  return static_cast<double>(overlap.size()) /
         static_cast<double>(selected.size());
}

// ---------------------------------------------------- reference kernel

namespace reference {

std::vector<double> MembershipProbabilities(const TopKModel& model, int k) {
  const std::size_t n = model.num_databases();
  std::vector<double> result(n, 1.0);
  if (k <= 0) {
    std::fill(result.begin(), result.end(), 0.0);
    return result;
  }
  if (static_cast<std::size_t>(k) >= n) return result;

  std::vector<double> dp(static_cast<std::size_t>(k), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double p_in = 0.0;
    for (const stats::Atom& atom : model.rd(i).atoms()) {
      // Poisson-binomial DP over the other databases: dp[c] = probability
      // that exactly c of them exceed atom.value; mass reaching c == k is
      // dropped (absorbed by "not in top-k").
      std::fill(dp.begin(), dp.end(), 0.0);
      dp[0] = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        double q = model.rd(j).PrGreaterThan(atom.value);
        if (q <= 0.0) continue;
        for (int c = k - 1; c >= 1; --c) {
          dp[c] = dp[c] * (1.0 - q) + dp[c - 1] * q;
        }
        dp[0] *= (1.0 - q);
      }
      double pr_at_most_k_minus_1 =
          std::accumulate(dp.begin(), dp.end(), 0.0);
      p_in += atom.prob * pr_at_most_k_minus_1;
    }
    result[i] = std::min(p_in, 1.0);
  }
  return result;
}

double PrExactTopSet(const TopKModel& model,
                     const std::vector<std::size_t>& set) {
  const std::size_t n = model.num_databases();
  if (set.empty()) return 0.0;
  if (set.size() >= n) return 1.0;

  std::vector<double> thresholds;
  for (std::size_t s : set) {
    for (const stats::Atom& atom : model.rd(s).atoms()) {
      thresholds.push_back(atom.value);
    }
  }
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  std::vector<bool> in_set(n, false);
  for (std::size_t s : set) in_set[s] = true;

  double total = 0.0;
  for (double v : thresholds) {
    double pr_all_ge = 1.0;
    double pr_all_gt = 1.0;
    for (std::size_t s : set) {
      pr_all_ge *= model.rd(s).PrAtLeast(v);
      pr_all_gt *= model.rd(s).PrGreaterThan(v);
      if (pr_all_ge <= 0.0) break;
    }
    double pr_min_eq = pr_all_ge - pr_all_gt;
    if (pr_min_eq <= 0.0) continue;
    double pr_others_below = 1.0;
    for (std::size_t j = 0; j < n && pr_others_below > 0.0; ++j) {
      if (!in_set[j]) pr_others_below *= model.rd(j).PrLessThan(v);
    }
    total += pr_min_eq * pr_others_below;
  }
  return std::clamp(total, 0.0, 1.0);
}

double ExpectedCorrectness(const TopKModel& model,
                           const std::vector<std::size_t>& set,
                           CorrectnessMetric metric) {
  if (set.empty()) return 0.0;
  if (metric == CorrectnessMetric::kAbsolute) {
    return PrExactTopSet(model, set);
  }
  std::vector<double> marginals =
      MembershipProbabilities(model, static_cast<int>(set.size()));
  double sum = 0.0;
  for (std::size_t s : set) sum += marginals[s];
  return sum / static_cast<double>(set.size());
}

TopKModel::BestSet FindBestSet(const TopKModel& model, int k,
                               CorrectnessMetric metric, int search_width) {
  const std::size_t n = model.num_databases();
  TopKModel::BestSet best;
  if (k <= 0 || n == 0) return best;
  if (static_cast<std::size_t>(k) >= n) {
    best.members.resize(n);
    std::iota(best.members.begin(), best.members.end(), 0);
    best.expected_correctness = 1.0;
    return best;
  }

  std::vector<double> marginals = MembershipProbabilities(model, k);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (marginals[a] != marginals[b]) return marginals[a] > marginals[b];
    return a < b;
  });

  if (metric == CorrectnessMetric::kPartial) {
    best.members.assign(order.begin(), order.begin() + k);
    double sum = 0.0;
    for (std::size_t s : best.members) sum += marginals[s];
    best.expected_correctness = sum / static_cast<double>(k);
    std::sort(best.members.begin(), best.members.end());
    return best;
  }

  std::size_t pool = std::min(
      n, static_cast<std::size_t>(k) + static_cast<std::size_t>(
                                           std::max(search_width, 0)));
  std::vector<std::size_t> candidates(order.begin(), order.begin() + pool);
  best.expected_correctness = -1.0;
  std::vector<std::size_t> scratch;
  ForEachSubset(candidates, static_cast<std::size_t>(k), 0, &scratch,
                [&](const std::vector<std::size_t>& subset) {
                  double p = PrExactTopSet(model, subset);
                  if (p > best.expected_correctness) {
                    best.expected_correctness = p;
                    best.members = subset;
                  }
                });
  std::sort(best.members.begin(), best.members.end());
  return best;
}

}  // namespace reference

}  // namespace core
}  // namespace metaprobe
