// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_ESTIMATOR_H_
#define METAPROBE_CORE_ESTIMATOR_H_

#include <memory>
#include <string>

#include "core/query.h"
#include "core/summary.h"

namespace metaprobe {
namespace core {

/// \brief Computes the point estimate r_hat(db, q) of a database's
/// relevancy from its statistical summary alone (Section 2.2).
///
/// Estimators are pure functions of (summary, query); the probabilistic
/// relevancy model then learns each estimator's database-specific error
/// behaviour, so any estimator can be dropped in.
class RelevancyEstimator {
 public:
  virtual ~RelevancyEstimator() = default;

  /// \brief Stable name for reports and ablation tables.
  virtual std::string name() const = 0;

  /// \brief Estimated relevancy of the summarized database to `query`
  /// under the document-frequency definition (expected number of documents
  /// matching all keywords). Always >= 0; 0 for an empty query.
  virtual double Estimate(const StatSummary& summary,
                          const Query& query) const = 0;
};

/// \brief The paper's baseline: Eq. 1, assuming keywords are independently
/// distributed across documents:
///
///   r_hat(db, q) = |db| * prod_i ( r(db, t_i) / |db| ).
///
/// Underestimates when keywords co-occur (same subtopic), overestimates
/// when they repel — the non-uniform error the probabilistic model corrects.
class TermIndependenceEstimator : public RelevancyEstimator {
 public:
  std::string name() const override { return "term-independence"; }
  double Estimate(const StatSummary& summary,
                  const Query& query) const override;
};

/// \brief Upper-bound estimator: the rarest keyword's document frequency
/// (no conjunction can match more documents than its rarest term). Included
/// as an alternative baseline; its one-sided error makes an instructive
/// contrast in the estimator ablation.
class MinFrequencyEstimator : public RelevancyEstimator {
 public:
  std::string name() const override { return "min-frequency"; }
  double Estimate(const StatSummary& summary,
                  const Query& query) const override;
};

/// \brief Point estimator for the document-similarity relevancy definition
/// (Section 2.1, second item): predicts the best achievable query-document
/// cosine from the summary alone as the idf-weighted fraction of query
/// vocabulary the database covers,
///
///   s_hat = sqrt( sum_{t in q, df(t)>0} w_t^2 / sum_{t in q} w_t^2 ),
///   w_t   = ln(1 + |db| / (df(t) + 1)).
///
/// A database covering every keyword scores near 1, one covering none
/// scores 0; deliberately crude in between — the error distributions
/// calibrate it per database, which is the paper's whole premise.
class CoverageSimilarityEstimator : public RelevancyEstimator {
 public:
  std::string name() const override { return "coverage-similarity"; }
  double Estimate(const StatSummary& summary,
                  const Query& query) const override;
};

/// \brief Geometric interpolation between term independence and the
/// min-frequency upper bound: r_hat = min_df^alpha * indep^(1-alpha).
/// With alpha=0 it degenerates to term independence; with alpha=1 to
/// min-frequency. Models estimators tuned on held-out data.
class BlendedEstimator : public RelevancyEstimator {
 public:
  explicit BlendedEstimator(double alpha);

  std::string name() const override;
  double Estimate(const StatSummary& summary,
                  const Query& query) const override;

 private:
  double alpha_;
  TermIndependenceEstimator independence_;
  MinFrequencyEstimator min_freq_;
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_ESTIMATOR_H_
