#include "core/summary.h"

#include <algorithm>
#include <cmath>

namespace metaprobe {
namespace core {

namespace {

// Binomial(n, p) draw: exact Bernoulli summation for small means, normal
// approximation (rounded, clamped) otherwise.
std::uint32_t BinomialDraw(std::uint32_t n, double p, stats::Rng* rng) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  double mean = static_cast<double>(n) * p;
  if (mean > 30.0 && static_cast<double>(n) * (1.0 - p) > 30.0) {
    double stddev = std::sqrt(static_cast<double>(n) * p * (1.0 - p));
    double draw = std::round(rng->Normal(mean, stddev));
    return static_cast<std::uint32_t>(
        std::clamp(draw, 0.0, static_cast<double>(n)));
  }
  std::uint32_t successes = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(p)) ++successes;
  }
  return successes;
}

}  // namespace

StatSummary::StatSummary(std::string database_name,
                         std::uint32_t database_size)
    : database_name_(std::move(database_name)), database_size_(database_size) {}

StatSummary StatSummary::FromIndex(std::string database_name,
                                   const index::InvertedIndex& index) {
  StatSummary summary(std::move(database_name), index.num_docs());
  const text::Vocabulary& vocab = index.vocabulary();
  for (text::TermId id = 0; id < vocab.size(); ++id) {
    const std::string& term = vocab.TermOf(id);
    std::uint32_t df = index.DocumentFrequency(term);
    if (df > 0) summary.SetDocumentFrequency(term, df);
  }
  return summary;
}

StatSummary StatSummary::FromIndexSampled(std::string database_name,
                                          const index::InvertedIndex& index,
                                          double rate, stats::Rng* rng) {
  rate = std::clamp(rate, 1e-6, 1.0);
  StatSummary summary(std::move(database_name), index.num_docs());
  const text::Vocabulary& vocab = index.vocabulary();
  for (text::TermId id = 0; id < vocab.size(); ++id) {
    const std::string& term = vocab.TermOf(id);
    std::uint32_t df = index.DocumentFrequency(term);
    if (df == 0) continue;
    std::uint32_t sampled = BinomialDraw(df, rate, rng);
    if (sampled == 0) continue;  // term never seen in the sample
    double scaled = static_cast<double>(sampled) / rate;
    summary.SetDocumentFrequency(
        term, static_cast<std::uint32_t>(std::min(
                  std::round(scaled), static_cast<double>(index.num_docs()))));
  }
  return summary;
}

std::uint32_t StatSummary::DocumentFrequency(std::string_view term) const {
  auto it = df_.find(std::string(term));
  return it == df_.end() ? 0 : it->second;
}

void StatSummary::SetDocumentFrequency(std::string_view term,
                                       std::uint32_t df) {
  df_[std::string(term)] = df;
}

void StatSummary::ForEachTerm(
    const std::function<void(const std::string&, std::uint32_t)>& fn) const {
  std::vector<const std::string*> terms;
  terms.reserve(df_.size());
  for (const auto& [term, df] : df_) terms.push_back(&term);
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* term : terms) fn(*term, df_.at(*term));
}

}  // namespace core
}  // namespace metaprobe
