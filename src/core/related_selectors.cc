#include "core/related_selectors.h"

#include <cmath>

namespace metaprobe {
namespace core {

namespace {
constexpr double kDefaultBelief = 0.4;
}  // namespace

CoriSelector::CoriSelector(std::vector<const StatSummary*> summaries)
    : summaries_(std::move(summaries)) {
  if (summaries_.empty()) return;
  double total = 0.0;
  for (const StatSummary* summary : summaries_) {
    total += static_cast<double>(summary->database_size());
  }
  mean_cw_ = total / static_cast<double>(summaries_.size());
  if (mean_cw_ <= 0.0) mean_cw_ = 1.0;
}

std::uint32_t CoriSelector::CollectionFrequency(std::string_view term) const {
  auto it = cf_cache_.find(std::string(term));
  if (it != cf_cache_.end()) return it->second;
  std::uint32_t cf = 0;
  for (const StatSummary* summary : summaries_) {
    if (summary->DocumentFrequency(term) > 0) ++cf;
  }
  cf_cache_.emplace(std::string(term), cf);
  return cf;
}

std::vector<double> CoriSelector::Score(const Query& query) const {
  std::vector<double> scores(summaries_.size(), 0.0);
  if (query.empty() || summaries_.empty()) return scores;
  const double c = static_cast<double>(summaries_.size());
  for (std::size_t db = 0; db < summaries_.size(); ++db) {
    const StatSummary& summary = *summaries_[db];
    double cw = static_cast<double>(summary.database_size());
    double belief_sum = 0.0;
    for (const std::string& term : query.terms) {
      double df = static_cast<double>(summary.DocumentFrequency(term));
      double cf = static_cast<double>(CollectionFrequency(term));
      double t_component = df / (df + 50.0 + 150.0 * cw / mean_cw_);
      double i_component =
          cf > 0.0 ? std::log((c + 0.5) / cf) / std::log(c + 1.0) : 0.0;
      belief_sum += kDefaultBelief + (1.0 - kDefaultBelief) * t_component *
                                         i_component;
    }
    scores[db] = belief_sum / static_cast<double>(query.num_terms());
  }
  return scores;
}

}  // namespace core
}  // namespace metaprobe
