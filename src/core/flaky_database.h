// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_FLAKY_DATABASE_H_
#define METAPROBE_CORE_FLAKY_DATABASE_H_

#include <atomic>
#include <memory>

#include "common/mutex.h"
#include "core/hidden_web_database.h"
#include "stats/random.h"

namespace metaprobe {
namespace core {

/// \brief Failure-injection decorator: a database whose search interface
/// intermittently errors, the way real hidden-web endpoints time out or
/// rate-limit.
///
/// Each operation independently fails with `failure_probability`, returning
/// an IoError. Failures are drawn from a seeded generator, so tests and
/// robustness benches are reproducible. Thread-safe.
class FlakyDatabase : public HiddenWebDatabase {
 public:
  /// \param inner the real database (shared; not modified)
  /// \param failure_probability chance each call fails, in [0, 1]
  /// \param seed seed of the failure stream
  FlakyDatabase(std::shared_ptr<HiddenWebDatabase> inner,
                double failure_probability, std::uint64_t seed);

  const std::string& name() const override { return inner_->name(); }
  std::uint32_t size() const override { return inner_->size(); }

  Result<std::uint64_t> CountMatches(const Query& query) const override;
  Result<std::vector<SearchHit>> Search(const Query& query,
                                        std::size_t k) const override;
  std::uint64_t queries_served() const override {
    return inner_->queries_served();
  }
  StorageStats GetStorageStats() const override {
    return inner_->GetStorageStats();
  }

  /// \brief Number of injected failures so far.
  std::uint64_t failures_injected() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  bool ShouldFail() const;

  std::shared_ptr<HiddenWebDatabase> inner_;
  double failure_probability_;
  mutable Mutex mutex_;
  mutable stats::Rng rng_ GUARDED_BY(mutex_);
  mutable std::atomic<std::uint64_t> failures_{0};
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_FLAKY_DATABASE_H_
