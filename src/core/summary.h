// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_SUMMARY_H_
#define METAPROBE_CORE_SUMMARY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "index/inverted_index.h"
#include "stats/random.h"

namespace metaprobe {
namespace core {

/// \brief Pre-collected statistical summary of one database: the
/// (term, number-of-appearances) table of Figure 2 plus the database size.
///
/// Relevancy estimators consult only this summary — never the database —
/// exactly as in the paper: the summary is collected once offline and is
/// the sole source of the point estimate r_hat(db, q).
class StatSummary {
 public:
  StatSummary(std::string database_name, std::uint32_t database_size);

  /// \brief Builds an exact summary from an index (every term's true
  /// document frequency). Models a cooperative database that exports
  /// statistics, or an exhaustively crawled one.
  static StatSummary FromIndex(std::string database_name,
                               const index::InvertedIndex& index);

  /// \brief Builds a noisy summary simulating query-based sampling of an
  /// uncooperative database (Callan-style summary construction, which the
  /// paper cites as its summary source).
  ///
  /// Each term's df is replaced by a Binomial(df, rate) draw scaled back by
  /// 1/rate — the sampling noise a random `rate`-fraction document sample
  /// would induce; terms whose sampled count is zero disappear from the
  /// summary entirely, as they would in practice. Used by the
  /// summary-fidelity ablation bench.
  static StatSummary FromIndexSampled(std::string database_name,
                                      const index::InvertedIndex& index,
                                      double rate, stats::Rng* rng);

  const std::string& database_name() const { return database_name_; }

  /// \brief |db|: number of documents in the database.
  std::uint32_t database_size() const { return database_size_; }

  /// \brief Overrides the advertised database size. Real hidden-web
  /// databases often do not export their size; metasearchers estimate it
  /// roughly (the paper probes with common terms), so summaries routinely
  /// carry a systematically wrong |db|. Testbeds use this to model that
  /// distortion, which the error distributions then learn to correct.
  void OverrideDatabaseSize(std::uint32_t size) { database_size_ = size; }

  /// \brief r(db, t): documents of db containing `term` (0 when absent).
  std::uint32_t DocumentFrequency(std::string_view term) const;

  /// \brief Registers or overwrites a term's document frequency.
  void SetDocumentFrequency(std::string_view term, std::uint32_t df);

  /// \brief Number of distinct terms summarized.
  std::size_t num_terms() const { return df_.size(); }

  /// \brief Visits every (term, df) pair in lexicographic term order
  /// (deterministic, so serialized summaries are byte-stable).
  void ForEachTerm(
      const std::function<void(const std::string&, std::uint32_t)>& fn) const;

 private:
  std::string database_name_;
  std::uint32_t database_size_;
  std::unordered_map<std::string, std::uint32_t> df_;
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_SUMMARY_H_
