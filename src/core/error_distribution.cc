#include "core/error_distribution.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace metaprobe {
namespace core {

double RelativeError(double actual, double estimate) {
  double denom = std::max(estimate, 1.0);
  return (actual - estimate) / denom;
}

std::vector<double> DefaultErrorBinEdges() {
  // 9 edges -> 10 cells: (-inf,-0.95), [-0.95,-0.6), [-0.6,-0.3),
  // [-0.3,-0.05), [-0.05,0.05), [0.05,0.5), [0.5,1), [1,2.5), [2.5,6),
  // [6,+inf).
  return {-0.95, -0.6, -0.3, -0.05, 0.05, 0.5, 1.0, 2.5, 6.0};
}

ErrorDistribution::ErrorDistribution()
    : histogram_(stats::Histogram::Make(DefaultErrorBinEdges()).ValueOrDie()) {}

ErrorDistribution::ErrorDistribution(stats::Histogram histogram)
    : histogram_(std::move(histogram)) {}

Result<ErrorDistribution> ErrorDistribution::MakeWithEdges(
    std::vector<double> edges) {
  ASSIGN_OR_RETURN(stats::Histogram histogram,
                   stats::Histogram::Make(std::move(edges)));
  return ErrorDistribution(std::move(histogram));
}

void ErrorDistribution::AddObservation(double error) {
  histogram_.Add(std::max(error, -1.0));
  ++sample_count_;
}

void ErrorDistribution::AddSample(double actual, double estimate) {
  AddObservation(RelativeError(actual, estimate));
}

stats::DiscreteDistribution ErrorDistribution::ToDistribution() const {
  if (empty()) return stats::DiscreteDistribution::Impulse(0.0);
  std::vector<stats::Atom> atoms;
  const std::vector<double> probs = histogram_.Probabilities();
  for (std::size_t cell = 0; cell < probs.size(); ++cell) {
    if (probs[cell] <= 0.0) continue;
    // A relative error below -1 is impossible (actual relevancy >= 0), so
    // the lowest cell's representative is clamped.
    double representative = std::max(histogram_.Representative(cell), -1.0);
    atoms.push_back({representative, probs[cell]});
  }
  return stats::DiscreteDistribution::Make(std::move(atoms)).ValueOrDie();
}

Result<ErrorDistribution> ErrorDistribution::Restore(
    std::vector<double> edges, const std::vector<double>& counts,
    std::size_t sample_count) {
  ASSIGN_OR_RETURN(ErrorDistribution ed, MakeWithEdges(std::move(edges)));
  if (counts.size() != ed.histogram_.num_cells()) {
    return Status::InvalidArgument("expected ", ed.histogram_.num_cells(),
                                   " cell counts, got ", counts.size());
  }
  for (std::size_t cell = 0; cell < counts.size(); ++cell) {
    if (counts[cell] < 0.0) {
      return Status::InvalidArgument("negative cell count");
    }
    if (counts[cell] > 0.0) {
      // Each cell's representative lies inside the cell, so re-adding the
      // weight there reproduces the histogram exactly.
      ed.histogram_.AddWeighted(ed.histogram_.Representative(cell),
                                counts[cell]);
    }
  }
  ed.sample_count_ = sample_count;
  return ed;
}

Status ErrorDistribution::MergeFrom(const ErrorDistribution& other) {
  RETURN_NOT_OK(histogram_.MergeFrom(other.histogram_));
  sample_count_ += other.sample_count_;
  return Status::OK();
}

}  // namespace core
}  // namespace metaprobe
