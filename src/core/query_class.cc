#include "core/query_class.h"

#include <algorithm>

#include "common/strings.h"

namespace metaprobe {
namespace core {

QueryTypeClassifier::QueryTypeClassifier(QueryClassOptions options)
    : options_(options) {
  if (options_.max_terms < options_.min_terms) {
    std::swap(options_.min_terms, options_.max_terms);
  }
  if (options_.min_terms < 1) options_.min_terms = 1;
}

int QueryTypeClassifier::NumTermBuckets() const {
  if (!options_.split_by_term_count) return 1;
  return options_.max_terms - options_.min_terms + 1;
}

std::uint32_t QueryTypeClassifier::num_types() const {
  return static_cast<std::uint32_t>(NumTermBuckets()) *
         (options_.split_by_estimate ? 2u : 1u);
}

QueryTypeId QueryTypeClassifier::Classify(const Query& query,
                                          double r_hat) const {
  int term_bucket = 0;
  if (options_.split_by_term_count) {
    int terms = std::clamp(static_cast<int>(query.num_terms()),
                           options_.min_terms, options_.max_terms);
    term_bucket = terms - options_.min_terms;
  }
  int estimate_bucket =
      options_.split_by_estimate && r_hat >= options_.estimate_threshold ? 1
                                                                         : 0;
  return static_cast<QueryTypeId>(
      term_bucket * (options_.split_by_estimate ? 2 : 1) + estimate_bucket);
}

std::string QueryTypeClassifier::TypeName(QueryTypeId type) const {
  const int estimate_buckets = options_.split_by_estimate ? 2 : 1;
  int term_bucket = static_cast<int>(type) / estimate_buckets;
  int estimate_bucket = static_cast<int>(type) % estimate_buckets;
  std::string name;
  if (options_.split_by_term_count) {
    name += std::to_string(options_.min_terms + term_bucket) + "-term";
  } else {
    name += "any-term";
  }
  if (options_.split_by_estimate) {
    name += estimate_bucket == 1 ? ", r_hat>=" : ", r_hat<";
    name += FormatDouble(options_.estimate_threshold, 0);
  }
  return name;
}

}  // namespace core
}  // namespace metaprobe
