#include "core/hidden_web_database.h"

namespace metaprobe {
namespace core {

LocalDatabase::LocalDatabase(std::string name, index::InvertedIndex index,
                             std::shared_ptr<index::DocumentStore> documents)
    : name_(std::move(name)),
      index_(std::move(index)),
      documents_(std::move(documents)) {}

Result<std::uint64_t> LocalDatabase::CountMatches(const Query& query) const {
  if (query.empty()) {
    return Status::InvalidArgument("cannot probe '", name_,
                                   "' with an empty query");
  }
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return index_.CountConjunctive(query.terms);
}

Result<std::vector<SearchHit>> LocalDatabase::Search(const Query& query,
                                                     std::size_t k) const {
  if (query.empty()) {
    return Status::InvalidArgument("cannot search '", name_,
                                   "' with an empty query");
  }
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  std::vector<index::ScoredDoc> scored = index_.TopKCosine(query.terms, k);
  std::vector<SearchHit> hits;
  hits.reserve(scored.size());
  for (const index::ScoredDoc& sd : scored) {
    SearchHit hit;
    hit.doc = sd.doc;
    hit.score = sd.score;
    if (documents_ != nullptr) {
      Result<const index::Document*> doc = documents_->Get(sd.doc);
      if (doc.ok()) hit.title = (*doc)->title;
    }
    if (hit.title.empty()) {
      hit.title = name_ + " doc#" + std::to_string(sd.doc);
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

}  // namespace core
}  // namespace metaprobe
