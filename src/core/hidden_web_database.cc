#include "core/hidden_web_database.h"

#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/relevancy_definition.h"
#include "index/index_metrics.h"

namespace metaprobe {
namespace core {

Result<std::vector<double>> HiddenWebDatabase::ProbeBatch(
    const std::vector<const Query*>& queries, RelevancyDefinition definition,
    const Deadline& deadline) const {
  std::vector<double> relevancies;
  relevancies.reserve(queries.size());
  for (const Query* query : queries) {
    // Cancellation point: checked before each probe, so a batch riding on a
    // slow backend stops at the first probe boundary past the cutoff.
    if (deadline.expired()) {
      return Status::DeadlineExceeded("probe batch against '", name(),
                                      "' cut after ", relevancies.size(),
                                      " of ", queries.size(), " probes");
    }
    ASSIGN_OR_RETURN(double r, ProbeRelevancy(*this, *query, definition));
    relevancies.push_back(r);
  }
  return relevancies;
}

Result<std::vector<double>> HiddenWebDatabase::ProbeBatch(
    const std::vector<const Query*>& queries,
    RelevancyDefinition definition) const {
  return ProbeBatch(queries, definition, Deadline::None());
}

Result<std::vector<double>> HiddenWebDatabase::ProbeBatch(
    const std::vector<Query>& queries, RelevancyDefinition definition,
    const Deadline& deadline) const {
  std::vector<const Query*> pointers;
  pointers.reserve(queries.size());
  for (const Query& query : queries) pointers.push_back(&query);
  return ProbeBatch(pointers, definition, deadline);
}

LocalDatabase::LocalDatabase(std::string name, index::InvertedIndex index,
                             std::shared_ptr<index::DocumentStore> documents,
                             IndexMode mode)
    : name_(std::move(name)),
      index_(std::move(index)),
      documents_(std::move(documents)) {
  if (mode == IndexMode::kFrozen) index_.Freeze();
}

StorageStats LocalDatabase::GetStorageStats() const {
  const index::IndexStats stats = index_.GetStats();
  StorageStats out;
  out.heap_bytes = stats.heap_bytes;
  out.mapped_bytes = stats.mapped_bytes;
  out.frozen = index_.frozen();
  out.mapped = index_.is_mapped();
  return out;
}

Result<std::uint64_t> LocalDatabase::CountMatches(const Query& query) const {
  if (query.empty()) {
    return Status::InvalidArgument("cannot probe '", name_,
                                   "' with an empty query");
  }
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return index_.CountConjunctive(query.terms);
}

Result<std::vector<SearchHit>> LocalDatabase::Search(const Query& query,
                                                     std::size_t k) const {
  if (query.empty()) {
    return Status::InvalidArgument("cannot search '", name_,
                                   "' with an empty query");
  }
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  std::vector<index::ScoredDoc> scored = index_.TopKCosine(query.terms, k);
  std::vector<SearchHit> hits;
  hits.reserve(scored.size());
  for (const index::ScoredDoc& sd : scored) {
    SearchHit hit;
    hit.doc = sd.doc;
    hit.score = sd.score;
    if (documents_ != nullptr) {
      Result<const index::Document*> doc = documents_->Get(sd.doc);
      if (doc.ok()) hit.title = (*doc)->title;
    }
    if (hit.title.empty()) {
      hit.title = name_ + " doc#" + std::to_string(sd.doc);
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

Result<std::vector<double>> LocalDatabase::ProbeBatch(
    const std::vector<const Query*>& queries, RelevancyDefinition definition,
    const Deadline& deadline) const {
  // The fused index path answers the whole batch in one local operation, so
  // the only meaningful boundary is entry.
  if (deadline.expired()) {
    return Status::DeadlineExceeded("probe batch against '", name_,
                                    "' arrived past its deadline");
  }
  for (const Query* query : queries) {
    if (query == nullptr || query->empty()) {
      return Status::InvalidArgument("cannot probe '", name_,
                                     "' with an empty query");
    }
  }
  queries_served_.fetch_add(queries.size(), std::memory_order_relaxed);
  index::IndexCounters::CountProbeBatch(queries.size());
  std::vector<double> relevancies(queries.size(), 0.0);
  switch (definition) {
    case RelevancyDefinition::kDocumentFrequency: {
      std::vector<const std::vector<std::string>*> term_lists;
      term_lists.reserve(queries.size());
      for (const Query* query : queries) term_lists.push_back(&query->terms);
      std::vector<std::uint64_t> counts =
          index_.CountConjunctiveBatch(term_lists, batch_pool_);
      for (std::size_t i = 0; i < counts.size(); ++i) {
        relevancies[i] = static_cast<double>(counts[i]);
      }
      return relevancies;
    }
    case RelevancyDefinition::kDocumentSimilarity: {
      // Each query scores independently and writes only its own slot, so
      // fanning across the pool reproduces the sequential result exactly.
      ParallelForRanges(batch_pool_, queries.size(),
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                            relevancies[i] =
                                index_.BestCosineScore(queries[i]->terms);
                          }
                        });
      return relevancies;
    }
  }
  return Status::InvalidArgument("unknown relevancy definition");
}

}  // namespace core
}  // namespace metaprobe
