// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_DEADLINE_H_
#define METAPROBE_CORE_DEADLINE_H_

#include <cstdint>

#include "obs/clock.h"

namespace metaprobe {
namespace core {

/// \brief An absolute wall-clock cutoff carried alongside a request.
///
/// The serving layer stamps each admitted request with a deadline on the
/// server's clock; the probe dispatch loop (AdaptiveProber) and the batched
/// probe primitives (HiddenWebDatabase::ProbeBatch) check it *between*
/// probes — never mid-probe — so an expiring deadline cuts probing at a
/// probe boundary and the answer is always built from fully-applied
/// observations.
///
/// A default-constructed Deadline is inactive: `expired()` is false forever
/// and checking it never reads a clock, so the bit-exact reproduction paths
/// pay nothing.
struct Deadline {
  /// Time source the cutoff is measured on (borrowed; tests inject an
  /// obs::FakeClock). Null means no deadline.
  const obs::MonotonicClock* clock = nullptr;
  /// Absolute cutoff in `clock` nanoseconds; 0 means no deadline.
  std::uint64_t at_ns = 0;

  /// \brief True when a cutoff is configured.
  bool active() const { return clock != nullptr && at_ns != 0; }

  /// \brief True when the cutoff has passed. One clock read when active.
  bool expired() const { return active() && clock->NowNanos() >= at_ns; }

  /// \brief Nanoseconds until the cutoff (0 when expired or inactive —
  /// callers distinguish via active()).
  std::uint64_t remaining_ns() const {
    if (!active()) return 0;
    std::uint64_t now = clock->NowNanos();
    return now >= at_ns ? 0 : at_ns - now;
  }

  /// \brief Deadline `budget_ns` from `clock`'s current instant. A zero
  /// budget yields a deadline that expires at the current instant (the
  /// probing loop then serves the estimate-only answer); the only caveat is
  /// a clock that currently reads 0, where the cutoff shifts to 1 ns so the
  /// deadline still registers as active.
  static Deadline After(const obs::MonotonicClock* clock,
                        std::uint64_t budget_ns) {
    Deadline deadline;
    if (clock != nullptr) {
      deadline.clock = clock;
      std::uint64_t now = clock->NowNanos();
      deadline.at_ns = now + budget_ns;
      if (deadline.at_ns == 0) deadline.at_ns = 1;  // budget from epoch 0
    }
    return deadline;
  }

  /// \brief The inactive deadline (never expires, never reads a clock).
  static Deadline None() { return Deadline{}; }
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_DEADLINE_H_
