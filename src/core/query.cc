#include "core/query.h"

#include <algorithm>

namespace metaprobe {
namespace core {

std::string QueryKey(const Query& query) {
  std::vector<std::string> sorted = query.terms;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const std::string& term : sorted) {
    key += term;
    key += '\x1f';
  }
  return key;
}

}  // namespace core
}  // namespace metaprobe
