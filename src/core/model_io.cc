// Model persistence for Metasearcher: a versioned, line-oriented text
// format holding everything learned offline — the options that shaped
// training, one statistical summary per database, and the full ED table.
//
// Format sketch (all tokens whitespace-separated; term lines use the rest
// of the line for the term so arbitrary term bytes except newline work):
//
//   metaprobe-model 1
//   definition document-frequency
//   estimator term-independence
//   query_class 1 2 3 1 30
//   metric absolute
//   search_width 4
//   bin_edges 9 -0.95 ... 6
//   num_databases 20
//   num_types 4
//   database 0
//   name pubmed-central
//   size 6000
//   num_terms 3321
//   t 943 cancer
//   ...
//   ed 0 0 412 0 0 1.5 ...   (db type samples cell-counts...)
//   end

#include <istream>
#include <ostream>
#include <sstream>

#include "common/macros.h"
#include "common/strings.h"
#include "core/metasearcher.h"

namespace metaprobe {
namespace core {

namespace {

constexpr int kFormatVersion = 1;

// Reads one line and verifies it starts with `keyword`; returns the
// remainder stream for field parsing.
Result<std::istringstream> ExpectLine(std::istream& is,
                                      const std::string& keyword) {
  std::string line;
  while (std::getline(is, line)) {
    if (!StripAsciiWhitespace(line).empty()) break;
  }
  if (!is && line.empty()) {
    return Status::IoError("unexpected end of model file, wanted '", keyword,
                           "'");
  }
  std::istringstream stream(line);
  std::string head;
  stream >> head;
  if (head != keyword) {
    return Status::InvalidArgument("model file: expected '", keyword,
                                   "', found '", head, "'");
  }
  return stream;
}

Result<RelevancyDefinition> ParseDefinition(const std::string& name) {
  if (name == "document-frequency") {
    return RelevancyDefinition::kDocumentFrequency;
  }
  if (name == "document-similarity") {
    return RelevancyDefinition::kDocumentSimilarity;
  }
  return Status::InvalidArgument("unknown relevancy definition '", name, "'");
}

Result<CorrectnessMetric> ParseMetric(const std::string& name) {
  if (name == "absolute") return CorrectnessMetric::kAbsolute;
  if (name == "partial") return CorrectnessMetric::kPartial;
  return Status::InvalidArgument("unknown correctness metric '", name, "'");
}

std::string DefaultEstimatorName(RelevancyDefinition definition) {
  return definition == RelevancyDefinition::kDocumentSimilarity
             ? CoverageSimilarityEstimator().name()
             : TermIndependenceEstimator().name();
}

}  // namespace

Status Metasearcher::SaveTrainedModel(std::ostream& os) const {
  // Pin the snapshot for the whole save so a concurrent retrain cannot
  // swap the table out from under the serialization loop.
  std::shared_ptr<const EdTable> table = ed_table();
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "nothing to save: the metasearcher has not been trained");
  }
  if (estimator_->name() != DefaultEstimatorName(options_.relevancy_definition)) {
    return Status::NotImplemented(
        "custom estimator '", estimator_->name(),
        "' cannot be serialized; only the definition-default estimators "
        "round-trip");
  }
  os.precision(17);
  os << "metaprobe-model " << kFormatVersion << "\n";
  os << "definition "
     << RelevancyDefinitionName(options_.relevancy_definition) << "\n";
  os << "estimator " << estimator_->name() << "\n";
  const QueryClassOptions& qc = classifier_.options();
  os << "query_class " << (qc.split_by_term_count ? 1 : 0) << " "
     << qc.min_terms << " " << qc.max_terms << " "
     << (qc.split_by_estimate ? 1 : 0) << " " << qc.estimate_threshold
     << "\n";
  os << "metric " << CorrectnessMetricName(options_.metric) << "\n";
  os << "search_width " << options_.search_width << "\n";
  const std::vector<double>& edges = options_.ed_learner.bin_edges;
  os << "bin_edges " << edges.size();
  for (double e : edges) os << " " << e;
  os << "\n";
  os << "num_databases " << databases_.size() << "\n";
  os << "num_types " << classifier_.num_types() << "\n";

  for (std::size_t db = 0; db < databases_.size(); ++db) {
    const StatSummary& summary = summaries_[db];
    os << "database " << db << "\n";
    os << "name " << summary.database_name() << "\n";
    os << "size " << summary.database_size() << "\n";
    os << "num_terms " << summary.num_terms() << "\n";
    summary.ForEachTerm([&os](const std::string& term, std::uint32_t df) {
      os << "t " << df << " " << term << "\n";
    });
  }

  for (std::size_t db = 0; db < databases_.size(); ++db) {
    for (QueryTypeId type = 0; type < classifier_.num_types(); ++type) {
      const ErrorDistribution& ed = table->Get(db, type);
      os << "ed " << db << " " << type << " " << ed.sample_count();
      const stats::Histogram& histogram = ed.histogram();
      for (std::size_t cell = 0; cell < histogram.num_cells(); ++cell) {
        os << " " << histogram.count(cell);
      }
      os << "\n";
    }
  }
  os << "end\n";
  if (!os) return Status::IoError("stream write failure while saving model");
  return Status::OK();
}

Result<std::unique_ptr<Metasearcher>> Metasearcher::LoadTrainedModel(
    std::istream& is,
    std::vector<std::shared_ptr<HiddenWebDatabase>> databases) {
  ASSIGN_OR_RETURN(std::istringstream header, ExpectLine(is, "metaprobe-model"));
  int version = 0;
  header >> version;
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported model version ", version);
  }

  MetasearcherOptions options;
  {
    ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "definition"));
    std::string name;
    line >> name;
    ASSIGN_OR_RETURN(options.relevancy_definition, ParseDefinition(name));
  }
  std::string estimator_name;
  {
    ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "estimator"));
    line >> estimator_name;
    if (estimator_name != DefaultEstimatorName(options.relevancy_definition)) {
      return Status::NotImplemented("model was trained with estimator '",
                                    estimator_name,
                                    "', which cannot be reconstructed");
    }
  }
  {
    ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "query_class"));
    int split_terms = 0, split_estimate = 0;
    line >> split_terms >> options.query_class.min_terms >>
        options.query_class.max_terms >> split_estimate >>
        options.query_class.estimate_threshold;
    if (!line) return Status::InvalidArgument("bad query_class line");
    options.query_class.split_by_term_count = split_terms != 0;
    options.query_class.split_by_estimate = split_estimate != 0;
  }
  {
    ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "metric"));
    std::string name;
    line >> name;
    ASSIGN_OR_RETURN(options.metric, ParseMetric(name));
  }
  {
    ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "search_width"));
    line >> options.search_width;
    if (!line) return Status::InvalidArgument("bad search_width line");
  }
  {
    ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "bin_edges"));
    std::size_t count = 0;
    line >> count;
    options.ed_learner.bin_edges.clear();
    for (std::size_t i = 0; i < count; ++i) {
      double edge = 0.0;
      line >> edge;
      options.ed_learner.bin_edges.push_back(edge);
    }
    if (!line) return Status::InvalidArgument("bad bin_edges line");
  }
  std::size_t num_databases = 0;
  std::uint32_t num_types = 0;
  {
    ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "num_databases"));
    line >> num_databases;
    if (!line) return Status::InvalidArgument("bad num_databases line");
  }
  {
    ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "num_types"));
    line >> num_types;
    if (!line) return Status::InvalidArgument("bad num_types line");
  }
  if (databases.size() != num_databases) {
    return Status::InvalidArgument("model holds ", num_databases,
                                   " databases but ", databases.size(),
                                   " were supplied");
  }

  auto searcher = std::make_unique<Metasearcher>(options);
  if (searcher->classifier_.num_types() != num_types) {
    return Status::InvalidArgument(
        "model num_types ", num_types, " does not match the classifier (",
        searcher->classifier_.num_types(), ")");
  }

  for (std::size_t db = 0; db < num_databases; ++db) {
    {
      ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "database"));
      std::size_t index = 0;
      line >> index;
      if (!line || index != db) {
        return Status::InvalidArgument("database blocks out of order at ", db);
      }
    }
    std::string name;
    {
      ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "name"));
      std::getline(line, name);
      name = std::string(StripAsciiWhitespace(name));
    }
    if (databases[db] == nullptr || databases[db]->name() != name) {
      return Status::InvalidArgument(
          "database ", db, " mismatch: model has '", name, "', supplied '",
          databases[db] == nullptr ? "<null>" : databases[db]->name(), "'");
    }
    std::uint32_t size = 0;
    {
      ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "size"));
      line >> size;
      if (!line) return Status::InvalidArgument("bad size line");
    }
    std::size_t num_terms = 0;
    {
      ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "num_terms"));
      line >> num_terms;
      if (!line) return Status::InvalidArgument("bad num_terms line");
    }
    StatSummary summary(name, size);
    for (std::size_t t = 0; t < num_terms; ++t) {
      ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "t"));
      std::uint32_t df = 0;
      std::string term;
      line >> df;
      std::getline(line, term);
      term = std::string(StripAsciiWhitespace(term));
      if (term.empty()) {
        return Status::InvalidArgument("empty term in database ", db);
      }
      summary.SetDocumentFrequency(term, df);
    }
    RETURN_NOT_OK(searcher->AddDatabase(databases[db], std::move(summary)));
  }

  EdTable table(num_databases, num_types, options.ed_learner.bin_edges);
  const std::size_t num_cells = options.ed_learner.bin_edges.size() + 1;
  for (std::size_t i = 0; i < num_databases * num_types; ++i) {
    ASSIGN_OR_RETURN(std::istringstream line, ExpectLine(is, "ed"));
    std::size_t db = 0;
    QueryTypeId type = 0;
    std::size_t samples = 0;
    line >> db >> type >> samples;
    std::vector<double> counts(num_cells, 0.0);
    for (double& count : counts) line >> count;
    if (!line || db >= num_databases || type >= num_types) {
      return Status::InvalidArgument("bad ed line ", i);
    }
    ASSIGN_OR_RETURN(ErrorDistribution ed,
                     ErrorDistribution::Restore(options.ed_learner.bin_edges,
                                                counts, samples));
    RETURN_NOT_OK(table.Set(db, type, std::move(ed)));
  }
  RETURN_NOT_OK(ExpectLine(is, "end").status());

  searcher->PublishTrainedState(std::move(table));
  return searcher;
}

}  // namespace core
}  // namespace metaprobe
