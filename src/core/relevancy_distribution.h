// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_RELEVANCY_DISTRIBUTION_H_
#define METAPROBE_CORE_RELEVANCY_DISTRIBUTION_H_

#include "core/error_distribution.h"
#include "stats/discrete_distribution.h"

namespace metaprobe {
namespace core {

/// \brief The probabilistic belief about one database's true relevancy to
/// the current query — the paper's RD (Section 3.1, Figure 5).
///
/// Derived from the point estimate and the database's error distribution by
/// inverting Eq. 2: for each error atom e,
///
///   r = max(0, r_hat + e * max(r_hat, 1))
///
/// (the same unit-floored denominator used when the errors were observed).
/// After a probe the RD collapses to an impulse at the observed relevancy.
struct RelevancyDistribution {
  stats::DiscreteDistribution dist;
  /// True once the database has been probed for this query.
  bool probed = false;
  /// The point estimate r_hat the RD was derived from (reporting only).
  double estimate = 0.0;

  /// \brief Derives the RD for a query with estimate `r_hat` from `ed`.
  /// An empty ED yields an impulse at r_hat (estimator trusted as-is).
  static RelevancyDistribution FromEstimate(double r_hat,
                                            const ErrorDistribution& ed);

  /// \brief Derives the RD from an explicit discrete error distribution.
  static RelevancyDistribution FromErrorDist(
      double r_hat, const stats::DiscreteDistribution& errors);

  /// \brief RD of a probed database: all mass at the observed relevancy.
  static RelevancyDistribution Probed(double actual);
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_RELEVANCY_DISTRIBUTION_H_
