// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_SERVING_STATS_H_
#define METAPROBE_CORE_SERVING_STATS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/mutex.h"
#include "core/query_class.h"
#include "core/relevancy_distribution.h"
#include "obs/metric_registry.h"

namespace metaprobe {
namespace core {

/// \brief Snapshot of a Metasearcher's serving counters; throughput benches
/// and operational dashboards read these instead of instrumenting callers.
/// Since the observability layer landed this is a *view* over the
/// searcher's obs::MetricRegistry — the same series the Prometheus
/// exposition exports — kept as a plain struct for callers that want a
/// coherent sample without parsing text.
struct ServingStats {
  std::uint64_t queries_served = 0;   ///< Select/Search calls completed.
  std::uint64_t batches_served = 0;   ///< SelectBatch/SearchBatch calls.
  std::uint64_t probes_issued = 0;    ///< Successful probes across queries.
  std::uint64_t probes_failed = 0;    ///< Probe attempts that errored.
  std::uint64_t rd_cache_hits = 0;
  std::uint64_t rd_cache_misses = 0;
  std::uint64_t rd_cache_entries = 0;  ///< Distinct cached RDs right now.

  double rd_cache_hit_rate() const {
    std::uint64_t total = rd_cache_hits + rd_cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(rd_cache_hits) / total;
  }
};

/// \brief Memoizes derived relevancy distributions per
/// (database, query type, r_hat bucket).
///
/// Deriving an RD (RelevancyDistribution::FromEstimate) costs one pass over
/// the ED's atoms per database per query. Across real query traces the
/// estimates cluster heavily, so the derivation keys repeat; the cache
/// quantizes r_hat onto a logarithmic grid and memoizes the RD derived from
/// the bucket's representative estimate.
///
/// Quantization is an approximation: with `buckets_per_decade` = 20 the
/// representative estimate is within ~6% of the true r_hat. Selection is
/// tolerant to that (the EDs model far larger estimator error), but the
/// cache is opt-in (MetasearcherOptions::enable_rd_cache) so reproduction
/// figures are bit-exact against the uncached path by default.
///
/// The table is split into 16 shards, each behind its own reader/writer
/// lock, so concurrent serving threads hitting different keys never touch
/// the same cache line, let alone the same lock. Readers take the shard's
/// shared lock; a miss re-acquires it exclusively for the insert. Hit/miss
/// accounting goes through sharded obs::Counters as well, so a hot hit
/// path contends on nothing searcher-wide.
class RdCache {
 public:
  explicit RdCache(double buckets_per_decade = 20.0);

  /// \brief Drops all entries and re-keys for a (re)trained model. Hit and
  /// miss counters are monotonic and survive retraining (scrapers expect
  /// counters to only move forward); entries() reflects the empty cache.
  /// Not atomic against concurrent readers — call before the cache is
  /// shared (the Metasearcher builds a fresh cache per trained snapshot
  /// and publishes it afterwards, so this never races in practice).
  void Reset(std::size_t num_databases, std::uint32_t num_types);

  /// \brief Redirects hit/miss accounting to externally owned counters —
  /// the Metasearcher points these at its metric registry so the cache's
  /// traffic shows up in the exposition. Call during setup, before the
  /// cache serves concurrent traffic; null pointers are ignored.
  void SetCounters(obs::Counter* hits, obs::Counter* misses);

  /// \brief The bucket-representative estimate that stands in for `r_hat`.
  double Representative(double r_hat) const;

  /// \brief Returns the cached RD for (db, type, bucket(r_hat)), deriving
  /// it with `derive` (called on the representative estimate) on a miss.
  RelevancyDistribution GetOrDerive(
      std::size_t db, QueryTypeId type, double r_hat,
      const std::function<RelevancyDistribution(double)>& derive);

  std::uint64_t hits() const { return hits_->Value(); }
  std::uint64_t misses() const { return misses_->Value(); }
  std::uint64_t entries() const;

 private:
  static constexpr std::size_t kNumShards = 16;

  /// Padded to a cache line so two shards never false-share.
  struct alignas(64) Shard {
    mutable SharedMutex mutex;
    std::unordered_map<std::uint64_t, RelevancyDistribution> entries
        GUARDED_BY(mutex);
  };

  std::uint64_t KeyOf(std::size_t db, QueryTypeId type, double r_hat) const;
  /// Fibonacci-hash the key so adjacent (db, type) cells spread across
  /// shards instead of clustering in one.
  static std::size_t ShardOf(std::uint64_t key) {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 60);
  }

  double buckets_per_decade_;
  std::uint32_t num_types_ = 0;
  std::array<Shard, kNumShards> shards_;
  // Standalone fallbacks so a bare RdCache still counts; SetCounters swaps
  // in the owning searcher's registry series.
  obs::Counter own_hits_{"rd_cache_hits"};
  obs::Counter own_misses_{"rd_cache_misses"};
  obs::Counter* hits_ = &own_hits_;
  obs::Counter* misses_ = &own_misses_;
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_SERVING_STATS_H_
