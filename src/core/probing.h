// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_PROBING_H_
#define METAPROBE_CORE_PROBING_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/correctness.h"
#include "core/deadline.h"
#include "core/selection.h"
#include "stats/random.h"

namespace metaprobe {

namespace obs {
class Counter;
class Histogram;
class MonotonicClock;
class QueryTrace;
}  // namespace obs

namespace core {

/// \brief The selection task a probing policy is serving.
struct ProbingContext {
  int k = 1;
  CorrectnessMetric metric = CorrectnessMetric::kAbsolute;
  int search_width = 4;
  /// The user-required certainty level t; stopping-aware policies target it
  /// directly.
  double threshold = 1.0;
  /// Per-database probing costs (empty = unit cost everywhere). Section 5.2
  /// of the paper assumes equal costs "to simplify the discussion" and
  /// notes the methods extend to heterogeneous costs; cost-aware policies
  /// divide their information signal by the cost.
  const std::vector<double>* probe_costs = nullptr;

  /// Worker pool for policies that can parallelize their candidate scoring
  /// (borrowed, not owned; null = score sequentially). AdaptiveProber wires
  /// this to AProOptions::pool. The pool's tasks must be leaves: SelectDb
  /// blocks on them, so it must never run as a worker of this same pool
  /// (the serving layer guarantees that by keeping the query/batch pool and
  /// the probe pool distinct; see Metasearcher::SetProbePool).
  ThreadPool* pool = nullptr;

  /// When non-null (the serving layer sets it while tracing), SelectDb
  /// fills entry i with the policy's internal score for candidate database
  /// i, NaN where none was computed; the chosen database's score is
  /// exported into the query trace. Score-free policies (random,
  /// round-robin) leave it untouched. Writing scores must not change the
  /// selection arithmetic.
  std::vector<double>* policy_scores = nullptr;

  /// \brief Cost of probing database `i` (1 when no costs are configured).
  double CostOf(std::size_t i) const {
    if (probe_costs == nullptr || i >= probe_costs->size()) return 1.0;
    return (*probe_costs)[i] > 0.0 ? (*probe_costs)[i] : 1.0;
  }
};

/// \brief Chooses which unprobed database the APro loop contacts next
/// (the SelectDb step of Figure 11).
class ProbingPolicy {
 public:
  virtual ~ProbingPolicy() = default;

  /// \brief Policy name for reports and ablation tables.
  virtual std::string name() const = 0;

  /// \brief Index of the next database to probe. `probed[i]` marks
  /// databases already probed; at least one entry is false when called.
  virtual std::size_t SelectDb(TopKModel* model,
                               const std::vector<bool>& probed,
                               const ProbingContext& context) = 0;

  /// \brief Fresh policy equivalent to this one's configuration. The
  /// concurrent serving paths clone the installed policy once per in-flight
  /// query, so SelectDb never runs on a shared instance from two threads
  /// (stateful policies like RandomProbingPolicy would race otherwise).
  virtual std::unique_ptr<ProbingPolicy> Clone() const = 0;
};

/// \brief The paper's greedy policy (Section 5.4): probe the database with
/// the highest expected *usefulness*, where the usefulness of an outcome is
/// the best achievable E[Cor(DB^k)] after observing it, and the expectation
/// runs over the database's current RD (the computation of Figure 13).
///
/// When `context.pool` is set, the per-candidate usefulness evaluations fan
/// out across the pool on independent `TopKModel` clones (each clone copies
/// the warmed kernel cache, so workers never share mutable state). The
/// argmax reduction walks candidates in ascending database order on the
/// calling thread, and each clone performs exactly the floating-point
/// operations the sequential loop would, so the selected database is
/// bit-identical to the sequential policy's regardless of scheduling.
class GreedyUsefulnessPolicy : public ProbingPolicy {
 public:
  std::string name() const override { return "greedy-usefulness"; }
  std::size_t SelectDb(TopKModel* model, const std::vector<bool>& probed,
                       const ProbingContext& context) override;
  std::unique_ptr<ProbingPolicy> Clone() const override {
    return std::make_unique<GreedyUsefulnessPolicy>();
  }
};

/// \brief Ablation baseline: probe a uniformly random unprobed database.
class RandomProbingPolicy : public ProbingPolicy {
 public:
  explicit RandomProbingPolicy(std::uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "random"; }
  std::size_t SelectDb(TopKModel* model, const std::vector<bool>& probed,
                       const ProbingContext& context) override;
  /// The clone carries the current generator state, so per-query clones in
  /// a batch draw the same sequence a fresh sequential run would.
  std::unique_ptr<ProbingPolicy> Clone() const override {
    return std::unique_ptr<ProbingPolicy>(new RandomProbingPolicy(*this));
  }

 private:
  stats::Rng rng_;
};

/// \brief Ablation baseline: probe databases in fixed id order.
class RoundRobinProbingPolicy : public ProbingPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  std::size_t SelectDb(TopKModel* model, const std::vector<bool>& probed,
                       const ProbingContext& context) override;
  std::unique_ptr<ProbingPolicy> Clone() const override {
    return std::make_unique<RoundRobinProbingPolicy>();
  }
};

/// \brief Ablation baseline: probe the unprobed database whose RD has the
/// largest standard deviation (most uncertainty, ignoring its effect on the
/// answer set).
class MaxVarianceProbingPolicy : public ProbingPolicy {
 public:
  std::string name() const override { return "max-variance"; }
  std::size_t SelectDb(TopKModel* model, const std::vector<bool>& probed,
                       const ProbingContext& context) override;
  std::unique_ptr<ProbingPolicy> Clone() const override {
    return std::make_unique<MaxVarianceProbingPolicy>();
  }
};

/// \brief Probes the database whose top-k membership is most uncertain:
/// argmax of the binary entropy of Pr(db_i in DB_topk).
///
/// A refinement over the paper's expected-usefulness greedy: it targets the
/// databases that actually decide the answer set, and is immune to the
/// "phantom tail" myopia where eliminating many low-probability contenders
/// looks better one step ahead than resolving the real contest (see
/// DESIGN.md). Also an order of magnitude cheaper per step.
class MembershipEntropyPolicy : public ProbingPolicy {
 public:
  std::string name() const override { return "membership-entropy"; }
  std::size_t SelectDb(TopKModel* model, const std::vector<bool>& probed,
                       const ProbingContext& context) override;
  std::unique_ptr<ProbingPolicy> Clone() const override {
    return std::make_unique<MembershipEntropyPolicy>();
  }
};

/// \brief Probes the database maximizing the probability that the APro
/// stopping condition E[Cor(DB^k)] >= t holds immediately after the probe,
/// with membership entropy as the tie-break.
///
/// Rationale: the paper's expected usefulness is a martingale — its mean
/// equals the prior certainty unless some outcome flips the best answer set
/// — so "increase E[Cor] the most" cannot see that probing the leading
/// contender concentrates the certainty distribution. The probability of
/// crossing t captures exactly that; when no single probe can reach t the
/// signal vanishes and the entropy tie-break takes over.
class StoppingProbabilityPolicy : public ProbingPolicy {
 public:
  std::string name() const override { return "stopping-probability"; }
  std::size_t SelectDb(TopKModel* model, const std::vector<bool>& probed,
                       const ProbingContext& context) override;
  std::unique_ptr<ProbingPolicy> Clone() const override {
    return std::make_unique<StoppingProbabilityPolicy>();
  }
};

/// \brief Depth-limited expectimax policy: approximates the optimal probe
/// schedule of the paper's extended report [21], which minimizes the
/// expected number of probes to reach the threshold t but costs O(n!) in
/// full generality.
///
/// For each candidate database the policy computes the expected number of
/// additional probes (this one included) needed to reach t, assuming
/// optimal play for `max_depth - 1` further probes and "one more probe
/// fixes it" beyond the horizon, and picks the minimizer. Depth 1
/// degenerates to StoppingProbabilityPolicy's signal; each extra level
/// multiplies cost by roughly (#candidates x support size). Intended for
/// small mediator sets or as a quality yardstick in ablations.
class ExpectimaxProbingPolicy : public ProbingPolicy {
 public:
  explicit ExpectimaxProbingPolicy(int max_depth = 2);

  std::string name() const override;
  std::size_t SelectDb(TopKModel* model, const std::vector<bool>& probed,
                       const ProbingContext& context) override;
  std::unique_ptr<ProbingPolicy> Clone() const override {
    return std::make_unique<ExpectimaxProbingPolicy>(max_depth_);
  }

 private:
  double ExpectedProbes(TopKModel* model, std::vector<bool>* probed,
                        const ProbingContext& context, int depth) const;

  int max_depth_;
};

/// \brief Oracle that answers "what is database i's true relevancy to the
/// current query"; the production implementation issues the query to the
/// database, tests inject synthetic truths.
using ProbeFn = std::function<Result<double>(std::size_t db)>;

/// \brief What APro does when a probe fails (times out, rate-limits).
enum class ProbeFailureMode {
  /// Abort the run and surface the error (strict; the default).
  kAbort,
  /// Skip the failed database — keep its RD as-is, exclude it from further
  /// probing, and let the policy pick another. The run degrades gracefully
  /// toward the no-probing answer if everything fails.
  kSkipDatabase,
};

/// \brief Parameters of one adaptive-probing run.
struct AProOptions {
  int k = 1;                 ///< Databases to select.
  double threshold = 0.9;    ///< User-required certainty level t.
  CorrectnessMetric metric = CorrectnessMetric::kAbsolute;
  int search_width = 4;      ///< Best-set search width (see TopKModel).
  /// Probe budget; <0 means "all databases". The algorithm also stops when
  /// every database has been probed (certainty is then exactly 1).
  int max_probes = -1;
  /// Record the best DB^k after every probe (Figure 16 needs the full
  /// trajectory; costs one best-set search per step when enabled).
  bool record_trace = false;
  ProbeFailureMode failure_mode = ProbeFailureMode::kAbort;
  /// Per-database probing costs (empty = unit). Cost-aware policies spend
  /// cheap probes first; `max_cost` bounds the total spend.
  std::vector<double> probe_costs;
  /// Total probing budget in cost units; < 0 means unlimited.
  double max_cost = -1.0;
  /// Maximum probes dispatched concurrently per APro round. 1 (the
  /// default, "deterministic mode") reproduces the paper's strictly
  /// sequential loop: observe each outcome before choosing the next probe.
  /// Larger values probe speculatively: the policy picks a batch of
  /// distinct databases *without* seeing the intermediate outcomes, the
  /// probes run concurrently on `pool`, and the observed relevancies are
  /// merged into the model in selection order — still fully deterministic
  /// given the same inputs, but the probe schedule can differ from the
  /// sequential one's. Trades extra probes for wall-clock latency when
  /// probes are remote round-trips.
  int speculative_batch = 1;
  /// Worker pool for speculative dispatch (borrowed, not owned); when null
  /// the batch's probes are issued sequentially (identical results, no
  /// concurrency).
  ThreadPool* pool = nullptr;
  /// Absolute cutoff for the run. Checked between rounds and — on the
  /// sequential dispatch path — between the probes of a batch, so one slow
  /// backend cannot overrun the deadline by a full batch; an in-flight
  /// concurrent batch is never cancelled mid-probe. When the cutoff passes,
  /// the loop stops probing and returns the best answer derivable from the
  /// observations merged so far (the estimate-only answer when no probe
  /// completed), with AProResult::deadline_expired set — never an error.
  /// Inactive by default: no clock is read and behavior is bit-identical to
  /// the deadline-free loop.
  Deadline deadline;

  // --- Observability sinks (all borrowed, all optional). ---

  /// Structured span sink for this run: one "probe" span per probe attempt
  /// (database id, observed r, certainty before/after, policy score) plus a
  /// final "stop" event. Enabling it costs one best-set search per probe —
  /// the same price record_trace pays.
  obs::QueryTrace* trace = nullptr;
  /// Per-probe wall-time histogram; each worker observes its own probe's
  /// duration. Requires `clock`.
  obs::Histogram* probe_latency = nullptr;
  /// Time source for probe timing and span timestamps. Null disables all
  /// timing (probes are then never clocked, even with `trace` set).
  const obs::MonotonicClock* clock = nullptr;
  /// Probes dispatched speculatively (position > 0 in their round's batch).
  obs::Counter* speculative_probes = nullptr;
  /// Speculative probes merged after the threshold had already been
  /// reached by an earlier merge of the same batch. Exact only while a
  /// trace is active — detecting waste otherwise would cost the per-merge
  /// best-set searches speculation exists to avoid.
  obs::Counter* speculative_waste = nullptr;
};

/// \brief Outcome of an adaptive-probing run.
struct AProResult {
  std::vector<std::size_t> selected;     ///< Final DB^k, ascending ids.
  double expected_correctness = 0.0;     ///< E[Cor] of the final answer.
  bool reached_threshold = false;        ///< Whether t was met.
  std::vector<std::size_t> probe_order;  ///< Databases probed, in order.
  /// The deadline cut probing short before the threshold was reached; the
  /// answer reflects every fully-merged observation up to the cut (degraded
  /// mode — see AProOptions::deadline).
  bool deadline_expired = false;
  /// Databases whose probe failed (kSkipDatabase mode only).
  std::vector<std::size_t> failed_probes;
  /// Total cost spent on probes (successful and failed attempts alike);
  /// equals the attempt count under unit costs.
  double total_cost = 0.0;
  /// When record_trace: entry p is the best DB^k and its E[Cor] after p
  /// probes (entry 0 = no probing, i.e. the RD-based method).
  std::vector<SelectionResult> trace;

  int num_probes() const { return static_cast<int>(probe_order.size()); }
};

/// \brief The APro algorithm of Figure 11: repeatedly check whether any
/// DB^k reaches the certainty threshold; if not, let the policy pick a
/// database, probe it, collapse its RD to the observed impulse, and loop.
class AdaptiveProber {
 public:
  AdaptiveProber(ProbingPolicy* policy, AProOptions options);

  /// \brief Runs APro on `model` (consumed/mutated) with `probe` as the
  /// relevancy oracle.
  Result<AProResult> Run(TopKModel* model, const ProbeFn& probe) const;

  const AProOptions& options() const { return options_; }

 private:
  ProbingPolicy* policy_;
  AProOptions options_;
};

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_PROBING_H_
