// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_RELEVANCY_DEFINITION_H_
#define METAPROBE_CORE_RELEVANCY_DEFINITION_H_

#include "common/result.h"
#include "core/hidden_web_database.h"
#include "core/query.h"

namespace metaprobe {
namespace core {

/// \brief Which notion of database relevancy r(db, q) is in force
/// (Section 2.1 of the paper).
enum class RelevancyDefinition {
  /// r(db, q) = number of documents matching all query keywords; probed by
  /// reading the "N results found" line of the answer page.
  kDocumentFrequency,
  /// r(db, q) = similarity of the single most relevant document (tf-idf
  /// cosine); probed by downloading the top result and scoring it.
  kDocumentSimilarity,
};

const char* RelevancyDefinitionName(RelevancyDefinition definition);

/// \brief Issues `query` to `database` and returns its exact relevancy
/// under `definition` — the probe primitive of Section 3.4, unified across
/// both definitions. All probabilistic machinery downstream (EDs, RDs,
/// expected correctness, APro) is definition-agnostic.
Result<double> ProbeRelevancy(const HiddenWebDatabase& database,
                              const Query& query,
                              RelevancyDefinition definition);

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_RELEVANCY_DEFINITION_H_
