// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_CORE_SELECTION_H_
#define METAPROBE_CORE_SELECTION_H_

#include <vector>

#include "core/correctness.h"

namespace metaprobe {
namespace core {

/// \brief A database-selection answer: the chosen databases (ascending ids)
/// and the method's own certainty about them (0 when the method cannot
/// quantify certainty, as with the estimator baseline).
struct SelectionResult {
  std::vector<std::size_t> databases;
  double expected_correctness = 0.0;
};

/// \brief The prior art baseline (Section 2.2): rank databases by the point
/// estimate r_hat and take the top k, ties to the lower id. Knows nothing
/// about its own error, hence expected_correctness is reported as 0.
SelectionResult SelectByEstimate(const std::vector<double>& estimates, int k);

/// \brief The paper's RD-based method (Section 3.3): return the k-subset
/// with the highest expected correctness under the probabilistic relevancy
/// model, without any probing.
SelectionResult SelectByRd(const TopKModel& model, int k,
                           CorrectnessMetric metric, int search_width = 4);

}  // namespace core
}  // namespace metaprobe

#endif  // METAPROBE_CORE_SELECTION_H_
