#include "core/probing.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace metaprobe {
namespace core {

namespace {

std::vector<std::size_t> UnprobedIndices(const std::vector<bool>& probed) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < probed.size(); ++i) {
    if (!probed[i]) indices.push_back(i);
  }
  return indices;
}

double BinaryEntropy(double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

}  // namespace

std::size_t GreedyUsefulnessPolicy::SelectDb(TopKModel* model,
                                             const std::vector<bool>& probed,
                                             const ProbingContext& context) {
  std::vector<std::size_t> candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  std::size_t best_db = candidates.front();
  double best_usefulness = -1.0;
  for (std::size_t i : candidates) {
    // Expected usefulness: average over the RD's outcomes of the best
    // achievable expected correctness after pinning the outcome.
    // Copy the support: conditioning swaps the RD out under us.
    const std::vector<stats::Atom> support = model->SupportOf(i);
    double usefulness = 0.0;
    for (const stats::Atom& atom : support) {
      TopKModel::ScopedCondition condition(model, i, atom.value);
      TopKModel::BestSet best = model->FindBestSet(
          context.k, context.metric, context.search_width);
      usefulness += atom.prob * best.expected_correctness;
    }
    if (usefulness > best_usefulness) {
      best_usefulness = usefulness;
      best_db = i;
    }
  }
  return best_db;
}

std::size_t RandomProbingPolicy::SelectDb(TopKModel* model,
                                          const std::vector<bool>& probed,
                                          const ProbingContext& context) {
  (void)model;
  (void)context;
  std::vector<std::size_t> candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  return candidates[rng_.UniformInt(candidates.size())];
}

std::size_t RoundRobinProbingPolicy::SelectDb(TopKModel* model,
                                              const std::vector<bool>& probed,
                                              const ProbingContext& context) {
  (void)model;
  (void)context;
  for (std::size_t i = 0; i < probed.size(); ++i) {
    if (!probed[i]) return i;
  }
  METAPROBE_DCHECK(false, "no unprobed database left");
  return 0;
}

std::size_t MaxVarianceProbingPolicy::SelectDb(TopKModel* model,
                                               const std::vector<bool>& probed,
                                               const ProbingContext& context) {
  (void)context;
  std::vector<std::size_t> candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  std::size_t best_db = candidates.front();
  double best_stddev = -1.0;
  for (std::size_t i : candidates) {
    double stddev = model->rd(i).StdDev();
    if (stddev > best_stddev) {
      best_stddev = stddev;
      best_db = i;
    }
  }
  return best_db;
}

std::size_t MembershipEntropyPolicy::SelectDb(TopKModel* model,
                                              const std::vector<bool>& probed,
                                              const ProbingContext& context) {
  std::vector<std::size_t> candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  std::vector<double> marginals = model->MembershipProbabilities(context.k);
  std::size_t best_db = candidates.front();
  double best_entropy = -1.0;
  for (std::size_t i : candidates) {
    double entropy = BinaryEntropy(marginals[i]) / context.CostOf(i);
    if (entropy > best_entropy) {
      best_entropy = entropy;
      best_db = i;
    }
  }
  return best_db;
}

std::size_t StoppingProbabilityPolicy::SelectDb(
    TopKModel* model, const std::vector<bool>& probed,
    const ProbingContext& context) {
  std::vector<std::size_t> candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  // The threshold the loop will actually test against.
  const double t = std::clamp(context.threshold, 0.0, 1.0);
  // Tie-break by membership entropy: expected usefulness is a martingale
  // (its mean never exceeds the prior certainty unless an outcome flips the
  // answer set), so when no single probe can reach t the stopping
  // probabilities all collapse to ~0 and the entropy signal takes over.
  std::vector<double> marginals = model->MembershipProbabilities(context.k);
  std::size_t best_db = candidates.front();
  double best_stop = -1.0;
  double best_entropy = -1.0;
  for (std::size_t i : candidates) {
    const std::vector<stats::Atom> support = model->SupportOf(i);
    double stop = 0.0;
    for (const stats::Atom& atom : support) {
      TopKModel::ScopedCondition condition(model, i, atom.value);
      TopKModel::BestSet best = model->FindBestSet(
          context.k, context.metric, context.search_width);
      if (best.expected_correctness >= t) stop += atom.prob;
    }
    double cost = context.CostOf(i);
    double stop_rate = stop / cost;
    double entropy_rate = BinaryEntropy(marginals[i]) / cost;
    if (stop_rate > best_stop + 1e-12 ||
        (stop_rate > best_stop - 1e-12 && entropy_rate > best_entropy)) {
      best_stop = std::max(stop_rate, best_stop);
      best_entropy = entropy_rate;
      best_db = i;
    }
  }
  return best_db;
}

ExpectimaxProbingPolicy::ExpectimaxProbingPolicy(int max_depth)
    : max_depth_(std::max(max_depth, 1)) {}

std::string ExpectimaxProbingPolicy::name() const {
  return "expectimax(depth=" + std::to_string(max_depth_) + ")";
}

// Expected probes to reach the threshold from the current state, assuming
// the best next probe and optimal continuation down to `depth` more levels;
// past the horizon an unresolved branch is charged one extra probe.
double ExpectimaxProbingPolicy::ExpectedProbes(TopKModel* model,
                                               std::vector<bool>* probed,
                                               const ProbingContext& context,
                                               int depth) const {
  TopKModel::BestSet best =
      model->FindBestSet(context.k, context.metric, context.search_width);
  if (best.expected_correctness >= context.threshold) return 0.0;
  if (depth == 0) return 1.0;  // optimistic horizon charge

  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < probed->size(); ++i) {
    if ((*probed)[i]) continue;
    const std::vector<stats::Atom> support = model->SupportOf(i);
    double cost = 1.0;
    (*probed)[i] = true;
    for (const stats::Atom& atom : support) {
      TopKModel::ScopedCondition condition(model, i, atom.value);
      cost += atom.prob * ExpectedProbes(model, probed, context, depth - 1);
      if (cost >= best_cost) break;  // branch-and-bound prune
    }
    (*probed)[i] = false;
    best_cost = std::min(best_cost, cost);
  }
  // No unprobed database left: the answer cannot improve further.
  if (!std::isfinite(best_cost)) return 0.0;
  return best_cost;
}

std::size_t ExpectimaxProbingPolicy::SelectDb(TopKModel* model,
                                              const std::vector<bool>& probed,
                                              const ProbingContext& context) {
  std::vector<std::size_t> candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  std::vector<bool> scratch = probed;
  std::size_t best_db = candidates.front();
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i : candidates) {
    const std::vector<stats::Atom> support = model->SupportOf(i);
    double cost = 1.0;
    scratch[i] = true;
    for (const stats::Atom& atom : support) {
      TopKModel::ScopedCondition condition(model, i, atom.value);
      cost += atom.prob *
              ExpectedProbes(model, &scratch, context, max_depth_ - 1);
      if (cost >= best_cost) break;
    }
    scratch[i] = false;
    if (cost < best_cost) {
      best_cost = cost;
      best_db = i;
    }
  }
  return best_db;
}

AdaptiveProber::AdaptiveProber(ProbingPolicy* policy, AProOptions options)
    : policy_(policy), options_(options) {}

Result<AProResult> AdaptiveProber::Run(TopKModel* model,
                                       const ProbeFn& probe) const {
  const std::size_t n = model->num_databases();
  if (n == 0) return Status::InvalidArgument("no databases to select from");
  if (options_.k <= 0) {
    return Status::InvalidArgument("k must be positive, got ", options_.k);
  }
  const double threshold = std::clamp(options_.threshold, 0.0, 1.0);
  const std::size_t max_probes =
      options_.max_probes < 0
          ? n
          : std::min<std::size_t>(n, static_cast<std::size_t>(
                                         options_.max_probes));

  ProbingContext context;
  context.k = options_.k;
  context.metric = options_.metric;
  context.search_width = options_.search_width;
  context.threshold = threshold;
  if (!options_.probe_costs.empty()) {
    if (options_.probe_costs.size() != n) {
      return Status::InvalidArgument("got ", options_.probe_costs.size(),
                                     " probe costs for ", n, " databases");
    }
    context.probe_costs = &options_.probe_costs;
  }

  AProResult result;
  std::vector<bool> probed(n, false);
  for (std::size_t i = 0; i < n; ++i) probed[i] = model->probed(i);

  while (true) {
    TopKModel::BestSet best =
        model->FindBestSet(options_.k, options_.metric, options_.search_width);
    if (options_.record_trace) {
      SelectionResult step;
      step.databases = best.members;
      step.expected_correctness = best.expected_correctness;
      result.trace.push_back(std::move(step));
    }
    result.selected = best.members;
    result.expected_correctness = best.expected_correctness;
    if (best.expected_correctness >= threshold) {
      result.reached_threshold = true;
      break;
    }
    std::size_t num_probed =
        static_cast<std::size_t>(std::count(probed.begin(), probed.end(), true));
    std::size_t attempts =
        result.probe_order.size() + result.failed_probes.size();
    if (num_probed >= n || attempts >= max_probes ||
        (options_.max_cost >= 0.0 && result.total_cost >= options_.max_cost)) {
      break;  // budget exhausted; return the best answer found
    }
    std::size_t next = policy_->SelectDb(model, probed, context);
    if (next >= n || probed[next]) {
      return Status::Internal("probing policy '", policy_->name(),
                              "' returned invalid database ", next);
    }
    result.total_cost += context.CostOf(next);
    Result<double> actual = probe(next);
    if (!actual.ok()) {
      if (options_.failure_mode == ProbeFailureMode::kAbort) {
        return actual.status();
      }
      // Skip mode: the database keeps its RD but is never probed again;
      // the failed attempt counts against the probe budget so a fully
      // unreachable backend cannot stall the loop.
      probed[next] = true;
      result.failed_probes.push_back(next);
      continue;
    }
    model->Observe(next, *actual);
    probed[next] = true;
    result.probe_order.push_back(next);
  }
  return result;
}

}  // namespace core
}  // namespace metaprobe
