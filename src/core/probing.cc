#include "core/probing.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/macros.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace metaprobe {
namespace core {

namespace {

// Refills the calling thread's candidate scratch with the unprobed indices
// and returns it. Thread-local (not a policy member) because direct
// Metasearcher::Select calls share the installed policy instance across
// threads — stateless policies must stay stateless — while still making
// the per-SelectDb allocation disappear after each thread's first call.
std::vector<std::size_t>& UnprobedIndices(const std::vector<bool>& probed) {
  static thread_local std::vector<std::size_t> scratch;
  scratch.clear();
  for (std::size_t i = 0; i < probed.size(); ++i) {
    if (!probed[i]) scratch.push_back(i);
  }
  return scratch;
}

double BinaryEntropy(double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

// Exports a policy's candidate score when the serving layer asked for them.
void RecordPolicyScore(const ProbingContext& context, std::size_t db,
                       double score) {
  if (context.policy_scores != nullptr &&
      db < context.policy_scores->size()) {
    (*context.policy_scores)[db] = score;
  }
}

// Expected usefulness of probing database `i`: average over the RD's
// outcomes of the best achievable expected correctness after pinning the
// outcome (Figure 13). Pure given the model state, so the parallel scorer
// can run it on per-candidate clones and get the sequential loop's exact
// floating-point results.
double CandidateUsefulness(TopKModel* model, std::size_t i,
                           const ProbingContext& context) {
  // Copy the support: conditioning swaps the RD out under us.
  const std::vector<stats::Atom> support = model->SupportOf(i);
  double usefulness = 0.0;
  for (const stats::Atom& atom : support) {
    TopKModel::ScopedCondition condition(model, i, atom.value);
    TopKModel::BestSet best =
        model->FindBestSet(context.k, context.metric, context.search_width);
    usefulness += atom.prob * best.expected_correctness;
  }
  return usefulness;
}

}  // namespace

std::size_t GreedyUsefulnessPolicy::SelectDb(TopKModel* model,
                                             const std::vector<bool>& probed,
                                             const ProbingContext& context) {
  std::vector<std::size_t>& candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  std::vector<double> usefulness(candidates.size());
  if (context.pool != nullptr && context.pool->num_workers() > 0 &&
      candidates.size() > 1) {
    // Fan the candidates across the pool on independent clones. Warm the
    // cache first so every clone copies a ready kernel instead of each
    // rebuilding its own; the original is then never mutated while worker
    // tasks read it (the clone copy is a pure read).
    model->WarmKernelCache();
    std::vector<std::future<double>> futures;
    futures.reserve(candidates.size());
    for (std::size_t db : candidates) {
      const TopKModel* original = model;
      futures.push_back(context.pool->Submit([original, db, &context]() {
        TopKModel clone(*original);
        return CandidateUsefulness(&clone, db, context);
      }));
    }
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      usefulness[c] = futures[c].get();
    }
  } else {
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      usefulness[c] = CandidateUsefulness(model, candidates[c], context);
    }
  }
  // Deterministic argmax: ascending database order, first strict maximum
  // wins — the same tie-breaking the sequential loop applies.
  std::size_t best_db = candidates.front();
  double best_usefulness = -1.0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    RecordPolicyScore(context, candidates[c], usefulness[c]);
    if (usefulness[c] > best_usefulness) {
      best_usefulness = usefulness[c];
      best_db = candidates[c];
    }
  }
  return best_db;
}

std::size_t RandomProbingPolicy::SelectDb(TopKModel* model,
                                          const std::vector<bool>& probed,
                                          const ProbingContext& context) {
  (void)model;
  (void)context;
  std::vector<std::size_t>& candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  return candidates[rng_.UniformInt(candidates.size())];
}

std::size_t RoundRobinProbingPolicy::SelectDb(TopKModel* model,
                                              const std::vector<bool>& probed,
                                              const ProbingContext& context) {
  (void)model;
  (void)context;
  for (std::size_t i = 0; i < probed.size(); ++i) {
    if (!probed[i]) return i;
  }
  METAPROBE_DCHECK(false, "no unprobed database left");
  return 0;
}

std::size_t MaxVarianceProbingPolicy::SelectDb(TopKModel* model,
                                               const std::vector<bool>& probed,
                                               const ProbingContext& context) {
  (void)context;
  std::vector<std::size_t>& candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  std::size_t best_db = candidates.front();
  double best_stddev = -1.0;
  for (std::size_t i : candidates) {
    double stddev = model->rd(i).StdDev();
    RecordPolicyScore(context, i, stddev);
    if (stddev > best_stddev) {
      best_stddev = stddev;
      best_db = i;
    }
  }
  return best_db;
}

std::size_t MembershipEntropyPolicy::SelectDb(TopKModel* model,
                                              const std::vector<bool>& probed,
                                              const ProbingContext& context) {
  std::vector<std::size_t>& candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  std::vector<double> marginals = model->MembershipProbabilities(context.k);
  std::size_t best_db = candidates.front();
  double best_entropy = -1.0;
  for (std::size_t i : candidates) {
    double entropy = BinaryEntropy(marginals[i]) / context.CostOf(i);
    RecordPolicyScore(context, i, entropy);
    if (entropy > best_entropy) {
      best_entropy = entropy;
      best_db = i;
    }
  }
  return best_db;
}

std::size_t StoppingProbabilityPolicy::SelectDb(
    TopKModel* model, const std::vector<bool>& probed,
    const ProbingContext& context) {
  std::vector<std::size_t>& candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  // The threshold the loop will actually test against.
  const double t = std::clamp(context.threshold, 0.0, 1.0);
  // Tie-break by membership entropy: expected usefulness is a martingale
  // (its mean never exceeds the prior certainty unless an outcome flips the
  // answer set), so when no single probe can reach t the stopping
  // probabilities all collapse to ~0 and the entropy signal takes over.
  std::vector<double> marginals = model->MembershipProbabilities(context.k);
  std::size_t best_db = candidates.front();
  double best_stop = -1.0;
  double best_entropy = -1.0;
  for (std::size_t i : candidates) {
    const std::vector<stats::Atom> support = model->SupportOf(i);
    double stop = 0.0;
    for (const stats::Atom& atom : support) {
      TopKModel::ScopedCondition condition(model, i, atom.value);
      TopKModel::BestSet best = model->FindBestSet(
          context.k, context.metric, context.search_width);
      if (best.expected_correctness >= t) stop += atom.prob;
    }
    double cost = context.CostOf(i);
    double stop_rate = stop / cost;
    double entropy_rate = BinaryEntropy(marginals[i]) / cost;
    RecordPolicyScore(context, i, stop_rate);
    if (stop_rate > best_stop + 1e-12 ||
        (stop_rate > best_stop - 1e-12 && entropy_rate > best_entropy)) {
      best_stop = std::max(stop_rate, best_stop);
      best_entropy = entropy_rate;
      best_db = i;
    }
  }
  return best_db;
}

ExpectimaxProbingPolicy::ExpectimaxProbingPolicy(int max_depth)
    : max_depth_(std::max(max_depth, 1)) {}

std::string ExpectimaxProbingPolicy::name() const {
  return "expectimax(depth=" + std::to_string(max_depth_) + ")";
}

// Expected probes to reach the threshold from the current state, assuming
// the best next probe and optimal continuation down to `depth` more levels;
// past the horizon an unresolved branch is charged one extra probe.
double ExpectimaxProbingPolicy::ExpectedProbes(TopKModel* model,
                                               std::vector<bool>* probed,
                                               const ProbingContext& context,
                                               int depth) const {
  TopKModel::BestSet best =
      model->FindBestSet(context.k, context.metric, context.search_width);
  if (best.expected_correctness >= context.threshold) return 0.0;
  if (depth == 0) return 1.0;  // optimistic horizon charge

  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < probed->size(); ++i) {
    if ((*probed)[i]) continue;
    const std::vector<stats::Atom> support = model->SupportOf(i);
    double cost = 1.0;
    (*probed)[i] = true;
    for (const stats::Atom& atom : support) {
      TopKModel::ScopedCondition condition(model, i, atom.value);
      cost += atom.prob * ExpectedProbes(model, probed, context, depth - 1);
      if (cost >= best_cost) break;  // branch-and-bound prune
    }
    (*probed)[i] = false;
    best_cost = std::min(best_cost, cost);
  }
  // No unprobed database left: the answer cannot improve further.
  if (!std::isfinite(best_cost)) return 0.0;
  return best_cost;
}

std::size_t ExpectimaxProbingPolicy::SelectDb(TopKModel* model,
                                              const std::vector<bool>& probed,
                                              const ProbingContext& context) {
  std::vector<std::size_t>& candidates = UnprobedIndices(probed);
  METAPROBE_DCHECK(!candidates.empty(), "no unprobed database left");
  std::vector<bool> scratch = probed;
  std::size_t best_db = candidates.front();
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i : candidates) {
    const std::vector<stats::Atom> support = model->SupportOf(i);
    double cost = 1.0;
    scratch[i] = true;
    for (const stats::Atom& atom : support) {
      TopKModel::ScopedCondition condition(model, i, atom.value);
      cost += atom.prob *
              ExpectedProbes(model, &scratch, context, max_depth_ - 1);
      if (cost >= best_cost) break;
    }
    scratch[i] = false;
    RecordPolicyScore(context, i, -cost);  // higher = better, like the rest
    if (cost < best_cost) {
      best_cost = cost;
      best_db = i;
    }
  }
  return best_db;
}

AdaptiveProber::AdaptiveProber(ProbingPolicy* policy, AProOptions options)
    : policy_(policy), options_(options) {}

Result<AProResult> AdaptiveProber::Run(TopKModel* model,
                                       const ProbeFn& probe) const {
  const std::size_t n = model->num_databases();
  if (n == 0) return Status::InvalidArgument("no databases to select from");
  if (options_.k <= 0) {
    return Status::InvalidArgument("k must be positive, got ", options_.k);
  }
  const double threshold = std::clamp(options_.threshold, 0.0, 1.0);
  const std::size_t max_probes =
      options_.max_probes < 0
          ? n
          : std::min<std::size_t>(n, static_cast<std::size_t>(
                                         options_.max_probes));
  const std::size_t batch_limit = static_cast<std::size_t>(
      std::max(options_.speculative_batch, 1));

  ProbingContext context;
  context.k = options_.k;
  context.metric = options_.metric;
  context.search_width = options_.search_width;
  context.threshold = threshold;
  // Policies may parallelize candidate scoring on the probe pool: SelectDb
  // runs on the coordinating thread while no probes are in flight, and the
  // pool's workers only ever execute leaf tasks, so sharing it is safe.
  context.pool = options_.pool;
  if (!options_.probe_costs.empty()) {
    if (options_.probe_costs.size() != n) {
      return Status::InvalidArgument("got ", options_.probe_costs.size(),
                                     " probe costs for ", n, " databases");
    }
    context.probe_costs = &options_.probe_costs;
  }

  // Tracing (legacy trajectory vector or structured spans) recomputes the
  // best set after *every* merge so each trace step reflects exactly the
  // beliefs after its probe; without it a speculative round recomputes only
  // once, after its last merge.
  const bool tracing = options_.record_trace || options_.trace != nullptr;
  // Probe timing needs a clock and at least one sink that wants durations.
  const obs::MonotonicClock* clock =
      (options_.clock != nullptr && (options_.probe_latency != nullptr ||
                                     options_.trace != nullptr))
          ? options_.clock
          : nullptr;

  AProResult result;
  std::vector<bool> probed(n, false);
  for (std::size_t i = 0; i < n; ++i) probed[i] = model->probed(i);

  // Candidate-score scratch, db-indexed; refilled before each SelectDb so
  // the chosen database's policy score can ride along in its probe span.
  std::vector<double> scores;
  std::vector<double> batch_scores;

  auto record_step = [this, &result](const TopKModel::BestSet& best) {
    if (!options_.record_trace) return;
    SelectionResult step;
    step.databases = best.members;
    step.expected_correctness = best.expected_correctness;
    result.trace.push_back(std::move(step));
  };

  // Entry 0 of the trace: the answer before any probing (the RD method).
  TopKModel::BestSet best =
      model->FindBestSet(options_.k, options_.metric, options_.search_width);
  record_step(best);

  std::size_t round = 0;
  while (true) {
    result.selected = best.members;
    result.expected_correctness = best.expected_correctness;
    if (best.expected_correctness >= threshold) {
      result.reached_threshold = true;
      break;
    }
    std::size_t num_probed =
        static_cast<std::size_t>(std::count(probed.begin(), probed.end(), true));
    std::size_t attempts =
        result.probe_order.size() + result.failed_probes.size();
    if (num_probed >= n || attempts >= max_probes ||
        (options_.max_cost >= 0.0 && result.total_cost >= options_.max_cost)) {
      break;  // budget exhausted; return the best answer found
    }
    if (options_.deadline.expired()) {
      // Degrade, don't error: the answer standing at this boundary is built
      // from fully-merged observations only (the estimate-only answer when
      // the deadline arrived already expired).
      result.deadline_expired = true;
      break;
    }

    // Pick this round's probe targets. With batch_limit == 1 this is the
    // paper's loop verbatim. Beyond the first target the picks are
    // *speculative*: the policy re-runs on the same beliefs with earlier
    // picks masked out, without observing their outcomes. The extension
    // stops where the sequential loop would have stopped probing anyway
    // (probe/cost budget), so speculation never exceeds the budget by more
    // than the final in-flight batch — mirroring the sequential loop, which
    // also only checks budgets between probes.
    std::vector<std::size_t> batch;
    batch_scores.clear();
    std::vector<bool> planned = probed;
    std::size_t planned_count = num_probed;
    double planned_cost = 0.0;
    while (batch.size() < batch_limit && planned_count < n) {
      if (!batch.empty()) {
        if (attempts + batch.size() >= max_probes) break;
        if (options_.max_cost >= 0.0 &&
            result.total_cost + planned_cost >= options_.max_cost) {
          break;
        }
      }
      if (options_.trace != nullptr) {
        scores.assign(n, std::numeric_limits<double>::quiet_NaN());
        context.policy_scores = &scores;
      }
      std::size_t next = policy_->SelectDb(model, planned, context);
      context.policy_scores = nullptr;
      if (next >= n || planned[next]) {
        return Status::Internal("probing policy '", policy_->name(),
                                "' returned invalid database ", next);
      }
      if (options_.trace != nullptr) batch_scores.push_back(scores[next]);
      planned[next] = true;
      ++planned_count;
      planned_cost += context.CostOf(next);
      batch.push_back(next);
    }

    // Dispatch: concurrent across the batch when a pool is supplied, the
    // probes being independent remote calls; otherwise in order. Each
    // worker times its own probe (a wall-clock read is thread-local and the
    // latency histogram is sharded, so this adds no synchronization).
    struct TimedOutcome {
      Result<double> value;
      double seconds;
    };
    auto run_probe = [this, &probe, clock](std::size_t db) -> TimedOutcome {
      if (clock == nullptr) return {probe(db), -1.0};
      const std::uint64_t start = clock->NowNanos();
      Result<double> value = probe(db);
      const double seconds =
          static_cast<double>(clock->NowNanos() - start) * 1e-9;
      if (options_.probe_latency != nullptr) {
        options_.probe_latency->Observe(seconds);
      }
      return {std::move(value), seconds};
    };
    std::vector<TimedOutcome> outcomes;
    outcomes.reserve(batch.size());
    if (options_.pool != nullptr && batch.size() > 1) {
      std::vector<std::future<TimedOutcome>> futures;
      futures.reserve(batch.size());
      for (std::size_t db : batch) {
        futures.push_back(
            options_.pool->Submit([&run_probe, db]() { return run_probe(db); }));
      }
      for (std::future<TimedOutcome>& future : futures) {
        outcomes.push_back(future.get());
      }
    } else {
      // Sequential dispatch: a cheap deadline check between probes is the
      // batch's cancellation point — one slow backend can overrun the
      // deadline by at most its own probe, never by the rest of the batch.
      // The un-dispatched tail is dropped from the batch entirely (those
      // databases stay unprobed and unbilled); the expiry itself is acted
      // on at the top of the round loop, after the merge below.
      for (std::size_t b = 0; b < batch.size(); ++b) {
        if (b > 0 && options_.deadline.expired()) {
          batch.resize(b);
          if (batch_scores.size() > b) batch_scores.resize(b);
          break;
        }
        outcomes.push_back(run_probe(batch[b]));
      }
    }

    // Merge the observed relevancies into the model in selection order —
    // the coordinating thread is the only writer, so the merged state is a
    // deterministic function of the inputs no matter how the concurrent
    // probes interleaved. Trace steps are emitted here, at the merge that
    // produced them, so they appear in observation order.
    for (std::size_t b = 0; b < batch.size(); ++b) {
      std::size_t db = batch[b];
      result.total_cost += context.CostOf(db);
      if (b > 0 && options_.speculative_probes != nullptr) {
        options_.speculative_probes->Increment();
      }
      const double certainty_before = best.expected_correctness;
      obs::TraceSpan* span = nullptr;
      if (options_.trace != nullptr) {
        span = options_.trace->StartSpan("probe");
        span->Num("db", static_cast<double>(db))
            .Num("round", static_cast<double>(round))
            .Num("batch_index", static_cast<double>(b))
            .Num("certainty_before", certainty_before);
        if (b < batch_scores.size() && !std::isnan(batch_scores[b])) {
          span->Num("policy_score", batch_scores[b]);
        }
        if (outcomes[b].seconds >= 0.0) {
          span->Num("probe_seconds", outcomes[b].seconds);
        }
      }
      if (!outcomes[b].value.ok()) {
        if (options_.failure_mode == ProbeFailureMode::kAbort) {
          return outcomes[b].value.status();
        }
        // Skip mode: the database keeps its RD but is never probed again;
        // the failed attempt counts against the probe budget so a fully
        // unreachable backend cannot stall the loop.
        probed[db] = true;
        result.failed_probes.push_back(db);
        if (span != nullptr) {
          span->Num("ok", 0.0).Str("error",
                                   outcomes[b].value.status().message());
        }
      } else {
        model->Observe(db, *outcomes[b].value);
        probed[db] = true;
        result.probe_order.push_back(db);
        if (span != nullptr) {
          span->Num("ok", 1.0).Num("observed_r", *outcomes[b].value);
        }
      }
      if (tracing || b + 1 == batch.size()) {
        best = model->FindBestSet(options_.k, options_.metric,
                                  options_.search_width);
        record_step(best);
        if (span != nullptr) {
          span->Num("certainty_after", best.expected_correctness);
        }
        if (tracing && b > 0 && certainty_before >= threshold &&
            options_.speculative_waste != nullptr) {
          options_.speculative_waste->Increment();
        }
      }
      if (span != nullptr) options_.trace->EndSpan(span);
    }
    ++round;
  }

  if (options_.trace != nullptr) {
    options_.trace->AddEvent("stop")
        ->Num("reached_threshold", result.reached_threshold ? 1.0 : 0.0)
        .Num("deadline_expired", result.deadline_expired ? 1.0 : 0.0)
        .Num("expected_correctness", result.expected_correctness)
        .Num("probes", static_cast<double>(result.probe_order.size()))
        .Num("failed_probes", static_cast<double>(result.failed_probes.size()))
        .Num("total_cost", result.total_cost);
  }
  return result;
}

}  // namespace core
}  // namespace metaprobe
