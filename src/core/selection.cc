#include "core/selection.h"

#include <algorithm>
#include <numeric>

namespace metaprobe {
namespace core {

SelectionResult SelectByEstimate(const std::vector<double>& estimates,
                                 int k) {
  SelectionResult result;
  if (k <= 0 || estimates.empty()) return result;
  std::vector<std::size_t> order(estimates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (estimates[a] != estimates[b]) return estimates[a] > estimates[b];
    return a < b;
  });
  order.resize(std::min(order.size(), static_cast<std::size_t>(k)));
  std::sort(order.begin(), order.end());
  result.databases = std::move(order);
  return result;
}

SelectionResult SelectByRd(const TopKModel& model, int k,
                           CorrectnessMetric metric, int search_width) {
  // FindBestSet computes the membership marginals once per call and scores
  // the partial metric from them directly (and memoizes them on the model's
  // kernel cache), so this path never recomputes marginals for one query.
  TopKModel::BestSet best = model.FindBestSet(k, metric, search_width);
  SelectionResult result;
  result.databases = std::move(best.members);
  result.expected_correctness = best.expected_correctness;
  return result;
}

}  // namespace core
}  // namespace metaprobe
