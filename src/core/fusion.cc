#include "core/fusion.h"

#include <algorithm>
#include <cmath>

namespace metaprobe {
namespace core {

namespace {

std::vector<FusedHit> FuseByNormalizedScore(
    const std::vector<std::vector<SearchHit>>& lists,
    const std::vector<std::string>& names, std::size_t max_results,
    const FusionOptions& options) {
  std::vector<FusedHit> merged;
  for (std::size_t db = 0; db < lists.size(); ++db) {
    if (lists[db].empty()) continue;
    double max_score = 0.0;
    for (const SearchHit& hit : lists[db]) {
      max_score = std::max(max_score, hit.score);
    }
    if (max_score <= 0.0) max_score = 1.0;
    double weight = 1.0;
    if (db < options.database_weights.size()) {
      // Dampen the weight so a very relevant database boosts rather than
      // completely dominates the merge.
      weight = std::log1p(std::max(options.database_weights[db], 0.0)) + 1.0;
    }
    for (const SearchHit& hit : lists[db]) {
      FusedHit fused;
      fused.database = db;
      fused.database_name = db < names.size() ? names[db] : "";
      fused.doc = hit.doc;
      fused.score = hit.score / max_score * weight;
      fused.title = hit.title;
      merged.push_back(std::move(fused));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const FusedHit& a, const FusedHit& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.database != b.database) return a.database < b.database;
              return a.doc < b.doc;
            });
  if (merged.size() > max_results) merged.resize(max_results);
  return merged;
}

std::vector<FusedHit> FuseRoundRobin(
    const std::vector<std::vector<SearchHit>>& lists,
    const std::vector<std::string>& names, std::size_t max_results) {
  std::vector<FusedHit> merged;
  std::size_t depth = 0;
  bool any = true;
  while (any && merged.size() < max_results) {
    any = false;
    for (std::size_t db = 0; db < lists.size() && merged.size() < max_results;
         ++db) {
      if (depth >= lists[db].size()) continue;
      any = true;
      const SearchHit& hit = lists[db][depth];
      FusedHit fused;
      fused.database = db;
      fused.database_name = db < names.size() ? names[db] : "";
      fused.doc = hit.doc;
      // Descending synthetic score so downstream consumers can re-sort
      // without losing the interleaved order.
      fused.score = 1.0 / static_cast<double>(merged.size() + 1);
      fused.title = hit.title;
      merged.push_back(std::move(fused));
    }
    ++depth;
  }
  return merged;
}

}  // namespace

std::vector<FusedHit> FuseResults(
    const std::vector<std::vector<SearchHit>>& lists,
    const std::vector<std::string>& names, std::size_t max_results,
    const FusionOptions& options) {
  if (max_results == 0) return {};
  switch (options.strategy) {
    case FusionStrategy::kNormalizedScore:
      return FuseByNormalizedScore(lists, names, max_results, options);
    case FusionStrategy::kRoundRobin:
      return FuseRoundRobin(lists, names, max_results);
  }
  return {};
}

}  // namespace core
}  // namespace metaprobe
