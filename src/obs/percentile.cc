#include "obs/percentile.h"

namespace metaprobe {
namespace obs {

double PercentileFromCounts(const stats::Histogram& layout,
                            const std::vector<std::uint64_t>& counts,
                            double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= rank && counts[i] > 0) {
      const double lower = i == 0 ? 0.0 : layout.LowerEdge(i);
      if (i + 1 == counts.size()) return lower;
      const double upper = layout.UpperEdge(i);
      const double fraction = (rank - cum) / static_cast<double>(counts[i]);
      return lower + fraction * (upper - lower);
    }
    cum = next;
  }
  return layout.LowerEdge(counts.size() - 1);
}

double Percentile(const Histogram& histogram, double q) {
  return PercentileFromCounts(histogram.layout(), histogram.BucketCounts(), q);
}

}  // namespace obs
}  // namespace metaprobe
