#include "obs/health.h"

#include <algorithm>
#include <cmath>

#include "obs/metric_registry.h"

namespace metaprobe {
namespace obs {

const char* ProbeHealthOutcomeName(ProbeHealthOutcome outcome) {
  switch (outcome) {
    case ProbeHealthOutcome::kOk:
      return "ok";
    case ProbeHealthOutcome::kDegraded:
      return "degraded";
    case ProbeHealthOutcome::kTimeout:
      return "timeout";
    case ProbeHealthOutcome::kError:
      return "error";
  }
  return "unknown";
}

DbHealthTracker::DbHealthTracker(std::vector<std::string> database_names,
                                 DbHealthOptions options)
    : names_(std::move(database_names)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock::Get()) {
  options_.num_slices = std::max(options_.num_slices, 1);
  options_.window_seconds = std::max(options_.window_seconds, 1e-3);
  options_.ewma_alpha = std::clamp(options_.ewma_alpha, 1e-6, 1.0);
  slice_ns_ = static_cast<std::uint64_t>(
      options_.window_seconds * 1e9 /
      static_cast<double>(options_.num_slices));
  if (slice_ns_ == 0) slice_ns_ = 1;
  cells_.resize(names_.size());
  for (Cell& cell : cells_) {
    cell.ring.resize(static_cast<std::size_t>(options_.num_slices));
  }
}

DbHealthTracker::Slice* DbHealthTracker::AdvanceTo(
    Cell* cell, std::uint64_t now_ns) const {
  const std::uint64_t now_epoch = now_ns / slice_ns_;
  if (now_epoch > cell->epoch) {
    const std::uint64_t gap = now_epoch - cell->epoch;
    const std::uint64_t to_clear =
        std::min<std::uint64_t>(gap, cell->ring.size());
    for (std::uint64_t i = 1; i <= to_clear; ++i) {
      cell->ring[(cell->epoch + i) % cell->ring.size()].Clear();
    }
    cell->epoch = now_epoch;
  }
  return &cell->ring[cell->epoch % cell->ring.size()];
}

void DbHealthTracker::RecordProbe(std::size_t db, double seconds,
                                  ProbeHealthOutcome outcome) {
#ifndef METAPROBE_OBS_DISABLED
  if (!enabled() || db >= cells_.size()) return;
  if (outcome == ProbeHealthOutcome::kOk && seconds >= 0.0 &&
      seconds > options_.latency_slo_seconds) {
    outcome = ProbeHealthOutcome::kDegraded;
  }
  const std::uint64_t now_ns = clock_->NowNanos();
  MutexLock lock(StripeFor(db));
  Cell& cell = cells_[db];
  Slice* slice = AdvanceTo(&cell, now_ns);
  switch (outcome) {
    case ProbeHealthOutcome::kOk:
      ++slice->ok;
      break;
    case ProbeHealthOutcome::kDegraded:
      ++slice->degraded;
      break;
    case ProbeHealthOutcome::kTimeout:
      ++slice->timeouts;
      break;
    case ProbeHealthOutcome::kError:
      ++slice->errors;
      break;
  }
  const bool success = outcome == ProbeHealthOutcome::kOk ||
                       outcome == ProbeHealthOutcome::kDegraded;
  if (success && seconds >= 0.0) {
    slice->latency_sum += seconds;
    ++slice->latency_count;
    if (!cell.ewma_primed) {
      cell.ewma_latency = seconds;
      cell.ewma_primed = true;
    } else {
      cell.ewma_latency += options_.ewma_alpha * (seconds - cell.ewma_latency);
    }
  }
#else
  (void)db;
  (void)seconds;
  (void)outcome;
#endif
}

void DbHealthTracker::RecordRankPair(std::size_t db, bool concordant) {
#ifndef METAPROBE_OBS_DISABLED
  if (!enabled() || db >= cells_.size()) return;
  const std::uint64_t now_ns = clock_->NowNanos();
  MutexLock lock(StripeFor(db));
  Slice* slice = AdvanceTo(&cells_[db], now_ns);
  ++slice->rank_pairs;
  if (concordant) ++slice->rank_concordant;
#else
  (void)db;
  (void)concordant;
#endif
}

DbHealthSnapshot DbHealthTracker::SnapshotLocked(std::size_t db,
                                                 std::uint64_t now_ns) const {
  DbHealthSnapshot snap;
  snap.db = db;
  snap.name = names_[db];
#ifndef METAPROBE_OBS_DISABLED
  Cell& cell = cells_[db];
  AdvanceTo(&cell, now_ns);
  double latency_sum = 0.0;
  std::uint64_t latency_count = 0;
  for (const Slice& slice : cell.ring) {
    snap.ok += slice.ok;
    snap.degraded += slice.degraded;
    snap.timeouts += slice.timeouts;
    snap.errors += slice.errors;
    snap.rank_pairs += slice.rank_pairs;
    snap.rank_concordant += slice.rank_concordant;
    latency_sum += slice.latency_sum;
    latency_count += slice.latency_count;
  }
  snap.probes = snap.ok + snap.degraded + snap.timeouts + snap.errors;
  if (snap.probes > 0) {
    snap.error_rate = static_cast<double>(snap.timeouts + snap.errors) /
                      static_cast<double>(snap.probes);
  }
  if (latency_count > 0) {
    snap.window_mean_latency_seconds =
        latency_sum / static_cast<double>(latency_count);
  }
  snap.ewma_latency_seconds = cell.ewma_primed ? cell.ewma_latency : 0.0;
  if (snap.rank_pairs > 0) {
    snap.rank_agreement = static_cast<double>(snap.rank_concordant) /
                          static_cast<double>(snap.rank_pairs);
  }
  if (snap.probes == 0) {
    snap.health_score = 1.0;  // no data is not evidence of sickness
  } else {
    const double availability = 1.0 - snap.error_rate;
    const double latency_factor =
        snap.ewma_latency_seconds > options_.latency_slo_seconds
            ? options_.latency_slo_seconds / snap.ewma_latency_seconds
            : 1.0;
    const double agreement_factor = 0.5 + 0.5 * snap.rank_agreement;
    snap.health_score = availability * latency_factor * agreement_factor;
  }
  snap.healthy = snap.health_score >= options_.unhealthy_below;
#else
  (void)now_ns;
#endif
  return snap;
}

DbHealthSnapshot DbHealthTracker::Snapshot(std::size_t db) const {
  if (db >= cells_.size()) return DbHealthSnapshot{};
  const std::uint64_t now_ns = clock_->NowNanos();
  MutexLock lock(StripeFor(db));
  return SnapshotLocked(db, now_ns);
}

std::vector<DbHealthSnapshot> DbHealthTracker::SnapshotAll() const {
  std::vector<DbHealthSnapshot> snaps;
  snaps.reserve(cells_.size());
  for (std::size_t db = 0; db < cells_.size(); ++db) {
    snaps.push_back(Snapshot(db));
  }
  return snaps;
}

double DbHealthTracker::HealthScore(std::size_t db) const {
  return Snapshot(db).health_score;
}

bool DbHealthTracker::healthy(std::size_t db) const {
  return Snapshot(db).healthy;
}

std::vector<std::size_t> DbHealthTracker::UnhealthyDatabases() const {
  std::vector<std::size_t> unhealthy;
  for (std::size_t db = 0; db < cells_.size(); ++db) {
    if (!healthy(db)) unhealthy.push_back(db);
  }
  return unhealthy;
}

void DbHealthTracker::RegisterMetrics(MetricRegistry* registry) const {
#ifndef METAPROBE_OBS_DISABLED
  if (registry == nullptr) return;
  for (std::size_t db = 0; db < names_.size(); ++db) {
    const std::string label = FormatLabel("db", names_[db]);
    registry->RegisterCallbackGauge(
        "metaprobe_db_health_score", label,
        [this, db]() { return Snapshot(db).health_score; });
    registry->RegisterCallbackGauge(
        "metaprobe_db_probe_error_rate", label,
        [this, db]() { return Snapshot(db).error_rate; });
    registry->RegisterCallbackGauge(
        "metaprobe_db_probe_latency_ewma_seconds", label,
        [this, db]() { return Snapshot(db).ewma_latency_seconds; });
    registry->RegisterCallbackGauge(
        "metaprobe_db_window_probes", label,
        [this, db]() { return static_cast<double>(Snapshot(db).probes); });
  }
  registry->RegisterCallbackGauge(
      "metaprobe_db_unhealthy_total", "", [this]() {
        return static_cast<double>(UnhealthyDatabases().size());
      });
#else
  (void)registry;
#endif
}

}  // namespace obs
}  // namespace metaprobe
