#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace metaprobe {
namespace obs {

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  AppendJsonEscaped(out, s);
  out->push_back('"');
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

namespace {

void AppendJsonNumber(std::string* out, double value) {
  char buf[64];
  if (value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  *out += buf;
}

}  // namespace

double TraceSpan::num(const std::string& key, double fallback) const {
  for (auto it = num_attrs.rbegin(); it != num_attrs.rend(); ++it) {
    if (it->first == key) return it->second;
  }
  return fallback;
}

const std::string* TraceSpan::str(const std::string& key) const {
  for (auto it = str_attrs.rbegin(); it != str_attrs.rend(); ++it) {
    if (it->first == key) return &it->second;
  }
  return nullptr;
}

TraceSpan* QueryTrace::StartSpan(std::string name) {
  spans_.emplace_back();
  TraceSpan& span = spans_.back();
  span.name = std::move(name);
  span.start_ns = clock_->NowNanos();
  span.end_ns = span.start_ns;
  return &span;
}

void QueryTrace::EndSpan(TraceSpan* span) {
  span->end_ns = clock_->NowNanos();
}

TraceSpan* QueryTrace::AddEvent(std::string name) {
  return StartSpan(std::move(name));
}

std::vector<const TraceSpan*> QueryTrace::SpansNamed(
    const std::string& name) const {
  std::vector<const TraceSpan*> out;
  for (const TraceSpan& span : spans_) {
    if (span.name == name) out.push_back(&span);
  }
  return out;
}

double QueryTrace::DurationSeconds() const {
  if (spans_.empty()) return 0.0;
  const std::uint64_t start = spans_.front().start_ns;
  std::uint64_t end = start;
  for (const TraceSpan& span : spans_) {
    if (span.end_ns > end) end = span.end_ns;
  }
  return static_cast<double>(end - start) * 1e-9;
}

std::unique_ptr<QueryTrace> QueryTracer::StartTrace(std::string query) {
  std::uint64_t id;
  {
    MutexLock lock(mutex_);
    id = next_trace_id_++;
  }
  return std::make_unique<QueryTrace>(id, std::move(query), clock_);
}

void QueryTracer::Finish(std::unique_ptr<QueryTrace> trace) {
  if (trace == nullptr) return;
  MutexLock lock(mutex_);
  std::shared_ptr<const QueryTrace> shared(std::move(trace));
  if (slow_threshold_seconds_ > 0.0 &&
      shared->DurationSeconds() >= slow_threshold_seconds_) {
    slow_.push_back(shared);
    while (slow_.size() > max_slow_) slow_.pop_front();
  }
  finished_.push_back(std::move(shared));
  while (finished_.size() > max_finished_) finished_.pop_front();
}

std::vector<std::shared_ptr<const QueryTrace>> QueryTracer::Snapshot() const {
  MutexLock lock(mutex_);
  return {finished_.begin(), finished_.end()};
}

std::vector<std::shared_ptr<const QueryTrace>> QueryTracer::SnapshotSlow()
    const {
  MutexLock lock(mutex_);
  return {slow_.begin(), slow_.end()};
}

void QueryTracer::set_slow_threshold_seconds(double seconds) {
  MutexLock lock(mutex_);
  slow_threshold_seconds_ = seconds;
}

double QueryTracer::slow_threshold_seconds() const {
  MutexLock lock(mutex_);
  return slow_threshold_seconds_;
}

std::shared_ptr<const QueryTrace> QueryTracer::Latest() const {
  MutexLock lock(mutex_);
  return finished_.empty() ? nullptr : finished_.back();
}

void QueryTracer::ExportJsonLines(const QueryTrace& trace, std::ostream& os) {
  for (const TraceSpan& span : trace.spans()) {
    std::string line = "{\"trace_id\":";
    AppendJsonNumber(&line, static_cast<double>(trace.trace_id()));
    line += ",\"query\":";
    AppendJsonString(&line, trace.query());
    line += ",\"span\":";
    AppendJsonString(&line, span.name);
    line += ",\"start_ns\":";
    AppendJsonNumber(&line, static_cast<double>(span.start_ns));
    line += ",\"end_ns\":";
    AppendJsonNumber(&line, static_cast<double>(span.end_ns));
    line += ",\"duration_s\":";
    AppendJsonNumber(&line, span.DurationSeconds());
    for (const auto& [key, value] : span.num_attrs) {
      line += ",";
      AppendJsonString(&line, key);
      line += ":";
      AppendJsonNumber(&line, value);
    }
    for (const auto& [key, value] : span.str_attrs) {
      line += ",";
      AppendJsonString(&line, key);
      line += ":";
      AppendJsonString(&line, value);
    }
    line += "}\n";
    os << line;
  }
}

std::string QueryTracer::ExportJsonLines(const QueryTrace& trace) {
  std::ostringstream os;
  ExportJsonLines(trace, os);
  return os.str();
}

void QueryTracer::ExportJsonLines(std::ostream& os) const {
  for (const auto& trace : Snapshot()) ExportJsonLines(*trace, os);
}

std::string QueryTracer::ExportJsonLinesText() const {
  std::ostringstream os;
  ExportJsonLines(os);
  return os.str();
}

std::size_t QueryTracer::finished_count() const {
  MutexLock lock(mutex_);
  return finished_.size();
}

std::size_t QueryTracer::slow_count() const {
  MutexLock lock(mutex_);
  return slow_.size();
}

void QueryTracer::Clear() {
  MutexLock lock(mutex_);
  finished_.clear();
  slow_.clear();
}

}  // namespace obs
}  // namespace metaprobe
