// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_OBS_METRIC_REGISTRY_H_
#define METAPROBE_OBS_METRIC_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "obs/clock.h"
#include "stats/histogram.h"

namespace metaprobe {
namespace obs {

/// Number of per-thread shards each counter/histogram spreads its writes
/// over. Power of two; threads hash onto shards, so writers on different
/// cores rarely touch the same cache line and a scrape merges all shards.
inline constexpr std::size_t kNumShards = 8;

/// \brief Stable shard index of the calling thread, < kNumShards.
inline std::size_t ThisThreadShard() {
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kNumShards - 1);
  return shard;
}

/// \brief Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote, and newline become `\\`, `\"`, and `\n`.
/// Apply this (or FormatLabel) whenever a label value comes from data —
/// database names, tenant ids — rather than a string literal.
std::string EscapeLabelValue(const std::string& value);

/// \brief Builds one preformatted `key="value"` label pair with the value
/// escaped. Join multiple pairs with ','.
std::string FormatLabel(const std::string& key, const std::string& value);

/// \brief Monotonically increasing event count, sharded per thread.
///
/// `Add` is one relaxed fetch_add on the calling thread's shard — no lock,
/// no shared cache line between threads on distinct shards. `Value` merges
/// the shards; it is O(kNumShards) and intended for scrapes, not hot paths.
/// Counters record unconditionally (they are the ServingStats path and cost
/// what the pre-registry atomic counters cost); only histograms honor the
/// registry's enabled flag.
class Counter {
 public:
  explicit Counter(std::string name, std::string labels = "")
      : name_(std::move(name)), labels_(std::move(labels)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n) {
#ifndef METAPROBE_OBS_DISABLED
    shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void Increment() { Add(1); }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Cell& cell : shards_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// \brief Zeroes every shard (ResetStats / bench isolation; scrapers
  /// should treat counters as monotonic otherwise).
  void Reset() {
    for (Cell& cell : shards_) cell.value.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }
  const std::string& labels() const { return labels_; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kNumShards> shards_;
  std::string name_;
  std::string labels_;
};

/// \brief Last-write-wins instantaneous value.
class Gauge {
 public:
  explicit Gauge(std::string name, std::string labels = "")
      : name_(std::move(name)), labels_(std::move(labels)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& labels() const { return labels_; }

 private:
  std::atomic<double> value_{0.0};
  std::string name_;
  std::string labels_;
};

/// \brief Fixed-bucket histogram, sharded per thread like Counter.
///
/// The bucket layout (cell arithmetic, edges, representatives) is a
/// `stats::Histogram` — the same container behind the paper's error
/// distributions — while the counts live in per-shard atomic arrays so
/// concurrent serving threads can observe without synchronization.
/// `Observe` honors the owning registry's enabled flag: when observability
/// is off it is one relaxed bool load and a branch.
class Histogram {
 public:
  /// \param bounds strictly increasing bucket upper bounds (histogram edges);
  ///   values >= the last bound land in the +Inf cell.
  /// \param enabled optional gate (the registry's flag); null = always on.
  Histogram(std::string name, std::string labels, std::vector<double> bounds,
            const std::atomic<bool>* enabled = nullptr);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  bool enabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }

  /// \brief Shard-merged per-cell counts (num_cells entries; the last cell
  /// is the +Inf bucket).
  std::vector<std::uint64_t> BucketCounts() const;
  std::uint64_t TotalCount() const;
  double Sum() const;
  void Reset();

  std::size_t num_cells() const { return layout_.num_cells(); }
  const stats::Histogram& layout() const { return layout_; }
  const std::string& name() const { return name_; }
  const std::string& labels() const { return labels_; }

 private:
  stats::Histogram layout_;  // cell math only; its counts stay empty
  std::string name_;
  std::string labels_;
  const std::atomic<bool>* enabled_;
  // counts_[shard * num_cells + cell]; sums_[shard].
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  struct alignas(64) SumCell {
    std::atomic<double> value{0.0};
  };
  std::array<SumCell, kNumShards> sums_;
};

/// \brief RAII latency sample: observes elapsed seconds into `histogram`
/// on destruction. Null histogram, disabled registry, or null clock make
/// it a no-op that never reads the clock — the "disabled path" the
/// overhead bench measures.
class ScopedTimer {
 public:
  ScopedTimer(Histogram* histogram, const MonotonicClock* clock)
      : histogram_(histogram), clock_(clock) {
    if (histogram_ != nullptr && clock_ != nullptr && histogram_->enabled()) {
      start_ns_ = clock_->NowNanos();
      armed_ = true;
    }
  }

  ~ScopedTimer() {
    if (armed_) {
      histogram_->Observe(
          static_cast<double>(clock_->NowNanos() - start_ns_) * 1e-9);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  const MonotonicClock* clock_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

/// \brief Named metric directory with Prometheus text exposition.
///
/// Registration (GetCounter / GetGauge / GetHistogram /
/// RegisterCallbackGauge) takes a mutex and is meant for setup or first
/// use; it returns stable pointers the hot paths then use lock-free.
/// Metrics registered under the same family name with different label sets
/// share one `# TYPE` line in the exposition when registered consecutively.
///
/// `set_enabled(false)` freezes every histogram (and timers built on them)
/// while counters and gauges keep recording — counters are the ServingStats
/// substrate and must stay correct even with observability "off".
class MetricRegistry {
 public:
  MetricRegistry() = default;

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// \brief Returns the counter registered under (name, labels), creating
  /// it on first use. The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "",
                          std::vector<double> bounds = {});

  /// \brief Gauge whose value is computed by `fn` at scrape time (e.g. a
  /// cache's current entry count). `fn` must be thread-safe.
  void RegisterCallbackGauge(const std::string& name,
                             const std::string& labels,
                             std::function<double()> fn);

  /// \brief Histogram bucket bounds used when GetHistogram gets none:
  /// latencies in seconds from 100us to 10s, roughly 1-2.5-5 per decade.
  static std::vector<double> DefaultLatencyBoundsSeconds();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  const std::atomic<bool>* enabled_flag() const { return &enabled_; }

  /// \brief Prometheus text exposition (one `# TYPE` line per family,
  /// `name{labels} value` samples, histograms as cumulative `_bucket` +
  /// `_sum` + `_count`).
  void WriteExposition(std::ostream& os) const;
  std::string ExpositionText() const;

  /// \brief Zeroes every counter and histogram (gauges and callback gauges
  /// are instantaneous and keep their sources). Test/bench helper.
  void ResetCounters();

 private:
  struct CallbackGauge {
    std::string name;
    std::string labels;
    std::function<double()> fn;
  };
  enum class Kind { kCounter, kGauge, kHistogram, kCallbackGauge };
  struct Entry {
    Kind kind;
    std::size_t index;  // into the matching deque
  };

  std::atomic<bool> enabled_{true};
  // mutex_ guards the registration directory. The deques themselves are
  // guarded (registration and scrape mutate/walk them), but the Counter /
  // Gauge / Histogram objects *inside* hand out stable pointers that hot
  // paths use lock-free — those objects are internally atomic.
  mutable Mutex mutex_;
  std::deque<Counter> counters_ GUARDED_BY(mutex_);
  std::deque<Gauge> gauges_ GUARDED_BY(mutex_);
  std::deque<Histogram> histograms_ GUARDED_BY(mutex_);
  std::deque<CallbackGauge> callbacks_ GUARDED_BY(mutex_);
  std::vector<Entry> order_ GUARDED_BY(mutex_);  // registration order
  std::unordered_map<std::string, std::size_t> by_key_
      GUARDED_BY(mutex_);  // key -> order_ idx
};

}  // namespace obs
}  // namespace metaprobe

#endif  // METAPROBE_OBS_METRIC_REGISTRY_H_
