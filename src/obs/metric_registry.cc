#include "obs/metric_registry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace metaprobe {
namespace obs {

namespace {

// CAS add for the histogram sums; atomic<double>::fetch_add is C++20 but
// not guaranteed lock-free, and a plain CAS loop is portable. Unused when
// Observe is compiled out under METAPROBE_OBS_DISABLED.
[[maybe_unused]] void AtomicAddDouble(std::atomic<double>* target,
                                      double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

std::vector<double> SanitizedBounds(std::vector<double> bounds) {
  if (bounds.empty()) return MetricRegistry::DefaultLatencyBoundsSeconds();
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  return bounds;
}

std::string MetricKey(const std::string& name, const std::string& labels) {
  std::string key = name;
  key.push_back('\x01');
  key += labels;
  return key;
}

// Last-resort defense for preformatted label strings built without
// FormatLabel: a raw newline would truncate the sample line and corrupt
// every line after it, so escape it here even though the proper fix is
// escaping at label-construction time.
void WriteLabels(std::ostream& os, const std::string& labels) {
  if (labels.find('\n') == std::string::npos) {
    os << labels;
    return;
  }
  for (char c : labels) {
    if (c == '\n') {
      os << "\\n";
    } else {
      os << c;
    }
  }
}

// Prometheus sample line: name{labels} value. `extra_label` is appended to
// the label set (the histogram `le` label).
void WriteSample(std::ostream& os, const std::string& name,
                 const std::string& labels, const std::string& extra_label,
                 double value) {
  os << name;
  if (!labels.empty() || !extra_label.empty()) {
    os << '{';
    WriteLabels(os, labels);
    if (!labels.empty() && !extra_label.empty()) os << ',';
    os << extra_label << '}';
  }
  if (value == static_cast<double>(static_cast<std::uint64_t>(
                   value < 0 ? 0 : value)) &&
      value >= 0) {
    os << ' ' << static_cast<std::uint64_t>(value) << '\n';
  } else {
    std::ostringstream fmt;
    fmt.precision(17);
    fmt << value;
    os << ' ' << fmt.str() << '\n';
  }
}

std::string FormatBound(double bound) {
  std::ostringstream fmt;
  fmt.precision(12);
  fmt << bound;
  return fmt.str();
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\n':
        escaped += "\\n";
        break;
      default:
        escaped.push_back(c);
    }
  }
  return escaped;
}

std::string FormatLabel(const std::string& key, const std::string& value) {
  std::string label = key;
  label += "=\"";
  label += EscapeLabelValue(value);
  label += '"';
  return label;
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::string name, std::string labels,
                     std::vector<double> bounds,
                     const std::atomic<bool>* enabled)
    : layout_(
          stats::Histogram::Make(SanitizedBounds(std::move(bounds)))
              .MoveValueUnsafe()),
      name_(std::move(name)),
      labels_(std::move(labels)),
      enabled_(enabled),
      counts_(new std::atomic<std::uint64_t>[kNumShards *
                                             layout_.num_cells()]) {
  const std::size_t total = kNumShards * layout_.num_cells();
  for (std::size_t i = 0; i < total; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
#ifndef METAPROBE_OBS_DISABLED
  if (!enabled()) return;
  const std::size_t cell = layout_.CellFor(value);
  const std::size_t shard = ThisThreadShard();
  counts_[shard * layout_.num_cells() + cell].fetch_add(
      1, std::memory_order_relaxed);
  AtomicAddDouble(&sums_[shard].value, value);
#else
  (void)value;
#endif
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  const std::size_t cells = layout_.num_cells();
  std::vector<std::uint64_t> merged(cells, 0);
  for (std::size_t shard = 0; shard < kNumShards; ++shard) {
    for (std::size_t cell = 0; cell < cells; ++cell) {
      merged[cell] +=
          counts_[shard * cells + cell].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

std::uint64_t Histogram::TotalCount() const {
  std::uint64_t total = 0;
  for (std::uint64_t count : BucketCounts()) total += count;
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const SumCell& cell : sums_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  const std::size_t total = kNumShards * layout_.num_cells();
  for (std::size_t i = 0; i < total; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  for (SumCell& cell : sums_) {
    cell.value.store(0.0, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------- MetricRegistry

std::vector<double> MetricRegistry::DefaultLatencyBoundsSeconds() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 1e-1,   0.25, 0.5,  1.0,    2.5,  5.0,  10.0};
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& labels) {
  MutexLock lock(mutex_);
  auto it = by_key_.find(MetricKey(name, labels));
  if (it != by_key_.end()) {
    const Entry& entry = order_[it->second];
    return entry.kind == Kind::kCounter ? &counters_[entry.index] : nullptr;
  }
  counters_.emplace_back(name, labels);
  by_key_[MetricKey(name, labels)] = order_.size();
  order_.push_back({Kind::kCounter, counters_.size() - 1});
  return &counters_.back();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& labels) {
  MutexLock lock(mutex_);
  auto it = by_key_.find(MetricKey(name, labels));
  if (it != by_key_.end()) {
    const Entry& entry = order_[it->second];
    return entry.kind == Kind::kGauge ? &gauges_[entry.index] : nullptr;
  }
  gauges_.emplace_back(name, labels);
  by_key_[MetricKey(name, labels)] = order_.size();
  order_.push_back({Kind::kGauge, gauges_.size() - 1});
  return &gauges_.back();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& labels,
                                        std::vector<double> bounds) {
  MutexLock lock(mutex_);
  auto it = by_key_.find(MetricKey(name, labels));
  if (it != by_key_.end()) {
    const Entry& entry = order_[it->second];
    return entry.kind == Kind::kHistogram ? &histograms_[entry.index]
                                          : nullptr;
  }
  histograms_.emplace_back(name, labels, std::move(bounds), &enabled_);
  by_key_[MetricKey(name, labels)] = order_.size();
  order_.push_back({Kind::kHistogram, histograms_.size() - 1});
  return &histograms_.back();
}

void MetricRegistry::RegisterCallbackGauge(const std::string& name,
                                           const std::string& labels,
                                           std::function<double()> fn) {
  MutexLock lock(mutex_);
  if (by_key_.count(MetricKey(name, labels)) > 0) return;
  callbacks_.push_back({name, labels, std::move(fn)});
  by_key_[MetricKey(name, labels)] = order_.size();
  order_.push_back({Kind::kCallbackGauge, callbacks_.size() - 1});
}

void MetricRegistry::WriteExposition(std::ostream& os) const {
  MutexLock lock(mutex_);
  const std::string* last_family = nullptr;
  auto type_line = [&os, &last_family](const std::string& family,
                                       const char* type) {
    if (last_family == nullptr || *last_family != family) {
      os << "# TYPE " << family << ' ' << type << '\n';
    }
    last_family = &family;
  };
  for (const Entry& entry : order_) {
    switch (entry.kind) {
      case Kind::kCounter: {
        const Counter& c = counters_[entry.index];
        type_line(c.name(), "counter");
        WriteSample(os, c.name(), c.labels(), "",
                    static_cast<double>(c.Value()));
        break;
      }
      case Kind::kGauge: {
        const Gauge& g = gauges_[entry.index];
        type_line(g.name(), "gauge");
        WriteSample(os, g.name(), g.labels(), "", g.Value());
        break;
      }
      case Kind::kCallbackGauge: {
        const CallbackGauge& g = callbacks_[entry.index];
        type_line(g.name, "gauge");
        WriteSample(os, g.name, g.labels, "", g.fn());
        break;
      }
      case Kind::kHistogram: {
        const Histogram& h = histograms_[entry.index];
        type_line(h.name(), "histogram");
        const std::vector<std::uint64_t> counts = h.BucketCounts();
        const std::vector<double>& edges = h.layout().edges();
        std::uint64_t cumulative = 0;
        // Cell i of the layout is [e_{i-1}, e_i): everything the paper's
        // histogram counted below edge i belongs to the le="e_i" bucket.
        for (std::size_t i = 0; i < edges.size(); ++i) {
          cumulative += counts[i];
          WriteSample(os, h.name() + "_bucket", h.labels(),
                      "le=\"" + FormatBound(edges[i]) + "\"",
                      static_cast<double>(cumulative));
        }
        cumulative += counts[edges.size()];
        WriteSample(os, h.name() + "_bucket", h.labels(), "le=\"+Inf\"",
                    static_cast<double>(cumulative));
        WriteSample(os, h.name() + "_sum", h.labels(), "", h.Sum());
        WriteSample(os, h.name() + "_count", h.labels(), "",
                    static_cast<double>(cumulative));
        break;
      }
    }
  }
}

std::string MetricRegistry::ExpositionText() const {
  std::ostringstream os;
  WriteExposition(os);
  return os.str();
}

void MetricRegistry::ResetCounters() {
  MutexLock lock(mutex_);
  for (Counter& c : counters_) c.Reset();
  for (Histogram& h : histograms_) h.Reset();
}

}  // namespace obs
}  // namespace metaprobe
