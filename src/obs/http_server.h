// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_OBS_HTTP_SERVER_H_
#define METAPROBE_OBS_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/result.h"

namespace metaprobe {
namespace obs {

/// \brief One introspection response.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// \brief Minimal poll-based HTTP/1.1 GET server for introspection
/// endpoints — /metrics, /statusz, /tracez, /healthz. Deliberately not a
/// web framework: no dependencies, GET only, one short-lived connection per
/// request (`Connection: close`), exact-path dispatch with the query string
/// stripped.
///
/// A single background thread accepts and serves requests sequentially;
/// handlers therefore must not block for long, and scrape endpoints (which
/// snapshot lock-free or briefly-locked state) fit that budget. Shutdown is
/// via a self-pipe the poll loop watches, so Stop() never waits out a poll
/// timeout.
///
/// Usage:
///     HttpServer server;
///     server.Handle("/healthz", [](const std::string&) {
///       return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
///     });
///     auto port = server.Start("127.0.0.1", 0);  // 0 = ephemeral
class HttpServer {
 public:
  /// Handler receives the request path (query string stripped).
  using Handler = std::function<HttpResponse(const std::string& path)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// \brief Registers `handler` for exact path `path`. Must be called
  /// before Start (the dispatch map is read without a lock while serving).
  void Handle(std::string path, Handler handler);

  /// \brief Binds `address:port` (port 0 = kernel-assigned ephemeral port),
  /// starts the serving thread, and returns the bound port.
  Result<int> Start(const std::string& address = "127.0.0.1", int port = 0);

  /// \brief Stops the serving thread and closes the listener. Idempotent;
  /// also run by the destructor.
  void Stop();

  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void ServeLoop();
  void ServeConnection(int client_fd);

  // Mutex-free by thread confinement: handlers_ is written only before
  // Start() spawns the serving thread and is read-only afterwards;
  // running_ is the sole cross-thread signal (atomic). Start/Stop are
  // owner-thread operations. DESIGN.md §15 records the discipline.
  std::unordered_map<std::string, Handler> handlers_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: write end wakes the poll loop
  int port_ = 0;
};

}  // namespace obs
}  // namespace metaprobe

#endif  // METAPROBE_OBS_HTTP_SERVER_H_
