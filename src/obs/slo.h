// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_OBS_SLO_H_
#define METAPROBE_OBS_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "obs/clock.h"

namespace metaprobe {
namespace obs {

class Histogram;
class MetricRegistry;

/// \brief Tuning of one rolling latency SLO.
struct SloOptions {
  /// Length of the rolling window the percentiles and burn rate cover.
  double window_seconds = 60.0;
  /// Time slices the window is divided into; rollover granularity. The
  /// effective window spans between (num_slices - 1) and num_slices slice
  /// durations.
  int num_slices = 6;
  /// Latency objective. Samples at or above it consume error budget. The
  /// objective is effectively snapped to the histogram's bucket edges:
  /// every sample in a bucket whose lower edge >= objective counts as a
  /// violation (with the default latency bounds, 0.5 is an exact edge).
  double objective_seconds = 0.5;
  /// Fraction of requests allowed to violate the objective. Burn rate 1.0
  /// means the budget is being consumed exactly at the sustainable pace;
  /// >1 means it will be exhausted early.
  double error_budget = 0.01;
  /// Borrowed timebase; null = the real clock.
  const MonotonicClock* clock = nullptr;
};

/// \brief Point-in-time view of one rolling SLO.
struct SloSnapshot {
  std::string name;
  double objective_seconds = 0.0;
  /// Samples inside the rolling window.
  std::uint64_t window_count = 0;
  /// Windowed latency percentiles (0 with an empty window).
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  /// Fraction of windowed samples at/above the objective.
  double violation_fraction = 0.0;
  /// violation_fraction / error_budget; 0 with an empty window.
  double burn_rate = 0.0;
};

/// \brief Rolling-window SLO over an existing registry histogram.
///
/// The registry's histograms are cumulative-since-start — fine for
/// Prometheus, useless for "p99 over the last minute". SloMonitor fixes
/// that without touching the hot path: it keeps a ring of cumulative
/// bucket-count snapshots taken lazily at slice boundaries, and a windowed
/// view is simply (current counts − oldest retained boundary), differenced
/// per bucket. The observed histogram costs nothing extra per Observe; the
/// monitor pays only at snapshot/scrape time.
///
/// Windowed percentiles use the shared PercentileFromCounts interpolation,
/// so /statusz, the SLO gauges, and the load generator report comparable
/// numbers by construction.
class SloMonitor {
 public:
  /// \param name series label value for exported gauges and /statusz rows.
  /// \param histogram the registry histogram to watch; must outlive the
  ///   monitor. Null makes every snapshot empty (disabled-observability
  ///   builds hand out no histograms).
  SloMonitor(std::string name, const Histogram* histogram,
             SloOptions options = {});

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  SloSnapshot Snapshot() const;

  /// \brief Registers callback gauges metaprobe_slo_latency_p50_seconds /
  /// _p95 / _p99, metaprobe_slo_violation_fraction and
  /// metaprobe_slo_burn_rate, all labelled slo="<name>" (escaped). The
  /// monitor must outlive the registry's scrapes. No-op when observability
  /// is compiled out.
  void RegisterMetrics(MetricRegistry* registry) const;

  const std::string& name() const { return name_; }
  const SloOptions& options() const { return options_; }

 private:
  /// Rolls the boundary ring forward to `now_ns` and returns the windowed
  /// per-bucket counts.
  std::vector<std::uint64_t> WindowedCountsLocked(std::uint64_t now_ns) const
      REQUIRES(mutex_);

  std::string name_;
  const Histogram* histogram_;
  SloOptions options_;
  const MonotonicClock* clock_;
  std::uint64_t slice_ns_;

  mutable Mutex mutex_;
  /// boundaries_[e % num_slices] = cumulative counts at the start of slice
  /// epoch e (taken lazily at the first touch after the boundary).
  mutable std::vector<std::vector<std::uint64_t>> boundaries_
      GUARDED_BY(mutex_);
  mutable std::uint64_t epoch_ GUARDED_BY(mutex_) = 0;
};

}  // namespace obs
}  // namespace metaprobe

#endif  // METAPROBE_OBS_SLO_H_
