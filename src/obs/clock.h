// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_OBS_CLOCK_H_
#define METAPROBE_OBS_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace metaprobe {
namespace obs {

/// \brief Injectable monotonic time source for the observability layer.
///
/// Every timestamp the metrics and tracing code records flows through one of
/// these, so tests swap in a FakeClock and assert on exact span durations
/// and histogram cells instead of sleeping and hoping.
class MonotonicClock {
 public:
  virtual ~MonotonicClock() = default;

  /// \brief Nanoseconds since an arbitrary (per-clock) epoch. Never
  /// decreases across calls from any thread.
  virtual std::uint64_t NowNanos() const = 0;

  double NowSeconds() const { return static_cast<double>(NowNanos()) * 1e-9; }
};

/// \brief Production clock: std::chrono::steady_clock.
class RealClock : public MonotonicClock {
 public:
  std::uint64_t NowNanos() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// \brief Shared process-wide instance (the default everywhere a clock is
  /// optional).
  static const RealClock* Get() {
    static RealClock clock;
    return &clock;
  }
};

/// \brief Deterministic test clock. Time moves only when the test advances
/// it — either explicitly via Advance, or implicitly by `auto_step_ns` on
/// every NowNanos() call (so consecutive reads yield strictly increasing,
/// predictable timestamps without any per-callsite bookkeeping).
class FakeClock : public MonotonicClock {
 public:
  explicit FakeClock(std::uint64_t start_ns = 0,
                     std::uint64_t auto_step_ns = 0)
      : now_ns_(start_ns), auto_step_ns_(auto_step_ns) {}

  std::uint64_t NowNanos() const override {
    if (auto_step_ns_ == 0) return now_ns_.load(std::memory_order_relaxed);
    return now_ns_.fetch_add(auto_step_ns_, std::memory_order_relaxed);
  }

  void Advance(std::uint64_t ns) {
    now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::uint64_t> now_ns_;
  std::uint64_t auto_step_ns_;
};

}  // namespace obs
}  // namespace metaprobe

#endif  // METAPROBE_OBS_CLOCK_H_
