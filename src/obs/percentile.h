// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_OBS_PERCENTILE_H_
#define METAPROBE_OBS_PERCENTILE_H_

#include <cstdint>
#include <vector>

#include "obs/metric_registry.h"
#include "stats/histogram.h"

namespace metaprobe {
namespace obs {

/// \brief Quantile q (in [0, 1]) of a bucketed sample by linear
/// interpolation inside the bucket holding the target rank.
///
/// `layout` supplies the cell edges and `counts` the per-cell sample counts
/// (one entry per layout cell; the last cell is the open +Inf tail). The
/// first cell is clamped to [0, e_0); the open-ended last cell reports its
/// lower edge (an underestimate — callers that care assert the tail stays
/// empty). Returns 0 when the counts are empty.
///
/// This is the one interpolation the SLO monitor, the serving load
/// generator and the /statusz endpoint all share, so their percentiles are
/// comparable by construction.
double PercentileFromCounts(const stats::Histogram& layout,
                            const std::vector<std::uint64_t>& counts,
                            double q);

/// \brief PercentileFromCounts over a registry histogram's current
/// (cumulative-since-start) shard-merged counts.
double Percentile(const Histogram& histogram, double q);

}  // namespace obs
}  // namespace metaprobe

#endif  // METAPROBE_OBS_PERCENTILE_H_
