// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_OBS_HEALTH_H_
#define METAPROBE_OBS_HEALTH_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "obs/clock.h"

namespace metaprobe {
namespace obs {

class MetricRegistry;

/// \brief How one probe against a database ended.
enum class ProbeHealthOutcome {
  kOk,        ///< Answered within the latency SLO.
  kDegraded,  ///< Answered, but slower than the latency SLO.
  kTimeout,   ///< Deadline exceeded / cancelled mid-flight.
  kError,     ///< Any other failure (IO error, rate limit, bad response).
};

const char* ProbeHealthOutcomeName(ProbeHealthOutcome outcome);

/// \brief Tuning of the per-database health window and score.
struct DbHealthOptions {
  /// Length of the rolling window every rate below is computed over.
  double window_seconds = 60.0;
  /// Time slices the window is divided into; rollover granularity. The
  /// effective window spans between (num_slices - 1) and num_slices slice
  /// durations — the usual sliced-ring tradeoff.
  int num_slices = 6;
  /// Weight of the newest probe in the EWMA latency (0 < alpha <= 1).
  double ewma_alpha = 0.2;
  /// Probes slower than this are recorded as kDegraded even when they
  /// succeed, and the EWMA latency is scored against it.
  double latency_slo_seconds = 0.5;
  /// Databases whose health score drops below this are reported unhealthy
  /// (surfaced in SelectionReport::unhealthy_databases and /statusz).
  double unhealthy_below = 0.5;
  /// Borrowed timebase; null = the real clock. Tests inject FakeClock and
  /// drive window rollover deterministically.
  const MonotonicClock* clock = nullptr;
};

/// \brief Point-in-time health view of one database.
struct DbHealthSnapshot {
  std::size_t db = 0;
  std::string name;
  /// Probe outcomes inside the rolling window.
  std::uint64_t probes = 0;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;
  /// (timeouts + errors) / probes; 0 with an empty window.
  double error_rate = 0.0;
  /// Mean probe latency inside the window (successful probes only).
  double window_mean_latency_seconds = 0.0;
  /// Exponentially weighted latency across windows (successes only);
  /// 0 until the first successful probe.
  double ewma_latency_seconds = 0.0;
  /// Estimate-vs-observation rank concordance inside the window: of the
  /// probe pairs this database took part in, the fraction whose observed
  /// relevancy order matched the estimates' order. 1.0 when no pairs.
  std::uint64_t rank_pairs = 0;
  std::uint64_t rank_concordant = 0;
  double rank_agreement = 1.0;
  /// Composite score in [0, 1]; see DbHealthTracker.
  double health_score = 1.0;
  bool healthy = true;
};

/// \brief Per-database rolling-window probe telemetry with an exported
/// health score — the substrate the drift detector and the /statusz
/// scoreboard read.
///
/// Each database owns a ring of `num_slices` time slices; a record lands in
/// the slice covering "now" and slices older than the window are zeroed
/// lazily on the next record or snapshot (no background thread). Databases
/// are lock-striped: db i hashes onto one of kHealthStripes mutexes, so
/// concurrent probe loops touching different databases rarely contend, and
/// a record is a short critical section of plain arithmetic (~tens of ns).
///
/// The health score multiplies three independently-normalized factors:
///   availability = 1 - error_rate                       (hard failures)
///   latency      = min(1, slo / ewma_latency)           (sustained slowness)
///   agreement    = 0.5 + 0.5 * rank_agreement           (model drift signal)
/// so a backend that is up but drifting — probes succeed yet their observed
/// ranking stops matching the trained estimates — degrades toward 0.5
/// rather than hiding behind a perfect error rate. An empty window scores
/// 1.0: "no data" must not mark a freshly added backend unhealthy.
///
/// Under METAPROBE_OBS_DISABLED every record is compiled out (the methods
/// stay so call sites need no guards) and snapshots report the empty
/// window. set_enabled(false) is the runtime equivalent: one relaxed load
/// and a branch per record — the cost the overhead bench's
/// obs/health_record_disabled entry tracks.
class DbHealthTracker {
 public:
  DbHealthTracker(std::vector<std::string> database_names,
                  DbHealthOptions options = {});

  DbHealthTracker(const DbHealthTracker&) = delete;
  DbHealthTracker& operator=(const DbHealthTracker&) = delete;

  /// \brief Records one probe attempt against database `db`. `seconds` is
  /// the probe's wall time (< 0 = not timed; excluded from latency stats).
  /// A successful probe slower than the latency SLO is auto-upgraded to
  /// kDegraded.
  void RecordProbe(std::size_t db, double seconds,
                   ProbeHealthOutcome outcome);

  /// \brief Records one estimate-vs-observation order comparison this
  /// database took part in (see DbHealthSnapshot::rank_agreement).
  void RecordRankPair(std::size_t db, bool concordant);

  DbHealthSnapshot Snapshot(std::size_t db) const;
  std::vector<DbHealthSnapshot> SnapshotAll() const;

  /// \brief Health score of `db` right now (1.0 for an empty window).
  double HealthScore(std::size_t db) const;
  bool healthy(std::size_t db) const;

  /// \brief Indices of databases currently below the unhealthy threshold,
  /// ascending.
  std::vector<std::size_t> UnhealthyDatabases() const;

  /// \brief Registers per-database callback gauges
  /// (metaprobe_db_health_score / _probe_error_rate /
  /// _probe_latency_ewma_seconds, label db="<name>", name escaped per the
  /// exposition format) plus metaprobe_db_unhealthy_total. The tracker must
  /// outlive the registry's scrapes. No-op when observability is compiled
  /// out.
  void RegisterMetrics(MetricRegistry* registry) const;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::size_t num_databases() const { return names_.size(); }
  const std::string& database_name(std::size_t db) const {
    return names_[db];
  }
  const DbHealthOptions& options() const { return options_; }

 private:
  static constexpr std::size_t kHealthStripes = 8;

  struct Slice {
    std::uint64_t ok = 0;
    std::uint64_t degraded = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t errors = 0;
    std::uint64_t rank_pairs = 0;
    std::uint64_t rank_concordant = 0;
    double latency_sum = 0.0;     ///< successes only
    std::uint64_t latency_count = 0;

    void Clear() { *this = Slice(); }
  };

  struct Cell {
    std::vector<Slice> ring;       ///< num_slices entries
    std::uint64_t epoch = 0;       ///< slice index of ring head
    double ewma_latency = 0.0;
    bool ewma_primed = false;
  };

  struct alignas(64) Stripe {
    mutable Mutex mutex;
  };

  /// The stripe mutex covering database `db`. Thread safety analysis treats
  /// `StripeFor(db)` as a capability expression, so SnapshotLocked can
  /// require exactly the stripe its caller must hold.
  Mutex& StripeFor(std::size_t db) const
      RETURN_CAPABILITY(stripes_[db % kHealthStripes].mutex) {
    return stripes_[db % kHealthStripes].mutex;
  }
  /// Zeroes slices between the cell's epoch and the slice covering now,
  /// then points the cell at the current slice. Caller holds the stripe
  /// covering the cell's database (inexpressible as a REQUIRES clause:
  /// the cell pointer no longer carries its database index).
  Slice* AdvanceTo(Cell* cell, std::uint64_t now_ns) const;
  DbHealthSnapshot SnapshotLocked(std::size_t db, std::uint64_t now_ns) const
      REQUIRES(StripeFor(db));

  std::vector<std::string> names_;
  DbHealthOptions options_;
  const MonotonicClock* clock_;
  std::uint64_t slice_ns_;
  std::atomic<bool> enabled_{true};
  mutable std::array<Stripe, kHealthStripes> stripes_;
  // cells_[db] is guarded by StripeFor(db) — a per-element striped
  // discipline GUARDED_BY cannot express (it names one capability for the
  // whole member). The stripe lock sites in health.cc are the full access
  // set; DESIGN.md §15 records the invariant.
  mutable std::vector<Cell> cells_;
};

}  // namespace obs
}  // namespace metaprobe

#endif  // METAPROBE_OBS_HEALTH_H_
