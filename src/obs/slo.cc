#include "obs/slo.h"

#include <algorithm>

#include "obs/metric_registry.h"
#include "obs/percentile.h"

namespace metaprobe {
namespace obs {

SloMonitor::SloMonitor(std::string name, const Histogram* histogram,
                       SloOptions options)
    : name_(std::move(name)),
      histogram_(histogram),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock::Get()) {
  options_.num_slices = std::max(options_.num_slices, 1);
  options_.window_seconds = std::max(options_.window_seconds, 1e-3);
  options_.error_budget = std::max(options_.error_budget, 1e-9);
  slice_ns_ = static_cast<std::uint64_t>(
      options_.window_seconds * 1e9 /
      static_cast<double>(options_.num_slices));
  if (slice_ns_ == 0) slice_ns_ = 1;
  if (histogram_ != nullptr) {
    epoch_ = clock_->NowNanos() / slice_ns_;
    boundaries_.assign(static_cast<std::size_t>(options_.num_slices),
                       histogram_->BucketCounts());
  }
}

std::vector<std::uint64_t> SloMonitor::WindowedCountsLocked(
    std::uint64_t now_ns) const {
  std::vector<std::uint64_t> current = histogram_->BucketCounts();
  const std::uint64_t now_epoch = now_ns / slice_ns_;
  if (now_epoch > epoch_) {
    // Every boundary crossed since the last touch gets "the counts as of
    // now" — for the usual one-slice advance that is the boundary snapshot
    // (modulo scrape lag); after a long idle gap all slots are overwritten
    // and the window correctly reads empty.
    const std::uint64_t gap = now_epoch - epoch_;
    const std::uint64_t to_fill =
        std::min<std::uint64_t>(gap, boundaries_.size());
    for (std::uint64_t i = 1; i <= to_fill; ++i) {
      boundaries_[(epoch_ + i) % boundaries_.size()] = current;
    }
    epoch_ = now_epoch;
  }
  // Oldest retained boundary: start of epoch (epoch_ - num_slices + 1).
  const std::vector<std::uint64_t>& baseline =
      boundaries_[(epoch_ + 1) % boundaries_.size()];
  for (std::size_t i = 0; i < current.size(); ++i) {
    const std::uint64_t base = i < baseline.size() ? baseline[i] : 0;
    current[i] = current[i] >= base ? current[i] - base : 0;
  }
  return current;
}

SloSnapshot SloMonitor::Snapshot() const {
  SloSnapshot snap;
  snap.name = name_;
  snap.objective_seconds = options_.objective_seconds;
  if (histogram_ == nullptr) return snap;
  const std::uint64_t now_ns = clock_->NowNanos();
  MutexLock lock(mutex_);
  const std::vector<std::uint64_t> counts = WindowedCountsLocked(now_ns);
  for (std::uint64_t c : counts) snap.window_count += c;
  if (snap.window_count == 0) return snap;
  const stats::Histogram& layout = histogram_->layout();
  snap.p50_seconds = PercentileFromCounts(layout, counts, 0.50);
  snap.p95_seconds = PercentileFromCounts(layout, counts, 0.95);
  snap.p99_seconds = PercentileFromCounts(layout, counts, 0.99);
  std::uint64_t violations = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    // Cell 0 spans (-inf, e_0); its lower edge is not a finite bound.
    if (i == 0) continue;
    if (layout.LowerEdge(i) >= options_.objective_seconds - 1e-12) {
      violations += counts[i];
    }
  }
  snap.violation_fraction =
      static_cast<double>(violations) / static_cast<double>(snap.window_count);
  snap.burn_rate = snap.violation_fraction / options_.error_budget;
  return snap;
}

void SloMonitor::RegisterMetrics(MetricRegistry* registry) const {
#ifndef METAPROBE_OBS_DISABLED
  if (registry == nullptr) return;
  const std::string label = FormatLabel("slo", name_);
  registry->RegisterCallbackGauge("metaprobe_slo_latency_p50_seconds", label,
                                  [this]() { return Snapshot().p50_seconds; });
  registry->RegisterCallbackGauge("metaprobe_slo_latency_p95_seconds", label,
                                  [this]() { return Snapshot().p95_seconds; });
  registry->RegisterCallbackGauge("metaprobe_slo_latency_p99_seconds", label,
                                  [this]() { return Snapshot().p99_seconds; });
  registry->RegisterCallbackGauge(
      "metaprobe_slo_violation_fraction", label,
      [this]() { return Snapshot().violation_fraction; });
  registry->RegisterCallbackGauge("metaprobe_slo_burn_rate", label,
                                  [this]() { return Snapshot().burn_rate; });
#else
  (void)registry;
#endif
}

}  // namespace obs
}  // namespace metaprobe
