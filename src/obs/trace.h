// Copyright 2026 The metaprobe Authors

#ifndef METAPROBE_OBS_TRACE_H_
#define METAPROBE_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "obs/clock.h"

namespace metaprobe {
namespace obs {

/// \brief JSON string-escape per RFC 8259 (backslash, quote, control
/// characters). Shared by the trace exporter and the /statusz : /tracez
/// JSON builders.
std::string JsonEscape(const std::string& s);

/// \brief One timed, attributed step inside a query trace.
///
/// Spans are flat (no parent pointers): a Select trace is a short ordered
/// list — estimate, model_build, N probe rounds, stop — and a flat list
/// keeps export and assertions trivial. Attributes are typed key/value
/// pairs; numeric attributes stay doubles end-to-end so tests can
/// EXPECT_DOUBLE_EQ against model outputs.
struct TraceSpan {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::vector<std::pair<std::string, double>> num_attrs;
  std::vector<std::pair<std::string, std::string>> str_attrs;

  TraceSpan& Num(std::string key, double value) {
    num_attrs.emplace_back(std::move(key), value);
    return *this;
  }
  TraceSpan& Str(std::string key, std::string value) {
    str_attrs.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// \brief Last value recorded under `key`, or `fallback`. Linear scan —
  /// spans carry a handful of attributes.
  double num(const std::string& key, double fallback = 0.0) const;
  const std::string* str(const std::string& key) const;

  double DurationSeconds() const {
    return static_cast<double>(end_ns - start_ns) * 1e-9;
  }
};

/// \brief The spans of one Select/SearchBatch call, in emission order.
///
/// A QueryTrace is written by exactly one coordinator thread (the thread
/// running the probing loop); worker threads never touch it — they hand
/// their measurements back through the probe futures. That keeps span
/// recording lock-free and the span order deterministic.
class QueryTrace {
 public:
  QueryTrace(std::uint64_t trace_id, std::string query,
             const MonotonicClock* clock)
      : trace_id_(trace_id), query_(std::move(query)), clock_(clock) {}

  /// \brief Opens a span and returns it for attribute writes. The span stays
  /// mutable until the next StartSpan or EndSpan; pointers are stable for
  /// the trace's lifetime (deque storage).
  TraceSpan* StartSpan(std::string name);

  /// \brief Closes `span` at the current clock reading. Safe to skip — an
  /// unclosed span keeps end_ns == start_ns.
  void EndSpan(TraceSpan* span);

  /// \brief Instantaneous span (start == end): a point event such as the
  /// stop decision.
  TraceSpan* AddEvent(std::string name);

  std::uint64_t trace_id() const { return trace_id_; }
  const std::string& query() const { return query_; }
  const std::deque<TraceSpan>& spans() const { return spans_; }

  /// \brief Spans with the given name, in order (e.g. all "probe" rounds).
  std::vector<const TraceSpan*> SpansNamed(const std::string& name) const;

  /// \brief End-to-end duration: first span start to the latest span end.
  /// 0 for an empty trace.
  double DurationSeconds() const;

 private:
  std::uint64_t trace_id_;
  std::string query_;
  const MonotonicClock* clock_;
  std::deque<TraceSpan> spans_;
};

/// \brief Owns finished traces and hands out fresh ones.
///
/// StartTrace/Finish are mutex-guarded (they run once per query, not per
/// probe). Finished traces are kept in a bounded FIFO — old traces fall off
/// so a long-lived server doesn't grow without bound.
///
/// Traces at least `slow_threshold_seconds` long are additionally filed
/// into a second bounded ring that only slow traces rotate through. Under
/// load the recent ring turns over in seconds and a rare slow query would
/// be gone before anyone looks; the slow ring keeps it visible on /tracez
/// until max_slow newer slow traces displace it. A trace can sit in both
/// rings (they share the shared_ptr). Threshold <= 0 disables sampling.
class QueryTracer {
 public:
  explicit QueryTracer(const MonotonicClock* clock = RealClock::Get(),
                       std::size_t max_finished = 256,
                       std::size_t max_slow = 64)
      : clock_(clock), max_finished_(max_finished), max_slow_(max_slow) {}

  QueryTracer(const QueryTracer&) = delete;
  QueryTracer& operator=(const QueryTracer&) = delete;

  /// \brief New trace for one query. The caller (the coordinator thread)
  /// owns it until Finish.
  std::unique_ptr<QueryTrace> StartTrace(std::string query);

  /// \brief Files a completed trace into the finished ring.
  void Finish(std::unique_ptr<QueryTrace> trace);

  /// \brief Copies of the finished traces, oldest first.
  std::vector<std::shared_ptr<const QueryTrace>> Snapshot() const;

  /// \brief Copies of the retained slow traces, oldest first.
  std::vector<std::shared_ptr<const QueryTrace>> SnapshotSlow() const;

  /// \brief Most recent finished trace, or null.
  std::shared_ptr<const QueryTrace> Latest() const;

  /// \brief Traces whose DurationSeconds() >= this are kept in the slow
  /// ring; <= 0 (the default) disables slow sampling.
  void set_slow_threshold_seconds(double seconds);
  double slow_threshold_seconds() const;

  /// \brief JSON-lines export: one object per span, flattened attributes.
  /// Each line carries trace_id / query / span name / start+end ns /
  /// duration, then the span's attributes as top-level keys. The static
  /// overload serializes a single trace; the members export every finished
  /// trace, oldest first.
  static void ExportJsonLines(const QueryTrace& trace, std::ostream& os);
  static std::string ExportJsonLines(const QueryTrace& trace);
  void ExportJsonLines(std::ostream& os) const;
  std::string ExportJsonLinesText() const;

  std::size_t finished_count() const;
  std::size_t slow_count() const;
  void Clear();

  const MonotonicClock* clock() const { return clock_; }

 private:
  const MonotonicClock* clock_;
  std::size_t max_finished_;
  std::size_t max_slow_;
  mutable Mutex mutex_;
  std::uint64_t next_trace_id_ GUARDED_BY(mutex_) = 1;
  double slow_threshold_seconds_ GUARDED_BY(mutex_) = 0.0;
  std::deque<std::shared_ptr<const QueryTrace>> finished_ GUARDED_BY(mutex_);
  std::deque<std::shared_ptr<const QueryTrace>> slow_ GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace metaprobe

#endif  // METAPROBE_OBS_TRACE_H_
