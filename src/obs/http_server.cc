#include "obs/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace metaprobe {
namespace obs {

namespace {

const char* StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

bool WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads until the end of the request head ("\r\n\r\n") or the cap. GET
// requests carry no body, so the head is all we need.
bool ReadRequestHead(int fd, std::string* head) {
  constexpr std::size_t kMaxHead = 16 * 1024;
  char buf[1024];
  while (head->size() < kMaxHead) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/2000);
    if (ready <= 0) return false;  // timeout or error: drop the connection
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed before finishing the head
    head->append(buf, static_cast<std::size_t>(n));
    if (head->find("\r\n\r\n") != std::string::npos ||
        head->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Result<int> HttpServer::Start(const std::string& address, int port) {
  if (running()) {
    return Status::FailedPrecondition("http server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket(): ", std::strerror(errno));
  }
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: ", address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind(", address, ":", port,
                           "): ", std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen(): ", std::strerror(err));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname(): ", std::strerror(err));
  }
  port_ = ntohs(addr.sin_port);
  if (::pipe(wake_pipe_) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("pipe(): ", std::strerror(err));
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return port_;
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  const char wake = 'x';
  (void)!::write(wake_pipe_[1], &wake, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void HttpServer::ServeLoop() {
  while (running()) {
    struct pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, /*timeout_ms=*/500);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() poked the self-pipe
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    ServeConnection(client);
    ::close(client);
  }
}

void HttpServer::ServeConnection(int client_fd) {
  std::string head;
  HttpResponse response;
  if (!ReadRequestHead(client_fd, &head)) return;
  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t line_end = head.find_first_of("\r\n");
  const std::string line = head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (line.substr(0, sp1) != "GET") {
    response = {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    auto it = handlers_.find(path);
    if (it == handlers_.end()) {
      response = {404, "text/plain; charset=utf-8", "not found\n"};
    } else {
      response = it->second(path);
    }
  }
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusReason(response.status) +
                    "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " +
                    std::to_string(response.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + response.body;
  WriteAll(client_fd, out.data(), out.size());
}

}  // namespace obs
}  // namespace metaprobe
