# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/chi_square_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/correctness_test[1]_include.cmake")
include("/root/repo/build/tests/descriptive_test[1]_include.cmake")
include("/root/repo/build/tests/discrete_distribution_test[1]_include.cmake")
include("/root/repo/build/tests/error_distribution_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/index_io_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/inverted_index_test[1]_include.cmake")
include("/root/repo/build/tests/metasearcher_test[1]_include.cmake")
include("/root/repo/build/tests/model_io_test[1]_include.cmake")
include("/root/repo/build/tests/posting_list_test[1]_include.cmake")
include("/root/repo/build/tests/probing_test[1]_include.cmake")
include("/root/repo/build/tests/query_class_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/selection_fusion_test[1]_include.cmake")
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/strings_test[1]_include.cmake")
include("/root/repo/build/tests/summary_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
