file(REMOVE_RECURSE
  "CMakeFiles/posting_list_test.dir/posting_list_test.cc.o"
  "CMakeFiles/posting_list_test.dir/posting_list_test.cc.o.d"
  "posting_list_test"
  "posting_list_test.pdb"
  "posting_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posting_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
