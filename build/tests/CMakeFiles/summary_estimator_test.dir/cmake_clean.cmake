file(REMOVE_RECURSE
  "CMakeFiles/summary_estimator_test.dir/summary_estimator_test.cc.o"
  "CMakeFiles/summary_estimator_test.dir/summary_estimator_test.cc.o.d"
  "summary_estimator_test"
  "summary_estimator_test.pdb"
  "summary_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
