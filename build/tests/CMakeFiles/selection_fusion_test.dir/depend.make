# Empty dependencies file for selection_fusion_test.
# This may be replaced when dependencies are built.
