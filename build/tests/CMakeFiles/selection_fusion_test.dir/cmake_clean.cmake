file(REMOVE_RECURSE
  "CMakeFiles/selection_fusion_test.dir/selection_fusion_test.cc.o"
  "CMakeFiles/selection_fusion_test.dir/selection_fusion_test.cc.o.d"
  "selection_fusion_test"
  "selection_fusion_test.pdb"
  "selection_fusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_fusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
