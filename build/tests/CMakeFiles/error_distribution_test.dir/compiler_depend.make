# Empty compiler generated dependencies file for error_distribution_test.
# This may be replaced when dependencies are built.
