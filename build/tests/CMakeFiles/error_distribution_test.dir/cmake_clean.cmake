file(REMOVE_RECURSE
  "CMakeFiles/error_distribution_test.dir/error_distribution_test.cc.o"
  "CMakeFiles/error_distribution_test.dir/error_distribution_test.cc.o.d"
  "error_distribution_test"
  "error_distribution_test.pdb"
  "error_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
