# Empty dependencies file for metasearcher_test.
# This may be replaced when dependencies are built.
