file(REMOVE_RECURSE
  "CMakeFiles/metasearcher_test.dir/metasearcher_test.cc.o"
  "CMakeFiles/metasearcher_test.dir/metasearcher_test.cc.o.d"
  "metasearcher_test"
  "metasearcher_test.pdb"
  "metasearcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metasearcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
