# Empty dependencies file for discrete_distribution_test.
# This may be replaced when dependencies are built.
