file(REMOVE_RECURSE
  "CMakeFiles/discrete_distribution_test.dir/discrete_distribution_test.cc.o"
  "CMakeFiles/discrete_distribution_test.dir/discrete_distribution_test.cc.o.d"
  "discrete_distribution_test"
  "discrete_distribution_test.pdb"
  "discrete_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discrete_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
