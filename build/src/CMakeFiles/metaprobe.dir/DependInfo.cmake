
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/metaprobe.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/metaprobe.dir/common/status.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/metaprobe.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/common/strings.cc.o.d"
  "/root/repo/src/core/correctness.cc" "src/CMakeFiles/metaprobe.dir/core/correctness.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/correctness.cc.o.d"
  "/root/repo/src/core/ed_learner.cc" "src/CMakeFiles/metaprobe.dir/core/ed_learner.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/ed_learner.cc.o.d"
  "/root/repo/src/core/error_distribution.cc" "src/CMakeFiles/metaprobe.dir/core/error_distribution.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/error_distribution.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/CMakeFiles/metaprobe.dir/core/estimator.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/estimator.cc.o.d"
  "/root/repo/src/core/flaky_database.cc" "src/CMakeFiles/metaprobe.dir/core/flaky_database.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/flaky_database.cc.o.d"
  "/root/repo/src/core/fusion.cc" "src/CMakeFiles/metaprobe.dir/core/fusion.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/fusion.cc.o.d"
  "/root/repo/src/core/hidden_web_database.cc" "src/CMakeFiles/metaprobe.dir/core/hidden_web_database.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/hidden_web_database.cc.o.d"
  "/root/repo/src/core/metasearcher.cc" "src/CMakeFiles/metaprobe.dir/core/metasearcher.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/metasearcher.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/CMakeFiles/metaprobe.dir/core/model_io.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/model_io.cc.o.d"
  "/root/repo/src/core/probing.cc" "src/CMakeFiles/metaprobe.dir/core/probing.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/probing.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/metaprobe.dir/core/query.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/query.cc.o.d"
  "/root/repo/src/core/query_class.cc" "src/CMakeFiles/metaprobe.dir/core/query_class.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/query_class.cc.o.d"
  "/root/repo/src/core/related_selectors.cc" "src/CMakeFiles/metaprobe.dir/core/related_selectors.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/related_selectors.cc.o.d"
  "/root/repo/src/core/relevancy_definition.cc" "src/CMakeFiles/metaprobe.dir/core/relevancy_definition.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/relevancy_definition.cc.o.d"
  "/root/repo/src/core/relevancy_distribution.cc" "src/CMakeFiles/metaprobe.dir/core/relevancy_distribution.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/relevancy_distribution.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/CMakeFiles/metaprobe.dir/core/selection.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/selection.cc.o.d"
  "/root/repo/src/core/summary.cc" "src/CMakeFiles/metaprobe.dir/core/summary.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/core/summary.cc.o.d"
  "/root/repo/src/corpus/domain.cc" "src/CMakeFiles/metaprobe.dir/corpus/domain.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/corpus/domain.cc.o.d"
  "/root/repo/src/corpus/query_log.cc" "src/CMakeFiles/metaprobe.dir/corpus/query_log.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/corpus/query_log.cc.o.d"
  "/root/repo/src/corpus/synthetic_corpus.cc" "src/CMakeFiles/metaprobe.dir/corpus/synthetic_corpus.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/corpus/synthetic_corpus.cc.o.d"
  "/root/repo/src/corpus/topic_model.cc" "src/CMakeFiles/metaprobe.dir/corpus/topic_model.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/corpus/topic_model.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/metaprobe.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/golden.cc" "src/CMakeFiles/metaprobe.dir/eval/golden.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/eval/golden.cc.o.d"
  "/root/repo/src/eval/sampling_study.cc" "src/CMakeFiles/metaprobe.dir/eval/sampling_study.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/eval/sampling_study.cc.o.d"
  "/root/repo/src/eval/table.cc" "src/CMakeFiles/metaprobe.dir/eval/table.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/eval/table.cc.o.d"
  "/root/repo/src/eval/testbed.cc" "src/CMakeFiles/metaprobe.dir/eval/testbed.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/eval/testbed.cc.o.d"
  "/root/repo/src/index/document_store.cc" "src/CMakeFiles/metaprobe.dir/index/document_store.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/index/document_store.cc.o.d"
  "/root/repo/src/index/index_io.cc" "src/CMakeFiles/metaprobe.dir/index/index_io.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/index/index_io.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/metaprobe.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/index/posting_list.cc" "src/CMakeFiles/metaprobe.dir/index/posting_list.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/index/posting_list.cc.o.d"
  "/root/repo/src/stats/chi_square.cc" "src/CMakeFiles/metaprobe.dir/stats/chi_square.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/stats/chi_square.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/metaprobe.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/discrete_distribution.cc" "src/CMakeFiles/metaprobe.dir/stats/discrete_distribution.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/stats/discrete_distribution.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/metaprobe.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/random.cc" "src/CMakeFiles/metaprobe.dir/stats/random.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/stats/random.cc.o.d"
  "/root/repo/src/text/analyzer.cc" "src/CMakeFiles/metaprobe.dir/text/analyzer.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/text/analyzer.cc.o.d"
  "/root/repo/src/text/porter_stemmer.cc" "src/CMakeFiles/metaprobe.dir/text/porter_stemmer.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/text/porter_stemmer.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "src/CMakeFiles/metaprobe.dir/text/stopwords.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/text/stopwords.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/metaprobe.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/metaprobe.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/metaprobe.dir/text/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
