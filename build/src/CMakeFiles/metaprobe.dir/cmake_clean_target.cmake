file(REMOVE_RECURSE
  "libmetaprobe.a"
)
