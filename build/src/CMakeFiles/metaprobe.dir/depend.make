# Empty dependencies file for metaprobe.
# This may be replaced when dependencies are built.
