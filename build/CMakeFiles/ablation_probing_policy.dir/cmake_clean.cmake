file(REMOVE_RECURSE
  "CMakeFiles/ablation_probing_policy.dir/bench/ablation_probing_policy.cc.o"
  "CMakeFiles/ablation_probing_policy.dir/bench/ablation_probing_policy.cc.o.d"
  "bench/ablation_probing_policy"
  "bench/ablation_probing_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probing_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
