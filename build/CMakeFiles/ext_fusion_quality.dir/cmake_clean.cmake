file(REMOVE_RECURSE
  "CMakeFiles/ext_fusion_quality.dir/bench/ext_fusion_quality.cc.o"
  "CMakeFiles/ext_fusion_quality.dir/bench/ext_fusion_quality.cc.o.d"
  "bench/ext_fusion_quality"
  "bench/ext_fusion_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fusion_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
