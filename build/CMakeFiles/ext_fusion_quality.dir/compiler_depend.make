# Empty compiler generated dependencies file for ext_fusion_quality.
# This may be replaced when dependencies are built.
