file(REMOVE_RECURSE
  "CMakeFiles/fig07_sampling_goodness.dir/bench/fig07_sampling_goodness.cc.o"
  "CMakeFiles/fig07_sampling_goodness.dir/bench/fig07_sampling_goodness.cc.o.d"
  "bench/fig07_sampling_goodness"
  "bench/fig07_sampling_goodness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_sampling_goodness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
