# Empty compiler generated dependencies file for fig07_sampling_goodness.
# This may be replaced when dependencies are built.
