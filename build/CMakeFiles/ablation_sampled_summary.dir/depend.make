# Empty dependencies file for ablation_sampled_summary.
# This may be replaced when dependencies are built.
