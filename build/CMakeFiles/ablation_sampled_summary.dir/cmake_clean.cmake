file(REMOVE_RECURSE
  "CMakeFiles/ablation_sampled_summary.dir/bench/ablation_sampled_summary.cc.o"
  "CMakeFiles/ablation_sampled_summary.dir/bench/ablation_sampled_summary.cc.o.d"
  "bench/ablation_sampled_summary"
  "bench/ablation_sampled_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sampled_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
