file(REMOVE_RECURSE
  "CMakeFiles/micro_index.dir/bench/micro_index.cc.o"
  "CMakeFiles/micro_index.dir/bench/micro_index.cc.o.d"
  "bench/micro_index"
  "bench/micro_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
