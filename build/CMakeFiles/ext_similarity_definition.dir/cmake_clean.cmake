file(REMOVE_RECURSE
  "CMakeFiles/ext_similarity_definition.dir/bench/ext_similarity_definition.cc.o"
  "CMakeFiles/ext_similarity_definition.dir/bench/ext_similarity_definition.cc.o.d"
  "bench/ext_similarity_definition"
  "bench/ext_similarity_definition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_similarity_definition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
