# Empty dependencies file for ext_similarity_definition.
# This may be replaced when dependencies are built.
