file(REMOVE_RECURSE
  "CMakeFiles/fig15_rd_vs_baseline.dir/bench/fig15_rd_vs_baseline.cc.o"
  "CMakeFiles/fig15_rd_vs_baseline.dir/bench/fig15_rd_vs_baseline.cc.o.d"
  "bench/fig15_rd_vs_baseline"
  "bench/fig15_rd_vs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_rd_vs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
