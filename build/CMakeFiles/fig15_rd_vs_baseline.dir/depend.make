# Empty dependencies file for fig15_rd_vs_baseline.
# This may be replaced when dependencies are built.
