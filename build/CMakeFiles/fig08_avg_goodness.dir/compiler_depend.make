# Empty compiler generated dependencies file for fig08_avg_goodness.
# This may be replaced when dependencies are built.
