file(REMOVE_RECURSE
  "CMakeFiles/fig08_avg_goodness.dir/bench/fig08_avg_goodness.cc.o"
  "CMakeFiles/fig08_avg_goodness.dir/bench/fig08_avg_goodness.cc.o.d"
  "bench/fig08_avg_goodness"
  "bench/fig08_avg_goodness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_avg_goodness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
