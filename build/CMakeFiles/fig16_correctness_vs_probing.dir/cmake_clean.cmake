file(REMOVE_RECURSE
  "CMakeFiles/fig16_correctness_vs_probing.dir/bench/fig16_correctness_vs_probing.cc.o"
  "CMakeFiles/fig16_correctness_vs_probing.dir/bench/fig16_correctness_vs_probing.cc.o.d"
  "bench/fig16_correctness_vs_probing"
  "bench/fig16_correctness_vs_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_correctness_vs_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
