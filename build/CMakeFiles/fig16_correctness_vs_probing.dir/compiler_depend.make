# Empty compiler generated dependencies file for fig16_correctness_vs_probing.
# This may be replaced when dependencies are built.
