file(REMOVE_RECURSE
  "CMakeFiles/ablation_query_types.dir/bench/ablation_query_types.cc.o"
  "CMakeFiles/ablation_query_types.dir/bench/ablation_query_types.cc.o.d"
  "bench/ablation_query_types"
  "bench/ablation_query_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_query_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
