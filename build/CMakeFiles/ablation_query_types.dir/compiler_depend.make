# Empty compiler generated dependencies file for ablation_query_types.
# This may be replaced when dependencies are built.
