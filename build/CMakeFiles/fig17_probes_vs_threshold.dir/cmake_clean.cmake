file(REMOVE_RECURSE
  "CMakeFiles/fig17_probes_vs_threshold.dir/bench/fig17_probes_vs_threshold.cc.o"
  "CMakeFiles/fig17_probes_vs_threshold.dir/bench/fig17_probes_vs_threshold.cc.o.d"
  "bench/fig17_probes_vs_threshold"
  "bench/fig17_probes_vs_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_probes_vs_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
