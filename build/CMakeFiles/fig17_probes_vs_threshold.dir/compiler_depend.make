# Empty compiler generated dependencies file for fig17_probes_vs_threshold.
# This may be replaced when dependencies are built.
