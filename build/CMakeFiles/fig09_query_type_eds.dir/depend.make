# Empty dependencies file for fig09_query_type_eds.
# This may be replaced when dependencies are built.
