file(REMOVE_RECURSE
  "CMakeFiles/fig09_query_type_eds.dir/bench/fig09_query_type_eds.cc.o"
  "CMakeFiles/fig09_query_type_eds.dir/bench/fig09_query_type_eds.cc.o.d"
  "bench/fig09_query_type_eds"
  "bench/fig09_query_type_eds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_query_type_eds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
