file(REMOVE_RECURSE
  "CMakeFiles/ext_related_selectors.dir/bench/ext_related_selectors.cc.o"
  "CMakeFiles/ext_related_selectors.dir/bench/ext_related_selectors.cc.o.d"
  "bench/ext_related_selectors"
  "bench/ext_related_selectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_related_selectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
