# Empty compiler generated dependencies file for ext_related_selectors.
# This may be replaced when dependencies are built.
