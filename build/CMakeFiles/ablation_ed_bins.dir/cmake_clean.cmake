file(REMOVE_RECURSE
  "CMakeFiles/ablation_ed_bins.dir/bench/ablation_ed_bins.cc.o"
  "CMakeFiles/ablation_ed_bins.dir/bench/ablation_ed_bins.cc.o.d"
  "bench/ablation_ed_bins"
  "bench/ablation_ed_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ed_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
