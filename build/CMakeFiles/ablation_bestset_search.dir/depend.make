# Empty dependencies file for ablation_bestset_search.
# This may be replaced when dependencies are built.
