file(REMOVE_RECURSE
  "CMakeFiles/ablation_bestset_search.dir/bench/ablation_bestset_search.cc.o"
  "CMakeFiles/ablation_bestset_search.dir/bench/ablation_bestset_search.cc.o.d"
  "bench/ablation_bestset_search"
  "bench/ablation_bestset_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bestset_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
