# Empty dependencies file for offline_training.
# This may be replaced when dependencies are built.
