# Empty dependencies file for custom_estimator.
# This may be replaced when dependencies are built.
