file(REMOVE_RECURSE
  "CMakeFiles/certainty_knob.dir/certainty_knob.cpp.o"
  "CMakeFiles/certainty_knob.dir/certainty_knob.cpp.o.d"
  "certainty_knob"
  "certainty_knob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certainty_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
