# Empty dependencies file for certainty_knob.
# This may be replaced when dependencies are built.
