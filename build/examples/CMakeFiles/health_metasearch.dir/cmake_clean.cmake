file(REMOVE_RECURSE
  "CMakeFiles/health_metasearch.dir/health_metasearch.cpp.o"
  "CMakeFiles/health_metasearch.dir/health_metasearch.cpp.o.d"
  "health_metasearch"
  "health_metasearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_metasearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
