# Empty compiler generated dependencies file for health_metasearch.
# This may be replaced when dependencies are built.
