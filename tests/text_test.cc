#include <gtest/gtest.h>

#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace metaprobe {
namespace text {
namespace {

// ---------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, LowercasesAndSplits) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("Breast CANCER treatment"),
            (std::vector<std::string>{"breast", "cancer", "treatment"}));
}

TEST(TokenizerTest, PunctuationSeparates) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("heart-attack, stroke; (fever)"),
            (std::vector<std::string>{"heart", "attack", "stroke", "fever"}));
}

TEST(TokenizerTest, ApostropheCollapsed) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("don't"), (std::vector<std::string>{"dont"}));
}

TEST(TokenizerTest, ShortTokensDropped) {
  Tokenizer tok;  // min length 2
  EXPECT_EQ(tok.Tokenize("a b cd"), (std::vector<std::string>{"cd"}));
}

TEST(TokenizerTest, OverlongTokensDropped) {
  TokenizerOptions options;
  options.max_token_length = 5;
  Tokenizer tok(options);
  EXPECT_EQ(tok.Tokenize("tiny enormousword"),
            (std::vector<std::string>{"tiny"}));
}

TEST(TokenizerTest, NumbersDroppedByDefault) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("covid 19 2004"), (std::vector<std::string>{"covid"}));
}

TEST(TokenizerTest, KeepNumbersInsideWords) {
  TokenizerOptions options;
  options.keep_numbers = true;
  Tokenizer tok(options);
  EXPECT_EQ(tok.Tokenize("covid19 2004"),
            (std::vector<std::string>{"covid19"}));  // pure numbers still drop
}

TEST(TokenizerTest, NonAsciiActsAsSeparator) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("caf\xc3\xa9 health"),
            (std::vector<std::string>{"caf", "health"}));
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("  \t\n ").empty());
}

TEST(TokenizerTest, AppendOverloadAccumulates) {
  Tokenizer tok;
  std::vector<std::string> out{"seed"};
  tok.Tokenize("more words", &out);
  EXPECT_EQ(out, (std::vector<std::string>{"seed", "more", "words"}));
}

// ------------------------------------------------------------------ Stemmer

struct StemCase {
  const char* word;
  const char* stem;
};

class PorterStemmerTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerTest, MatchesReferenceVector) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem(GetParam().word), GetParam().stem)
      << "input: " << GetParam().word;
}

// Reference outputs of the original Porter (1980) algorithm.
INSTANTIATE_TEST_SUITE_P(
    ClassicVectors, PorterStemmerTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemmerEdgeTest, ShortWordsUntouched) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("is"), "is");
  EXPECT_EQ(stemmer.Stem("be"), "be");
  EXPECT_EQ(stemmer.Stem("a"), "a");
}

TEST(PorterStemmerEdgeTest, NonLowercaseUntouched) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("Cancer"), "Cancer");
  EXPECT_EQ(stemmer.Stem("covid19"), "covid19");
}

TEST(PorterStemmerEdgeTest, QueryAndDocumentFormsUnify) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("probing"), stemmer.Stem("probe"));
  EXPECT_EQ(stemmer.Stem("databases"), stemmer.Stem("database"));
  EXPECT_EQ(stemmer.Stem("infections"), stemmer.Stem("infection"));
}

// ---------------------------------------------------------------- Stopwords

TEST(StopwordTest, DefaultListContainsFunctionWords) {
  StopwordList stopwords;
  EXPECT_TRUE(stopwords.Contains("the"));
  EXPECT_TRUE(stopwords.Contains("and"));
  EXPECT_TRUE(stopwords.Contains("of"));
  EXPECT_FALSE(stopwords.Contains("cancer"));
  EXPECT_FALSE(stopwords.Contains("heart"));
  EXPECT_GT(stopwords.size(), 100u);
}

TEST(StopwordTest, CustomList) {
  StopwordList stopwords{"foo", "bar"};
  EXPECT_TRUE(stopwords.Contains("foo"));
  EXPECT_FALSE(stopwords.Contains("the"));
  EXPECT_EQ(stopwords.size(), 2u);
}

// --------------------------------------------------------------- Vocabulary

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Intern("alpha"), 0u);
  EXPECT_EQ(vocab.Intern("beta"), 1u);
  EXPECT_EQ(vocab.Intern("alpha"), 0u);  // idempotent
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, LookupAndTermOf) {
  Vocabulary vocab;
  TermId id = vocab.Intern("gamma");
  EXPECT_EQ(vocab.Lookup("gamma"), id);
  EXPECT_EQ(vocab.Lookup("missing"), kInvalidTermId);
  EXPECT_EQ(vocab.TermOf(id), "gamma");
}

// ----------------------------------------------------------------- Analyzer

TEST(AnalyzerTest, FullPipeline) {
  Analyzer analyzer;
  // "the" is a stopword; "treatments" stems to "treatment"-stem.
  std::vector<std::string> terms =
      analyzer.Analyze("The treatments of breast cancers");
  EXPECT_EQ(terms, (std::vector<std::string>{"treatment", "breast", "cancer"}));
}

TEST(AnalyzerTest, StemmingDisabled) {
  AnalyzerOptions options;
  options.stem = false;
  Analyzer analyzer(options);
  EXPECT_EQ(analyzer.Analyze("running dogs"),
            (std::vector<std::string>{"running", "dogs"}));
}

TEST(AnalyzerTest, StopwordsDisabled) {
  AnalyzerOptions options;
  options.remove_stopwords = false;
  options.stem = false;
  Analyzer analyzer(options);
  EXPECT_EQ(analyzer.Analyze("the cat"),
            (std::vector<std::string>{"the", "cat"}));
}

TEST(AnalyzerTest, AnalyzeTermSingle) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.AnalyzeTerm("Cancers"), "cancer");
  EXPECT_EQ(analyzer.AnalyzeTerm("the"), "");  // stopword vanishes
}

TEST(AnalyzerTest, QueryMatchesDocumentAnalysis) {
  // The core guarantee the metasearcher relies on: a query term analyzes to
  // the same form as the document token.
  Analyzer analyzer;
  EXPECT_EQ(analyzer.Analyze("probing databases"),
            analyzer.Analyze("Probed Database"));
}

}  // namespace
}  // namespace text
}  // namespace metaprobe
