// Copyright 2026 The metaprobe Authors
//
// Randomized equivalence suite for the expected-correctness kernel: the
// production implementation (merged-grid tail tables + leave-one-out DP +
// incremental best-set scoring, see DESIGN.md §9) is pinned against the
// retained naive reference implementations in core::reference to 1e-12,
// across random models and across the mutation paths that invalidate the
// kernel cache (Observe, ScopedCondition, nesting thereof).

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/correctness.h"

namespace metaprobe {
namespace core {
namespace {

constexpr double kTol = 1e-12;

RelevancyDistribution Rd(std::vector<stats::Atom> atoms) {
  RelevancyDistribution rd;
  rd.dist = stats::DiscreteDistribution::Make(std::move(atoms)).ValueOrDie();
  return rd;
}

struct ModelSpec {
  int num_dbs = 0;
  int k = 1;
};

// Random model stressing the kernel's edge cases: values drawn from a small
// integer lattice (cross-database ties are the norm, exercising grid
// dedup + the >=/> split), occasional impulses (already-probed databases),
// and 1-6 atoms per RD.
TopKModel RandomModel(stats::Rng* rng, ModelSpec* spec) {
  spec->num_dbs = 2 + static_cast<int>(rng->UniformInt(std::uint64_t{11}));
  spec->k = 1 + static_cast<int>(rng->UniformInt(
                    static_cast<std::uint64_t>(std::min(spec->num_dbs - 1, 4))));
  std::vector<RelevancyDistribution> rds;
  for (int i = 0; i < spec->num_dbs; ++i) {
    std::vector<stats::Atom> atoms;
    if (rng->Uniform() < 0.15) {
      // Impulse (a probed database's collapsed RD).
      atoms.push_back({std::floor(rng->Uniform(0, 12)) * 10, 1.0});
    } else {
      int count = 1 + static_cast<int>(rng->UniformInt(std::uint64_t{6}));
      for (int a = 0; a < count; ++a) {
        atoms.push_back(
            {std::floor(rng->Uniform(0, 12)) * 10, rng->Uniform(0.01, 1.0)});
      }
    }
    rds.push_back(Rd(std::move(atoms)));
  }
  return TopKModel(std::move(rds));
}

std::vector<std::size_t> RandomSet(stats::Rng* rng, int num_dbs, int size) {
  std::vector<std::size_t> all(static_cast<std::size_t>(num_dbs));
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  rng->Shuffle(&all);
  all.resize(static_cast<std::size_t>(size));
  std::sort(all.begin(), all.end());
  return all;
}

// Compares every kernel entry point against the reference on the model's
// current state.
void ExpectKernelMatchesReference(const TopKModel& model, int k,
                                  stats::Rng* rng, const char* where) {
  SCOPED_TRACE(where);
  const int n = static_cast<int>(model.num_databases());

  std::vector<double> fast = model.MembershipProbabilities(k);
  std::vector<double> naive = reference::MembershipProbabilities(model, k);
  ASSERT_EQ(fast.size(), naive.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], naive[i], kTol) << "db " << i << " k=" << k;
  }

  std::vector<std::size_t> set = RandomSet(rng, n, k);
  EXPECT_NEAR(model.PrExactTopSet(set), reference::PrExactTopSet(model, set),
              kTol);
  for (CorrectnessMetric metric :
       {CorrectnessMetric::kAbsolute, CorrectnessMetric::kPartial}) {
    EXPECT_NEAR(model.ExpectedCorrectness(set, metric),
                reference::ExpectedCorrectness(model, set, metric), kTol);

    int width = static_cast<int>(rng->UniformInt(std::uint64_t{5}));
    if (rng->Uniform() < 0.2) width = n;  // occasionally exhaustive
    TopKModel::BestSet fast_best = model.FindBestSet(k, metric, width);
    TopKModel::BestSet naive_best =
        reference::FindBestSet(model, k, metric, width);
    EXPECT_EQ(fast_best.members, naive_best.members);
    EXPECT_NEAR(fast_best.expected_correctness,
                naive_best.expected_correctness, kTol);
  }
}

// ~1000 random models through every entry point. The reference recomputes
// from the RDs on each call, so any stale-cache bug shows up as a mismatch.
TEST(CorrectnessKernelTest, RandomizedEquivalence) {
  stats::Rng rng(20260806);
  for (int trial = 0; trial < 350; ++trial) {
    ModelSpec spec;
    TopKModel model = RandomModel(&rng, &spec);
    ExpectKernelMatchesReference(model, spec.k, &rng, "fresh model");
    if (spec.k > 1) {
      // A second k on the same model exercises the marginal memo swap.
      ExpectKernelMatchesReference(model, spec.k - 1, &rng, "second k");
    }
  }
}

TEST(CorrectnessKernelTest, EquivalencePostObserve) {
  stats::Rng rng(7151);
  for (int trial = 0; trial < 200; ++trial) {
    ModelSpec spec;
    TopKModel model = RandomModel(&rng, &spec);
    // Evaluate once to build the cache, then mutate through Observe.
    (void)model.MembershipProbabilities(spec.k);
    int probes = 1 + static_cast<int>(rng.UniformInt(std::uint64_t{3}));
    for (int p = 0; p < probes; ++p) {
      std::size_t db = rng.UniformInt(
          static_cast<std::uint64_t>(spec.num_dbs));
      // Half on-lattice (likely colliding with existing grid values), half
      // strictly off-grid, so both invalidation paths run.
      double value = rng.Uniform() < 0.5 ? std::floor(rng.Uniform(0, 12)) * 10
                                          : rng.Uniform(0.0, 120.0);
      model.Observe(db, value);
      ExpectKernelMatchesReference(model, spec.k, &rng, "after Observe");
    }
  }
}

TEST(CorrectnessKernelTest, EquivalenceUnderScopedCondition) {
  stats::Rng rng(90210);
  for (int trial = 0; trial < 150; ++trial) {
    ModelSpec spec;
    TopKModel model = RandomModel(&rng, &spec);
    (void)model.MembershipProbabilities(spec.k);  // warm cache

    std::size_t outer_db =
        rng.UniformInt(static_cast<std::uint64_t>(spec.num_dbs));
    const std::vector<stats::Atom> outer_support = model.SupportOf(outer_db);
    const stats::Atom& outer_atom = outer_support[rng.UniformInt(
        static_cast<std::uint64_t>(outer_support.size()))];
    {
      TopKModel::ScopedCondition outer(&model, outer_db, outer_atom.value);
      ExpectKernelMatchesReference(model, spec.k, &rng, "outer condition");

      std::size_t inner_db =
          rng.UniformInt(static_cast<std::uint64_t>(spec.num_dbs));
      if (inner_db == outer_db) inner_db = (inner_db + 1) % spec.num_dbs;
      const std::vector<stats::Atom> inner_support = model.SupportOf(inner_db);
      const stats::Atom& inner_atom = inner_support[rng.UniformInt(
          static_cast<std::uint64_t>(inner_support.size()))];
      {
        TopKModel::ScopedCondition inner(&model, inner_db, inner_atom.value);
        ExpectKernelMatchesReference(model, spec.k, &rng, "nested condition");
      }
      ExpectKernelMatchesReference(model, spec.k, &rng, "inner restored");
    }
    ExpectKernelMatchesReference(model, spec.k, &rng, "outer restored");
  }
}

// Observe *inside* a ScopedCondition forces the generation-mismatch restore
// path (the scope's fast row restore must be abandoned when the cache was
// rebuilt mid-scope).
TEST(CorrectnessKernelTest, ObserveInsideScopedConditionInvalidatesSafely) {
  stats::Rng rng(31337);
  for (int trial = 0; trial < 100; ++trial) {
    ModelSpec spec;
    TopKModel model = RandomModel(&rng, &spec);
    (void)model.MembershipProbabilities(spec.k);

    std::size_t pinned =
        rng.UniformInt(static_cast<std::uint64_t>(spec.num_dbs));
    std::size_t observed =
        rng.UniformInt(static_cast<std::uint64_t>(spec.num_dbs));
    if (observed == pinned) observed = (observed + 1) % spec.num_dbs;
    const std::vector<stats::Atom> support = model.SupportOf(pinned);
    {
      TopKModel::ScopedCondition condition(&model, pinned,
                                           support.front().value);
      model.Observe(observed, rng.Uniform(0.0, 120.0));  // off-grid rebuild
      ExpectKernelMatchesReference(model, spec.k, &rng,
                                   "observe inside condition");
    }
    ExpectKernelMatchesReference(model, spec.k, &rng,
                                 "restored after mid-scope observe");
  }
}

// Monte-Carlo cross-validation on the production kernel: a statistical
// check that the exact math (not just fast-vs-naive agreement) is right.
TEST(CorrectnessKernelTest, MonteCarloCrossValidation) {
  stats::Rng rng(5150);
  for (int trial = 0; trial < 8; ++trial) {
    ModelSpec spec;
    TopKModel model = RandomModel(&rng, &spec);
    TopKModel::BestSet best =
        model.FindBestSet(spec.k, CorrectnessMetric::kAbsolute);
    for (CorrectnessMetric metric :
         {CorrectnessMetric::kAbsolute, CorrectnessMetric::kPartial}) {
      double exact = model.ExpectedCorrectness(best.members, metric);
      double sampled = MonteCarloExpectedCorrectness(model, best.members,
                                                     metric, 20000, &rng);
      EXPECT_NEAR(sampled, exact, 0.02)
          << CorrectnessMetricName(metric) << " trial " << trial;
    }
  }
}

// SampleRankingInto is the allocation-free twin of SampleRanking: same rng
// stream in, same ranking out.
TEST(CorrectnessKernelTest, SampleRankingIntoMatchesSampleRanking) {
  stats::Rng rng(8080);
  ModelSpec spec;
  TopKModel model = RandomModel(&rng, &spec);
  stats::Rng a(123), b(123);
  std::vector<double> sampled;
  std::vector<std::size_t> order;
  for (int i = 0; i < 50; ++i) {
    std::vector<std::size_t> want = model.SampleRanking(&a);
    model.SampleRankingInto(&b, &sampled, &order);
    EXPECT_EQ(order, want);
  }
}

// Deterministic worked example locking the leave-one-out DP against values
// computed by hand from the paper's Figure 5 model.
TEST(CorrectnessKernelTest, PaperModelGoldenValues) {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{50, 0.4}, {100, 0.5}, {150, 0.1}}));
  rds.push_back(Rd({{65, 0.1}, {130, 0.9}}));
  TopKModel model(std::move(rds));
  EXPECT_NEAR(model.PrExactTopSet({1}), 0.85, kTol);
  EXPECT_NEAR(model.PrExactTopSet({0}), 0.15, kTol);
  std::vector<double> m = model.MembershipProbabilities(1);
  EXPECT_NEAR(m[0], 0.15, kTol);
  EXPECT_NEAR(m[1], 0.85, kTol);
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
