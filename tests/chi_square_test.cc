#include "stats/chi_square.h"

#include <cmath>

#include <gtest/gtest.h>

namespace metaprobe {
namespace stats {
namespace {

TEST(RegularizedGammaTest, ComplementIdentity) {
  for (double a : {0.5, 1.0, 2.5, 4.5, 10.0}) {
    for (double x : {0.1, 0.5, 1.0, 3.0, 8.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 100.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.2, 1.0, 2.5, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(ChiSquareCdfTest, KnownQuantiles) {
  // Classic table values: chi2(0.95; dof) upper-tail critical points.
  EXPECT_NEAR(ChiSquareSf(3.841, 1), 0.05, 2e-3);
  EXPECT_NEAR(ChiSquareSf(5.991, 2), 0.05, 2e-3);
  EXPECT_NEAR(ChiSquareSf(16.919, 9), 0.05, 2e-3);
  EXPECT_NEAR(ChiSquareSf(21.666, 9), 0.01, 1e-3);
}

TEST(ChiSquareCdfTest, MedianOfDof2) {
  // chi2 with dof 2 is Exp(1/2); median = 2 ln 2.
  EXPECT_NEAR(ChiSquareCdf(2.0 * std::log(2.0), 2), 0.5, 1e-10);
}

TEST(ChiSquareCdfTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(ChiSquareCdf(0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareCdf(-1.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareSf(0.0, 5), 1.0);
}

TEST(PearsonTest, PerfectFitGivesHighPValue) {
  std::vector<double> observed{25, 25, 25, 25};
  std::vector<double> expected{0.25, 0.25, 0.25, 0.25};
  auto result = PearsonChiSquareTest(observed, expected);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->statistic, 0.0);
  EXPECT_DOUBLE_EQ(result->p_value, 1.0);
  EXPECT_DOUBLE_EQ(result->dof, 3.0);
}

TEST(PearsonTest, GrossMismatchGivesLowPValue) {
  std::vector<double> observed{100, 0, 0, 0};
  std::vector<double> expected{0.25, 0.25, 0.25, 0.25};
  auto result = PearsonChiSquareTest(observed, expected);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->p_value, 1e-6);
}

TEST(PearsonTest, TextbookStatistic) {
  // Observed {44, 56}, expected fair coin over 100: chi2 = 1.44, dof 1,
  // p ~= 0.230.
  auto result = PearsonChiSquareTest({44, 56}, {0.5, 0.5});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->statistic, 1.44, 1e-9);
  EXPECT_NEAR(result->p_value, 0.2301, 1e-3);
}

TEST(PearsonTest, MergesSparseCells) {
  // Middle cells expect < 5 counts and must merge into neighbors.
  std::vector<double> observed{50, 1, 0, 49};
  std::vector<double> expected{0.49, 0.01, 0.01, 0.49};
  auto result = PearsonChiSquareTest(observed, expected, 5.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->merged_cells, 0);
  EXPECT_LT(result->dof, 3.0);
  EXPECT_GT(result->p_value, 0.05);
}

TEST(PearsonTest, SizeMismatchRejected) {
  EXPECT_TRUE(PearsonChiSquareTest({1, 2}, {0.5, 0.25, 0.25})
                  .status()
                  .IsInvalidArgument());
}

TEST(PearsonTest, TooFewCellsRejected) {
  EXPECT_TRUE(PearsonChiSquareTest({10}, {1.0}).status().IsInvalidArgument());
}

TEST(PearsonTest, NoObservationsRejected) {
  EXPECT_TRUE(
      PearsonChiSquareTest({0, 0}, {0.5, 0.5}).status().IsInvalidArgument());
}

TEST(PearsonTest, NegativeCountsRejected) {
  EXPECT_TRUE(
      PearsonChiSquareTest({-1, 2}, {0.5, 0.5}).status().IsInvalidArgument());
}

TEST(PearsonTest, UnnormalizedExpectationsRejected) {
  EXPECT_TRUE(
      PearsonChiSquareTest({1, 2}, {0.5, 0.2}).status().IsInvalidArgument());
}

TEST(PearsonTest, AllMassInOneMergedBucketFails) {
  // Tiny expectations everywhere -> cannot form two cells.
  EXPECT_FALSE(PearsonChiSquareTest({1, 1}, {0.5, 0.5}, 100.0).ok());
}

class PearsonSampleSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(PearsonSampleSizeTest, SampledFromExpectedUsuallyAccepted) {
  // Draw `n` observations from the expected distribution deterministically
  // (rotating remainder) and confirm the test accepts the fit.
  const std::vector<double> expected{0.4, 0.3, 0.2, 0.1};
  const int n = GetParam();
  std::vector<double> observed(4, 0.0);
  for (std::size_t c = 0; c < 4; ++c) {
    observed[c] = std::round(expected[c] * n);
  }
  // Fix rounding drift in the largest cell.
  double total = observed[0] + observed[1] + observed[2] + observed[3];
  observed[0] += n - total;
  auto result = PearsonChiSquareTest(observed, expected);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_value, 0.5) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PearsonSampleSizeTest,
                         ::testing::Values(100, 200, 500, 1000, 2000));

}  // namespace
}  // namespace stats
}  // namespace metaprobe
