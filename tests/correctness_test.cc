#include "core/correctness.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace metaprobe {
namespace core {
namespace {

RelevancyDistribution Rd(std::vector<stats::Atom> atoms) {
  RelevancyDistribution rd;
  rd.dist = stats::DiscreteDistribution::Make(std::move(atoms)).ValueOrDie();
  return rd;
}

// The worked example of Figures 5(b)-(d): db1 RD {50:.4, 100:.5, 150:.1},
// db2 RD {65:.1, 130:.9}.
TopKModel PaperModel() {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{50, 0.4}, {100, 0.5}, {150, 0.1}}));
  rds.push_back(Rd({{65, 0.1}, {130, 0.9}}));
  return TopKModel(std::move(rds));
}

TEST(TopKModelTest, PaperExample4Certainty) {
  // Example 4: Pr(db2 is the most relevant) = 0.85.
  TopKModel model = PaperModel();
  EXPECT_NEAR(model.PrExactTopSet({1}), 0.85, 1e-9);
  EXPECT_NEAR(model.PrExactTopSet({0}), 0.15, 1e-9);
}

TEST(TopKModelTest, PaperExample4BestSetFlipsToDb2) {
  // The independence estimator would pick db1 (estimate 1000 > 650); the
  // RD-based method must pick db2.
  TopKModel model = PaperModel();
  TopKModel::BestSet best = model.FindBestSet(1, CorrectnessMetric::kAbsolute);
  EXPECT_EQ(best.members, (std::vector<std::size_t>{1}));
  EXPECT_NEAR(best.expected_correctness, 0.85, 1e-9);
}

TEST(TopKModelTest, PaperFigure5eProbeRaisesCertaintyToOne) {
  // Section 3.4: probing db1 and observing 50 makes db2 certainly best.
  TopKModel model = PaperModel();
  model.Observe(0, 50.0);
  EXPECT_TRUE(model.probed(0));
  EXPECT_NEAR(model.PrExactTopSet({1}), 1.0, 1e-9);
}

TEST(TopKModelTest, MembershipSumsToK) {
  TopKModel model = PaperModel();
  for (int k = 1; k <= 2; ++k) {
    std::vector<double> m = model.MembershipProbabilities(k);
    double sum = 0.0;
    for (double p : m) sum += p;
    EXPECT_NEAR(sum, static_cast<double>(k), 1e-9) << "k=" << k;
  }
}

TEST(TopKModelTest, MembershipMatchesExactTopOneForTwoDbs) {
  TopKModel model = PaperModel();
  std::vector<double> m = model.MembershipProbabilities(1);
  EXPECT_NEAR(m[0], 0.15, 1e-9);
  EXPECT_NEAR(m[1], 0.85, 1e-9);
}

TEST(TopKModelTest, KEqualsNIsCertain) {
  TopKModel model = PaperModel();
  EXPECT_NEAR(model.PrExactTopSet({0, 1}), 1.0, 1e-9);
  std::vector<double> m = model.MembershipProbabilities(2);
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 1.0);
  TopKModel::BestSet best = model.FindBestSet(2, CorrectnessMetric::kAbsolute);
  EXPECT_DOUBLE_EQ(best.expected_correctness, 1.0);
}

TEST(TopKModelTest, KZeroOrEmptySet) {
  TopKModel model = PaperModel();
  EXPECT_DOUBLE_EQ(model.PrExactTopSet({}), 0.0);
  std::vector<double> m = model.MembershipProbabilities(0);
  EXPECT_DOUBLE_EQ(m[0], 0.0);
}

TEST(TopKModelTest, ImpulsesGiveDeterministicAnswer) {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(RelevancyDistribution::Probed(10));
  rds.push_back(RelevancyDistribution::Probed(30));
  rds.push_back(RelevancyDistribution::Probed(20));
  TopKModel model(std::move(rds));
  EXPECT_NEAR(model.PrExactTopSet({1}), 1.0, 1e-12);
  EXPECT_NEAR(model.PrExactTopSet({1, 2}), 1.0, 1e-12);
  EXPECT_NEAR(model.PrExactTopSet({0}), 0.0, 1e-12);
  TopKModel::BestSet best = model.FindBestSet(2, CorrectnessMetric::kAbsolute);
  EXPECT_EQ(best.members, (std::vector<std::size_t>{1, 2}));
}

TEST(TopKModelTest, TieBrokenTowardLowerIndex) {
  // Two databases both certainly at relevancy 0: the golden convention says
  // the lower index is the top-1.
  std::vector<RelevancyDistribution> rds;
  rds.push_back(RelevancyDistribution::Probed(0));
  rds.push_back(RelevancyDistribution::Probed(0));
  TopKModel model(std::move(rds));
  EXPECT_NEAR(model.PrExactTopSet({0}), 1.0, 1e-9);
  EXPECT_NEAR(model.PrExactTopSet({1}), 0.0, 1e-9);
}

TEST(TopKModelTest, PartialCorrectnessOfPaperModel) {
  TopKModel model = PaperModel();
  // k=1: partial == absolute by definition.
  EXPECT_NEAR(model.ExpectedPartialCorrectness({1}),
              model.PrExactTopSet({1}), 1e-9);
}

TEST(TopKModelTest, ExpectedCorrectnessDispatch) {
  TopKModel model = PaperModel();
  EXPECT_DOUBLE_EQ(
      model.ExpectedCorrectness({1}, CorrectnessMetric::kAbsolute),
      model.PrExactTopSet({1}));
  EXPECT_DOUBLE_EQ(model.ExpectedCorrectness({1}, CorrectnessMetric::kPartial),
                   model.ExpectedPartialCorrectness({1}));
}

TEST(TopKModelTest, ObserveCollapsesRd) {
  TopKModel model = PaperModel();
  EXPECT_EQ(model.num_probed(), 0u);
  model.Observe(1, 130.0);
  EXPECT_EQ(model.num_probed(), 1u);
  EXPECT_TRUE(model.rd(1).IsImpulse());
}

TEST(TopKModelTest, ScopedConditionRestores) {
  TopKModel model = PaperModel();
  stats::DiscreteDistribution before = model.rd(0);
  {
    TopKModel::ScopedCondition cond(&model, 0, model.SupportOf(0)[0].value);
    EXPECT_TRUE(model.rd(0).IsImpulse());
  }
  EXPECT_EQ(model.rd(0), before);
}

// Builds a randomized model for property testing.
TopKModel RandomModel(stats::Rng* rng, std::size_t n, std::size_t atoms) {
  std::vector<RelevancyDistribution> rds;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<stats::Atom> support;
    for (std::size_t a = 0; a < atoms; ++a) {
      support.push_back({std::floor(rng->Uniform(0.0, 20.0)),
                         rng->Uniform(0.1, 1.0)});
    }
    rds.push_back(Rd(std::move(support)));
  }
  return TopKModel(std::move(rds));
}

class CorrectnessMonteCarloTest : public ::testing::TestWithParam<int> {};

TEST_P(CorrectnessMonteCarloTest, ExactMatchesSampledAbsolute) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL);
  TopKModel model = RandomModel(&rng, 6, 4);
  for (int k : {1, 2, 3}) {
    TopKModel::BestSet best =
        model.FindBestSet(k, CorrectnessMetric::kAbsolute, 100);
    double exact = model.PrExactTopSet(best.members);
    double sampled = MonteCarloExpectedCorrectness(
        model, best.members, CorrectnessMetric::kAbsolute, 40000, &rng);
    EXPECT_NEAR(exact, sampled, 0.02) << "k=" << k;
  }
}

TEST_P(CorrectnessMonteCarloTest, ExactMatchesSampledPartial) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503ULL + 17);
  TopKModel model = RandomModel(&rng, 6, 4);
  for (int k : {1, 2, 3}) {
    TopKModel::BestSet best =
        model.FindBestSet(k, CorrectnessMetric::kPartial, 100);
    double exact = model.ExpectedPartialCorrectness(best.members);
    double sampled = MonteCarloExpectedCorrectness(
        model, best.members, CorrectnessMetric::kPartial, 40000, &rng);
    EXPECT_NEAR(exact, sampled, 0.02) << "k=" << k;
  }
}

TEST_P(CorrectnessMonteCarloTest, MembershipSumsToKRandomModels) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  TopKModel model = RandomModel(&rng, 7, 3);
  for (int k = 1; k <= 6; ++k) {
    std::vector<double> m = model.MembershipProbabilities(k);
    double sum = 0.0;
    for (double p : m) sum += p;
    EXPECT_NEAR(sum, static_cast<double>(k), 1e-8) << "k=" << k;
  }
}

TEST_P(CorrectnessMonteCarloTest, ExactTopSetsSumToOneOverAllSubsets) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  TopKModel model = RandomModel(&rng, 5, 3);
  // Over all C(5,2) subsets, exactly one is the true top-2 -> the exact
  // probabilities must sum to 1.
  double total = 0.0;
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a + 1; b < 5; ++b) {
      total += model.PrExactTopSet({a, b});
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST_P(CorrectnessMonteCarloTest, HeuristicWidthMatchesExhaustive) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 11);
  TopKModel model = RandomModel(&rng, 8, 3);
  for (int k : {1, 2, 3}) {
    TopKModel::BestSet heuristic =
        model.FindBestSet(k, CorrectnessMetric::kAbsolute, 4);
    TopKModel::BestSet exhaustive =
        model.FindBestSet(k, CorrectnessMetric::kAbsolute, 100);
    EXPECT_NEAR(heuristic.expected_correctness,
                exhaustive.expected_correctness, 1e-9)
        << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrectnessMonteCarloTest,
                         ::testing::Range(1, 9));

// ----------------------------------------------------- Scoring utilities

TEST(TopKIndicesTest, PicksLargest) {
  EXPECT_EQ(TopKIndices({5, 1, 9, 7}, 2), (std::vector<std::size_t>{2, 3}));
}

TEST(TopKIndicesTest, TieBreaksTowardLowIndex) {
  EXPECT_EQ(TopKIndices({5, 5, 5}, 2), (std::vector<std::size_t>{0, 1}));
}

TEST(TopKIndicesTest, KLargerThanN) {
  EXPECT_EQ(TopKIndices({1, 2}, 5), (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(TopKIndices({1, 2}, 0).empty());
}

TEST(ScoringTest, AbsoluteCorrectness) {
  EXPECT_DOUBLE_EQ(AbsoluteCorrectness({1, 3}, {3, 1}), 1.0);
  EXPECT_DOUBLE_EQ(AbsoluteCorrectness({1, 2}, {1, 3}), 0.0);
  EXPECT_DOUBLE_EQ(AbsoluteCorrectness({}, {}), 1.0);
}

TEST(ScoringTest, PartialCorrectness) {
  // Section 3.2: an answer containing 2 of the top-3 scores 0.667.
  EXPECT_NEAR(PartialCorrectness({1, 2, 5}, {1, 2, 3}), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(PartialCorrectness({1}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(PartialCorrectness({4}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(PartialCorrectness({}, {1}), 0.0);
}

TEST(ScoringTest, MetricNames) {
  EXPECT_STREQ(CorrectnessMetricName(CorrectnessMetric::kAbsolute),
               "absolute");
  EXPECT_STREQ(CorrectnessMetricName(CorrectnessMetric::kPartial), "partial");
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
