#include "core/query_class.h"

#include <set>

#include <gtest/gtest.h>

namespace metaprobe {
namespace core {
namespace {

Query MakeQuery(int num_terms) {
  Query q;
  for (int i = 0; i < num_terms; ++i) {
    std::string term = "t";
    term += std::to_string(i);
    q.terms.push_back(std::move(term));
  }
  return q;
}

TEST(QueryClassTest, DefaultProducesFourTypes) {
  QueryTypeClassifier classifier;
  EXPECT_EQ(classifier.num_types(), 4u);
}

TEST(QueryClassTest, PaperDecisionTree) {
  // Figure 9: 2-term/3-term x r_hat </>= 100 give four distinct types.
  QueryTypeClassifier classifier;
  std::set<QueryTypeId> types;
  types.insert(classifier.Classify(MakeQuery(2), 50.0));
  types.insert(classifier.Classify(MakeQuery(2), 500.0));
  types.insert(classifier.Classify(MakeQuery(3), 50.0));
  types.insert(classifier.Classify(MakeQuery(3), 500.0));
  EXPECT_EQ(types.size(), 4u);
  for (QueryTypeId t : types) EXPECT_LT(t, classifier.num_types());
}

TEST(QueryClassTest, ThresholdBoundaryIsInclusiveAbove) {
  QueryTypeClassifier classifier;
  EXPECT_NE(classifier.Classify(MakeQuery(2), 99.999),
            classifier.Classify(MakeQuery(2), 100.0));
  EXPECT_EQ(classifier.Classify(MakeQuery(2), 100.0),
            classifier.Classify(MakeQuery(2), 1e9));
}

TEST(QueryClassTest, TermCountsClampIntoRange) {
  QueryTypeClassifier classifier;
  // 1-term behaves like 2-term; 7-term like 3-term.
  EXPECT_EQ(classifier.Classify(MakeQuery(1), 10.0),
            classifier.Classify(MakeQuery(2), 10.0));
  EXPECT_EQ(classifier.Classify(MakeQuery(7), 10.0),
            classifier.Classify(MakeQuery(3), 10.0));
}

TEST(QueryClassTest, DatabaseDependence) {
  // The same query maps to different types on databases where its estimate
  // differs (Section 4.1: classification is database dependent).
  QueryTypeClassifier classifier;
  Query q = MakeQuery(2);
  EXPECT_NE(classifier.Classify(q, 5.0), classifier.Classify(q, 5000.0));
}

TEST(QueryClassTest, EstimateSplitDisabled) {
  QueryClassOptions options;
  options.split_by_estimate = false;
  QueryTypeClassifier classifier(options);
  EXPECT_EQ(classifier.num_types(), 2u);
  EXPECT_EQ(classifier.Classify(MakeQuery(2), 5.0),
            classifier.Classify(MakeQuery(2), 5000.0));
}

TEST(QueryClassTest, TermSplitDisabled) {
  QueryClassOptions options;
  options.split_by_term_count = false;
  QueryTypeClassifier classifier(options);
  EXPECT_EQ(classifier.num_types(), 2u);
  EXPECT_EQ(classifier.Classify(MakeQuery(2), 5.0),
            classifier.Classify(MakeQuery(3), 5.0));
}

TEST(QueryClassTest, SingleTypeConfiguration) {
  QueryClassOptions options;
  options.split_by_term_count = false;
  options.split_by_estimate = false;
  QueryTypeClassifier classifier(options);
  EXPECT_EQ(classifier.num_types(), 1u);
  EXPECT_EQ(classifier.Classify(MakeQuery(2), 5.0), 0u);
  EXPECT_EQ(classifier.Classify(MakeQuery(3), 5000.0), 0u);
}

TEST(QueryClassTest, CustomThreshold) {
  QueryClassOptions options;
  options.estimate_threshold = 10.0;
  QueryTypeClassifier classifier(options);
  EXPECT_NE(classifier.Classify(MakeQuery(2), 9.0),
            classifier.Classify(MakeQuery(2), 11.0));
}

TEST(QueryClassTest, WiderTermRange) {
  QueryClassOptions options;
  options.min_terms = 1;
  options.max_terms = 4;
  QueryTypeClassifier classifier(options);
  EXPECT_EQ(classifier.num_types(), 8u);
  std::set<QueryTypeId> types;
  for (int t = 1; t <= 4; ++t) {
    types.insert(classifier.Classify(MakeQuery(t), 0.0));
    types.insert(classifier.Classify(MakeQuery(t), 1000.0));
  }
  EXPECT_EQ(types.size(), 8u);
}

TEST(QueryClassTest, SwappedMinMaxRepaired) {
  QueryClassOptions options;
  options.min_terms = 3;
  options.max_terms = 2;
  QueryTypeClassifier classifier(options);
  EXPECT_EQ(classifier.num_types(), 4u);
}

TEST(QueryClassTest, TypeNamesDescriptive) {
  QueryTypeClassifier classifier;
  QueryTypeId low2 = classifier.Classify(MakeQuery(2), 5.0);
  QueryTypeId high3 = classifier.Classify(MakeQuery(3), 5000.0);
  EXPECT_EQ(classifier.TypeName(low2), "2-term, r_hat<100");
  EXPECT_EQ(classifier.TypeName(high3), "3-term, r_hat>=100");
}

TEST(QueryClassTest, AllTypeIdsDense) {
  QueryTypeClassifier classifier;
  std::set<QueryTypeId> seen;
  for (int terms : {2, 3}) {
    for (double est : {0.0, 1000.0}) {
      seen.insert(classifier.Classify(MakeQuery(terms), est));
    }
  }
  for (QueryTypeId t = 0; t < classifier.num_types(); ++t) {
    EXPECT_TRUE(seen.count(t)) << "type " << t << " unreachable";
  }
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
