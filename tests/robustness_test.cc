// Failure injection and concurrency: FlakyDatabase, APro's probe-failure
// handling, and parallel ED training determinism.

#include <memory>

#include <gtest/gtest.h>

#include "core/ed_learner.h"
#include "core/flaky_database.h"
#include "core/metasearcher.h"
#include "core/probing.h"

namespace metaprobe {
namespace core {
namespace {

std::shared_ptr<LocalDatabase> MakeDb(const std::string& name, int shift,
                                      int num_docs) {
  index::InvertedIndex::Builder builder;
  for (int d = 0; d < num_docs; ++d) {
    std::vector<std::string> terms{"base"};
    if ((d + shift) % 2 == 0) terms.push_back("alpha");
    if ((d + shift) % 3 == 0) terms.push_back("beta");
    builder.AddDocument(terms);
  }
  return std::make_shared<LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

Query MakeQuery(std::vector<std::string> terms) {
  Query q;
  q.terms = std::move(terms);
  return q;
}

RelevancyDistribution Rd(std::vector<stats::Atom> atoms) {
  RelevancyDistribution rd;
  rd.dist = stats::DiscreteDistribution::Make(std::move(atoms)).ValueOrDie();
  return rd;
}

// ----------------------------------------------------------- FlakyDatabase

TEST(FlakyDatabaseTest, NeverFailsAtZeroProbability) {
  FlakyDatabase flaky(MakeDb("db", 0, 50), 0.0, 1);
  Query q = MakeQuery({"alpha"});
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(flaky.CountMatches(q).ok());
  }
  EXPECT_EQ(flaky.failures_injected(), 0u);
}

TEST(FlakyDatabaseTest, AlwaysFailsAtOne) {
  FlakyDatabase flaky(MakeDb("db", 0, 50), 1.0, 1);
  Query q = MakeQuery({"alpha"});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(flaky.CountMatches(q).status().IsIoError());
    EXPECT_TRUE(flaky.Search(q, 3).status().IsIoError());
  }
  EXPECT_EQ(flaky.failures_injected(), 20u);
}

TEST(FlakyDatabaseTest, FailureRateApproximatelyHonored) {
  FlakyDatabase flaky(MakeDb("db", 0, 50), 0.3, 7);
  Query q = MakeQuery({"alpha"});
  int failures = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (!flaky.CountMatches(q).ok()) ++failures;
  }
  EXPECT_NEAR(failures / static_cast<double>(n), 0.3, 0.04);
}

TEST(FlakyDatabaseTest, PassesThroughMetadataAndResults) {
  auto inner = MakeDb("inner-db", 0, 60);
  FlakyDatabase flaky(inner, 0.0, 1);
  EXPECT_EQ(flaky.name(), "inner-db");
  EXPECT_EQ(flaky.size(), 60u);
  Query q = MakeQuery({"alpha"});
  auto direct = inner->CountMatches(q);
  auto wrapped = flaky.CountMatches(q);
  ASSERT_TRUE(direct.ok() && wrapped.ok());
  EXPECT_EQ(*direct, *wrapped);
}

TEST(FlakyDatabaseTest, DeterministicFailureStream) {
  auto run = [](std::uint64_t seed) {
    FlakyDatabase flaky(MakeDb("db", 0, 30), 0.5, seed);
    Query q = MakeQuery({"alpha"});
    std::vector<bool> outcomes;
    for (int i = 0; i < 40; ++i) outcomes.push_back(flaky.CountMatches(q).ok());
    return outcomes;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

// ----------------------------------------------- APro probe-failure modes

TopKModel TwoDbModel() {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{50, 0.3}, {100, 0.4}, {150, 0.3}}));
  rds.push_back(Rd({{70, 0.4}, {130, 0.6}}));
  return TopKModel(std::move(rds));
}

TEST(AProFailureTest, AbortModePropagates) {
  TopKModel model = TwoDbModel();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  StoppingProbabilityPolicy policy;
  AdaptiveProber prober(&policy, options);
  ProbeFn failing = [](std::size_t) -> Result<double> {
    return Status::IoError("down");
  };
  EXPECT_TRUE(prober.Run(&model, failing).status().IsIoError());
}

TEST(AProFailureTest, SkipModeDegradesToNoProbeAnswer) {
  TopKModel model = TwoDbModel();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  options.failure_mode = ProbeFailureMode::kSkipDatabase;
  StoppingProbabilityPolicy policy;
  AdaptiveProber prober(&policy, options);
  ProbeFn failing = [](std::size_t) -> Result<double> {
    return Status::IoError("down");
  };
  auto result = prober.Run(&model, failing);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_probes(), 0);
  EXPECT_EQ(result->failed_probes.size(), 2u);  // tried both, both down
  EXPECT_FALSE(result->reached_threshold);
  // Still returns the best RD-based answer.
  EXPECT_EQ(result->selected, (std::vector<std::size_t>{1}));
  EXPECT_NEAR(result->expected_correctness, 0.54, 1e-9);
}

TEST(AProFailureTest, SkipModeRoutesAroundOneBadDatabase) {
  TopKModel model = TwoDbModel();
  AProOptions options;
  options.k = 1;
  options.threshold = 0.9;
  options.failure_mode = ProbeFailureMode::kSkipDatabase;
  StoppingProbabilityPolicy policy;
  AdaptiveProber prober(&policy, options);
  // db0 is unreachable; db1's truth is 130.
  ProbeFn probe = [](std::size_t db) -> Result<double> {
    if (db == 0) return Status::IoError("down");
    return 130.0;
  };
  auto result = prober.Run(&model, probe);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->failed_probes, (std::vector<std::size_t>{0}));
  EXPECT_EQ(result->probe_order, (std::vector<std::size_t>{1}));
  // Knowing db1 = 130 makes db1 certainly above db0's whole support except
  // 150: Pr(db1 top) = Pr(db0 < 130) = 0.7 -> still below 0.9, but both
  // databases are exhausted, so the loop ends with the best answer.
  EXPECT_EQ(result->selected, (std::vector<std::size_t>{1}));
  EXPECT_NEAR(result->expected_correctness, 0.7, 1e-9);
}

TEST(AProFailureTest, FailedAttemptsConsumeBudget) {
  TopKModel model = TwoDbModel();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  options.max_probes = 1;
  options.failure_mode = ProbeFailureMode::kSkipDatabase;
  StoppingProbabilityPolicy policy;
  AdaptiveProber prober(&policy, options);
  int calls = 0;
  ProbeFn failing = [&calls](std::size_t) -> Result<double> {
    ++calls;
    return Status::IoError("down");
  };
  auto result = prober.Run(&model, failing);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, 1);  // budget of one attempt
  EXPECT_EQ(result->failed_probes.size(), 1u);
}

TEST(AProFailureTest, EndToEndWithFlakyBackends) {
  // A metasearcher whose backends fail half the time still trains (training
  // probes each query once; EdLearner aborts on failure, so wrap training
  // behind reliable access and only flake the serving path).
  auto reliable0 = MakeDb("db-0", 0, 100);
  auto reliable1 = MakeDb("db-1", 1, 100);
  Metasearcher searcher;
  ASSERT_TRUE(searcher.AddLocalDatabase(reliable0).ok());
  ASSERT_TRUE(searcher.AddLocalDatabase(reliable1).ok());
  std::vector<Query> training(20, MakeQuery({"alpha", "beta"}));
  ASSERT_TRUE(searcher.Train(training).ok());
  // Selection at an unreachable certainty aborts by default when a probe
  // fails; with reliable local databases it succeeds.
  auto report = searcher.Select(MakeQuery({"alpha", "beta"}), 1, 0.99);
  EXPECT_TRUE(report.ok());
}

// ------------------------------------------------- parallel ED training

TEST(ParallelTrainingTest, ThreadCountsProduceIdenticalTables) {
  std::vector<std::shared_ptr<LocalDatabase>> dbs;
  for (int i = 0; i < 6; ++i) {
    dbs.push_back(MakeDb("db-" + std::to_string(i), i, 80 + 10 * i));
  }
  std::vector<const HiddenWebDatabase*> db_ptrs;
  std::vector<StatSummary> summaries;
  for (const auto& db : dbs) {
    db_ptrs.push_back(db.get());
    summaries.push_back(
        StatSummary::FromIndex(db->name(), db->index_for_summaries()));
  }
  std::vector<const StatSummary*> summary_ptrs;
  for (const StatSummary& s : summaries) summary_ptrs.push_back(&s);

  std::vector<Query> training;
  for (int i = 0; i < 50; ++i) {
    training.push_back(MakeQuery({"alpha", "beta"}));
    training.push_back(MakeQuery({"alpha", "base"}));
  }

  TermIndependenceEstimator estimator;
  QueryTypeClassifier classifier;
  auto learn = [&](unsigned threads) {
    EdLearnerOptions options;
    options.num_threads = threads;
    EdLearner learner(&estimator, &classifier, options);
    return learner.Learn(db_ptrs, summary_ptrs, training).ValueOrDie();
  };
  EdTable serial = learn(1);
  for (unsigned threads : {2u, 4u, 0u}) {
    EdTable parallel = learn(threads);
    ASSERT_EQ(parallel.num_databases(), serial.num_databases());
    for (std::size_t db = 0; db < serial.num_databases(); ++db) {
      for (QueryTypeId type = 0; type < serial.num_types(); ++type) {
        EXPECT_EQ(parallel.Get(db, type).ToDistribution(),
                  serial.Get(db, type).ToDistribution())
            << "threads=" << threads << " db=" << db << " type=" << type;
        EXPECT_EQ(parallel.Get(db, type).sample_count(),
                  serial.Get(db, type).sample_count());
      }
    }
  }
}

TEST(ParallelTrainingTest, FailurePropagatesFromWorkerThreads) {
  auto flaky = std::make_shared<FlakyDatabase>(MakeDb("db", 0, 50), 1.0, 3);
  StatSummary summary("db", 50);
  summary.SetDocumentFrequency("alpha", 25);
  TermIndependenceEstimator estimator;
  QueryTypeClassifier classifier;
  EdLearnerOptions options;
  options.num_threads = 2;
  EdLearner learner(&estimator, &classifier, options);
  std::vector<Query> training(5, MakeQuery({"alpha"}));
  auto result =
      learner.Learn({flaky.get()}, {&summary}, training);
  EXPECT_TRUE(result.status().IsIoError());
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
