// Concurrency/stress tier: the ThreadPool primitive, the batch serving
// paths, speculative probe dispatch, and retrain-under-traffic. Every
// shared-state assertion here is meant to run under ThreadSanitizer (see
// tools/check.sh); the equality assertions pin the concurrent paths to the
// sequential, deterministic ones.

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/metasearcher.h"
#include "serving/metasearch_server.h"

namespace metaprobe {
namespace core {
namespace {

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i, &counter]() {
      counter.fetch_add(1, std::memory_order_relaxed);
      return i * i;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(counter.load(), 64);
  EXPECT_EQ(pool.tasks_executed() + pool.tasks_run_inline(), 64u);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::thread::id submitter = std::this_thread::get_id();
  std::future<std::thread::id> future =
      pool.Submit([]() { return std::this_thread::get_id(); });
  // Inline execution: the future is ready on return and ran on the caller.
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(future.get(), submitter);
  EXPECT_EQ(pool.tasks_run_inline(), 1u);
  EXPECT_EQ(pool.tasks_executed(), 0u);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
  pool.Shutdown();
  EXPECT_EQ(pool.num_workers(), 0u);
  std::future<int> late = pool.Submit([]() { return 2; });
  EXPECT_EQ(late.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(late.get(), 2);
  EXPECT_GE(pool.tasks_run_inline(), 1u);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&done]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.Shutdown();
    // Every task queued before Shutdown ran to completion.
    EXPECT_EQ(done.load(), 32);
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // second call must be a no-op, not a crash
  EXPECT_EQ(pool.num_workers(), 0u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> future =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives the throwing task.
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

// ------------------------------------------------- Metasearcher serving

// The deterministic three-database world of metasearcher_test.cc.
std::shared_ptr<LocalDatabase> MakeDb(const std::string& name, int pattern,
                                      int num_docs) {
  index::InvertedIndex::Builder builder;
  for (int d = 0; d < num_docs; ++d) {
    std::vector<std::string> terms;
    switch (pattern) {
      case 0:
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "beta", "pad"}
                           : std::vector<std::string>{"pad", "fill"};
        break;
      case 1:
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "pad"}
                           : std::vector<std::string>{"beta", "fill"};
        break;
      default:
        if (d % 4 == 0) terms = {"alpha", "beta"};
        else if (d % 4 == 1) terms = {"alpha", "pad"};
        else if (d % 4 == 2) terms = {"beta", "pad"};
        else terms = {"pad", "fill"};
        break;
    }
    builder.AddDocument(terms);
  }
  return std::make_shared<LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

Query MakeQuery(std::vector<std::string> terms) {
  Query q;
  q.terms = std::move(terms);
  return q;
}

std::vector<Query> TrainingQueries() {
  std::vector<Query> queries;
  for (int i = 0; i < 30; ++i) {
    queries.push_back(MakeQuery({"alpha", "beta"}));
    queries.push_back(MakeQuery({"alpha", "fill"}));
    queries.push_back(MakeQuery({"alpha", "pad"}));
    queries.push_back(MakeQuery({"beta", "pad"}));
    queries.push_back(MakeQuery({"pad", "fill"}));
  }
  return queries;
}

std::vector<Query> ServingQueries(int copies) {
  std::vector<Query> queries;
  for (int i = 0; i < copies; ++i) {
    queries.push_back(MakeQuery({"alpha", "beta"}));
    queries.push_back(MakeQuery({"alpha", "pad"}));
    queries.push_back(MakeQuery({"beta", "pad"}));
    queries.push_back(MakeQuery({"pad", "fill"}));
  }
  return queries;
}

void ExpectReportsEqual(const SelectionReport& a, const SelectionReport& b) {
  EXPECT_EQ(a.databases, b.databases);
  EXPECT_EQ(a.database_names, b.database_names);
  EXPECT_DOUBLE_EQ(a.expected_correctness, b.expected_correctness);
  EXPECT_EQ(a.reached_threshold, b.reached_threshold);
  EXPECT_EQ(a.probe_order, b.probe_order);
  EXPECT_EQ(a.estimates, b.estimates);
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  std::unique_ptr<Metasearcher> MakeTrained(MetasearcherOptions options = {}) {
    auto searcher = std::make_unique<Metasearcher>(std::move(options));
    EXPECT_TRUE(searcher->AddLocalDatabase(MakeDb("corr", 0, 200)).ok());
    EXPECT_TRUE(searcher->AddLocalDatabase(MakeDb("anti", 1, 200)).ok());
    EXPECT_TRUE(searcher->AddLocalDatabase(MakeDb("mix", 2, 200)).ok());
    EXPECT_TRUE(searcher->Train(TrainingQueries()).ok());
    return searcher;
  }
};

TEST_F(ConcurrencyTest, SelectBatchMatchesSequentialSelect) {
  auto searcher = MakeTrained();
  std::vector<Query> queries = ServingQueries(6);  // 24 queries
  ThreadPool pool(8);
  auto batch = searcher->SelectBatch(queries, 1, 0.999, &pool);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto sequential = searcher->Select(queries[i], 1, 0.999);
    ASSERT_TRUE(sequential.ok());
    ExpectReportsEqual((*batch)[i], *sequential);
  }
}

TEST_F(ConcurrencyTest, SelectBatchNullPoolMatchesPooled) {
  auto searcher = MakeTrained();
  std::vector<Query> queries = ServingQueries(3);
  ThreadPool pool(8);
  auto pooled = searcher->SelectBatch(queries, 1, 0.9, &pool);
  auto inline_run = searcher->SelectBatch(queries, 1, 0.9, nullptr);
  ASSERT_TRUE(pooled.ok());
  ASSERT_TRUE(inline_run.ok());
  ASSERT_EQ(pooled->size(), inline_run->size());
  for (std::size_t i = 0; i < pooled->size(); ++i) {
    ExpectReportsEqual((*pooled)[i], (*inline_run)[i]);
  }
}

TEST_F(ConcurrencyTest, SelectBatchZeroWorkerPoolMatches) {
  auto searcher = MakeTrained();
  std::vector<Query> queries = ServingQueries(2);
  ThreadPool inline_pool(0);
  auto batch = searcher->SelectBatch(queries, 1, 0.999, &inline_pool);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(inline_pool.tasks_run_inline(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto sequential = searcher->Select(queries[i], 1, 0.999);
    ASSERT_TRUE(sequential.ok());
    ExpectReportsEqual((*batch)[i], *sequential);
  }
}

TEST_F(ConcurrencyTest, SelectBatchFailsDeterministicallyOnBadQuery) {
  auto searcher = MakeTrained();
  std::vector<Query> queries = ServingQueries(2);
  queries[3] = MakeQuery({});  // empty query -> InvalidArgument
  ThreadPool pool(4);
  auto batch = searcher->SelectBatch(queries, 1, 0.9, &pool);
  EXPECT_TRUE(batch.status().IsInvalidArgument());
}

TEST_F(ConcurrencyTest, HammerSelectFromManyThreads) {
  auto searcher = MakeTrained();
  // Reference answers computed sequentially first.
  std::vector<Query> queries = ServingQueries(1);
  std::vector<SelectionReport> expected;
  for (const Query& q : queries) {
    expected.push_back(searcher->Select(q, 1, 0.999).ValueOrDie());
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&searcher, &queries, &expected, &mismatches, t]() {
      for (int iter = 0; iter < 25; ++iter) {
        std::size_t i =
            static_cast<std::size_t>(t + iter) % queries.size();
        auto report = searcher->Select(queries[i], 1, 0.999);
        if (!report.ok() ||
            report->databases != expected[i].databases ||
            report->probe_order != expected[i].probe_order ||
            report->expected_correctness !=
                expected[i].expected_correctness) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrencyTest, ConcurrentBatchCoordinatorsShareOnePool) {
  auto searcher = MakeTrained();
  std::vector<Query> queries = ServingQueries(4);
  ThreadPool pool(8);
  auto reference = searcher->SelectBatch(queries, 1, 0.999, nullptr);
  ASSERT_TRUE(reference.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> coordinators;
  for (int t = 0; t < 4; ++t) {
    coordinators.emplace_back([&searcher, &queries, &pool, &reference,
                               &failures]() {
      auto batch = searcher->SelectBatch(queries, 1, 0.999, &pool);
      if (!batch.ok() || batch->size() != reference->size()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (std::size_t i = 0; i < batch->size(); ++i) {
        if ((*batch)[i].databases != (*reference)[i].databases ||
            (*batch)[i].probe_order != (*reference)[i].probe_order) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : coordinators) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrencyTest, TrainWhileServingIsSafe) {
  auto searcher = MakeTrained();
  std::vector<Query> training = TrainingQueries();
  Query q = MakeQuery({"alpha", "beta"});
  std::atomic<int> errors{0};
  std::vector<std::thread> servers;
  // Bounded loops (not a stop flag) so the test terminates even if lock
  // scheduling regresses; each Train takes long enough that serving and
  // retraining genuinely overlap.
  for (int t = 0; t < 4; ++t) {
    servers.emplace_back([&searcher, &q, &errors]() {
      for (int iter = 0; iter < 80; ++iter) {
        auto report = searcher->Select(q, 1, 0.999);
        // Serving against either the old or the new table is fine; an
        // error status is not.
        if (!report.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(searcher->Train(training).ok());
  }
  for (std::thread& t : servers) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_TRUE(searcher->trained());
}

TEST_F(ConcurrencyTest, SpeculativeBatchDispatchSelectsSameDatabases) {
  auto sequential = MakeTrained();
  MetasearcherOptions options;
  options.speculative_batch = 4;
  auto speculative = MakeTrained(options);
  ThreadPool pool(4);
  speculative->SetProbePool(&pool);
  for (const Query& q : ServingQueries(1)) {
    auto seq_report = sequential->Select(q, 1, 0.999);
    auto spec_report = speculative->Select(q, 1, 0.999);
    ASSERT_TRUE(seq_report.ok());
    ASSERT_TRUE(spec_report.ok());
    // Speculation may spend extra probes, but on this fully probeable
    // world it must reach the threshold and agree on the answer set.
    EXPECT_TRUE(spec_report->reached_threshold);
    EXPECT_EQ(spec_report->databases, seq_report->databases);
    EXPECT_GE(spec_report->num_probes(), seq_report->num_probes());
  }
}

TEST_F(ConcurrencyTest, ServingStatsCountQueriesAndProbes) {
  auto searcher = MakeTrained();
  searcher->ResetStats();
  Query q = MakeQuery({"alpha", "beta"});
  auto report = searcher->Select(q, 1, 0.999);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->num_probes(), 0);
  ThreadPool pool(4);
  std::vector<Query> queries = ServingQueries(1);
  ASSERT_TRUE(searcher->SelectBatch(queries, 1, 0.999, &pool).ok());
  ServingStats stats = searcher->stats();
  EXPECT_EQ(stats.queries_served, 1u + queries.size());
  EXPECT_EQ(stats.batches_served, 1u);
  EXPECT_GE(stats.probes_issued, static_cast<std::uint64_t>(
                                     report->num_probes()));
  EXPECT_EQ(stats.probes_failed, 0u);
  searcher->ResetStats();
  ServingStats zeroed = searcher->stats();
  EXPECT_EQ(zeroed.queries_served, 0u);
  EXPECT_EQ(zeroed.batches_served, 0u);
  EXPECT_EQ(zeroed.probes_issued, 0u);
}

TEST_F(ConcurrencyTest, ServingStatsUnderConcurrentServingMatchSequential) {
  // The registry counters are sharded per thread and merged on read; under
  // concurrent batch serving the totals must still equal the deterministic
  // single-thread run's exactly — no lost updates, no double counts.
  auto searcher = MakeTrained();
  std::vector<Query> queries = ServingQueries(4);  // 16 queries

  // Reference totals from a sequential, inline run.
  searcher->ResetStats();
  ASSERT_TRUE(searcher->SelectBatch(queries, 1, 0.999, nullptr).ok());
  ServingStats sequential = searcher->stats();
  ASSERT_EQ(sequential.queries_served, queries.size());
  ASSERT_GT(sequential.probes_issued, 0u);

  // Same batch fanned across a pool.
  searcher->ResetStats();
  ThreadPool pool(8);
  ASSERT_TRUE(searcher->SelectBatch(queries, 1, 0.999, &pool).ok());
  ServingStats pooled = searcher->stats();
  EXPECT_EQ(pooled.queries_served, sequential.queries_served);
  EXPECT_EQ(pooled.batches_served, sequential.batches_served);
  EXPECT_EQ(pooled.probes_issued, sequential.probes_issued);
  EXPECT_EQ(pooled.probes_failed, sequential.probes_failed);

  // Two concurrent batch coordinators sharing the pool: exactly twice the
  // single-coordinator totals.
  searcher->ResetStats();
  std::atomic<int> failures{0};
  std::vector<std::thread> coordinators;
  for (int t = 0; t < 2; ++t) {
    coordinators.emplace_back([&searcher, &queries, &pool, &failures]() {
      if (!searcher->SelectBatch(queries, 1, 0.999, &pool).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : coordinators) t.join();
  ASSERT_EQ(failures.load(), 0);
  ServingStats doubled = searcher->stats();
  EXPECT_EQ(doubled.queries_served, 2 * sequential.queries_served);
  EXPECT_EQ(doubled.batches_served, 2 * sequential.batches_served);
  EXPECT_EQ(doubled.probes_issued, 2 * sequential.probes_issued);
  EXPECT_EQ(doubled.probes_failed, 2 * sequential.probes_failed);
}

TEST_F(ConcurrencyTest, RdCacheServesRepeatsFromCache) {
  MetasearcherOptions options;
  options.enable_rd_cache = true;
  auto searcher = MakeTrained(options);
  Query q = MakeQuery({"alpha", "beta"});
  ASSERT_TRUE(searcher->Select(q, 1, 0.9).ok());
  ServingStats first = searcher->stats();
  EXPECT_GT(first.rd_cache_misses, 0u);
  EXPECT_GT(first.rd_cache_entries, 0u);
  ASSERT_TRUE(searcher->Select(q, 1, 0.9).ok());
  ServingStats second = searcher->stats();
  // The repeat query lands every per-database lookup in the cache.
  EXPECT_GE(second.rd_cache_hits,
            first.rd_cache_hits + searcher->num_databases());
  EXPECT_EQ(second.rd_cache_misses, first.rd_cache_misses);
}

TEST_F(ConcurrencyTest, RdCacheResetsOnRetrain) {
  MetasearcherOptions options;
  options.enable_rd_cache = true;
  auto searcher = MakeTrained(options);
  ASSERT_TRUE(searcher->Select(MakeQuery({"alpha", "beta"}), 1, 0.9).ok());
  EXPECT_GT(searcher->stats().rd_cache_entries, 0u);
  ASSERT_TRUE(searcher->Train(TrainingQueries()).ok());
  // New EDs invalidate every derived RD.
  EXPECT_EQ(searcher->stats().rd_cache_entries, 0u);
}

// --------------------------------------------- MetasearchServer stress

// The deterministic state-machine coverage of the server lives in
// serving_test.cc; these runs exist to put the admission path, the bounded
// queue, and the worker pool under genuine thread contention (TSAN tier)
// and to pin the server's counters to exact totals regardless of
// interleaving.

TEST_F(ConcurrencyTest, ServerSaturationStressAccountsForEveryRequest) {
  auto searcher = MakeTrained();
  serving::MetasearchServerOptions options;
  options.num_workers = 4;
  options.max_queue_depth = 8;  // far below the offered load
  options.admission_enabled = false;
  serving::MetasearchServer server(searcher.get(), options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> accepted{0};
  std::atomic<int> queue_full{0};
  std::atomic<int> unfulfilled{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&]() {
      std::vector<serving::Ticket> tickets;
      for (int i = 0; i < kPerThread; ++i) {
        serving::ServeRequest request;
        request.query = MakeQuery({"alpha", "beta"});
        serving::Ticket ticket = server.Submit(std::move(request));
        if (ticket.accepted()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          tickets.push_back(std::move(ticket));
        } else if (ticket.admit == serving::AdmitResult::kQueueFull) {
          queue_full.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Every accepted ticket must be fulfilled — saturation sheds load at
      // admission, never by dropping accepted work.
      for (serving::Ticket& ticket : tickets) {
        serving::ServeResponse response = ticket.response.get();
        if (!response.status.ok()) {
          unfulfilled.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  server.Shutdown();

  EXPECT_EQ(accepted.load() + queue_full.load(), kThreads * kPerThread);
  EXPECT_GT(accepted.load(), 0);
  EXPECT_EQ(unfulfilled.load(), 0);
  serving::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(stats.queue_rejections,
            static_cast<std::uint64_t>(queue_full.load()));
  EXPECT_EQ(stats.completed(), static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(ConcurrencyTest, ServerAdmissionCountsExactUnderContention) {
  auto searcher = MakeTrained();
  serving::MetasearchServerOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 1000;  // queue never the limiting factor
  options.admission_enabled = true;
  options.tenant_rate.refill_per_second = 0.0;  // no refill: burst only
  options.tenant_rate.burst = 100.0;
  serving::MetasearchServer server(searcher.get(), options);

  // 8 threads race 400 submissions through one tenant's bucket of exactly
  // 100 tokens: whatever the interleaving, precisely 100 are admitted.
  std::atomic<int> accepted{0};
  std::atomic<int> throttled{0};
  std::vector<std::thread> submitters;
  std::mutex tickets_mutex;
  std::vector<serving::Ticket> tickets;
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&]() {
      for (int i = 0; i < 50; ++i) {
        serving::ServeRequest request;
        request.query = MakeQuery({"alpha", "beta"});
        serving::Ticket ticket = server.Submit(std::move(request));
        if (ticket.accepted()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(tickets_mutex);
          tickets.push_back(std::move(ticket));
        } else {
          throttled.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(accepted.load(), 100);
  EXPECT_EQ(throttled.load(), 300);
  server.Shutdown();
  for (serving::Ticket& ticket : tickets) {
    EXPECT_TRUE(ticket.response.get().status.ok());
  }
  serving::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 100u);
  EXPECT_EQ(stats.throttled, 300u);
  EXPECT_EQ(stats.completed(), 100u);
}

TEST_F(ConcurrencyTest, SearchBatchMatchesSequentialSearch) {
  auto searcher = MakeTrained();
  std::vector<Query> queries = ServingQueries(2);
  ThreadPool pool(8);
  auto batch = searcher->SearchBatch(queries, 1, 0.9, 5, 8, &pool);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto sequential = searcher->Search(queries[i], 1, 0.9, 5, 8);
    ASSERT_TRUE(sequential.ok());
    const std::vector<FusedHit>& got = (*batch)[i];
    ASSERT_EQ(got.size(), sequential->size());
    for (std::size_t h = 0; h < got.size(); ++h) {
      EXPECT_EQ(got[h].database_name, (*sequential)[h].database_name);
      EXPECT_EQ(got[h].title, (*sequential)[h].title);
      EXPECT_DOUBLE_EQ(got[h].score, (*sequential)[h].score);
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
