// Determinism guarantees of the serving engine: in deterministic mode
// (speculative_batch = 1) the same seed and corpus must yield byte-identical
// selection reports across independently built metasearchers, and the batch
// paths must reproduce the sequential ones field for field. The figures in
// EXPERIMENTS.md rely on this to stay reproducible run over run.

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/metasearcher.h"
#include "eval/testbed.h"

namespace metaprobe {
namespace eval {
namespace {

TestbedOptions SmallOptions() {
  TestbedOptions options;
  options.scale = 1;
  options.train_queries_per_term_count = 80;
  options.test_queries_per_term_count = 60;
  options.seed = 20260806;
  return options;
}

// A canonical text form of a report; byte-equality of these strings is the
// test's notion of "identical selection".
std::string Serialize(const core::SelectionReport& report) {
  std::ostringstream os;
  os.precision(17);
  os << "selected:";
  for (std::size_t id : report.databases) os << ' ' << id;
  os << "\nnames:";
  for (const std::string& name : report.database_names) os << ' ' << name;
  os << "\ncorrectness: " << report.expected_correctness;
  os << "\nreached: " << report.reached_threshold;
  os << "\nprobes:";
  for (std::size_t id : report.probe_order) os << ' ' << id;
  os << "\nestimates:";
  for (double estimate : report.estimates) os << ' ' << estimate;
  os << '\n';
  return os.str();
}

class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new Testbed(BuildHealthTestbed(SmallOptions()).ValueOrDie());
    metasearcher_ =
        BuildTrainedMetasearcher(*testbed_).ValueOrDie().release();
  }

  static void TearDownTestSuite() {
    delete metasearcher_;
    delete testbed_;
    metasearcher_ = nullptr;
    testbed_ = nullptr;
  }

  static std::vector<core::Query> ProbeQueries(std::size_t count) {
    std::vector<core::Query> queries(
        testbed_->test_queries.begin(),
        testbed_->test_queries.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(count, testbed_->test_queries.size())));
    return queries;
  }

  static Testbed* testbed_;
  static core::Metasearcher* metasearcher_;
};

Testbed* DeterminismTest::testbed_ = nullptr;
core::Metasearcher* DeterminismTest::metasearcher_ = nullptr;

TEST_F(DeterminismTest, RebuildingTheWorldReproducesReports) {
  // Build the whole world a second time from the same options: corpus,
  // databases, training, serving must all be bit-stable.
  Testbed second = BuildHealthTestbed(SmallOptions()).ValueOrDie();
  std::unique_ptr<core::Metasearcher> other =
      BuildTrainedMetasearcher(second).ValueOrDie();
  for (const core::Query& q : ProbeQueries(12)) {
    auto a = metasearcher_->Select(q, 3, 0.9);
    auto b = other->Select(q, 3, 0.9);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(Serialize(*a), Serialize(*b));
  }
}

TEST_F(DeterminismTest, RepeatedSelectOnOneInstanceIsStable) {
  // Serving mutates per-query model copies only; the trained state must
  // not drift between calls.
  for (const core::Query& q : ProbeQueries(6)) {
    auto first = metasearcher_->Select(q, 3, 0.95);
    auto second = metasearcher_->Select(q, 3, 0.95);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(Serialize(*first), Serialize(*second));
  }
}

TEST_F(DeterminismTest, BatchReproducesSequentialByteForByte) {
  std::vector<core::Query> queries = ProbeQueries(16);
  ThreadPool pool(8);
  auto batch = metasearcher_->SelectBatch(queries, 3, 0.9, &pool);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto sequential = metasearcher_->Select(queries[i], 3, 0.9);
    ASSERT_TRUE(sequential.ok());
    EXPECT_EQ(Serialize((*batch)[i]), Serialize(*sequential))
        << "query " << i;
  }
}

TEST_F(DeterminismTest, BatchIsStableAcrossPoolShapes) {
  std::vector<core::Query> queries = ProbeQueries(10);
  ThreadPool wide(8);
  ThreadPool narrow(2);
  auto a = metasearcher_->SelectBatch(queries, 2, 0.9, &wide);
  auto b = metasearcher_->SelectBatch(queries, 2, 0.9, &narrow);
  auto c = metasearcher_->SelectBatch(queries, 2, 0.9, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(Serialize((*a)[i]), Serialize((*b)[i])) << "query " << i;
    EXPECT_EQ(Serialize((*a)[i]), Serialize((*c)[i])) << "query " << i;
  }
}

TEST_F(DeterminismTest, SavedModelServesIdentically) {
  // Round-trip through the model serializer: a serving replica loaded from
  // the persisted model must answer exactly like the trainer.
  std::stringstream stream;
  ASSERT_TRUE(metasearcher_->SaveTrainedModel(stream).ok());
  std::vector<std::shared_ptr<core::HiddenWebDatabase>> databases(
      testbed_->databases.begin(), testbed_->databases.end());
  auto replica = core::Metasearcher::LoadTrainedModel(stream, databases);
  ASSERT_TRUE(replica.ok());
  for (const core::Query& q : ProbeQueries(8)) {
    auto a = metasearcher_->Select(q, 3, 0.9);
    auto b = (*replica)->Select(q, 3, 0.9);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(Serialize(*a), Serialize(*b));
  }
}

}  // namespace
}  // namespace eval
}  // namespace metaprobe
