// Unit tier for the health telemetry substrate: the per-database rolling
// window (DbHealthTracker), the rolling SLO monitor, the shared percentile
// interpolation, and the two integration layers that feed the tracker —
// the HealthTrackedDatabase decorator and the Metasearcher's probe loop.
// Everything time-dependent runs on a FakeClock so window rollover is
// exact.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/deadline.h"
#include "core/flaky_database.h"
#include "core/health_tracked_database.h"
#include "core/metasearcher.h"
#include "core/relevancy_definition.h"
#include "index/inverted_index.h"
#include "obs/clock.h"
#include "obs/health.h"
#include "obs/metric_registry.h"
#include "obs/percentile.h"
#include "obs/slo.h"

namespace metaprobe {
namespace {

// 6-second window in 3 slices: each slice spans 2e9 ns.
obs::DbHealthOptions SmallWindow(const obs::MonotonicClock* clock) {
  obs::DbHealthOptions options;
  options.window_seconds = 6.0;
  options.num_slices = 3;
  options.clock = clock;
  return options;
}

constexpr std::uint64_t kSliceNs = 2'000'000'000;  // 6s / 3 slices

// ---------------------------------------------------- DbHealthTracker

TEST(DbHealthTrackerTest, EmptyWindowIsPerfectlyHealthy) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"a", "b"}, SmallWindow(&clock));
  obs::DbHealthSnapshot snap = tracker.Snapshot(0);
  EXPECT_EQ(snap.probes, 0u);
  EXPECT_DOUBLE_EQ(snap.health_score, 1.0);
  EXPECT_DOUBLE_EQ(snap.rank_agreement, 1.0);
  EXPECT_TRUE(snap.healthy);
  EXPECT_TRUE(tracker.UnhealthyDatabases().empty());
}

TEST(DbHealthTrackerTest, CountsEveryOutcomeAndErrorRate) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"a"}, SmallWindow(&clock));
  tracker.RecordProbe(0, 0.01, obs::ProbeHealthOutcome::kOk);
  tracker.RecordProbe(0, 0.02, obs::ProbeHealthOutcome::kDegraded);
  tracker.RecordProbe(0, 0.03, obs::ProbeHealthOutcome::kTimeout);
  tracker.RecordProbe(0, 0.04, obs::ProbeHealthOutcome::kError);
  obs::DbHealthSnapshot snap = tracker.Snapshot(0);
  EXPECT_EQ(snap.probes, 4u);
  EXPECT_EQ(snap.ok, 1u);
  EXPECT_EQ(snap.degraded, 1u);
  EXPECT_EQ(snap.timeouts, 1u);
  EXPECT_EQ(snap.errors, 1u);
  EXPECT_DOUBLE_EQ(snap.error_rate, 0.5);
  // Latency statistics cover successes only (ok + degraded).
  EXPECT_DOUBLE_EQ(snap.window_mean_latency_seconds, 0.015);
}

TEST(DbHealthTrackerTest, SlowSuccessIsAutoUpgradedToDegraded) {
  obs::FakeClock clock(0);
  obs::DbHealthOptions options = SmallWindow(&clock);
  options.latency_slo_seconds = 0.5;
  obs::DbHealthTracker tracker({"a"}, options);
  tracker.RecordProbe(0, 0.6, obs::ProbeHealthOutcome::kOk);
  obs::DbHealthSnapshot snap = tracker.Snapshot(0);
  EXPECT_EQ(snap.ok, 0u);
  EXPECT_EQ(snap.degraded, 1u);
  // Degraded is still a success, so it does not consume error budget.
  EXPECT_DOUBLE_EQ(snap.error_rate, 0.0);
}

TEST(DbHealthTrackerTest, UntimedProbesAreExcludedFromLatency) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"a"}, SmallWindow(&clock));
  tracker.RecordProbe(0, -1.0, obs::ProbeHealthOutcome::kOk);
  obs::DbHealthSnapshot snap = tracker.Snapshot(0);
  EXPECT_EQ(snap.ok, 1u);
  EXPECT_DOUBLE_EQ(snap.window_mean_latency_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snap.ewma_latency_seconds, 0.0);
}

TEST(DbHealthTrackerTest, EwmaPrimesOnFirstSampleThenBlends) {
  obs::FakeClock clock(0);
  obs::DbHealthOptions options = SmallWindow(&clock);
  options.ewma_alpha = 0.5;
  obs::DbHealthTracker tracker({"a"}, options);
  tracker.RecordProbe(0, 0.1, obs::ProbeHealthOutcome::kOk);
  EXPECT_DOUBLE_EQ(tracker.Snapshot(0).ewma_latency_seconds, 0.1);
  tracker.RecordProbe(0, 0.3, obs::ProbeHealthOutcome::kOk);
  EXPECT_DOUBLE_EQ(tracker.Snapshot(0).ewma_latency_seconds, 0.2);
}

TEST(DbHealthTrackerTest, WindowRolloverForgetsOldSlices) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"a"}, SmallWindow(&clock));
  tracker.RecordProbe(0, 0.01, obs::ProbeHealthOutcome::kError);

  // One slice later the record is still inside the window.
  clock.Advance(kSliceNs);
  EXPECT_EQ(tracker.Snapshot(0).errors, 1u);

  // A fresh record in the new slice coexists with the old one.
  tracker.RecordProbe(0, 0.01, obs::ProbeHealthOutcome::kOk);
  obs::DbHealthSnapshot both = tracker.Snapshot(0);
  EXPECT_EQ(both.probes, 2u);

  // Two more slices: the error's slice has been reused, the ok survives.
  clock.Advance(2 * kSliceNs);
  obs::DbHealthSnapshot later = tracker.Snapshot(0);
  EXPECT_EQ(later.errors, 0u);
  EXPECT_EQ(later.ok, 1u);

  // Past the whole window everything is gone — but the EWMA, which spans
  // windows by design, persists.
  clock.Advance(3 * kSliceNs);
  obs::DbHealthSnapshot empty = tracker.Snapshot(0);
  EXPECT_EQ(empty.probes, 0u);
  EXPECT_DOUBLE_EQ(empty.health_score, 1.0);
  EXPECT_DOUBLE_EQ(empty.ewma_latency_seconds, 0.01);
}

TEST(DbHealthTrackerTest, LongIdleGapClearsTheWholeRing) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"a"}, SmallWindow(&clock));
  for (int i = 0; i < 10; ++i) {
    tracker.RecordProbe(0, 0.01, obs::ProbeHealthOutcome::kError);
  }
  EXPECT_FALSE(tracker.healthy(0));
  // A gap of many windows must not leave stale slices behind (the lazy
  // zeroing is capped at the ring size — this exercises that cap).
  clock.Advance(1000 * kSliceNs);
  EXPECT_EQ(tracker.Snapshot(0).probes, 0u);
  EXPECT_TRUE(tracker.healthy(0));
}

TEST(DbHealthTrackerTest, HealthScoreMultipliesThreeFactors) {
  obs::FakeClock clock(0);
  obs::DbHealthOptions options = SmallWindow(&clock);
  options.latency_slo_seconds = 0.1;
  options.ewma_alpha = 1.0;  // EWMA == last sample, for exact arithmetic
  obs::DbHealthTracker tracker({"a"}, options);

  // 1 ok + 1 error: availability 0.5. The ok probe took 0.2s against a
  // 0.1s SLO: latency factor 0.5. One discordant rank pair: agreement
  // factor 0.5 + 0.5 * 0 = 0.5.
  tracker.RecordProbe(0, 0.2, obs::ProbeHealthOutcome::kOk);  // -> degraded
  tracker.RecordProbe(0, 0.0, obs::ProbeHealthOutcome::kError);
  tracker.RecordRankPair(0, false);
  obs::DbHealthSnapshot snap = tracker.Snapshot(0);
  EXPECT_DOUBLE_EQ(snap.error_rate, 0.5);
  EXPECT_DOUBLE_EQ(snap.ewma_latency_seconds, 0.2);
  EXPECT_DOUBLE_EQ(snap.rank_agreement, 0.0);
  EXPECT_DOUBLE_EQ(snap.health_score, 0.5 * 0.5 * 0.5);
  EXPECT_FALSE(snap.healthy);  // 0.125 < default 0.5 threshold
}

TEST(DbHealthTrackerTest, RankAgreementIsPerDatabasePairFraction) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"a", "b"}, SmallWindow(&clock));
  tracker.RecordRankPair(0, true);
  tracker.RecordRankPair(0, true);
  tracker.RecordRankPair(0, false);
  tracker.RecordRankPair(1, true);
  EXPECT_DOUBLE_EQ(tracker.Snapshot(0).rank_agreement, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(tracker.Snapshot(1).rank_agreement, 1.0);
  // Rank pairs alone (no probes) leave the window "empty" for scoring.
  EXPECT_EQ(tracker.Snapshot(0).probes, 0u);
}

TEST(DbHealthTrackerTest, UnhealthyDatabasesAreListedAscending) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"a", "b", "c"}, SmallWindow(&clock));
  for (int i = 0; i < 5; ++i) {
    tracker.RecordProbe(0, 0.0, obs::ProbeHealthOutcome::kError);
    tracker.RecordProbe(2, 0.0, obs::ProbeHealthOutcome::kTimeout);
    tracker.RecordProbe(1, 0.001, obs::ProbeHealthOutcome::kOk);
  }
  EXPECT_FALSE(tracker.healthy(0));
  EXPECT_TRUE(tracker.healthy(1));
  EXPECT_FALSE(tracker.healthy(2));
  EXPECT_EQ(tracker.UnhealthyDatabases(),
            (std::vector<std::size_t>{0, 2}));
}

TEST(DbHealthTrackerTest, RuntimeDisableSkipsRecording) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"a"}, SmallWindow(&clock));
  tracker.set_enabled(false);
  tracker.RecordProbe(0, 0.01, obs::ProbeHealthOutcome::kError);
  tracker.RecordRankPair(0, false);
  EXPECT_EQ(tracker.Snapshot(0).probes, 0u);
  tracker.set_enabled(true);
  tracker.RecordProbe(0, 0.01, obs::ProbeHealthOutcome::kError);
  EXPECT_EQ(tracker.Snapshot(0).errors, 1u);
}

TEST(DbHealthTrackerTest, OutOfRangeDatabaseIsIgnored) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"a"}, SmallWindow(&clock));
  tracker.RecordProbe(7, 0.01, obs::ProbeHealthOutcome::kError);
  tracker.RecordRankPair(7, true);
  obs::DbHealthSnapshot snap = tracker.Snapshot(7);
  EXPECT_EQ(snap.probes, 0u);
  EXPECT_TRUE(snap.name.empty());
}

TEST(DbHealthTrackerTest, RegisterMetricsExportsPerDatabaseGauges) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"pubmed", "weird\"name"},
                               SmallWindow(&clock));
  for (int i = 0; i < 4; ++i) {
    tracker.RecordProbe(0, 0.01, obs::ProbeHealthOutcome::kError);
  }
  obs::MetricRegistry registry;
  tracker.RegisterMetrics(&registry);
  const std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("metaprobe_db_health_score{db=\"pubmed\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("metaprobe_db_probe_error_rate{db=\"pubmed\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("metaprobe_db_window_probes{db=\"pubmed\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("metaprobe_db_unhealthy_total 1"), std::string::npos);
  // The second database's quote is escaped in the exported label.
  EXPECT_NE(text.find("db=\"weird\\\"name\""), std::string::npos);
}

// --------------------------------------------------------- SloMonitor

TEST(SloMonitorTest, NullHistogramYieldsEmptySnapshots) {
  obs::SloMonitor slo("noop", nullptr);
  obs::SloSnapshot snap = slo.Snapshot();
  EXPECT_EQ(snap.name, "noop");
  EXPECT_EQ(snap.window_count, 0u);
  EXPECT_DOUBLE_EQ(snap.burn_rate, 0.0);
}

TEST(SloMonitorTest, WindowedPercentilesViolationsAndBurnRate) {
  obs::FakeClock clock(0);
  obs::MetricRegistry registry;
  obs::Histogram* histogram =
      registry.GetHistogram("latency", "", {0.1, 0.5, 1.0});
  obs::SloOptions options;
  options.window_seconds = 6.0;
  options.num_slices = 3;
  options.objective_seconds = 0.5;
  options.error_budget = 0.1;
  options.clock = &clock;
  obs::SloMonitor slo("test", histogram, options);

  for (int i = 0; i < 8; ++i) histogram->Observe(0.05);
  for (int i = 0; i < 2; ++i) histogram->Observe(0.6);
  obs::SloSnapshot snap = slo.Snapshot();
  EXPECT_EQ(snap.window_count, 10u);
  // 2 of 10 samples land in the [0.5, 1.0) bucket, at/above the objective.
  EXPECT_DOUBLE_EQ(snap.violation_fraction, 0.2);
  EXPECT_DOUBLE_EQ(snap.burn_rate, 2.0);  // 0.2 violation / 0.1 budget
  EXPECT_LT(snap.p50_seconds, 0.1);
  EXPECT_GE(snap.p99_seconds, 0.5);
  EXPECT_LT(snap.p99_seconds, 1.0);
}

TEST(SloMonitorTest, SamplesFallOutOfTheRollingWindow) {
  obs::FakeClock clock(0);
  obs::MetricRegistry registry;
  obs::Histogram* histogram =
      registry.GetHistogram("latency", "", {0.1, 0.5, 1.0});
  obs::SloOptions options;
  options.window_seconds = 6.0;
  options.num_slices = 3;
  options.objective_seconds = 0.5;
  options.clock = &clock;
  obs::SloMonitor slo("test", histogram, options);

  for (int i = 0; i < 4; ++i) histogram->Observe(0.6);  // all violations
  EXPECT_DOUBLE_EQ(slo.Snapshot().violation_fraction, 1.0);

  // One slice later: fresh healthy traffic joins the old violations. The
  // boundary snapshot is taken lazily at the first touch after the
  // crossing, so touch the monitor before the new samples land — samples
  // observed before that first touch are attributed to the older slice.
  clock.Advance(kSliceNs);
  (void)slo.Snapshot();
  for (int i = 0; i < 4; ++i) histogram->Observe(0.05);
  obs::SloSnapshot mixed = slo.Snapshot();
  EXPECT_EQ(mixed.window_count, 8u);
  EXPECT_DOUBLE_EQ(mixed.violation_fraction, 0.5);

  // Advance until the violation slice leaves the window; snapshots must
  // keep rolling boundaries forward even with no new samples.
  clock.Advance(2 * kSliceNs);
  obs::SloSnapshot rolled = slo.Snapshot();
  EXPECT_EQ(rolled.window_count, 4u);
  EXPECT_DOUBLE_EQ(rolled.violation_fraction, 0.0);

  // After a long idle gap the window is empty.
  clock.Advance(100 * kSliceNs);
  EXPECT_EQ(slo.Snapshot().window_count, 0u);
}

TEST(SloMonitorTest, RegisterMetricsExportsLabelledGauges) {
  obs::FakeClock clock(0);
  obs::MetricRegistry registry;
  obs::Histogram* histogram = registry.GetHistogram("latency", "");
  obs::SloOptions options;
  options.clock = &clock;
  options.error_budget = 0.01;
  obs::SloMonitor slo("server_latency", histogram, options);
  slo.RegisterMetrics(&registry);
  const std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("metaprobe_slo_latency_p99_seconds"
                      "{slo=\"server_latency\"}"),
            std::string::npos);
  EXPECT_NE(text.find("metaprobe_slo_burn_rate{slo=\"server_latency\"}"),
            std::string::npos);
}

// --------------------------------------------------------- Percentile

TEST(PercentileTest, InterpolatesInsideTheTargetBucket) {
  stats::Histogram layout =
      stats::Histogram::Make({1.0, 2.0, 4.0}).ValueOrDie();
  // Cells: (-inf,1) [1,2) [2,4) [4,inf). All 4 samples in [1,2).
  std::vector<std::uint64_t> counts = {0, 4, 0, 0};
  EXPECT_DOUBLE_EQ(obs::PercentileFromCounts(layout, counts, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(obs::PercentileFromCounts(layout, counts, 1.0), 2.0);
}

TEST(PercentileTest, FirstCellIsClampedToZeroAndTailReportsLowerEdge) {
  stats::Histogram layout =
      stats::Histogram::Make({1.0, 2.0, 4.0}).ValueOrDie();
  std::vector<std::uint64_t> under = {2, 0, 0, 0};
  // The (-inf, 1) cell is treated as [0, 1) for latencies.
  EXPECT_DOUBLE_EQ(obs::PercentileFromCounts(layout, under, 0.5), 0.5);
  std::vector<std::uint64_t> over = {0, 0, 0, 2};
  // The open [4, inf) tail reports its lower edge (an underestimate).
  EXPECT_DOUBLE_EQ(obs::PercentileFromCounts(layout, over, 0.99), 4.0);
  EXPECT_DOUBLE_EQ(obs::PercentileFromCounts(layout, {}, 0.5), 0.0);
}

// --------------------------------------------- HealthTrackedDatabase

std::shared_ptr<core::LocalDatabase> MakeTinyDb(const std::string& name) {
  index::InvertedIndex::Builder builder;
  for (int d = 0; d < 8; ++d) {
    builder.AddDocument(d % 2 == 0
                            ? std::vector<std::string>{"alpha", "beta"}
                            : std::vector<std::string>{"gamma"});
  }
  return std::make_shared<core::LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

core::Query MakeQuery(std::vector<std::string> terms) {
  core::Query q;
  q.terms = std::move(terms);
  return q;
}

TEST(HealthTrackedDatabaseTest, SuccessfulOperationsRecordOk) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"tiny"}, SmallWindow(&clock));
  core::HealthTrackedDatabase db(MakeTinyDb("tiny"), &tracker, 0);
  EXPECT_EQ(db.name(), "tiny");
  ASSERT_TRUE(db.CountMatches(MakeQuery({"alpha"})).ok());
  ASSERT_TRUE(db.Search(MakeQuery({"alpha"}), 2).ok());
  obs::DbHealthSnapshot snap = tracker.Snapshot(0);
  EXPECT_EQ(snap.ok, 2u);
  EXPECT_EQ(snap.errors, 0u);
}

TEST(HealthTrackedDatabaseTest, InjectedFailuresRecordErrors) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"flaky"}, SmallWindow(&clock));
  auto flaky =
      std::make_shared<core::FlakyDatabase>(MakeTinyDb("flaky"), 1.0, 42);
  core::HealthTrackedDatabase db(flaky, &tracker, 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(db.CountMatches(MakeQuery({"alpha"})).ok());
  }
  obs::DbHealthSnapshot snap = tracker.Snapshot(0);
  EXPECT_EQ(snap.errors, 3u);
  EXPECT_DOUBLE_EQ(snap.error_rate, 1.0);
  EXPECT_FALSE(snap.healthy);
}

TEST(HealthTrackedDatabaseTest, ExpiredBatchDeadlineRecordsTimeoutPerQuery) {
  obs::FakeClock clock(1000);
  obs::DbHealthTracker tracker({"tiny"}, SmallWindow(&clock));
  core::HealthTrackedDatabase db(MakeTinyDb("tiny"), &tracker, 0);
  core::Query q1 = MakeQuery({"alpha"});
  core::Query q2 = MakeQuery({"beta"});
  core::Query q3 = MakeQuery({"gamma"});
  std::vector<const core::Query*> batch = {&q1, &q2, &q3};
  core::Deadline expired;
  expired.clock = &clock;
  expired.at_ns = 1;  // already past
  Result<std::vector<double>> result = db.ProbeBatch(
      batch, core::RelevancyDefinition::kDocumentFrequency, expired);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  // A batch of n queries records n outcomes, keeping windowed probe
  // counts comparable between the batched and per-probe paths.
  obs::DbHealthSnapshot snap = tracker.Snapshot(0);
  EXPECT_EQ(snap.timeouts, 3u);
  EXPECT_EQ(snap.probes, 3u);
}

TEST(HealthTrackedDatabaseTest, BatchSuccessRecordsOnePerQuery) {
  obs::FakeClock clock(0);
  obs::DbHealthTracker tracker({"tiny"}, SmallWindow(&clock));
  core::HealthTrackedDatabase db(MakeTinyDb("tiny"), &tracker, 0);
  core::Query q1 = MakeQuery({"alpha"});
  core::Query q2 = MakeQuery({"gamma"});
  std::vector<const core::Query*> batch = {&q1, &q2};
  ASSERT_TRUE(db.ProbeBatch(batch, core::RelevancyDefinition::kDocumentFrequency,
                            core::Deadline::None())
                  .ok());
  EXPECT_EQ(tracker.Snapshot(0).ok, 2u);
}

// -------------------------------------- Metasearcher integration

std::shared_ptr<core::LocalDatabase> MakePatternedDb(const std::string& name,
                                                     int pattern) {
  index::InvertedIndex::Builder builder;
  for (int d = 0; d < 200; ++d) {
    std::vector<std::string> terms;
    switch (pattern) {
      case 0:
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "beta", "pad"}
                           : std::vector<std::string>{"pad", "fill"};
        break;
      case 1:
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "pad"}
                           : std::vector<std::string>{"beta", "fill"};
        break;
      default:
        if (d % 4 == 0) terms = {"alpha", "beta"};
        else if (d % 4 == 1) terms = {"alpha", "pad"};
        else if (d % 4 == 2) terms = {"beta", "pad"};
        else terms = {"pad", "fill"};
        break;
    }
    builder.AddDocument(terms);
  }
  return std::make_shared<core::LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

class MetasearcherHealthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(searcher_.AddLocalDatabase(MakePatternedDb("corr", 0)).ok());
    ASSERT_TRUE(searcher_.AddLocalDatabase(MakePatternedDb("anti", 1)).ok());
    ASSERT_TRUE(searcher_.AddLocalDatabase(MakePatternedDb("mix", 2)).ok());
    std::vector<core::Query> training;
    for (int i = 0; i < 30; ++i) {
      training.push_back(MakeQuery({"alpha", "beta"}));
      training.push_back(MakeQuery({"alpha", "fill"}));
      training.push_back(MakeQuery({"alpha", "pad"}));
      training.push_back(MakeQuery({"beta", "pad"}));
      training.push_back(MakeQuery({"pad", "fill"}));
    }
    ASSERT_TRUE(searcher_.Train(training).ok());
  }

  core::Metasearcher searcher_;
};

TEST_F(MetasearcherHealthTest, ServingProbesFeedTheTracker) {
  obs::DbHealthTracker tracker({"corr", "anti", "mix"});
  searcher_.SetHealthTracker(&tracker);
  ASSERT_EQ(searcher_.health_tracker(), &tracker);

  // A demanding threshold forces real probes through the wrapped oracle.
  Result<core::SelectionReport> result =
      searcher_.Select(MakeQuery({"alpha", "beta"}), 1, 0.9999);
  ASSERT_TRUE(result.ok());
  const core::SelectionReport& report = result.ValueOrDie();
  ASSERT_FALSE(report.probe_order.empty());

  std::uint64_t recorded = 0;
  std::uint64_t rank_pairs = 0;
  for (const obs::DbHealthSnapshot& snap : tracker.SnapshotAll()) {
    recorded += snap.probes;
    rank_pairs += snap.rank_pairs;
  }
  EXPECT_EQ(recorded, report.probe_order.size());
  // Every probed pair is compared estimate-vs-observed, credited to both
  // databases.
  if (report.probe_order.size() >= 2) {
    EXPECT_GT(rank_pairs, 0u);
  }
  EXPECT_TRUE(report.unhealthy_databases.empty());
}

TEST_F(MetasearcherHealthTest, UnhealthyBackendsSurfaceInTheReport) {
  obs::DbHealthTracker tracker({"corr", "anti", "mix"});
  searcher_.SetHealthTracker(&tracker);
  for (int i = 0; i < 100; ++i) {
    tracker.RecordProbe(1, 0.0, obs::ProbeHealthOutcome::kError);
  }
  Result<core::SelectionReport> result =
      searcher_.Select(MakeQuery({"alpha"}), 1, 0.5);
  ASSERT_TRUE(result.ok());
  const core::SelectionReport& report = result.ValueOrDie();
  ASSERT_EQ(report.unhealthy_databases.size(), 1u);
  EXPECT_EQ(report.unhealthy_databases[0], 1u);
  // Unhealthy backends are surfaced, not excluded: selection still ran.
  EXPECT_FALSE(report.databases.empty());
}

TEST_F(MetasearcherHealthTest, TrackerGaugesJoinSearcherExposition) {
  obs::DbHealthTracker tracker({"corr", "anti", "mix"});
  searcher_.SetHealthTracker(&tracker);
  const std::string text = searcher_.metrics().ExpositionText();
  EXPECT_NE(text.find("metaprobe_db_health_score{db=\"corr\"}"),
            std::string::npos);
  EXPECT_NE(text.find("metaprobe_db_unhealthy_total"), std::string::npos);
}

}  // namespace
}  // namespace metaprobe
