// Serving tier: the MetasearchServer state machine, driven deterministically
// — zero worker threads, a FakeClock, and manual RunOne() pumping — so every
// admission decision, queue transition, deadline expiry and drain step is
// asserted exactly, not raced. Thread-pool behavior itself is covered in
// concurrency_test.cc's saturation stress.

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/clock.h"
#include "serving/admission.h"
#include "serving/metasearch_server.h"

namespace metaprobe {
namespace serving {
namespace {

using core::LocalDatabase;
using core::Metasearcher;
using core::MetasearcherOptions;
using core::Query;

// ------------------------------------------------------------ TokenBucket

TEST(TokenBucketTest, BurstThenSteadyRefill) {
  TokenBucketOptions options;
  options.refill_per_second = 2.0;
  options.burst = 2.0;
  TokenBucket bucket(options, 0);

  EXPECT_TRUE(bucket.TryAcquire(0, nullptr));
  EXPECT_TRUE(bucket.TryAcquire(0, nullptr));
  double retry_after = 0.0;
  EXPECT_FALSE(bucket.TryAcquire(0, &retry_after));
  EXPECT_NEAR(retry_after, 0.5, 1e-9);

  // Half a second accrues exactly one token at 2/s.
  EXPECT_TRUE(bucket.TryAcquire(500000000, nullptr));
  EXPECT_FALSE(bucket.TryAcquire(500000000, &retry_after));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucketOptions options;
  options.refill_per_second = 100.0;
  options.burst = 3.0;
  TokenBucket bucket(options, 0);
  // An hour of idling still only holds `burst` tokens.
  std::uint64_t hour_ns = 3600ull * 1000000000ull;
  EXPECT_TRUE(bucket.TryAcquire(hour_ns, nullptr));
  EXPECT_TRUE(bucket.TryAcquire(hour_ns, nullptr));
  EXPECT_TRUE(bucket.TryAcquire(hour_ns, nullptr));
  EXPECT_FALSE(bucket.TryAcquire(hour_ns, nullptr));
}

TEST(TokenBucketTest, NonRefillingBucketReportsInfiniteRetry) {
  TokenBucketOptions options;
  options.refill_per_second = 0.0;
  options.burst = 1.0;
  TokenBucket bucket(options, 0);
  EXPECT_TRUE(bucket.TryAcquire(0, nullptr));
  double retry_after = 0.0;
  EXPECT_FALSE(bucket.TryAcquire(1000000000, &retry_after));
  EXPECT_TRUE(std::isinf(retry_after));
}

// ---------------------------------------------------- AdmissionController

TEST(AdmissionControllerTest, TenantsAreIsolated) {
  obs::FakeClock clock(0);
  TokenBucketOptions one_per_second;
  one_per_second.refill_per_second = 1.0;
  one_per_second.burst = 1.0;
  AdmissionController admission(one_per_second, &clock);

  double retry_after = 0.0;
  EXPECT_TRUE(admission.Admit("alice", &retry_after));
  EXPECT_FALSE(admission.Admit("alice", &retry_after));
  EXPECT_NEAR(retry_after, 1.0, 1e-9);
  // A different tenant has its own bucket.
  EXPECT_TRUE(admission.Admit("bob", &retry_after));
  EXPECT_EQ(admission.num_tenants(), 2u);

  clock.Advance(1000000000);  // 1s: alice's token is back
  EXPECT_TRUE(admission.Admit("alice", &retry_after));
}

TEST(AdmissionControllerTest, PerTenantOverride) {
  obs::FakeClock clock(0);
  TokenBucketOptions stingy;
  stingy.refill_per_second = 1.0;
  stingy.burst = 1.0;
  AdmissionController admission(stingy, &clock);
  TokenBucketOptions generous;
  generous.refill_per_second = 100.0;
  generous.burst = 10.0;
  admission.SetTenantRate("vip", generous);

  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(admission.Admit("vip", nullptr)) << "request " << i;
  }
  EXPECT_FALSE(admission.Admit("vip", nullptr));
  EXPECT_TRUE(admission.Admit("regular", nullptr));
  EXPECT_FALSE(admission.Admit("regular", nullptr));
}

// ------------------------------------------------- deterministic testbed

std::shared_ptr<LocalDatabase> MakeDb(const std::string& name, int pattern,
                                      int num_docs) {
  index::InvertedIndex::Builder builder;
  for (int d = 0; d < num_docs; ++d) {
    std::vector<std::string> terms;
    switch (pattern) {
      case 0:
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "beta", "pad"}
                           : std::vector<std::string>{"pad", "fill"};
        break;
      case 1:
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "pad"}
                           : std::vector<std::string>{"beta", "fill"};
        break;
      default:
        if (d % 4 == 0) terms = {"alpha", "beta"};
        else if (d % 4 == 1) terms = {"alpha", "pad"};
        else if (d % 4 == 2) terms = {"beta", "pad"};
        else terms = {"pad", "fill"};
        break;
    }
    builder.AddDocument(terms);
  }
  return std::make_shared<LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

Query MakeQuery(std::vector<std::string> terms) {
  Query q;
  q.terms = std::move(terms);
  return q;
}

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    searcher_ = std::make_unique<Metasearcher>();
    ASSERT_TRUE(searcher_->AddLocalDatabase(MakeDb("corr", 0, 200)).ok());
    ASSERT_TRUE(searcher_->AddLocalDatabase(MakeDb("anti", 1, 200)).ok());
    ASSERT_TRUE(searcher_->AddLocalDatabase(MakeDb("mix", 2, 200)).ok());
    std::vector<Query> training;
    for (int i = 0; i < 30; ++i) {
      training.push_back(MakeQuery({"alpha", "beta"}));
      training.push_back(MakeQuery({"alpha", "fill"}));
      training.push_back(MakeQuery({"alpha", "pad"}));
      training.push_back(MakeQuery({"beta", "pad"}));
      training.push_back(MakeQuery({"pad", "fill"}));
    }
    ASSERT_TRUE(searcher_->Train(training).ok());
  }

  /// A server the test pumps by hand: no workers, fake time. k = 1 so
  /// selection is a real contest (k = 3 of 3 databases has certainty 1
  /// with zero probes, which would make every deadline moot).
  MetasearchServerOptions ManualOptions() {
    MetasearchServerOptions options;
    options.num_workers = 0;
    options.clock = &clock_;
    options.default_k = 1;
    return options;
  }

  ServeRequest Request(const std::string& tenant = "default") {
    ServeRequest request;
    request.query = MakeQuery({"alpha", "beta"});
    request.tenant = tenant;
    return request;
  }

  obs::FakeClock clock_{0};
  std::unique_ptr<Metasearcher> searcher_;
};

// ------------------------------------------------------ admission states

TEST_F(ServingTest, AdmissionAcceptsWithinRateThrottlesBeyond) {
  MetasearchServerOptions options = ManualOptions();
  options.tenant_rate.refill_per_second = 1.0;
  options.tenant_rate.burst = 2.0;
  MetasearchServer server(searcher_.get(), options);

  Ticket first = server.Submit(Request());
  Ticket second = server.Submit(Request());
  EXPECT_TRUE(first.accepted());
  EXPECT_TRUE(second.accepted());

  Ticket third = server.Submit(Request());
  EXPECT_EQ(third.admit, AdmitResult::kThrottled);
  EXPECT_NEAR(third.retry_after_seconds, 1.0, 1e-9);

  // A different tenant is not affected by this tenant's bucket.
  Ticket other = server.Submit(Request("other-tenant"));
  EXPECT_TRUE(other.accepted());

  // After the advertised retry-after, the tenant is admitted again.
  clock_.Advance(1000000000);
  Ticket fourth = server.Submit(Request());
  EXPECT_TRUE(fourth.accepted());

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.throttled, 1u);
  EXPECT_EQ(stats.queue_depth, 4u);
  server.Shutdown();
}

TEST_F(ServingTest, QueueOverflowAppliesBackpressure) {
  MetasearchServerOptions options = ManualOptions();
  options.admission_enabled = false;
  options.max_queue_depth = 2;
  MetasearchServer server(searcher_.get(), options);

  EXPECT_TRUE(server.Submit(Request()).accepted());
  EXPECT_TRUE(server.Submit(Request()).accepted());
  Ticket overflow = server.Submit(Request());
  EXPECT_EQ(overflow.admit, AdmitResult::kQueueFull);
  EXPECT_EQ(server.queue_depth(), 2u);

  // Draining one request frees one slot.
  EXPECT_TRUE(server.RunOne());
  EXPECT_EQ(server.queue_depth(), 1u);
  EXPECT_TRUE(server.Submit(Request()).accepted());

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.queue_rejections, 1u);
  server.Shutdown();
}

TEST_F(ServingTest, RunOneReturnsFalseOnEmptyQueue) {
  MetasearchServer server(searcher_.get(), ManualOptions());
  EXPECT_FALSE(server.RunOne());
}

// ------------------------------------------------------ deadline serving

TEST_F(ServingTest, DeadlineExpiredInQueueServesDegradedEstimateOnly) {
  MetasearchServerOptions options = ManualOptions();
  options.admission_enabled = false;
  options.default_deadline_ns = 1000000;  // 1ms budget, stamped at enqueue
  options.default_threshold = 0.9999;     // unreachable without probing
  MetasearchServer server(searcher_.get(), options);

  Ticket ticket = server.Submit(Request());
  ASSERT_TRUE(ticket.accepted());
  // The request rots in the queue past its whole budget.
  clock_.Advance(2000000);
  ASSERT_TRUE(server.RunOne());

  ServeResponse response = ticket.response.get();
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.report.probe_order.empty());  // estimate-only
  EXPECT_FALSE(response.report.databases.empty());
  EXPECT_NEAR(response.queue_seconds, 0.002, 1e-9);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed_degraded, 1u);
  EXPECT_EQ(stats.completed_ok, 0u);
  EXPECT_EQ(stats.failed, 0u);
  server.Shutdown();
}

TEST_F(ServingTest, GenerousDeadlineServesFullAnswer) {
  MetasearchServerOptions options = ManualOptions();
  options.admission_enabled = false;
  options.default_deadline_ns = 3600ull * 1000000000ull;
  options.default_threshold = 0.999;
  MetasearchServer server(searcher_.get(), options);

  Ticket ticket = server.Submit(Request());
  ASSERT_TRUE(ticket.accepted());
  ASSERT_TRUE(server.RunOne());
  ServeResponse response = ticket.response.get();
  EXPECT_TRUE(response.status.ok());
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(server.stats().completed_ok, 1u);
  server.Shutdown();
}

TEST_F(ServingTest, PerRequestDeadlineOverridesDefault) {
  MetasearchServerOptions options = ManualOptions();
  options.admission_enabled = false;
  options.default_deadline_ns = 0;  // no server-wide deadline
  MetasearchServer server(searcher_.get(), options);

  ServeRequest request = Request();
  request.deadline_ns = 1000;   // 1us — hopeless
  request.threshold = 0.9999;   // unreachable without probing
  Ticket ticket = server.Submit(std::move(request));
  ASSERT_TRUE(ticket.accepted());
  clock_.Advance(1000000);
  ASSERT_TRUE(server.RunOne());
  ServeResponse response = ticket.response.get();
  EXPECT_TRUE(response.status.ok());
  EXPECT_TRUE(response.degraded);
  server.Shutdown();
}

TEST_F(ServingTest, MalformedQueryFailsWithoutPoisoningTheServer) {
  MetasearchServerOptions options = ManualOptions();
  options.admission_enabled = false;
  MetasearchServer server(searcher_.get(), options);

  ServeRequest bad;
  bad.query = MakeQuery({});  // empty query -> InvalidArgument
  Ticket bad_ticket = server.Submit(std::move(bad));
  Ticket good_ticket = server.Submit(Request());
  ASSERT_TRUE(bad_ticket.accepted());
  ASSERT_TRUE(good_ticket.accepted());
  ASSERT_TRUE(server.RunOne());
  ASSERT_TRUE(server.RunOne());

  EXPECT_TRUE(bad_ticket.response.get().status.IsInvalidArgument());
  EXPECT_TRUE(good_ticket.response.get().status.ok());
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed_ok, 1u);
  server.Shutdown();
}

// ----------------------------------------------------- request overrides

TEST_F(ServingTest, RequestOverridesSelectionParameters) {
  MetasearchServerOptions options = ManualOptions();
  options.admission_enabled = false;
  options.default_k = 1;
  MetasearchServer server(searcher_.get(), options);

  ServeRequest request = Request();
  request.k = 2;
  request.threshold = 0.5;
  Ticket ticket = server.Submit(std::move(request));
  ASSERT_TRUE(ticket.accepted());
  ASSERT_TRUE(server.RunOne());
  ServeResponse response = ticket.response.get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.report.databases.size(), 2u);
  server.Shutdown();
}

// ------------------------------------------------------- shutdown drain

TEST_F(ServingTest, ShutdownDrainsEveryAcceptedRequest) {
  MetasearchServerOptions options = ManualOptions();
  options.admission_enabled = false;
  options.max_queue_depth = 16;
  MetasearchServer server(searcher_.get(), options);

  std::vector<Ticket> tickets;
  for (int i = 0; i < 10; ++i) {
    tickets.push_back(server.Submit(Request()));
    ASSERT_TRUE(tickets.back().accepted());
  }
  EXPECT_EQ(server.queue_depth(), 10u);

  server.Shutdown();  // num_workers = 0: the drain runs inline

  for (Ticket& ticket : tickets) {
    ServeResponse response = ticket.response.get();  // fulfilled, no hang
    EXPECT_TRUE(response.status.ok());
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed(), 10u);
  EXPECT_EQ(stats.queue_depth, 0u);

  // Post-shutdown submissions are refused, not queued.
  Ticket late = server.Submit(Request());
  EXPECT_EQ(late.admit, AdmitResult::kShutdown);
  EXPECT_EQ(server.stats().shutdown_rejections, 1u);

  server.Shutdown();  // idempotent
}

// -------------------------------------------------------- worker threads

TEST_F(ServingTest, WorkerPoolServesSubmittedRequests) {
  MetasearchServerOptions options;  // real clock, real workers
  options.num_workers = 2;
  options.admission_enabled = false;
  options.max_queue_depth = 64;
  MetasearchServer server(searcher_.get(), options);

  std::vector<Ticket> tickets;
  for (int i = 0; i < 16; ++i) {
    tickets.push_back(server.Submit(Request()));
    ASSERT_TRUE(tickets.back().accepted());
  }
  for (Ticket& ticket : tickets) {
    ServeResponse response = ticket.response.get();
    EXPECT_TRUE(response.status.ok());
    EXPECT_FALSE(response.degraded);  // no deadline configured
  }
  server.Shutdown();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 16u);
  EXPECT_EQ(stats.completed_ok, 16u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// --------------------------------------------------------------- metrics

TEST_F(ServingTest, ExpositionCoversServerSeries) {
  MetasearchServerOptions options = ManualOptions();
  options.admission_enabled = false;
  MetasearchServer server(searcher_.get(), options);
  Ticket ticket = server.Submit(Request());
  ASSERT_TRUE(ticket.accepted());
  ASSERT_TRUE(server.RunOne());
  ticket.response.get();

  std::string text = server.metrics().ExpositionText();
  EXPECT_NE(text.find("metaprobe_server_requests_total"), std::string::npos);
  EXPECT_NE(text.find("result=\"accepted\""), std::string::npos);
  EXPECT_NE(text.find("metaprobe_server_completed_total"), std::string::npos);
  EXPECT_NE(text.find("metaprobe_server_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("metaprobe_server_queue_wait_seconds"),
            std::string::npos);
  EXPECT_NE(text.find("metaprobe_server_latency_seconds"), std::string::npos);
  server.Shutdown();
}

}  // namespace
}  // namespace serving
}  // namespace metaprobe
