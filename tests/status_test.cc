#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/result.h"

namespace metaprobe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k: ", 42);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k: 42");
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsNotFound());
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing db").ToString(),
            "Not found: missing db");
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::Internal("boom");
  Status copy = original;
  EXPECT_TRUE(copy.IsInternal());
  EXPECT_EQ(copy.message(), "boom");
  EXPECT_TRUE(original.IsInternal());  // copy does not steal
}

TEST(StatusTest, MoveTransfersState) {
  Status original = Status::Internal("boom");
  Status moved = std::move(original);
  EXPECT_TRUE(moved.IsInternal());
}

TEST(StatusTest, AssignmentOverwrites) {
  Status s = Status::Internal("boom");
  s = Status::OK();
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::OutOfRange("idx");
  EXPECT_EQ(os.str(), "Out of range: idx");
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal error");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 3;
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(ok.ValueOr(9), 3);
  EXPECT_EQ(err.ValueOr(9), 9);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abcdef");
  EXPECT_EQ(r->size(), 6u);
}

namespace {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnNotOk(int x) {
  RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> UseAssignOrReturn(int x) {
  ASSIGN_OR_RETURN(int half, HalveEven(x));
  return half + 1;
}

}  // namespace

TEST(MacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UseReturnNotOk(1).ok());
  EXPECT_TRUE(UseReturnNotOk(-1).IsInvalidArgument());
}

TEST(MacrosTest, AssignOrReturnBindsValue) {
  Result<int> ok = UseAssignOrReturn(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 6);
  EXPECT_TRUE(UseAssignOrReturn(3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace metaprobe
