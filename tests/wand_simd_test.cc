// Oracle tests for the block-max WAND scorer and the SIMD intersection
// kernels: the optimized paths must reproduce their scalar/exhaustive
// references exactly — WAND is a pruning strategy, never a scoring change,
// and the vector kernels are drop-in replacements for the scalar merge.
//
// Suite names matter: check.sh runs *Kernel* suites under UBSan and
// *Concurrency* suites under TSAN.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/domain.h"
#include "corpus/synthetic_corpus.h"
#include "index/index_metrics.h"
#include "index/inverted_index.h"
#include "index/simd_intersect.h"
#include "stats/random.h"
#include "text/analyzer.h"

namespace metaprobe {
namespace index {
namespace {

// Restores default kernel dispatch when a test scope ends (the force hook
// clamps to the best available kernel).
struct KernelGuard {
  ~KernelGuard() { ForceIntersectKernelForTest(IntersectKernel::kAvx2); }
};

std::vector<std::string> Vocab(std::size_t n) {
  std::vector<std::string> terms;
  for (std::size_t i = 0; i < n; ++i) terms.push_back("t" + std::to_string(i));
  return terms;
}

InvertedIndex RandomIndex(stats::Rng* rng, std::uint32_t max_docs,
                          const std::vector<std::string>& vocab) {
  InvertedIndex::Builder builder;
  const std::uint32_t num_docs =
      1 + static_cast<std::uint32_t>(rng->UniformInt(max_docs));
  for (std::uint32_t d = 0; d < num_docs; ++d) {
    std::vector<std::string> terms;
    const std::size_t distinct = 1 + rng->UniformInt(vocab.size());
    for (std::size_t t = 0; t < distinct; ++t) {
      const std::string& term = vocab[rng->UniformInt(vocab.size())];
      // Repeats fold into term frequency; skew toward 1 with a heavy tail.
      std::uint64_t repeats = 1 + rng->UniformInt(3);
      if (rng->UniformInt(8) == 0) repeats += rng->UniformInt(30);
      for (std::uint64_t r = 0; r < repeats; ++r) terms.push_back(term);
    }
    builder.AddDocument(terms);
  }
  return std::move(builder).Build().ValueOrDie();
}

std::vector<std::string> RandomQuery(stats::Rng* rng,
                                     const std::vector<std::string>& vocab) {
  std::vector<std::string> terms;
  const std::size_t n = 1 + rng->UniformInt(4);
  for (std::size_t i = 0; i < n; ++i) {
    terms.push_back(vocab[rng->UniformInt(vocab.size())]);
  }
  if (rng->UniformInt(8) == 0) terms.push_back("zzz-unknown");
  if (rng->UniformInt(8) == 0) terms.push_back(terms.front());  // duplicate
  return terms;
}

void ExpectSameRanking(const std::vector<ScoredDoc>& wand,
                       const std::vector<ScoredDoc>& exhaustive,
                       const char* what) {
  ASSERT_EQ(wand.size(), exhaustive.size()) << what;
  for (std::size_t i = 0; i < wand.size(); ++i) {
    EXPECT_EQ(wand[i].doc, exhaustive[i].doc) << what << " rank " << i;
    EXPECT_NEAR(wand[i].score, exhaustive[i].score, 1e-12)
        << what << " rank " << i;
  }
}

// The headline property: over random indexes (small single-span lists and
// multi-block lists alike), WAND's results are indistinguishable from the
// exhaustive scorer for every query and every k.
TEST(WandKernelTest, MatchesExhaustiveOnRandomIndexes) {
  const std::vector<std::string> vocab = Vocab(10);
  stats::Rng rng(2026);
  for (int trial = 0; trial < 1000; ++trial) {
    // Most trials stay tiny (tail-only lists); a fifth span several blocks
    // so the block-skip machinery actually engages.
    const std::uint32_t max_docs = trial % 5 == 0 ? 448 : 64;
    InvertedIndex index = RandomIndex(&rng, max_docs, vocab);
    const std::vector<std::string> query = RandomQuery(&rng, vocab);
    for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{10},
                          std::size_t{100}}) {
      ExpectSameRanking(index.TopKCosine(query, k),
                        index.TopKCosineExhaustive(query, k), "random trial");
      if (::testing::Test::HasFailure()) {
        FAIL() << "trial " << trial << " k " << k;
      }
    }
  }
}

TEST(WandKernelTest, MatchesExhaustiveOnSyntheticCorpus) {
  text::Analyzer analyzer;
  corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
  corpus::DatabaseSpec spec;
  spec.name = "wand-oracle";
  spec.num_docs = 1200;
  spec.mixture = {{"oncology", 1.0}, {"cardiology", 0.7}};
  spec.seed = 99;
  InvertedIndex index = std::move(generator.Generate(spec)->index);
  const std::vector<std::vector<std::string>> queries = {
      {"cancer"},
      {"cancer", "breast"},
      {"heart", "arteri"},
      {"tumor", "biopsi", "cancer"},
      {"cancer", "breast", "tumor", "biopsi", "screen", "heart", "arteri"},
  };
#ifndef METAPROBE_OBS_DISABLED
  const std::uint64_t skipped_before =
      IndexCounters::wand_blocks_skipped.load(std::memory_order_relaxed);
#endif
  for (const auto& query : queries) {
    for (std::size_t k : {std::size_t{10}, std::size_t{100}}) {
      ExpectSameRanking(index.TopKCosine(query, k),
                        index.TopKCosineExhaustive(query, k), "synthetic");
    }
  }
#ifndef METAPROBE_OBS_DISABLED
  // The pruning must actually fire on a corpus this size — equivalence
  // alone would also pass for a scorer that never skips.
  EXPECT_GT(IndexCounters::wand_blocks_skipped.load(std::memory_order_relaxed),
            skipped_before);
#endif
}

TEST(WandKernelTest, TieOrderPrefersLowerDocId) {
  // Identical documents score identically; both scorers must emit the tied
  // documents in ascending DocId order, including across the k cutoff.
  InvertedIndex::Builder builder;
  for (int d = 0; d < 12; ++d) {
    builder.AddDocument({"alpha", "beta", "beta"});
  }
  builder.AddDocument({"alpha", "gamma"});
  InvertedIndex index = std::move(builder).Build().ValueOrDie();
  for (std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{12},
                        std::size_t{13}, std::size_t{50}}) {
    std::vector<ScoredDoc> wand = index.TopKCosine({"alpha", "beta"}, k);
    ExpectSameRanking(wand, index.TopKCosineExhaustive({"alpha", "beta"}, k),
                      "ties");
    for (std::size_t i = 0; i + 1 < wand.size(); ++i) {
      if (wand[i].score == wand[i + 1].score) {
        EXPECT_LT(wand[i].doc, wand[i + 1].doc) << "rank " << i;
      }
    }
  }
}

TEST(WandKernelTest, DegenerateQueries) {
  InvertedIndex index;  // empty index
  EXPECT_TRUE(index.TopKCosine({"anything"}, 10).empty());
  InvertedIndex::Builder builder;
  builder.AddDocument({"alpha"});
  InvertedIndex small = std::move(builder).Build().ValueOrDie();
  EXPECT_TRUE(small.TopKCosine({}, 10).empty());
  EXPECT_TRUE(small.TopKCosine({"unknown"}, 10).empty());
  EXPECT_TRUE(small.TopKCosine({"alpha"}, 0).empty());
  ExpectSameRanking(small.TopKCosine({"alpha"}, 10),
                    small.TopKCosineExhaustive({"alpha"}, 10), "one doc");
}

std::vector<std::uint32_t> RandomSortedRun(stats::Rng* rng, std::size_t n,
                                           std::uint32_t universe) {
  std::vector<std::uint32_t> run;
  run.reserve(n);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    next += 1 + static_cast<std::uint32_t>(rng->UniformInt(universe));
    run.push_back(next);
  }
  return run;
}

using KernelFn = std::size_t (*)(const std::uint32_t*, std::size_t,
                                 const std::uint32_t*, std::size_t,
                                 std::uint32_t*);

std::vector<std::pair<const char*, KernelFn>> CompiledVectorKernels() {
  std::vector<std::pair<const char*, KernelFn>> kernels;
#if defined(METAPROBE_INTERSECT_SSE2)
  kernels.emplace_back("sse2", &IntersectSortedSse2);
#endif
#if defined(METAPROBE_INTERSECT_AVX2_COMPILED)
  if (Avx2IntersectAvailable()) {
    kernels.emplace_back("avx2", &IntersectSortedAvx2);
  }
#endif
  return kernels;
}

// Scalar-oracle property: every compiled vector kernel produces exactly the
// scalar merge's output on runs of every size, including the sub-width
// tails (< 4 for SSE2, < 8 for AVX2) and skewed densities.
TEST(IntersectKernelTest, KernelsMatchScalarOracle) {
  const auto kernels = CompiledVectorKernels();
  stats::Rng rng(7);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::size_t na = rng.UniformInt(40);
    const std::size_t nb = rng.UniformInt(40);
    // Small universes force dense overlap; large ones force misses.
    const std::uint32_t universe =
        trial % 3 == 0 ? 2 : 1 + static_cast<std::uint32_t>(rng.UniformInt(9));
    const std::vector<std::uint32_t> a = RandomSortedRun(&rng, na, universe);
    const std::vector<std::uint32_t> b = RandomSortedRun(&rng, nb, universe);
    std::vector<std::uint32_t> expected(std::min(na, nb) + 1);
    expected.resize(IntersectSortedScalar(a.data(), na, b.data(), nb,
                                          expected.data()));
    for (const auto& [name, kernel] : kernels) {
      std::vector<std::uint32_t> got(std::min(na, nb) + 1);
      got.resize(kernel(a.data(), na, b.data(), nb, got.data()));
      EXPECT_EQ(got, expected) << name << " trial " << trial;
    }
  }
  // Full-block-sized runs, the shape the dense conjunctive path feeds.
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<std::uint32_t> a = RandomSortedRun(&rng, 128, 3);
    const std::vector<std::uint32_t> b = RandomSortedRun(&rng, 128, 3);
    std::vector<std::uint32_t> expected(129);
    expected.resize(IntersectSortedScalar(a.data(), a.size(), b.data(),
                                          b.size(), expected.data()));
    for (const auto& [name, kernel] : kernels) {
      std::vector<std::uint32_t> got(129);
      got.resize(kernel(a.data(), a.size(), b.data(), b.size(), got.data()));
      EXPECT_EQ(got, expected) << name << " block trial " << trial;
    }
  }
}

TEST(IntersectKernelTest, DispatchHonorsForcedKernel) {
  KernelGuard guard;
  stats::Rng rng(13);
  const std::vector<std::uint32_t> a = RandomSortedRun(&rng, 100, 3);
  const std::vector<std::uint32_t> b = RandomSortedRun(&rng, 100, 3);
  std::vector<std::uint32_t> expected(101);
  expected.resize(IntersectSortedScalar(a.data(), a.size(), b.data(), b.size(),
                                        expected.data()));
  for (IntersectKernel kernel :
       {IntersectKernel::kScalar, IntersectKernel::kSse2,
        IntersectKernel::kAvx2}) {
    ForceIntersectKernelForTest(kernel);
    const IntersectKernel active = ActiveIntersectKernel();
    // The hook clamps to availability, so the active kernel is the request
    // or a weaker one — never a stronger one that the host cannot run.
    EXPECT_LE(static_cast<int>(active), static_cast<int>(kernel));
    std::vector<std::uint32_t> got(101);
    got.resize(IntersectSorted(a.data(), a.size(), b.data(), b.size(),
                               got.data()));
    EXPECT_EQ(got, expected) << IntersectKernelName(active);
  }
}

// End-to-end: the dense two-list conjunctive path (which routes through the
// dispatched kernel) returns the same counts and documents as scalar-forced
// execution on multi-block lists.
TEST(IntersectKernelTest, DenseConjunctivePathMatchesScalar) {
  KernelGuard guard;
  InvertedIndex::Builder builder;
  stats::Rng rng(29);
  std::uint64_t expected_both = 0;
  for (int d = 0; d < 900; ++d) {
    std::vector<std::string> terms{"filler"};
    const bool has_a = rng.UniformInt(10) < 7;
    const bool has_b = rng.UniformInt(10) < 5;
    if (has_a) terms.push_back("alpha");
    if (has_b) terms.push_back("beta");
    if (has_a && has_b) ++expected_both;
    builder.AddDocument(terms);
  }
  InvertedIndex index = std::move(builder).Build().ValueOrDie();

  ForceIntersectKernelForTest(IntersectKernel::kScalar);
  const std::uint64_t scalar_count =
      index.CountConjunctive({"alpha", "beta"});
  const std::vector<DocId> scalar_docs =
      index.FindConjunctive({"alpha", "beta"}, 10000);
  EXPECT_EQ(scalar_count, expected_both);

  for (IntersectKernel kernel :
       {IntersectKernel::kSse2, IntersectKernel::kAvx2}) {
    ForceIntersectKernelForTest(kernel);
    EXPECT_EQ(index.CountConjunctive({"alpha", "beta"}), scalar_count)
        << IntersectKernelName(ActiveIntersectKernel());
    EXPECT_EQ(index.FindConjunctive({"alpha", "beta"}, 10000), scalar_docs)
        << IntersectKernelName(ActiveIntersectKernel());
    // Early-exit limits slice the same prefix.
    EXPECT_EQ(index.FindConjunctive({"alpha", "beta"}, 17),
              std::vector<DocId>(scalar_docs.begin(), scalar_docs.begin() + 17))
        << IntersectKernelName(ActiveIntersectKernel());
  }
}

}  // namespace
}  // namespace index
}  // namespace metaprobe
