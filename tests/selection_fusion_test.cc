#include <gtest/gtest.h>

#include "core/fusion.h"
#include "core/selection.h"

namespace metaprobe {
namespace core {
namespace {

RelevancyDistribution Rd(std::vector<stats::Atom> atoms) {
  RelevancyDistribution rd;
  rd.dist = stats::DiscreteDistribution::Make(std::move(atoms)).ValueOrDie();
  return rd;
}

// ---------------------------------------------------------------- Selection

TEST(SelectByEstimateTest, RanksByEstimate) {
  SelectionResult r = SelectByEstimate({10, 50, 30}, 2);
  EXPECT_EQ(r.databases, (std::vector<std::size_t>{1, 2}));
  EXPECT_DOUBLE_EQ(r.expected_correctness, 0.0);  // baseline has no certainty
}

TEST(SelectByEstimateTest, TieBreaksTowardLowerIndex) {
  SelectionResult r = SelectByEstimate({5, 5, 5}, 2);
  EXPECT_EQ(r.databases, (std::vector<std::size_t>{0, 1}));
}

TEST(SelectByEstimateTest, EdgeCases) {
  EXPECT_TRUE(SelectByEstimate({}, 2).databases.empty());
  EXPECT_TRUE(SelectByEstimate({1, 2}, 0).databases.empty());
  EXPECT_EQ(SelectByEstimate({1, 2}, 5).databases.size(), 2u);
}

TEST(SelectByRdTest, PaperExampleFlip) {
  // The estimate ranking says db0; the RDs say db1 with certainty 0.85
  // (Figure 5 worked example).
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{50, 0.4}, {100, 0.5}, {150, 0.1}}));
  rds.push_back(Rd({{65, 0.1}, {130, 0.9}}));
  TopKModel model(std::move(rds));
  SelectionResult baseline = SelectByEstimate({100, 65}, 1);
  SelectionResult rd_based =
      SelectByRd(model, 1, CorrectnessMetric::kAbsolute);
  EXPECT_EQ(baseline.databases, (std::vector<std::size_t>{0}));
  EXPECT_EQ(rd_based.databases, (std::vector<std::size_t>{1}));
  EXPECT_NEAR(rd_based.expected_correctness, 0.85, 1e-9);
}

TEST(SelectByRdTest, PartialMetric) {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{10, 1.0}}));
  rds.push_back(Rd({{30, 1.0}}));
  rds.push_back(Rd({{20, 1.0}}));
  TopKModel model(std::move(rds));
  SelectionResult r = SelectByRd(model, 2, CorrectnessMetric::kPartial);
  EXPECT_EQ(r.databases, (std::vector<std::size_t>{1, 2}));
  EXPECT_NEAR(r.expected_correctness, 1.0, 1e-9);
}

// ------------------------------------------------------------------- Fusion

std::vector<std::vector<SearchHit>> TwoLists() {
  return {
      {{0, 0.9, "a0"}, {1, 0.6, "a1"}, {2, 0.3, "a2"}},
      {{0, 0.5, "b0"}, {1, 0.25, "b1"}},
  };
}

TEST(FusionTest, NormalizedScoreMergesAndSorts) {
  std::vector<FusedHit> fused =
      FuseResults(TwoLists(), {"dbA", "dbB"}, 10, {});
  ASSERT_EQ(fused.size(), 5u);
  // Per-database normalization: both top hits get score 1.0; ties break
  // toward the lower database index.
  EXPECT_EQ(fused[0].database, 0u);
  EXPECT_EQ(fused[0].title, "a0");
  EXPECT_EQ(fused[1].database, 1u);
  EXPECT_EQ(fused[1].title, "b0");
  for (std::size_t i = 1; i < fused.size(); ++i) {
    EXPECT_LE(fused[i].score, fused[i - 1].score);
  }
}

TEST(FusionTest, MaxResultsTruncates) {
  EXPECT_EQ(FuseResults(TwoLists(), {"a", "b"}, 3, {}).size(), 3u);
  EXPECT_TRUE(FuseResults(TwoLists(), {"a", "b"}, 0, {}).empty());
}

TEST(FusionTest, WeightsBoostRelevantDatabases) {
  FusionOptions options;
  options.database_weights = {0.0, 500.0};  // dbB far more relevant
  std::vector<FusedHit> fused =
      FuseResults(TwoLists(), {"dbA", "dbB"}, 10, options);
  EXPECT_EQ(fused[0].database, 1u);
}

TEST(FusionTest, DatabaseNamesAttached) {
  std::vector<FusedHit> fused =
      FuseResults(TwoLists(), {"dbA", "dbB"}, 10, {});
  for (const FusedHit& hit : fused) {
    EXPECT_EQ(hit.database_name, hit.database == 0 ? "dbA" : "dbB");
  }
}

TEST(FusionTest, RoundRobinInterleaves) {
  FusionOptions options;
  options.strategy = FusionStrategy::kRoundRobin;
  std::vector<FusedHit> fused =
      FuseResults(TwoLists(), {"dbA", "dbB"}, 10, options);
  ASSERT_EQ(fused.size(), 5u);
  EXPECT_EQ(fused[0].title, "a0");
  EXPECT_EQ(fused[1].title, "b0");
  EXPECT_EQ(fused[2].title, "a1");
  EXPECT_EQ(fused[3].title, "b1");
  EXPECT_EQ(fused[4].title, "a2");
  // Synthetic scores strictly descend so re-sorting keeps the order.
  for (std::size_t i = 1; i < fused.size(); ++i) {
    EXPECT_LT(fused[i].score, fused[i - 1].score);
  }
}

TEST(FusionTest, RoundRobinRespectsLimit) {
  FusionOptions options;
  options.strategy = FusionStrategy::kRoundRobin;
  EXPECT_EQ(FuseResults(TwoLists(), {"a", "b"}, 2, options).size(), 2u);
}

TEST(FusionTest, EmptyListsYieldEmpty) {
  EXPECT_TRUE(FuseResults({}, {}, 10, {}).empty());
  std::vector<std::vector<SearchHit>> empties{{}, {}};
  EXPECT_TRUE(FuseResults(empties, {"a", "b"}, 10, {}).empty());
}

TEST(FusionTest, ZeroScoresHandled) {
  std::vector<std::vector<SearchHit>> lists{{{0, 0.0, "z"}}};
  std::vector<FusedHit> fused = FuseResults(lists, {"db"}, 5, {});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_DOUBLE_EQ(fused[0].score, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
