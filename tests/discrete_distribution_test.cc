#include "stats/discrete_distribution.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/random.h"

namespace metaprobe {
namespace stats {
namespace {

DiscreteDistribution Tri() {
  // The paper's Figure 5(b) RD for db1: {50: 0.4, 100: 0.5, 150: 0.1}.
  return DiscreteDistribution::Make({{100, 0.5}, {50, 0.4}, {150, 0.1}})
      .ValueOrDie();
}

TEST(DiscreteDistributionTest, DefaultIsImpulseAtZero) {
  DiscreteDistribution d;
  EXPECT_TRUE(d.IsImpulse());
  EXPECT_DOUBLE_EQ(d.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.PrEqual(0.0), 1.0);
}

TEST(DiscreteDistributionTest, MakeSortsByValue) {
  DiscreteDistribution d = Tri();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d.atom(0).value, 50);
  EXPECT_DOUBLE_EQ(d.atom(1).value, 100);
  EXPECT_DOUBLE_EQ(d.atom(2).value, 150);
}

TEST(DiscreteDistributionTest, MakeNormalizes) {
  DiscreteDistribution d =
      DiscreteDistribution::Make({{1, 2.0}, {2, 6.0}}).ValueOrDie();
  EXPECT_DOUBLE_EQ(d.PrEqual(1), 0.25);
  EXPECT_DOUBLE_EQ(d.PrEqual(2), 0.75);
}

TEST(DiscreteDistributionTest, MakeMergesDuplicateValues) {
  DiscreteDistribution d =
      DiscreteDistribution::Make({{5, 0.3}, {5, 0.3}, {7, 0.4}}).ValueOrDie();
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.PrEqual(5), 0.6);
}

TEST(DiscreteDistributionTest, MakeDropsNonPositiveMass) {
  DiscreteDistribution d =
      DiscreteDistribution::Make({{1, 0.0}, {2, 1.0}, {3, -0.5}}).ValueOrDie();
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.IsImpulse());
}

TEST(DiscreteDistributionTest, MakeFailsWithNoMass) {
  EXPECT_TRUE(DiscreteDistribution::Make({{1, 0.0}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DiscreteDistribution::Make({}).status().IsInvalidArgument());
}

TEST(DiscreteDistributionTest, MakeFailsOnNonFiniteValue) {
  EXPECT_TRUE(DiscreteDistribution::Make({{std::nan(""), 1.0}})
                  .status()
                  .IsInvalidArgument());
}

TEST(DiscreteDistributionTest, ImpulseProperties) {
  DiscreteDistribution d = DiscreteDistribution::Impulse(42.0);
  EXPECT_TRUE(d.IsImpulse());
  EXPECT_DOUBLE_EQ(d.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.PrAtLeast(42.0), 1.0);
  EXPECT_DOUBLE_EQ(d.PrGreaterThan(42.0), 0.0);
}

TEST(DiscreteDistributionTest, Moments) {
  DiscreteDistribution d = Tri();
  EXPECT_NEAR(d.Mean(), 50 * 0.4 + 100 * 0.5 + 150 * 0.1, 1e-12);  // 85
  double mean = d.Mean();
  double var = 0.4 * (50 - mean) * (50 - mean) +
               0.5 * (100 - mean) * (100 - mean) +
               0.1 * (150 - mean) * (150 - mean);
  EXPECT_NEAR(d.Variance(), var, 1e-9);
  EXPECT_NEAR(d.StdDev(), std::sqrt(var), 1e-9);
}

TEST(DiscreteDistributionTest, MinMaxValues) {
  DiscreteDistribution d = Tri();
  EXPECT_DOUBLE_EQ(d.MinValue(), 50);
  EXPECT_DOUBLE_EQ(d.MaxValue(), 150);
}

TEST(DiscreteDistributionTest, TailProbabilities) {
  DiscreteDistribution d = Tri();
  EXPECT_DOUBLE_EQ(d.PrAtLeast(50), 1.0);
  EXPECT_DOUBLE_EQ(d.PrAtLeast(51), 0.6);
  EXPECT_DOUBLE_EQ(d.PrAtLeast(100), 0.6);
  EXPECT_DOUBLE_EQ(d.PrAtLeast(150), 0.1);
  EXPECT_DOUBLE_EQ(d.PrAtLeast(151), 0.0);
  EXPECT_DOUBLE_EQ(d.PrGreaterThan(50), 0.6);
  EXPECT_DOUBLE_EQ(d.PrGreaterThan(100), 0.1);
  EXPECT_DOUBLE_EQ(d.PrGreaterThan(150), 0.0);
  EXPECT_DOUBLE_EQ(d.PrLessThan(50), 0.0);
  EXPECT_DOUBLE_EQ(d.PrLessThan(100), 0.4);
  EXPECT_DOUBLE_EQ(d.PrAtMost(100), 0.9);
}

TEST(DiscreteDistributionTest, PrEqualOffSupport) {
  EXPECT_DOUBLE_EQ(Tri().PrEqual(75), 0.0);
}

TEST(DiscreteDistributionTest, ComplementIdentities) {
  DiscreteDistribution d = Tri();
  for (double v : {0.0, 50.0, 75.0, 100.0, 150.0, 200.0}) {
    EXPECT_NEAR(d.PrAtLeast(v) + d.PrLessThan(v), 1.0, 1e-12);
    EXPECT_NEAR(d.PrGreaterThan(v) + d.PrAtMost(v), 1.0, 1e-12);
    EXPECT_NEAR(d.PrAtLeast(v) - d.PrGreaterThan(v), d.PrEqual(v), 1e-12);
  }
}

TEST(DiscreteDistributionTest, SampleMatchesProbabilities) {
  DiscreteDistribution d = Tri();
  Rng rng(101);
  int c50 = 0, c100 = 0, c150 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = d.Sample(&rng);
    if (v == 50) ++c50;
    else if (v == 100) ++c100;
    else if (v == 150) ++c150;
    else FAIL() << "off-support sample " << v;
  }
  EXPECT_NEAR(c50 / static_cast<double>(n), 0.4, 0.01);
  EXPECT_NEAR(c100 / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(c150 / static_cast<double>(n), 0.1, 0.01);
}

TEST(DiscreteDistributionTest, MapValuesTransforms) {
  DiscreteDistribution d = Tri();
  DiscreteDistribution shifted = d.MapValues([](double v) { return v + 10; });
  EXPECT_DOUBLE_EQ(shifted.MinValue(), 60);
  EXPECT_DOUBLE_EQ(shifted.PrEqual(110), 0.5);
}

TEST(DiscreteDistributionTest, MapValuesMergesCollisions) {
  DiscreteDistribution d = Tri();
  DiscreteDistribution clamped =
      d.MapValues([](double v) { return std::min(v, 100.0); });
  EXPECT_EQ(clamped.size(), 2u);
  EXPECT_DOUBLE_EQ(clamped.PrEqual(100), 0.6);
}

TEST(DiscreteDistributionTest, ToStringFormat) {
  DiscreteDistribution d = DiscreteDistribution::Impulse(1.0);
  EXPECT_EQ(d.ToString(1), "{1.0: 1.0}");
}

TEST(DiscreteDistributionTest, EqualityOperator) {
  EXPECT_EQ(Tri(), Tri());
  EXPECT_NE(Tri(), DiscreteDistribution::Impulse(50));
}

}  // namespace
}  // namespace stats
}  // namespace metaprobe
